//! Times incremental (ECO) remapping against cold remapping, emitting a
//! machine-readable `BENCH_eco.json`.
//!
//! For each generated design and edit size K, the harness applies K
//! cumulative single-cube edits (see `asyncmap_bench::edit`), then times
//!
//! * **cold** — `async_tmap` of the edited equations from scratch, and
//! * **eco** — `EcoSession::map` of the edited equations on a session
//!   that has already base-mapped the unedited design.
//!
//! Each eco sample runs on a fresh *clone* of the base session (cloned
//! outside the timed region), so no sample sees a store warmed by a
//! previous sample's remap of the same edit. Before any timing, the eco
//! design is checked `design_fingerprint`-identical to the cold design,
//! and on the 50k design the stitched output must additionally pass the
//! independent lint pass and the transformation audit.
//!
//! Usage: `eco [--runs N] [--out PATH] [--large]` (defaults: 9 runs,
//! `BENCH_eco.json`, 50k design only; `--large` adds gen200000-s7).

use asyncmap_bench::{
    apply_edits, design_fingerprint, generate, generate_edits, header, host_cpus, secs,
    time_median, write_json, BenchRecord, GenSpec, WARMUP_RUNS,
};
use asyncmap_core::{async_tmap, EcoSession, MapOptions};
use asyncmap_library::builtin;
use std::time::{Duration, Instant};

/// Median over `runs` timed executions of `f`, where each execution gets
/// a fresh value from `setup` built *outside* the timed region. The
/// standard `time_median` cannot express this: cloning an [`EcoSession`]
/// (its cover store is a few thousand entries on gen50000) inside the
/// timer would bill the eco path for work the cold path doesn't do —
/// and reusing one session across samples would let sample 1 warm the
/// store for samples 2..N.
fn time_median_prepared<S, T>(
    runs: usize,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> T,
) -> Duration {
    assert!(runs > 0);
    for _ in 0..WARMUP_RUNS {
        std::hint::black_box(f(setup()));
    }
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let s = setup();
            let t = Instant::now();
            let out = std::hint::black_box(f(s));
            let dt = t.elapsed();
            // Free the sample's outputs (the remapped design and the
            // cloned session's store) outside the timed region — an
            // interactive ECO flow keeps both alive, it doesn't tear them
            // down once per edit.
            drop(out);
            dt
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let mut runs = 9usize;
    let mut out = "BENCH_eco.json".to_owned();
    let mut large = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--runs" => runs = value("--runs").parse().expect("bad --runs"),
            "--out" => out = value("--out"),
            "--large" => large = true,
            other => panic!("unknown argument {other:?} (try --runs/--out/--large)"),
        }
    }

    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    let opts = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };
    let cpus = host_cpus();
    let mut records = Vec::new();

    let mut specs = vec![GenSpec {
        target_gates: 50_000,
        inputs: 16,
        seed: 7,
    }];
    if large {
        specs.push(GenSpec {
            target_gates: 200_000,
            inputs: 16,
            seed: 7,
        });
    }

    header(
        "Incremental (ECO) remapping (LSI9K)",
        &format!(
            "{:16} {:>6} {:>12} {:>12} {:>8} {:>9} {:>9}",
            "Design", "Edits", "Cold", "Eco", "Eco/Cold", "Reused", "Recovered"
        ),
    );
    for spec in &specs {
        let eqs = generate(spec);
        let mut base_session = EcoSession::new(&lib, opts.clone());
        base_session.map(&eqs).expect("base map");
        // Each map runs far longer than the built-in benchmarks; sample a
        // third as often (at least 3 for a meaningful median).
        let gen_runs = (runs / 3).max(3);
        for edit_count in [1usize, 10, 100] {
            // Edit seed varies with the edit count so the three sequences
            // are independent workloads, not prefixes of one another.
            let edits = generate_edits(&eqs, edit_count, 0xEC0 + edit_count as u64);
            let edited = apply_edits(&eqs, &edits);

            let cold_design = async_tmap(&edited, &lib, &opts).expect("mappable");
            let eco_out = base_session.clone().map(&edited).expect("mappable");
            assert_eq!(
                design_fingerprint(&cold_design),
                design_fingerprint(&eco_out.design),
                "{}/edit{edit_count}: eco remap diverged from cold map",
                spec.name()
            );
            if spec.target_gates <= 50_000 && edit_count == 1 {
                // The reuse-aware verification passes, caches warmed on the
                // base design — the full ECO loop, not just the remap.
                let mut lint_cache = asyncmap_lint::LintCache::new();
                let base_design = base_session.clone().map(&eqs).expect("base map").design;
                asyncmap_lint::lint_mapped_design_cached(&base_design, &lib, &mut lint_cache);
                let lint = asyncmap_lint::lint_mapped_design_cached(
                    &eco_out.design,
                    &lib,
                    &mut lint_cache,
                );
                assert!(
                    lint.is_clean(),
                    "{}: lint rejected the stitched design\n{}",
                    spec.name(),
                    lint.render()
                );
                let mut audit_cache = asyncmap_audit::AuditCache::new();
                asyncmap_audit::audit_equations_cached(&eqs, &mut audit_cache);
                let audit = asyncmap_audit::audit_equations_cached(&edited, &mut audit_cache);
                assert!(
                    audit.is_clean(),
                    "{}: transformation audit rejected the edited pipeline\n{}",
                    spec.name(),
                    audit.render()
                );
                let ac = &audit.counters;
                println!(
                    "{}: stitched design passed lint ({} of {} cone(s) reused) and audit \
                     ({} of {} certificate(s) reused)",
                    spec.name(),
                    lint.counters.cones_reused,
                    lint.counters.cones,
                    ac.reused_steps + ac.reused_equations + ac.reused_flattens,
                    audit.counters.num_certificates()
                );
            }

            let cold_t = time_median(gen_runs, || {
                async_tmap(&edited, &lib, &opts).expect("mappable")
            });
            let eco_t = time_median_prepared(
                gen_runs,
                || base_session.clone(),
                |mut session| {
                    let out = session.map(&edited).expect("mappable");
                    (session, out)
                },
            );
            let fraction = eco_t.as_secs_f64() / cold_t.as_secs_f64().max(1e-9);
            println!(
                "{:16} {:>6} {:>12} {:>12} {:>7.1}% {:>9} {:>9}",
                spec.name(),
                edit_count,
                secs(cold_t),
                secs(eco_t),
                fraction * 100.0,
                eco_out.eco.cones_reused,
                eco_out.eco.cones_remapped
            );
            records.push(BenchRecord {
                name: format!("{}/cold-edit{edit_count}", spec.name()),
                median: cold_t,
                threads: 1,
                host_cpus: cpus,
                cache_hit_rate: None,
                npn_hit_rate: None,
                phases: cold_design.stats.phases,
                speedup_vs_seq: None,
            });
            records.push(BenchRecord {
                name: format!("{}/eco-edit{edit_count}", spec.name()),
                median: eco_t,
                threads: 1,
                host_cpus: cpus,
                cache_hit_rate: None,
                npn_hit_rate: None,
                phases: eco_out.design.stats.phases,
                speedup_vs_seq: Some(1.0 / fraction.max(1e-9)),
            });
        }
    }

    write_json(&out, &records).expect("write JSON report");
    println!("\nwrote {} record(s) to {out}", records.len());
}
