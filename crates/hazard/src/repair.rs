//! Hazard removal — the paper notes (§4) that the analysis algorithms
//! "can also be extended to hazard-removal algorithms"; this module does so
//! for the two repairable classes:
//!
//! * **static 1-hazards** are removed by adding the missing consensus
//!   primes (the classical cure: cover every uncovered adjacency with a
//!   single gate);
//! * **m.i.c. dynamic hazards created by redundant gates** are removed by
//!   deleting redundant cubes whose only effect is to pulse (when such a
//!   deletion does not reintroduce a static hazard).
//!
//! Not every hazard is removable in two-level logic — Example 4.2.2's
//! dynamic hazard "can only be eliminated by implementing the function with
//! a single gate" — so the repair functions report what remains.

use crate::static1::{static1_subset, static_1_complete};
use crate::Hazard;
use asyncmap_cube::{Cover, Cube};

/// Result of a repair pass.
#[derive(Debug, Clone)]
pub struct Repair {
    /// The repaired cover.
    pub cover: Cover,
    /// Cubes that were added.
    pub added: Vec<Cube>,
    /// Cubes that were removed.
    pub removed: Vec<Cube>,
}

/// Removes every static logic 1-hazard from a two-level cover by adding
/// the uncovered prime implicants (Eichelberger's condition: all primes
/// present ⟺ m.i.c. static-1 hazard-free).
///
/// The returned cover denotes the same function. Note the trade-off the
/// test `figure3_repair_adds_dynamic_hazards` documents: added consensus
/// gates can create new *dynamic* m.i.c. hazards.
/// # Examples
///
/// ```
/// use asyncmap_cube::{Cover, VarTable};
/// use asyncmap_hazard::{is_static_1_hazard_free, repair_static1};
///
/// let vars = VarTable::from_names(["a", "b", "c"]);
/// let f = Cover::parse("ab + a'c", &vars)?;
/// let repaired = repair_static1(&f);
/// assert!(is_static_1_hazard_free(&repaired.cover));
/// assert_eq!(repaired.added.len(), 1); // the consensus bc
/// # Ok::<(), asyncmap_cube::ParseSopError>(())
/// ```
pub fn repair_static1(f: &Cover) -> Repair {
    let mut cover = f.clone();
    let mut added = Vec::new();
    for h in static_1_complete(f) {
        let Hazard::Static1 { span } = h else {
            continue;
        };
        if !cover.single_cube_contains(&span) {
            cover.push(span.clone());
            added.push(span);
        }
    }
    Repair {
        cover,
        added,
        removed: Vec::new(),
    }
}

/// Removes semantically redundant cubes whose deletion does not lose any
/// single-cube coverage (so no static 1-hazard appears): the gates that
/// can only ever pulse. Returns the pruned cover.
pub fn prune_pulsing_redundancy(f: &Cover) -> Repair {
    let mut kept: Vec<Cube> = f.cubes().to_vec();
    let mut removed = Vec::new();
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept[i].clone();
        let rest = Cover::from_cubes(
            f.nvars(),
            kept.iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| c.clone())
                .collect(),
        );
        // Deletable iff function-preserving and static-hazard-preserving:
        // the remainder must still single-cube-cover everything the full
        // cover did.
        if rest.covers_cube(&candidate) && static1_subset(&rest, f) {
            removed.push(candidate);
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    Repair {
        cover: Cover::from_cubes(f.nvars(), kept),
        added: Vec::new(),
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_mic_dyn_haz_2level;
    use crate::is_static_1_hazard_free;
    use asyncmap_cube::VarTable;

    #[test]
    fn repair_adds_the_consensus_gate() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c", &vars).unwrap();
        let r = repair_static1(&f);
        assert!(is_static_1_hazard_free(&r.cover));
        assert!(r.cover.equivalent(&f));
        assert_eq!(r.added, vec![Cube::parse("bc", &vars).unwrap()]);
    }

    #[test]
    fn repair_is_idempotent() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        let r = repair_static1(&f);
        assert!(r.added.is_empty());
        assert_eq!(r.cover.len(), f.len());
    }

    #[test]
    fn figure3_repair_adds_dynamic_hazards() {
        // Repairing the two-cube mux adds bc — which removes the static-1
        // hazard but creates m.i.c. dynamic hazards (the bc gate pulses on
        // b↑c↓ bursts): removal is not free, exactly why the matcher
        // compares rather than repairs.
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c", &vars).unwrap();
        let before = find_mic_dyn_haz_2level(&f).len();
        let r = repair_static1(&f);
        let after = find_mic_dyn_haz_2level(&r.cover).len();
        assert!(after > before);
    }

    #[test]
    fn prune_drops_contained_style_redundancy() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        // b + ab: ab is redundant and only ever pulses (its transitions
        // are all covered by the single cube b).
        let f = Cover::parse("b + ab", &vars).unwrap();
        let r = prune_pulsing_redundancy(&f);
        assert_eq!(r.removed, vec![Cube::parse("ab", &vars).unwrap()]);
        assert!(r.cover.equivalent(&f));
        assert!(find_mic_dyn_haz_2level(&r.cover).is_empty());
    }

    #[test]
    fn prune_keeps_hazard_protecting_cubes() {
        // bc in ab + a'c + bc is semantically redundant but protects the
        // static-1 transition: it must NOT be pruned.
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        let r = prune_pulsing_redundancy(&f);
        assert!(r.removed.is_empty());
        assert_eq!(r.cover.len(), 3);
    }
}
