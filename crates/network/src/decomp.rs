//! Technology decomposition (paper §3.1.1): transforming logic equations
//! into a network of two-input, one-output base gates.
//!
//! [`async_tech_decomp`] uses only the associative law and DeMorgan's law,
//! which Unger proved hazard-preserving — the `async_tech_decomp` procedure
//! the paper requires for asynchronous designs. [`sync_tech_decomp`] models
//! the synchronous flow, which additionally *simplifies* each equation
//! (removing redundant cubes); that is exactly the step that can introduce
//! static 1-hazards (Figure 3) and is kept as the baseline for comparison.

use crate::{GateOp, Network, SignalId};
use asyncmap_bff::Expr;
use asyncmap_cube::{Cover, Phase, VarTable};
use std::collections::HashMap;

/// A technology-independent design: named output equations (two-level SOP
/// covers) over a shared primary-input space. This is the shape a
/// burst-mode synthesizer hands to the technology mapper.
#[derive(Debug, Clone)]
pub struct EquationSet {
    /// Names of the primary inputs; cover variable `i` is input `i`.
    pub inputs: VarTable,
    /// `(output name, SOP)` pairs.
    pub equations: Vec<(String, Cover)>,
}

impl EquationSet {
    /// Builds an equation set, checking widths.
    ///
    /// # Panics
    ///
    /// Panics if an equation's variable space differs from the input table
    /// or an equation denotes a constant function (no storage-free
    /// controller output is constant).
    pub fn new(inputs: VarTable, equations: Vec<(String, Cover)>) -> Self {
        for (name, cover) in &equations {
            assert_eq!(
                cover.nvars(),
                inputs.len(),
                "equation {name:?} has wrong variable count"
            );
            assert!(
                !cover.is_empty() && !cover.is_tautology(),
                "equation {name:?} is constant"
            );
        }
        EquationSet { inputs, equations }
    }

    /// Total number of cubes over all equations.
    pub fn num_cubes(&self) -> usize {
        self.equations.iter().map(|(_, c)| c.len()).sum()
    }

    /// Total number of literals over all equations.
    pub fn num_literals(&self) -> u32 {
        self.equations.iter().map(|(_, c)| c.num_literals()).sum()
    }
}

/// Decomposes the equations into two-input AND/OR gates and inverters using
/// only hazard-preserving laws (associativity, DeMorgan). Redundant cubes
/// are kept; nothing is shared except per-input inverters (input fanout
/// does not alter hazard behavior).
/// # Examples
///
/// ```
/// use asyncmap_cube::{Cover, VarTable};
/// use asyncmap_network::{async_tech_decomp, sync_tech_decomp, EquationSet};
///
/// let vars = VarTable::from_names(["a", "b", "c"]);
/// let f = Cover::parse("ab + a'c + bc", &vars)?;
/// let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
/// // The hazard-preserving decomposition keeps the redundant cube bc...
/// let hazard_safe = async_tech_decomp(&eqs);
/// // ...which MIS-style simplification would delete (Figure 3).
/// let baseline = sync_tech_decomp(&eqs);
/// assert!(hazard_safe.num_gates() > baseline.num_gates());
/// # Ok::<(), asyncmap_cube::ParseSopError>(())
/// ```
pub fn async_tech_decomp(eqs: &EquationSet) -> Network {
    decompose(eqs, false)
}

/// The synchronous decomposition baseline: equations are first made
/// irredundant (as MIS-style simplification would), *then* decomposed. May
/// introduce static 1-hazards relative to the source equations.
pub fn sync_tech_decomp(eqs: &EquationSet) -> Network {
    decompose(eqs, true)
}

fn decompose(eqs: &EquationSet, simplify: bool) -> Network {
    let mut net = Network::new();
    let input_ids: Vec<SignalId> = eqs
        .inputs
        .iter()
        .map(|(_, name)| net.add_input(name))
        .collect();
    let mut inverters: HashMap<SignalId, SignalId> = HashMap::new();
    for (name, cover) in &eqs.equations {
        let cover = if simplify {
            cover.irredundant()
        } else {
            cover.clone()
        };
        let mut cube_signals = Vec::with_capacity(cover.len());
        for cube in cover.cubes() {
            let mut literal_signals = Vec::new();
            for (v, phase) in cube.literals() {
                let sig = input_ids[v.index()];
                let sig = match phase {
                    Phase::Pos => sig,
                    Phase::Neg => *inverters
                        .entry(sig)
                        .or_insert_with(|| net.add_gate(GateOp::Inv, vec![sig])),
                };
                literal_signals.push(sig);
            }
            cube_signals.push(balanced_tree(&mut net, GateOp::And, literal_signals));
        }
        let root = balanced_tree(&mut net, GateOp::Or, cube_signals);
        net.mark_output(name, root);
    }
    net
}

/// Decomposes a single factored-form expression (over the primary inputs of
/// `net`-to-be) into base gates, following the expression tree exactly.
/// Returns the network and the root signal.
pub fn decompose_expr(inputs: &VarTable, expr: &Expr, output: &str) -> Network {
    let mut net = Network::new();
    let input_ids: Vec<SignalId> = inputs.iter().map(|(_, name)| net.add_input(name)).collect();
    let root = emit_expr(&mut net, &input_ids, expr);
    net.mark_output(output, root);
    net
}

fn emit_expr(net: &mut Network, inputs: &[SignalId], expr: &Expr) -> SignalId {
    match expr {
        Expr::Const(_) => panic!("cannot decompose a constant expression"),
        Expr::Var(v) => inputs[v.index()],
        Expr::Not(e) => {
            let inner = emit_expr(net, inputs, e);
            net.add_gate(GateOp::Inv, vec![inner])
        }
        Expr::And(es) => {
            let signals: Vec<SignalId> = es.iter().map(|e| emit_expr(net, inputs, e)).collect();
            balanced_tree(net, GateOp::And, signals)
        }
        Expr::Or(es) => {
            let signals: Vec<SignalId> = es.iter().map(|e| emit_expr(net, inputs, e)).collect();
            balanced_tree(net, GateOp::Or, signals)
        }
    }
}

/// Combines `signals` with a balanced tree of 2-input `op` gates (the
/// associative law, applied repeatedly).
///
/// # Panics
///
/// Panics if `signals` is empty.
fn balanced_tree(net: &mut Network, op: GateOp, mut signals: Vec<SignalId>) -> SignalId {
    assert!(!signals.is_empty(), "balanced_tree of zero signals");
    while signals.len() > 1 {
        let mut next = Vec::with_capacity(signals.len().div_ceil(2));
        let mut iter = signals.chunks(2);
        for pair in &mut iter {
            match pair {
                [a, b] => next.push(net.add_gate(op, vec![*a, *b])),
                [a] => next.push(*a),
                _ => unreachable!(),
            }
        }
        signals = next;
    }
    signals[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::Bits;

    fn figure3_eqs() -> EquationSet {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        EquationSet::new(vars, vec![("f".to_owned(), f)])
    }

    #[test]
    fn async_decomp_preserves_function_and_cubes() {
        let eqs = figure3_eqs();
        let net = async_tech_decomp(&eqs);
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(net.eval_output("f", &bits), eqs.equations[0].1.eval(&bits));
        }
        // 3 cubes → 3 AND roots (ab, a'c, bc each 1 AND) + 2 OR + 1 INV.
        assert_eq!(net.num_gates(), 3 + 2 + 1);
    }

    #[test]
    fn sync_decomp_drops_redundant_cube() {
        let eqs = figure3_eqs();
        let async_net = async_tech_decomp(&eqs);
        let sync_net = sync_tech_decomp(&eqs);
        // bc is redundant: the sync decomposition loses one AND and one OR.
        assert!(sync_net.num_gates() < async_net.num_gates());
        // Function unchanged.
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(
                sync_net.eval_output("f", &bits),
                async_net.eval_output("f", &bits)
            );
        }
    }

    #[test]
    fn inverters_are_shared() {
        let vars = VarTable::from_names(["a", "b"]);
        let f = Cover::parse("a'b + a'b'", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let net = async_tech_decomp(&eqs);
        // One INV for a, one for b, 2 ANDs, 1 OR.
        assert_eq!(net.num_gates(), 2 + 2 + 1);
    }

    #[test]
    fn decompose_expr_follows_structure() {
        let inputs = VarTable::from_names(["w", "x", "y"]);
        let mut scratch = inputs.clone();
        let e = Expr::parse("(w + x')*(x + y)", &mut scratch).unwrap();
        let net = decompose_expr(&inputs, &e, "f");
        // Gates: INV(x), OR(w,x'), OR(x,y), AND → 4.
        assert_eq!(net.num_gates(), 4);
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(net.eval_output("f", &bits), e.eval(&bits));
        }
    }

    #[test]
    fn multi_output_networks() {
        let vars = VarTable::from_names(["a", "b"]);
        let f = Cover::parse("ab", &vars).unwrap();
        let g = Cover::parse("a + b", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f), ("g".to_owned(), g)]);
        let net = async_tech_decomp(&eqs);
        assert_eq!(net.outputs().len(), 2);
        let mut bits = Bits::new(2);
        bits.set(0, true);
        assert!(!net.eval_output("f", &bits));
        assert!(net.eval_output("g", &bits));
    }

    #[test]
    #[should_panic(expected = "is constant")]
    fn constant_equation_rejected() {
        let vars = VarTable::from_names(["a"]);
        let f = Cover::parse("a + a'", &vars).unwrap();
        EquationSet::new(vars, vec![("f".to_owned(), f)]);
    }
}
