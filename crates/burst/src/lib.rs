//! Burst-mode (generalized fundamental-mode) controller substrate: the
//! front end that produces the hazard-free logic equations the technology
//! mapper consumes (paper Figure 1 and §2.1).
//!
//! * [`BurstSpec`] — burst-mode state machines with validation of the
//!   entry-vector and maximal-set well-formedness conditions;
//! * [`expand`] — flow-table expansion into per-signal specified functions
//!   under a one-hot state assignment (locally-clocked style);
//! * [`hazard_free_cover`] — hazard-free two-level synthesis for the
//!   specified transitions (simplified Nowick/Dill, waveform-certified);
//! * [`benchmark`] — deterministic reconstructions of the paper's Table 5
//!   benchmark suite.
//!
//! # Examples
//!
//! ```
//! use asyncmap_burst::{expand, figure1_example, hazard_free_cover};
//!
//! let spec = figure1_example();
//! let flow = expand(&spec)?;
//! for f in &flow.functions {
//!     let cover = hazard_free_cover(f)?;
//!     assert!(!cover.is_empty());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmarks;
mod flow;
mod minimize;
mod simulate;
mod spec;
mod text;

pub use benchmarks::{
    all_benchmarks, benchmark, benchmark_spec, benchmark_with_transitions, BenchmarkDef, BENCHMARKS,
};
pub use flow::{expand, FlowTable, SpecFunction, SpecTransition, TransKind};
pub use minimize::{hazard_free_cover, SynthesisError};
pub use simulate::{simulate_machine, CombinationalBlock, SimulationError};
pub use spec::{
    figure1_example, BurstEdge, BurstSpec, EntryVectors, SpecError, SpecErrorKind, StateId,
};
pub use text::{parse_bms, to_bms, to_dot};
