//! The `ASYNCMAP_PREFLIGHT=1` pre-map hook, in its own test binary: the
//! environment variable is process-wide, so this file holds the only
//! test that sets it.

use asyncmap::prelude::*;

#[test]
fn pre_map_hook_gates_disqualified_pairs_and_passes_clean_ones() {
    asyncmap::install_preflight_hook();
    std::env::set_var("ASYNCMAP_PREFLIGHT", "1");

    // A clean builtin pair maps normally with the gate armed.
    let eqs = asyncmap::burst::benchmark("dme-fast");
    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
    assert!(design.verify_function(&lib));

    // A library that cannot invert disqualifies the pair before any
    // mapping work: the hook panics with the rendered report.
    let mut no_inv = Library::new("no-inv");
    no_inv.add(Cell::from_bff("AND2", "a*b", 1.0));
    no_inv.add(Cell::from_bff("OR2", "a + b", 1.0));
    no_inv.add(Cell::from_bff("BUF", "(a')'", 1.0));
    no_inv.annotate_hazards();
    let result = std::panic::catch_unwind(|| {
        let _ = async_tmap(&eqs, &no_inv, &MapOptions::default());
    });
    let panic = result.expect_err("the preflight gate must fire");
    let message = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        message.contains("pre-map qualification failed"),
        "unexpected panic: {message}"
    );
    assert!(message.contains("pair.unmappable"), "{message}");
}
