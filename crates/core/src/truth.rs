//! Word-parallel truth-table kernels.
//!
//! A truth table over `n ≤ 6` variables fits in one `u64`: bit `m` is the
//! function value at the assignment whose variable `v` takes bit `v` of
//! `m`. Under that packing, variable `v` itself *is* the constant mask
//! [`MASKS`]`[v]`, so one walk of the expression with `&`/`|`/`!` on `u64`s
//! evaluates all `2^n` assignments at once — the §4.1.1 bit-vector trick
//! applied to the matcher instead of the cube algebra.
//!
//! Above 6 variables the table is evaluated in 64-assignment blocks: the
//! low 6 variables keep their masks, the high variables are constant
//! (all-ones or all-zeros) within a block.

use asyncmap_bff::Expr;
use asyncmap_cube::Bits;

/// `MASKS[v]` packs the value of variable `v` across the 64 assignments of
/// a block: bit `m` is set iff bit `v` of `m` is set.
pub const MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Mask selecting the `2^n` valid table bits of a packed `u64` (`n ≤ 6`).
#[inline]
pub fn full_mask(n: usize) -> u64 {
    debug_assert!(n <= 6);
    if n == 6 {
        !0
    } else {
        (1u64 << (1usize << n)) - 1
    }
}

/// Evaluates `expr` with each variable bound to a 64-assignment word.
fn eval_word(expr: &Expr, vars: &[u64]) -> u64 {
    match expr {
        Expr::Const(b) => {
            if *b {
                !0
            } else {
                0
            }
        }
        Expr::Var(v) => vars[v.index()],
        Expr::Not(e) => !eval_word(e, vars),
        Expr::And(es) => es.iter().fold(!0u64, |acc, e| acc & eval_word(e, vars)),
        Expr::Or(es) => es.iter().fold(0u64, |acc, e| acc | eval_word(e, vars)),
    }
}

/// Packed truth table of `expr` over `n ≤ 6` local variables.
pub fn truth6_of(expr: &Expr, n: usize) -> u64 {
    debug_assert!(n <= 6);
    eval_word(expr, &MASKS[..n.max(1)]) & full_mask(n)
}

/// Truth table of `expr` over `n` local variables, evaluated in
/// 64-assignment blocks (one expression walk per block instead of per
/// assignment).
///
/// # Panics
///
/// Panics if `n > 24` (the table would be too large).
pub fn truth_table_words(expr: &Expr, n: usize) -> Bits {
    assert!(n <= 24, "truth table limited to 24 variables, got {n}");
    if n <= 6 {
        let word = truth6_of(expr, n);
        return Bits::from_words_fn(1usize << n, |_| word);
    }
    let mut vars = [0u64; 24];
    vars[..6].copy_from_slice(&MASKS);
    Bits::from_words_fn(1usize << n, |block| {
        for (v, word) in vars.iter_mut().enumerate().take(n).skip(6) {
            *word = if (block >> (v - 6)) & 1 == 1 { !0 } else { 0 };
        }
        eval_word(expr, &vars[..n])
    })
}

/// `true` iff the packed function (over `n ≤ 6` vars) depends on `v`: the
/// two cofactors differ somewhere.
#[inline]
pub fn depends6(truth: u64, n: usize, v: usize) -> bool {
    ((truth >> (1usize << v)) ^ truth) & !MASKS[v] & full_mask(n) != 0
}

/// Projects a packed table onto a support subset (the function must not
/// depend on dropped variables).
pub fn project6(truth: u64, support: &[usize]) -> u64 {
    let k = support.len();
    let mut out = 0u64;
    for m in 0..(1usize << k) {
        let mut full = 0usize;
        for (i, &v) in support.iter().enumerate() {
            full |= ((m >> i) & 1) << v;
        }
        out |= ((truth >> full) & 1) << m;
    }
    out
}

/// Signature of input `v` of a packed table: onset count with `v = 1`
/// packed with the count with `v = 0` (permutation-invariant; identical to
/// the generic `input_signature`).
#[inline]
pub fn input_signature6(truth: u64, n: usize, v: usize) -> u32 {
    let onset = truth & full_mask(n);
    let with = (onset & MASKS[v]).count_ones();
    let without = (onset & !MASKS[v]).count_ones();
    (with << 16) | without
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    #[test]
    fn masks_encode_variable_values() {
        for (v, mask) in MASKS.iter().enumerate() {
            for m in 0..64u64 {
                assert_eq!((mask >> m) & 1, (m >> v) & 1, "var {v} minterm {m}");
            }
        }
    }

    #[test]
    fn truth6_matches_scalar_eval() {
        let mut vars = VarTable::new();
        let e = Expr::parse("(a + b') * (c + a') + b * c'", &mut vars).unwrap();
        let n = 3;
        let packed = truth6_of(&e, n);
        let mut assignment = Bits::new(n);
        for m in 0..(1usize << n) {
            for v in 0..n {
                assignment.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!((packed >> m) & 1 == 1, e.eval(&assignment), "minterm {m}");
        }
    }

    #[test]
    fn blocked_table_matches_scalar_eval() {
        let mut vars = VarTable::new();
        let e = Expr::parse("(a*b + c'*d) * (e + f') + g*h'", &mut vars).unwrap();
        let n = 8;
        let table = truth_table_words(&e, n);
        let mut assignment = Bits::new(n);
        for m in 0..(1usize << n) {
            for v in 0..n {
                assignment.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(table.get(m), e.eval(&assignment), "minterm {m}");
        }
    }

    #[test]
    fn depends_and_projection() {
        use asyncmap_cube::VarId;
        // XNOR of variables 0 and 2 — ignores variable 1.
        let v = |i| Expr::Var(VarId(i));
        let e = Expr::Or(vec![
            Expr::And(vec![v(0), v(2)]),
            Expr::And(vec![Expr::Not(Box::new(v(0))), Expr::Not(Box::new(v(2)))]),
        ]);
        let t = truth6_of(&e, 3);
        assert!(depends6(t, 3, 0));
        assert!(!depends6(t, 3, 1));
        assert!(depends6(t, 3, 2));
        let proj = project6(t, &[0, 2]);
        // XNOR over 2 vars: minterms 00 and 11.
        assert_eq!(proj, 0b1001);
    }
}
