//! Adversarial property tests: every class of certificate tampering must
//! be flagged by the replay checker, and every honest trace — including
//! the full built-in benchmark suite — must audit clean.
//!
//! Tamper classes, per the audit's threat model:
//!
//! * **swapped rule id** — a step relabeled as a different rewrite rule;
//! * **edited before/after expressions** — complement wraps, dropped
//!   operands, commuted operand order (commutation is *not* a
//!   hazard-preserving law the decomposition may use);
//! * **forged fanout evidence** — partition cuts with dropped, duplicated
//!   or fabricated consumers, removed cuts, or duplicated cut points.

use asyncmap_audit::{audit_equations, check_decomp_trace, check_partition, check_spec};
use asyncmap_bff::Expr;
use asyncmap_cube::{Cover, Cube, Phase, VarId, VarTable};
use asyncmap_network::{
    async_tech_decomp, async_tech_decomp_traced, partition_traced, EquationSet, RewriteRule,
};
use proptest::prelude::*;

const NVARS: usize = 4;

prop_compose! {
    fn arb_cube()(used in 1u8..16, phase in 0u8..16) -> Cube {
        let mut lits = Vec::new();
        for v in 0..NVARS {
            if (used >> v) & 1 == 1 {
                let p = if (phase >> v) & 1 == 1 { Phase::Pos } else { Phase::Neg };
                lits.push((VarId(v), p));
            }
        }
        Cube::from_literals(NVARS, lits)
    }
}

prop_compose! {
    /// A non-constant cover: `EquationSet` rejects empty and tautological
    /// covers, so those rare draws fall back to a canonical two-literal
    /// cube (the vendored proptest shim has no `prop_filter`).
    fn arb_cover()(cubes in prop::collection::vec(arb_cube(), 1..5)) -> Cover {
        let cover = Cover::from_cubes(NVARS, cubes);
        if cover.is_empty() || cover.is_tautology() {
            let fallback = Cube::from_literals(
                NVARS,
                [(VarId(0), Phase::Pos), (VarId(1), Phase::Neg)],
            );
            Cover::from_cubes(NVARS, vec![fallback])
        } else {
            cover
        }
    }
}

prop_compose! {
    fn arb_eqs()(covers in prop::collection::vec(arb_cover(), 1..3)) -> EquationSet {
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        let equations = covers
            .into_iter()
            .enumerate()
            .map(|(i, c)| (format!("f{i}"), c))
            .collect();
        EquationSet::new(vars, equations)
    }
}

/// The next rule in a fixed rotation — always a *different* claimed rule.
fn rotate_rule(rule: RewriteRule) -> RewriteRule {
    match rule {
        RewriteRule::AssocRegroup => RewriteRule::DeMorganPush,
        RewriteRule::DeMorganPush => RewriteRule::InputInverter,
        RewriteRule::InputInverter => RewriteRule::AssocRegroup,
    }
}

/// Applies one expression tamper, guaranteed to change the expression:
/// drop an operand / reverse operand order where the shape allows it,
/// otherwise wrap in a complement.
fn tamper_expr(e: &Expr, class: u8) -> Expr {
    match (class % 3, e) {
        (1, Expr::And(es)) if es.len() > 2 => Expr::And(es[1..].to_vec()),
        (1, Expr::Or(es)) if es.len() > 2 => Expr::Or(es[1..].to_vec()),
        (2, Expr::And(es)) if es.first() != es.last() => {
            let mut r = es.clone();
            r.reverse();
            Expr::And(r)
        }
        (2, Expr::Or(es)) if es.first() != es.last() => {
            let mut r = es.clone();
            r.reverse();
            Expr::Or(r)
        }
        _ => e.clone().not(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn untampered_random_designs_audit_clean(eqs in arb_eqs()) {
        let report = audit_equations(&eqs);
        prop_assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn swapped_rule_id_is_flagged(eqs in arb_eqs(), pick in 0usize..4096) {
        let (net, mut trace) = async_tech_decomp_traced(&eqs);
        if trace.steps.is_empty() {
            return Ok(());
        }
        let i = pick % trace.steps.len();
        trace.steps[i].rule = rotate_rule(trace.steps[i].rule);
        let report = check_decomp_trace(&net, &trace);
        prop_assert!(!report.is_clean(), "relabeled step {i} was not flagged");
    }

    #[test]
    fn edited_step_expr_is_flagged(
        eqs in arb_eqs(),
        pick in 0usize..4096,
        side in any::<bool>(),
        class in 0u8..3,
    ) {
        let (net, mut trace) = async_tech_decomp_traced(&eqs);
        if trace.steps.is_empty() {
            return Ok(());
        }
        let i = pick % trace.steps.len();
        let step = &mut trace.steps[i];
        if side {
            step.before = tamper_expr(&step.before, class);
        } else {
            step.after = tamper_expr(&step.after, class);
        }
        let report = check_decomp_trace(&net, &trace);
        prop_assert!(!report.is_clean(), "edited step {i} was not flagged");
    }

    #[test]
    fn forged_fanout_evidence_is_flagged(
        eqs in arb_eqs(),
        pick in 0usize..4096,
        class in 0u8..4,
    ) {
        let net = async_tech_decomp(&eqs);
        let (mut cones, mut trace) = partition_traced(&net);
        if trace.cuts.is_empty() {
            return Ok(());
        }
        match class {
            // Drop a consumer from a cut that has one.
            0 => {
                let Some(cut) = trace.cuts.iter_mut().find(|c| !c.consumers.is_empty()) else {
                    return Ok(());
                };
                cut.consumers.pop();
                cut.fanout = cut.consumers.len();
            }
            // Duplicate a consumer (inflated evidence).
            1 => {
                let Some(cut) = trace.cuts.iter_mut().find(|c| !c.consumers.is_empty()) else {
                    return Ok(());
                };
                let extra = cut.consumers[0];
                cut.consumers.push(extra);
                cut.fanout = cut.consumers.len();
            }
            // Remove a cut point (and its cone) entirely.
            2 => {
                let i = pick % trace.cuts.len();
                trace.cuts.remove(i);
                cones.remove(i);
            }
            // Fabricate a second certificate for an already-cut signal.
            _ => {
                let i = pick % trace.cuts.len();
                let forged = trace.cuts[i].clone();
                trace.cuts.push(forged);
                cones.push(cones[i].clone());
            }
        }
        let report = check_partition(&net, &cones, &trace);
        prop_assert!(
            !report.is_clean(),
            "forged partition evidence (class {class}) was not flagged"
        );
    }
}

#[test]
fn all_builtin_benchmarks_audit_clean() {
    for (name, eqs) in asyncmap_burst::all_benchmarks() {
        let report = audit_equations(&eqs);
        assert!(report.is_clean(), "{name}: {}", report.render());
        assert!(
            report.counters.num_certificates() > 0,
            "{name}: empty trail"
        );
    }
}

#[test]
fn all_builtin_specs_check_clean() {
    for def in asyncmap_burst::BENCHMARKS {
        let spec = asyncmap_burst::benchmark_spec(def.name);
        let report = check_spec(&spec);
        assert!(report.is_clean(), "{}: {}", def.name, report.render());
        assert!(report.counters.spec_states > 0);
    }
}
