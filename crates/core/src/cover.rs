//! Covering: selecting a set of matched cells that realizes a cone at
//! minimum area (the `find_best_cover` step of the paper's `tmap` /
//! `find-best-async-cover` of `async_tmap`).
//!
//! Cones are trees of base gates, so minimum-area covering is a linear
//! dynamic program over the gates in topological order: the best cost of a
//! gate is the cheapest match rooted there plus the best costs of the
//! match's gate leaves.

use crate::cluster::{enumerate_clusters_legacy, enumerate_cuts, ClusterLimits, CutCluster};
use crate::matcher::Matcher;
use crate::profile::{self, MapPhase};
use crate::tmap::Objective;
use asyncmap_network::{Cone, Network, SignalId};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// One chosen cell instance of a cone cover.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Index of the cell in the library.
    pub cell_index: usize,
    /// The subject-network signal this instance produces.
    pub output: SignalId,
    /// Subject-network signals bound to the cell pins, in pin order.
    pub inputs: Vec<SignalId>,
}

/// A cover of one cone.
#[derive(Debug, Clone)]
pub struct ConeCover {
    /// The cone's root signal.
    pub root: SignalId,
    /// Chosen instances, leaves-to-root order.
    pub instances: Vec<Instance>,
    /// Total cell area of the cover.
    pub area: f64,
    /// Number of gates in this cone whose cut list was truncated at
    /// [`ClusterLimits::max_cuts_per_gate`] (0 on the legacy enumerator,
    /// which does not count them).
    pub cut_truncations: usize,
}

/// Error: a gate could not be covered by any library cell.
#[derive(Debug, Clone)]
pub struct CoverError {
    /// The uncoverable gate.
    pub gate: SignalId,
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no library cell covers gate {}", self.gate)
    }
}

impl Error for CoverError {}

#[derive(Debug, Clone)]
struct Choice {
    cell_index: usize,
    /// Subject signals bound to the cell pins, in pin order.
    pin_signals: Vec<SignalId>,
    /// Gate leaves of the winning cluster (sub-problems to recurse into).
    gate_leaves: Vec<SignalId>,
    cell_area: f64,
    /// Total cell area of the sub-solution rooted here.
    total_area: f64,
    /// Critical-path cell delay of the sub-solution rooted here.
    total_delay: f64,
}

impl Choice {
    fn score(&self, objective: Objective) -> (f64, f64) {
        match objective {
            Objective::Area => (self.total_area, self.total_delay),
            Objective::Delay => (self.total_delay, self.total_area),
        }
    }
}

/// Covers `cone` with minimum total cell area, using `matcher` to find
/// acceptable matches under its hazard policy.
///
/// # Errors
///
/// Returns [`CoverError`] if some gate admits no match (a library without
/// INV/AND2/OR2 equivalents).
pub fn cover_cone(
    net: &Network,
    cone: &Cone,
    matcher: &Matcher<'_>,
    limits: &ClusterLimits,
) -> Result<ConeCover, CoverError> {
    cover_cone_with(net, cone, matcher, limits, Objective::Area)
}

/// Like [`cover_cone`], selecting by the given objective (minimum total
/// cell area, or minimum critical-path cell delay with area as the
/// tie-break).
///
/// # Errors
///
/// Returns [`CoverError`] if some gate admits no match.
pub fn cover_cone_with(
    net: &Network,
    cone: &Cone,
    matcher: &Matcher<'_>,
    limits: &ClusterLimits,
    objective: Objective,
) -> Result<ConeCover, CoverError> {
    if limits.legacy_enum {
        return cover_cone_legacy(net, cone, matcher, limits, objective);
    }
    let limits = &effective_limits(limits, matcher);
    let cuts = {
        let _t = profile::timer(MapPhase::ClusterEnum);
        enumerate_cuts(net, cone, limits)
    };
    // Cover-select time excludes the matcher (paused around each call),
    // which accounts itself under the match / hazard-check phases.
    let mut t_select = profile::timer(MapPhase::CoverSelect);
    // Dense DP table aligned with the cone's (ascending) gate order; cone
    // membership and solution lookup are a binary search over the sorted
    // gate list — no per-cone hash containers. A `Choice` (with its pin
    // and gate-leaf vectors) is only built for the winner of each gate,
    // after all its candidates have been scored.
    let gate_idx = |s: SignalId| cone.gates.binary_search(&s).ok();
    let mut best: Vec<Option<Choice>> = Vec::with_capacity(cone.gates.len());
    best.resize_with(cone.gates.len(), || None);
    // The winning pin binding of the current gate, copied out of the
    // matcher's visitor buffer; reused across gates.
    let mut winner_pins: Vec<usize> = Vec::new();
    for &g in &cone.gates {
        // Winner so far: (cluster, cell_index, cell_area, total_area,
        // total_delay); its pin binding is in `winner_pins`.
        let mut best_here: Option<(&CutCluster, usize, f64, f64, f64)> = None;
        let mut best_score = (f64::INFINITY, f64::INFINITY);
        for cluster in cuts.clusters(g) {
            // All gate leaves must already have solutions (they precede g
            // topologically).
            let mut leaf_area = 0.0f64;
            let mut leaf_delay = 0.0f64;
            for &l in &cluster.leaves {
                let Some(i) = gate_idx(l) else { continue };
                match &best[i] {
                    Some(c) => {
                        leaf_area += c.total_area;
                        leaf_delay = leaf_delay.max(c.total_delay);
                    }
                    None => {
                        leaf_area = f64::INFINITY;
                        break;
                    }
                }
            }
            if !leaf_area.is_finite() {
                continue;
            }
            t_select.pause();
            matcher.for_each_match_cut(cluster, net, |cell_index, pin_to_leaf| {
                let cell = &matcher.library().cells()[cell_index];
                let total_area = cell.area() + leaf_area;
                let total_delay = cell.delay() + leaf_delay;
                let score = match objective {
                    Objective::Area => (total_area, total_delay),
                    Objective::Delay => (total_delay, total_area),
                };
                if best_here.is_none() || score < best_score {
                    best_here = Some((cluster, cell_index, cell.area(), total_area, total_delay));
                    best_score = score;
                    winner_pins.clear();
                    winner_pins.extend_from_slice(pin_to_leaf);
                }
            });
            t_select.resume();
        }
        match best_here {
            Some((cluster, cell_index, cell_area, total_area, total_delay)) => {
                let k = gate_idx(g).expect("gate is in its own cone");
                best[k] = Some(Choice {
                    cell_index,
                    pin_signals: winner_pins.iter().map(|&l| cluster.leaves[l]).collect(),
                    gate_leaves: cluster
                        .leaves
                        .iter()
                        .copied()
                        .filter(|&l| gate_idx(l).is_some())
                        .collect(),
                    cell_area,
                    total_area,
                    total_delay,
                });
            }
            None => return Err(CoverError { gate: g }),
        }
    }
    let cover = reconstruct(cone, &gate_idx, &best, cuts.truncations);
    drop(t_select);
    Ok(cover)
}

/// The reference DP over the legacy enumerator's eager clusters. Selected
/// by [`ClusterLimits::legacy_enum`]; the CI fingerprint gate diffs its
/// mapped designs against the cut-based path's.
fn cover_cone_legacy(
    net: &Network,
    cone: &Cone,
    matcher: &Matcher<'_>,
    limits: &ClusterLimits,
    objective: Objective,
) -> Result<ConeCover, CoverError> {
    let clusters = {
        let _t = profile::timer(MapPhase::ClusterEnum);
        enumerate_clusters_legacy(net, cone, limits)
    };
    let mut t_select = profile::timer(MapPhase::CoverSelect);
    let cone_gates: HashSet<SignalId> = cone.gates.iter().copied().collect();
    let mut best: HashMap<SignalId, Choice> = HashMap::new();
    for &g in &cone.gates {
        let mut best_here: Option<Choice> = None;
        for cluster in &clusters[&g] {
            let gate_leaves: Vec<SignalId> = cluster
                .leaves
                .iter()
                .copied()
                .filter(|l| cone_gates.contains(l))
                .collect();
            let leaf_area: f64 = gate_leaves
                .iter()
                .map(|l| best.get(l).map_or(f64::INFINITY, |c| c.total_area))
                .sum();
            if !leaf_area.is_finite() {
                continue;
            }
            let leaf_delay: f64 = gate_leaves
                .iter()
                .map(|l| best[l].total_delay)
                .fold(0.0, f64::max);
            t_select.pause();
            let matches = matcher.find_matches(cluster);
            t_select.resume();
            for m in matches {
                let cell = &matcher.library().cells()[m.cell_index];
                let candidate = Choice {
                    cell_index: m.cell_index,
                    pin_signals: m.pin_to_leaf.iter().map(|&l| cluster.leaves[l]).collect(),
                    gate_leaves: gate_leaves.clone(),
                    cell_area: cell.area(),
                    total_area: cell.area() + leaf_area,
                    total_delay: cell.delay() + leaf_delay,
                };
                if best_here
                    .as_ref()
                    .is_none_or(|b| candidate.score(objective) < b.score(objective))
                {
                    best_here = Some(candidate);
                }
            }
        }
        match best_here {
            Some(choice) => {
                best.insert(g, choice);
            }
            None => return Err(CoverError { gate: g }),
        }
    }
    let cover = reconstruct_map(cone, &best, 0);
    drop(t_select);
    Ok(cover)
}

/// A "designer-style" structural cover used as the hand-mapped baseline of
/// Table 3: at each gate, greedily take the match covering the most gates
/// (ties broken by larger area — a designer picking big familiar cells),
/// without hazard filtering.
pub fn hand_cover(
    net: &Network,
    cone: &Cone,
    matcher: &Matcher<'_>,
    limits: &ClusterLimits,
) -> Result<ConeCover, CoverError> {
    let cuts = {
        let _t = profile::timer(MapPhase::ClusterEnum);
        enumerate_cuts(net, cone, &effective_limits(limits, matcher))
    };
    let mut t_select = profile::timer(MapPhase::CoverSelect);
    let in_cone = |s: SignalId| cone.gates.binary_search(&s).is_ok();
    let mut instances = Vec::new();
    let mut area = 0.0;
    let mut work = vec![cone.root];
    while let Some(g) = work.pop() {
        let mut chosen: Option<(&CutCluster, crate::matcher::Match, f64)> = None;
        for cluster in cuts.clusters(g) {
            t_select.pause();
            let matches = matcher.find_matches_cut(cluster, net);
            t_select.resume();
            for m in matches {
                let cell_area = matcher.library().cells()[m.cell_index].area();
                let better = match &chosen {
                    None => true,
                    Some((cc, _, ca)) => {
                        cluster.num_gates > cc.num_gates
                            || (cluster.num_gates == cc.num_gates && cell_area > *ca)
                    }
                };
                if better {
                    chosen = Some((cluster, m, cell_area));
                }
            }
        }
        let Some((cluster, m, cell_area)) = chosen else {
            return Err(CoverError { gate: g });
        };
        area += cell_area;
        instances.push(Instance {
            cell_index: m.cell_index,
            output: g,
            inputs: m.pin_to_leaf.iter().map(|&l| cluster.leaves[l]).collect(),
        });
        for &l in &cluster.leaves {
            if in_cone(l) {
                work.push(l);
            }
        }
    }
    instances.reverse();
    Ok(ConeCover {
        root: cone.root,
        instances,
        area,
        cut_truncations: cuts.truncations,
    })
}

/// Dominance pruning trades on match-list interchangeability, which the
/// hazard filter breaks (verdicts depend on the cluster expression, not
/// just its projected function): force it off while the filter is live.
fn effective_limits(limits: &ClusterLimits, matcher: &Matcher<'_>) -> ClusterLimits {
    ClusterLimits {
        prune_dominated: limits.prune_dominated && !matcher.hazard_filtering_active(),
        ..*limits
    }
}

fn reconstruct(
    cone: &Cone,
    gate_idx: &impl Fn(SignalId) -> Option<usize>,
    best: &[Option<Choice>],
    cut_truncations: usize,
) -> ConeCover {
    let mut instances = Vec::new();
    let mut area = 0.0;
    let mut work = vec![cone.root];
    while let Some(g) = work.pop() {
        let k = gate_idx(g).expect("cover gate is in the cone");
        let choice = best[k].as_ref().expect("every cone gate was covered");
        area += choice.cell_area;
        instances.push(Instance {
            cell_index: choice.cell_index,
            output: g,
            inputs: choice.pin_signals.clone(),
        });
        work.extend(choice.gate_leaves.iter().copied());
    }
    instances.reverse();
    ConeCover {
        root: cone.root,
        instances,
        area,
        cut_truncations,
    }
}

/// Map-keyed variant of [`reconstruct`] for the legacy reference DP.
fn reconstruct_map(
    cone: &Cone,
    best: &HashMap<SignalId, Choice>,
    cut_truncations: usize,
) -> ConeCover {
    let mut instances = Vec::new();
    let mut area = 0.0;
    let mut work = vec![cone.root];
    while let Some(g) = work.pop() {
        let choice = &best[&g];
        area += choice.cell_area;
        instances.push(Instance {
            cell_index: choice.cell_index,
            output: g,
            inputs: choice.pin_signals.clone(),
        });
        work.extend(choice.gate_leaves.iter().copied());
    }
    instances.reverse();
    ConeCover {
        root: cone.root,
        instances,
        area,
        cut_truncations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::HazardPolicy;
    use asyncmap_cube::{Cover, VarTable};
    use asyncmap_library::builtin;
    use asyncmap_network::{async_tech_decomp, partition, EquationSet};

    fn setup(text: &str, names: &[&str]) -> (asyncmap_network::Network, Vec<Cone>) {
        let vars = VarTable::from_names(names.iter().copied());
        let f = Cover::parse(text, &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        (net, cones)
    }

    #[test]
    fn covers_simple_cone_with_one_cell() {
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let (net, cones) = setup("a' + b'", &["a", "b"]);
        let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        let cover = cover_cone(&net, &cones[0], &matcher, &ClusterLimits::default()).unwrap();
        // One NAND2 beats INV+INV+OR2 on area.
        assert_eq!(cover.instances.len(), 1);
        assert!(lib.cells()[cover.instances[0].cell_index]
            .name()
            .starts_with("NAND2"));
    }

    #[test]
    fn async_cover_preserves_cone_hazard_freedom() {
        // The mapper may use the hazardous MUX2 on the inner ab + a'c
        // subnetwork (whose structure has exactly the mux's hazards,
        // Theorem 3.2) but never in a way that loses the protection of the
        // redundant consensus cube bc: the mapped cone as a whole must
        // have a subset of the original cone's hazards.
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let (net, cones) = setup("ab + a'c + bc", &["a", "b", "c"]);
        let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        let cover = cover_cone(&net, &cones[0], &matcher, &ClusterLimits::default()).unwrap();
        let (orig, _) = cones[0].to_expr(&net);
        let mapped = crate::design::mapped_cone_expr(&net, &cones[0], &cover, &lib);
        assert!(asyncmap_hazard::hazards_subset(
            &mapped,
            &orig,
            cones[0].leaves.len()
        ));
        // In particular the full-cone MUX2 replacement (which drops bc and
        // introduces a static-1 hazard) must have been rejected: the
        // mapped structure still holds b=c=1 steady while a changes.
        let mut one = asyncmap_cube::Bits::new(3);
        one.set(1, true);
        one.set(2, true);
        let mut other = one.clone();
        other.set(0, true);
        assert!(!asyncmap_hazard::wave_eval(&mapped, &one, &other).hazard);
        // The sync cover, by contrast, is free to take the bare mux.
        let sync = Matcher::new(&lib, HazardPolicy::Ignore);
        let sync_cover = cover_cone(&net, &cones[0], &sync, &ClusterLimits::default()).unwrap();
        assert!(sync_cover.area <= cover.area);
    }

    #[test]
    fn dp_cost_equals_sum_of_instance_areas() {
        let mut lib = builtin::lsi9k();
        lib.annotate_hazards();
        let (net, cones) = setup("ab' + cd + a'd'", &["a", "b", "c", "d"]);
        let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        let cover = cover_cone(&net, &cones[0], &matcher, &ClusterLimits::default()).unwrap();
        let sum: f64 = cover
            .instances
            .iter()
            .map(|i| lib.cells()[i.cell_index].area())
            .sum();
        assert!((cover.area - sum).abs() < 1e-9);
        assert!(!cover.instances.is_empty());
    }

    #[test]
    fn hand_cover_is_no_smaller_than_dp() {
        let mut lib = builtin::gdt();
        lib.annotate_hazards();
        let (net, cones) = setup("ab + a'c + bc", &["a", "b", "c"]);
        let m1 = Matcher::new(&lib, HazardPolicy::Ignore);
        let dp = cover_cone(&net, &cones[0], &m1, &ClusterLimits::default()).unwrap();
        let m2 = Matcher::new(&lib, HazardPolicy::Ignore);
        let hand = hand_cover(&net, &cones[0], &m2, &ClusterLimits::default()).unwrap();
        assert!(hand.area >= dp.area - 1e-9);
    }
}
