//! Shared hazard-verdict cache.
//!
//! Hazard-containment checks (`hazards(cell) ⊆ hazards(cluster)`,
//! Theorem 3.2) dominate asynchronous matching time, and the same
//! (cell, binding, cluster) query recurs across overlapping clusters,
//! across cones, and across repeated `async_tmap` invocations. The
//! [`HazardCache`] memoizes those verdicts once, concurrently:
//!
//! * **Interned cluster expressions** — each distinct cluster function is
//!   hashed into a small integer id exactly once; lookups never clone an
//!   [`Expr`] (the previous per-matcher cache cloned both the candidate and
//!   the cluster expression into every key).
//! * **Packed bindings** — the candidate side of a verdict is fully
//!   determined by `(cell_index, pin→leaf binding)`, so the key stores the
//!   binding packed into a `u128` (8 bits per pin) instead of the
//!   instantiated candidate expression. On a cache hit the candidate is
//!   never even built.
//! * **Sharded locking** — verdicts live in a fixed array of
//!   `RwLock<HashMap>` shards selected by key hash, so concurrent cone
//!   workers rarely contend; hit/miss counters are relaxed atomics.
//!
//! The cache is shared through an [`Arc`]: every matcher created by one
//! mapping run uses one cache, and callers can keep a cache warm across
//! runs via `async_tmap_cached`. Keys embed the library's cell indices, so
//! a cache must only ever be used with one library; this is enforced by
//! fingerprinting the library on first attach.

use crate::fxhash::FxBuildHasher;
use asyncmap_bff::Expr;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Number of verdict shards; a power of two so shard selection is a mask.
const SHARDS: usize = 16;

/// Maximum pins a packed binding can hold (8 bits each in a `u128`, with
/// the top byte reserved for the binding length).
const MAX_PACKED_PINS: usize = 15;

/// A fully-resolved verdict key: which cell, bound how, against which
/// cluster function over how many leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct VerdictKey {
    cell_index: u32,
    /// Pin→leaf binding packed 8 bits per pin (pin order preserved).
    binding: u128,
    /// Interned id of the cluster expression.
    cluster: u32,
    nleaves: u32,
}

/// Concurrency-safe memo of hazard-containment verdicts, shared across
/// matchers, cones, and mapping runs over one library.
#[derive(Debug, Default)]
pub struct HazardCache {
    /// Cluster-expression interner: maps each distinct expression to a
    /// dense id. Lookup by `&Expr` is allocation-free; the expression is
    /// cloned only the first time it is seen.
    interner: RwLock<HashMap<Expr, u32, FxBuildHasher>>,
    shards: [RwLock<HashMap<VerdictKey, bool, FxBuildHasher>>; SHARDS],
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Fingerprint of the library the cache is bound to (name + cell
    /// count), set on first attach. Keys embed cell indices, so reusing a
    /// cache with a different library would silently mix verdicts.
    library: Mutex<Option<(String, usize)>>,
}

impl HazardCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        HazardCache::default()
    }

    /// Number of verdicts answered from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of verdicts that had to be computed (i.e. actual
    /// `hazards_subset` evaluations through this cache).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Binds the cache to a library, panicking if it was previously bound
    /// to a different one (verdict keys embed cell indices).
    pub(crate) fn bind_library(&self, name: &str, num_cells: usize) {
        let mut bound = self.library.lock().expect("hazard-cache lock poisoned");
        match &*bound {
            None => *bound = Some((name.to_owned(), num_cells)),
            Some((n, c)) => assert!(
                n == name && *c == num_cells,
                "hazard cache bound to library {n:?} ({c} cells) cannot be \
                 reused with library {name:?} ({num_cells} cells)"
            ),
        }
    }

    /// Interns `expr`, returning its dense id. Clones `expr` only on first
    /// encounter.
    pub(crate) fn intern(&self, expr: &Expr) -> u32 {
        if let Some(&id) = self
            .interner
            .read()
            .expect("hazard-cache lock poisoned")
            .get(expr)
        {
            return id;
        }
        let mut map = self.interner.write().expect("hazard-cache lock poisoned");
        let next = u32::try_from(map.len()).expect("interner overflow");
        *map.entry(expr.clone()).or_insert(next)
    }

    /// Builds a verdict key, or `None` when the binding cannot be packed
    /// (more than [`MAX_PACKED_PINS`] pins or a leaf index ≥ 256 — such
    /// queries bypass the cache).
    pub(crate) fn key(
        &self,
        cell_index: usize,
        pin_to_leaf: &[usize],
        cluster_id: u32,
        nleaves: usize,
    ) -> Option<VerdictKey> {
        if pin_to_leaf.len() > MAX_PACKED_PINS {
            return None;
        }
        let mut binding = 0u128;
        for (p, &leaf) in pin_to_leaf.iter().enumerate() {
            if leaf >= 256 {
                return None;
            }
            binding |= (leaf as u128) << (8 * p);
        }
        // Distinguish an empty binding from pin 0 → leaf 0 by the length.
        binding |= (pin_to_leaf.len() as u128) << (8 * MAX_PACKED_PINS);
        Some(VerdictKey {
            cell_index: u32::try_from(cell_index).ok()?,
            binding,
            cluster: cluster_id,
            nleaves: u32::try_from(nleaves).ok()?,
        })
    }

    /// Memoized *expression-level* containment verdict, the entry point
    /// for whole-cone analyses (the fundamental-mode analyzer) that ask
    /// `hazards(candidate) ⊆ hazards(reference)` about two composed
    /// expressions rather than a (cell, binding) pair. Both expressions
    /// are interned; the verdict is keyed on their ids and `nvars` under
    /// a sentinel cell index no matcher key can collide with. Concurrent
    /// callers may race to compute the same verdict; both arrive at the
    /// same answer, so the duplicate insert is harmless.
    pub fn expr_verdict(
        &self,
        candidate: &Expr,
        reference: &Expr,
        nvars: usize,
        compute: impl FnOnce() -> bool,
    ) -> bool {
        let cand = self.intern(candidate);
        let refr = self.intern(reference);
        let key = VerdictKey {
            cell_index: u32::MAX,
            binding: cand as u128,
            cluster: refr,
            nleaves: u32::try_from(nvars).expect("nvars overflow"),
        };
        self.verdict(key, compute)
    }

    /// Returns the cached verdict for `key`, or evaluates `compute`,
    /// records the result, and returns it. Counts a hit or a miss either
    /// way. Concurrent callers may race to compute the same verdict; both
    /// arrive at the same answer, so the duplicate insert is harmless.
    pub(crate) fn verdict(&self, key: VerdictKey, compute: impl FnOnce() -> bool) -> bool {
        let shard = &self.shards[shard_of(&key)];
        if let Some(&v) = shard.read().expect("hazard-cache lock poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        // Compute outside any lock: hazards_subset can be expensive.
        let v = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard
            .write()
            .expect("hazard-cache lock poisoned")
            .insert(key, v);
        v
    }
}

/// Test-only handles for the `loom-tests` concurrency model test
/// (`crates/core/tests/loom_hcache.rs`). The cache's working API is
/// `pub(crate)` — the matcher is its only production client — so the model
/// test, an *integration* test, gets these thin feature-gated wrappers.
#[cfg(feature = "loom-tests")]
impl HazardCache {
    /// [`HazardCache::intern`] exposed for the model test.
    pub fn model_intern(&self, expr: &Expr) -> u32 {
        self.intern(expr)
    }

    /// Key construction + [`HazardCache::verdict`] exposed for the model
    /// test. Returns `None` when the binding cannot be packed into a key
    /// (such queries bypass the cache in production too).
    pub fn model_verdict(
        &self,
        cell_index: usize,
        pin_to_leaf: &[usize],
        cluster_id: u32,
        nleaves: usize,
        compute: impl FnOnce() -> bool,
    ) -> Option<bool> {
        let key = self.key(cell_index, pin_to_leaf, cluster_id, nleaves)?;
        Some(self.verdict(key, compute))
    }
}

fn shard_of(key: &VerdictKey) -> usize {
    hash_shard(key)
}

fn hash_shard<K: Hash>(key: &K) -> usize {
    (FxBuildHasher::default().hash_one(key) as usize) & (SHARDS - 1)
}

/// One memoized pin binding: the matcher's `pin_to_local` permutation for
/// a cell entry, packed one byte per pin (≤ 6 pins).
pub(crate) type MemoBinding = (u32, [u8; 6]);

/// A memoized binding for a wide (7–8 leaf) cluster: the cell entry plus
/// the pin → *leaf index* map, packed one byte per pin.
pub(crate) type WideBinding = (u32, [u8; 8]);

/// Sharded memo of Boolean-match results, keyed by the cluster's packed
/// truth table and, underneath that, by its P-class canonical form
/// ([`crate::truth::canon6`]).
///
/// Three levels:
///
/// * **raw** — `(n, truth)` → the matching cell entries *with* their pin
///   bindings. The binding search is a pure function of the projected
///   truth table, so an exact-table hit replays the stored bindings and
///   skips `permute_match6` entirely.
/// * **class** — `(n, canon, phase)` → the matching cell entry list. A
///   first-seen table that canonicalizes into a known class skips the
///   signature-bucket scan (the expensive part: most cells fail the
///   permutation search) and only re-runs `permute_match6` against the
///   few cells known to match, which pins the bindings to exactly what
///   the unmemoized search would have produced.
/// * **wide** — `(nleaves, 4-word table)` → pin → leaf-index bindings for
///   7–8 leaf clusters, whose tables do not pack into one word. Raw-level
///   only (no canonical form), but these clusters repeat just as heavily
///   across cones, so the exact-table hit rate carries the weight.
///
/// Entry lists keep library bucket order, so match lists — and therefore
/// cover selection — are bit-identical with the memo on or off. Hazard
/// filtering happens downstream of the memo and is never cached here.
/// A sharded hash map: the memo levels below key into one of [`SHARDS`]
/// independently locked maps to keep contention negligible under the
/// parallel cone-mapping engine.
type Sharded<K, V> = [RwLock<HashMap<K, V, FxBuildHasher>>; SHARDS];

#[derive(Debug)]
pub(crate) struct MatchMemo {
    raw: Sharded<(u8, u64), Arc<Vec<MemoBinding>>>,
    class: Sharded<(u8, u64, bool), Arc<Vec<u32>>>,
    wide: Sharded<(u8, [u64; 4]), Arc<Vec<WideBinding>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Default for MatchMemo {
    fn default() -> Self {
        MatchMemo {
            raw: std::array::from_fn(|_| RwLock::new(HashMap::default())),
            class: std::array::from_fn(|_| RwLock::new(HashMap::default())),
            wide: std::array::from_fn(|_| RwLock::new(HashMap::default())),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }
}

impl MatchMemo {
    pub(crate) fn new() -> Self {
        MatchMemo::default()
    }

    /// Lookups answered from either memo level.
    pub(crate) fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a full signature-bucket scan.
    pub(crate) fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Zeroes the hit/miss counters without touching the memoized match
    /// lists (resetting accounting must not change matching behavior).
    pub(crate) fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    pub(crate) fn raw_get(&self, n: usize, truth: u64) -> Option<Arc<Vec<MemoBinding>>> {
        let key = (n as u8, truth);
        self.raw[hash_shard(&key)]
            .read()
            .expect("match-memo lock poisoned")
            .get(&key)
            .cloned()
    }

    pub(crate) fn raw_put(&self, n: usize, truth: u64, bindings: Arc<Vec<MemoBinding>>) {
        let key = (n as u8, truth);
        self.raw[hash_shard(&key)]
            .write()
            .expect("match-memo lock poisoned")
            .insert(key, bindings);
    }

    pub(crate) fn class_get(&self, n: usize, canon: u64, phase: bool) -> Option<Arc<Vec<u32>>> {
        let key = (n as u8, canon, phase);
        self.class[hash_shard(&key)]
            .read()
            .expect("match-memo lock poisoned")
            .get(&key)
            .cloned()
    }

    pub(crate) fn class_put(&self, n: usize, canon: u64, phase: bool, cells: Arc<Vec<u32>>) {
        let key = (n as u8, canon, phase);
        self.class[hash_shard(&key)]
            .write()
            .expect("match-memo lock poisoned")
            .insert(key, cells);
    }

    pub(crate) fn wide_get(
        &self,
        nleaves: usize,
        words: [u64; 4],
    ) -> Option<Arc<Vec<WideBinding>>> {
        let key = (nleaves as u8, words);
        self.wide[hash_shard(&key)]
            .read()
            .expect("match-memo lock poisoned")
            .get(&key)
            .cloned()
    }

    pub(crate) fn wide_put(
        &self,
        nleaves: usize,
        words: [u64; 4],
        bindings: Arc<Vec<WideBinding>>,
    ) {
        let key = (nleaves as u8, words);
        self.wide[hash_shard(&key)]
            .write()
            .expect("match-memo lock poisoned")
            .insert(key, bindings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarId;

    #[test]
    fn intern_is_stable_and_clone_free_on_rehit() {
        let cache = HazardCache::new();
        let a = Expr::Var(VarId(0)).not();
        let b = Expr::Var(VarId(1));
        let ia = cache.intern(&a);
        let ib = cache.intern(&b);
        assert_ne!(ia, ib);
        assert_eq!(cache.intern(&a), ia);
        assert_eq!(cache.intern(&b), ib);
    }

    #[test]
    fn verdict_computes_once_per_key() {
        let cache = HazardCache::new();
        let key = cache.key(3, &[1, 0, 2], 7, 3).unwrap();
        let mut evals = 0;
        for _ in 0..4 {
            let v = cache.verdict(key, || {
                evals += 1;
                true
            });
            assert!(v);
        }
        assert_eq!(evals, 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn distinct_bindings_get_distinct_keys() {
        let cache = HazardCache::new();
        let k1 = cache.key(0, &[0, 1], 0, 2).unwrap();
        let k2 = cache.key(0, &[1, 0], 0, 2).unwrap();
        assert_ne!(k1, k2);
        // Empty binding differs from pin0→leaf0.
        let k3 = cache.key(0, &[], 0, 2).unwrap();
        let k4 = cache.key(0, &[0], 0, 2).unwrap();
        assert_ne!(k3, k4);
    }

    #[test]
    fn oversized_bindings_bypass_the_cache() {
        let cache = HazardCache::new();
        assert!(cache.key(0, &[0; 16], 0, 16).is_none());
        assert!(cache.key(0, &[300], 0, 301).is_none());
    }

    #[test]
    fn match_memo_levels_are_independent() {
        let memo = MatchMemo::new();
        assert!(memo.raw_get(2, 0b1000).is_none());
        assert!(memo.class_get(2, 0b1000, false).is_none());
        memo.raw_put(2, 0b1000, Arc::new(vec![(3, [1, 0, 0, 0, 0, 0])]));
        memo.class_put(2, 0b1000, false, Arc::new(vec![3]));
        assert_eq!(memo.raw_get(2, 0b1000).unwrap()[0].0, 3);
        assert_eq!(*memo.class_get(2, 0b1000, false).unwrap(), vec![3]);
        // Same table, different arity or phase: distinct entries.
        assert!(memo.raw_get(3, 0b1000).is_none());
        assert!(memo.class_get(2, 0b1000, true).is_none());
        memo.note_hit();
        memo.note_miss();
        memo.note_miss();
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot be")]
    fn rebinding_to_another_library_panics() {
        let cache = HazardCache::new();
        cache.bind_library("A", 4);
        cache.bind_library("A", 4); // same library: fine
        cache.bind_library("B", 4);
    }
}
