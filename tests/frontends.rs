//! Frontend file-format tests: the genlib and BLIF parsers on the
//! checked-in MCNC-style fixtures, plus malformed-input rejection —
//! every broken file must produce a typed error or a structural finding,
//! never a panic.

use asyncmap::blif::{parse_blif, BlifErrorKind, CollapseErrorKind, CollapseLimits};
use asyncmap::genlib::{parse_genlib, GenlibErrorKind};
use proptest::prelude::*;

fn fixture(name: &str) -> String {
    std::fs::read_to_string(format!("tests/fixtures/{name}")).unwrap()
}

#[test]
fn mcnc_like_genlib_parses_and_converts() {
    let parsed = parse_genlib(&fixture("mcnc_like.genlib"), "mcnc_like").unwrap();
    assert_eq!(parsed.cells.len(), 19);
    assert_eq!(parsed.skipped.len(), 1, "the DFF latch is skipped");
    let lib = parsed.to_library();
    assert_eq!(lib.len(), 19);
    assert_eq!(lib.cell("INV").unwrap().num_inputs(), 1);
    assert_eq!(lib.cell("AOI22").unwrap().num_inputs(), 4);
    assert_eq!(lib.cell("AND2").unwrap().area(), 3.0);
}

#[test]
fn ctrl_like_blif_parses_and_collapses() {
    let net = parse_blif(&fixture("ctrl_like.blif"), "ctrl_like").unwrap();
    assert_eq!(net.model, "ctrl_like");
    assert_eq!(net.inputs.len(), 6);
    assert_eq!(net.outputs, ["grant0", "grant1", "stall", "err"]);
    assert!(net.structure().is_sound());
    let eqs = net.to_equations(&CollapseLimits::default()).unwrap();
    assert_eq!(eqs.equations.len(), 4);
    // The OFF-set cone: stall = busy * (req0 + req1), 2 cubes.
    let stall = &eqs.equations.iter().find(|(n, _)| n == "stall").unwrap().1;
    assert_eq!(stall.len(), 2);
}

#[test]
fn truncated_genlib_lines_are_typed_errors() {
    for (text, kind) in [
        ("GATE HALF", GenlibErrorKind::Truncated),
        ("GATE HALF 1", GenlibErrorKind::Truncated),
        ("GATE G 1 O=a; PIN a", GenlibErrorKind::Truncated),
        ("GATE G x O=a;", GenlibErrorKind::BadNumber),
        (
            "GATE G 1 O=a; PIN a SIDEWAYS 1 999 1 1 1 1",
            GenlibErrorKind::BadPhase,
        ),
        ("GATE G 1 O=a*(b;", GenlibErrorKind::BadExpression),
        ("GATE G 1 O a;", GenlibErrorKind::MissingAssign),
        ("GATE G 1 O=a", GenlibErrorKind::MissingSemicolon),
        (
            "GATE G 1 O=a;\nGATE G 1 O=b;",
            GenlibErrorKind::DuplicateGate,
        ),
        (
            "GATE G 1 O=a; PIN z INV 1 999 1 1 1 1",
            GenlibErrorKind::UndeclaredPin,
        ),
        ("PIN a INV 1 999 1 1 1 1", GenlibErrorKind::PinBeforeGate),
        ("WIRE W 1 O=a;", GenlibErrorKind::UnknownStatement),
        ("# only a comment", GenlibErrorKind::EmptyLibrary),
    ] {
        let err = parse_genlib(text, "broken").unwrap_err();
        assert_eq!(err.kind, kind, "for {text:?}: {err}");
    }
}

#[test]
fn malformed_blif_is_a_typed_error() {
    for (text, kind) in [
        (".model a\n.model b\n.end", BlifErrorKind::DuplicateModel),
        (
            ".model m\n.inputs a a\n.outputs f\n.names a f\n1 1\n.end",
            BlifErrorKind::DuplicateInput,
        ),
        (
            ".model m\n.inputs a\n.outputs f f\n.names a f\n1 1\n.end",
            BlifErrorKind::DuplicateOutput,
        ),
        (
            ".model m\n.inputs a\n.outputs f\n.names\n.end",
            BlifErrorKind::BadNames,
        ),
        (
            ".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n.end",
            BlifErrorKind::BadCover,
        ),
        (
            ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end",
            BlifErrorKind::MixedCover,
        ),
        (
            ".model m\n.inputs a\n.outputs f\n.names a f\n1 -\n.end",
            BlifErrorKind::DontCare,
        ),
        (
            ".model m\n.inputs a\n.outputs f\n.exdc\n.names a f\n1 1\n.end",
            BlifErrorKind::DontCare,
        ),
        (
            ".model m\n.inputs a\n.outputs f\n.latch a\n.end",
            BlifErrorKind::BadLatch,
        ),
        (
            ".model m\n.inputs a\n.outputs f\n.subckt sub x=a\n.end",
            BlifErrorKind::UnsupportedConstruct,
        ),
        (".model m\n.end", BlifErrorKind::EmptyModel),
    ] {
        let err = parse_blif(text, "broken").unwrap_err();
        assert_eq!(err.kind, kind, "for {text:?}: {err}");
    }
}

#[test]
fn dangling_names_refs_parse_but_are_structurally_unsound() {
    // `ghost` is read but never driven: a structural finding, not a
    // syntax error — the netlist still parses.
    let text = ".model m\n.inputs a\n.outputs f\n.names a ghost f\n11 1\n.end";
    let net = parse_blif(text, "m").unwrap();
    let s = net.structure();
    assert_eq!(s.undriven, ["ghost"]);
    assert!(!s.is_sound());
    let err = net.to_equations(&CollapseLimits::default()).unwrap_err();
    assert_eq!(err.kind, CollapseErrorKind::Undriven);
    assert_eq!(err.signal, "ghost");
}

#[test]
fn cyclic_netlists_parse_but_do_not_collapse() {
    let net = parse_blif(&fixture("bad_cycle.blif"), "bad_cycle").unwrap();
    let s = net.structure();
    assert_eq!(s.on_cycle, ["f", "p", "q"]);
    let err = net.to_equations(&CollapseLimits::default()).unwrap_err();
    assert_eq!(err.kind, CollapseErrorKind::Cycle);
}

#[test]
fn multiply_driven_nets_parse_but_do_not_collapse() {
    let text = ".model m\n.inputs a b\n.outputs f\n.names a f\n1 1\n.names b f\n1 1\n.end";
    let net = parse_blif(text, "m").unwrap();
    assert_eq!(net.structure().multi_driven, ["f"]);
    let err = net.to_equations(&CollapseLimits::default()).unwrap_err();
    assert_eq!(err.kind, CollapseErrorKind::MultiDriven);
}

// A token soup biased toward the two grammars: random fragments must
// always come back as Ok or a typed error, never a panic.
const GENLIB_TOKENS: &[&str] = &[
    "GATE", "PIN", "LATCH", "O=", "=", ";", "!", "'", "(", ")", "*", "+", "a", "b", "INV",
    "NONINV", "1", "0.5", "-3", "999", "\n", " ", "#", "CONST0",
];
const BLIF_TOKENS: &[&str] = &[
    ".model", ".inputs", ".outputs", ".names", ".latch", ".end", ".exdc", "a", "b", "f", "0", "1",
    "-", "2", "\\", "\n", " ", "#",
];

fn arb_soup(tokens: &'static [&'static str]) -> impl Strategy<Value = String> {
    prop::collection::vec(0..tokens.len(), 0..40).prop_map(move |picks| {
        picks
            .into_iter()
            .map(|i| tokens[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn genlib_parser_never_panics(text in arb_soup(GENLIB_TOKENS)) {
        let _ = parse_genlib(&text, "fuzz");
    }

    #[test]
    fn blif_parser_never_panics(text in arb_soup(BLIF_TOKENS)) {
        if let Ok(net) = parse_blif(&text, "fuzz") {
            let _ = net.structure();
            let _ = net.to_equations(&CollapseLimits { max_cubes: 500 });
        }
    }
}
