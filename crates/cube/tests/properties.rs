//! Property-based tests for the cube/cover algebra: every structural
//! operation is checked against brute-force minterm semantics on small
//! variable counts.

use asyncmap_cube::{Bits, Cover, Cube, Phase, VarId};
use proptest::prelude::*;

const NVARS: usize = 5;

fn assignment(m: usize) -> Bits {
    let mut b = Bits::new(NVARS);
    for v in 0..NVARS {
        b.set(v, (m >> v) & 1 == 1);
    }
    b
}

fn minterm_set(c: &Cube) -> Vec<usize> {
    (0..(1usize << NVARS))
        .filter(|&m| c.eval(&assignment(m)))
        .collect()
}

fn cover_set(f: &Cover) -> Vec<usize> {
    (0..(1usize << NVARS))
        .filter(|&m| f.eval(&assignment(m)))
        .collect()
}

prop_compose! {
    fn arb_cube()(used in 0u8..32, phase in 0u8..32) -> Cube {
        let mut literals = Vec::new();
        for v in 0..NVARS {
            if (used >> v) & 1 == 1 {
                let p = if (phase >> v) & 1 == 1 { Phase::Pos } else { Phase::Neg };
                literals.push((VarId(v), p));
            }
        }
        Cube::from_literals(NVARS, literals)
    }
}

prop_compose! {
    fn arb_cover()(cubes in prop::collection::vec(arb_cube(), 0..8)) -> Cover {
        Cover::from_cubes(NVARS, cubes)
    }
}

proptest! {
    #[test]
    fn containment_matches_semantics(a in arb_cube(), b in arb_cube()) {
        let (sa, sb) = (minterm_set(&a), minterm_set(&b));
        prop_assert_eq!(a.contains(&b), sb.iter().all(|m| sa.contains(m)));
    }

    #[test]
    fn intersection_matches_semantics(a in arb_cube(), b in arb_cube()) {
        let (sa, sb) = (minterm_set(&a), minterm_set(&b));
        let want: Vec<usize> = sa.iter().copied().filter(|m| sb.contains(m)).collect();
        match a.intersect(&b) {
            Some(c) => prop_assert_eq!(minterm_set(&c), want),
            None => prop_assert!(want.is_empty()),
        }
    }

    #[test]
    fn supercube_is_smallest_containing_cube(a in arb_cube(), b in arb_cube()) {
        let s = a.supercube(&b);
        prop_assert!(s.contains(&a) && s.contains(&b));
        // Minimality: dropping any remaining constraint is necessary;
        // equivalently every literal of s appears, same phase, in a and b.
        for (v, p) in s.literals() {
            prop_assert_eq!(a.literal(v), Some(p));
            prop_assert_eq!(b.literal(v), Some(p));
        }
    }

    #[test]
    fn adjacency_is_implicant_of_pair(a in arb_cube(), b in arb_cube()) {
        if let Some(cons) = a.adjacency(&b) {
            let f = Cover::from_cubes(NVARS, vec![a.clone(), b.clone()]);
            prop_assert!(f.covers_cube(&cons), "consensus not implied");
            prop_assert_eq!(a.distance(&b), 1);
        }
    }

    #[test]
    fn eval_agrees_with_literals(c in arb_cube(), m in 0usize..32) {
        let a = assignment(m);
        let want = c.literals().all(|(v, p)| a.get(v.index()) == p.is_pos());
        prop_assert_eq!(c.eval(&a), want);
    }

    #[test]
    fn minterms_iterator_is_exact(c in arb_cube()) {
        let mut listed: Vec<usize> = c
            .minterms()
            .map(|bits| (0..NVARS).fold(0usize, |acc, v| acc | (usize::from(bits.get(v)) << v)))
            .collect();
        listed.sort_unstable();
        prop_assert_eq!(listed, minterm_set(&c));
    }

    #[test]
    fn tautology_matches_truth_table(f in arb_cover()) {
        prop_assert_eq!(f.is_tautology(), cover_set(&f).len() == 1 << NVARS);
    }

    #[test]
    fn covers_cube_matches_semantics(f in arb_cover(), c in arb_cube()) {
        let fs = cover_set(&f);
        let want = minterm_set(&c).iter().all(|m| fs.contains(m));
        prop_assert_eq!(f.covers_cube(&c), want);
    }

    #[test]
    fn complement_matches_truth_table(f in arb_cover()) {
        let g = f.complement();
        let fs = cover_set(&f);
        for m in 0..(1usize << NVARS) {
            prop_assert_eq!(g.eval(&assignment(m)), !fs.contains(&m));
        }
    }

    #[test]
    fn irredundant_preserves_function(f in arb_cover()) {
        let g = f.irredundant();
        prop_assert!(g.equivalent(&f));
        // And it is actually irredundant: removing any cube changes f.
        for i in 0..g.len() {
            let rest = Cover::from_cubes(
                NVARS,
                g.cubes()
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, c)| c.clone())
                    .collect(),
            );
            prop_assert!(!rest.equivalent(&f));
        }
    }

    #[test]
    fn all_primes_are_prime_and_cover(f in arb_cover()) {
        let primes = f.all_primes();
        for p in &primes {
            prop_assert!(f.is_prime(p), "non-prime {:?}", p);
        }
        // Every cube of f is contained in some prime.
        for c in f.cubes() {
            prop_assert!(primes.iter().any(|p| p.contains(c)));
        }
        // The primes cover exactly f.
        let pc = Cover::from_cubes(NVARS, primes);
        prop_assert!(pc.equivalent(&f));
    }

    #[test]
    fn expand_to_prime_yields_prime(f in arb_cover(), idx in 0usize..8) {
        if !f.is_empty() {
            let c = &f.cubes()[idx % f.len()];
            let p = f.expand_to_prime(c);
            prop_assert!(f.is_prime(&p));
            prop_assert!(p.contains(c));
        }
    }

    #[test]
    fn without_contained_cubes_preserves_semantics_and_structure(f in arb_cover()) {
        let g = f.without_contained_cubes();
        prop_assert!(g.equivalent(&f));
        // No cube contains another.
        for (i, a) in g.cubes().iter().enumerate() {
            for (j, b) in g.cubes().iter().enumerate() {
                if i != j {
                    prop_assert!(!a.contains(b));
                }
            }
        }
    }

    #[test]
    fn and_or_match_semantics(f in arb_cover(), g in arb_cover()) {
        let fs = cover_set(&f);
        let gs = cover_set(&g);
        let fo = f.or(&g);
        let fa = f.and(&g);
        for m in 0..(1usize << NVARS) {
            prop_assert_eq!(fo.eval(&assignment(m)), fs.contains(&m) || gs.contains(&m));
            prop_assert_eq!(fa.eval(&assignment(m)), fs.contains(&m) && gs.contains(&m));
        }
    }

    #[test]
    fn truth_table_matches_eval(f in arb_cover()) {
        let tt = f.truth_table();
        for m in 0..(1usize << NVARS) {
            prop_assert_eq!(tt.get(m), f.eval(&assignment(m)));
        }
    }
}
