//! The hazard-aware technology mapper — the primary contribution of
//! *Siegel, De Micheli, Dill, "Automatic Technology Mapping for Generalized
//! Fundamental-Mode Asynchronous Designs"* (CSL-TR-93-580 / DAC'93).
//!
//! The mapper follows the classical three-phase CERES structure
//! (decompose → partition → match/cover) with the paper's asynchronous
//! modifications:
//!
//! * decomposition restricted to the associative and DeMorgan laws
//!   (`async_tech_decomp`, hazard-preserving);
//! * Boolean (structure-blind) matching augmented with the acceptance rule
//!   of Theorem 3.2 — a hazardous library element may cover a subnetwork
//!   only if `hazards(element) ⊆ hazards(subnetwork)`;
//! * minimum-area dynamic-programming covering per single-output cone.
//!
//! [`tmap`] is the synchronous baseline, [`async_tmap`] the asynchronous
//! mapper, and [`hand_map`] the greedy designer-style baseline used in the
//! paper's Table 3 comparison. Every [`MappedDesign`] can re-verify itself:
//! functional equivalence per cone (BDD) and hazard containment (waveform
//! sweep).
//!
//! # Examples
//!
//! ```
//! use asyncmap_core::{async_tmap, MapOptions};
//! use asyncmap_cube::{Cover, VarTable};
//! use asyncmap_library::builtin;
//! use asyncmap_network::EquationSet;
//!
//! // Figure 3's function, with the consensus cube keeping it hazard-free.
//! let vars = VarTable::from_names(["a", "b", "c"]);
//! let f = Cover::parse("ab + a'c + bc", &vars)?;
//! let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
//!
//! let mut lib = builtin::cmos3();
//! lib.annotate_hazards();
//! let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
//! assert!(design.verify_function(&lib));
//! assert!(design.verify_hazards(&lib));
//! # Ok::<(), asyncmap_cube::ParseSopError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod cover;
mod design;
mod eco;
mod export;
mod fxhash;
mod hcache;
mod hdc;
mod matcher;
pub mod profile;
mod report;
mod tmap;
pub mod truth;

#[doc(hidden)]
pub use cluster::enumerate_clusters_legacy;
pub use cluster::{enumerate_clusters, Cluster, ClusterLimits};
pub use cover::{cover_cone, cover_cone_with, hand_cover, ConeCover, CoverError, Instance};
pub use design::{
    assemble, bdd_of_expr, mapped_cone_expr, verify_cone_function, MapStats, MappedDesign,
};
pub use eco::{cone_cover_words, EcoOutcome, EcoSession, EcoStats};
pub use export::to_verilog;
pub use hcache::HazardCache;
pub use hdc::{cone_certified, hdc_tmap, Transition};
#[doc(hidden)]
pub use matcher::{
    depends_on, depends_on_words, input_signature, input_signature_words, truth_table_of_generic,
};
pub use matcher::{instantiate, truth_table_of, HazardPolicy, Match, Matcher, MatcherCounters};
pub use profile::{MapPhase, PhaseTimes};
pub use report::{cell_usage, render_report, CellUsage};
pub use tmap::{
    async_tmap, async_tmap_cached, hand_map, set_post_analyze_hook, set_post_map_hook,
    set_post_transform_hook, set_pre_map_hook, tmap, MapOptions, Objective, PostAnalyzeHook,
    PostMapHook, PostTransformHook, PreMapHook,
};
