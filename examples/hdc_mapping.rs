//! Hazard don't-care mapping (the paper's §6 future-work idea): in
//! generalized fundamental mode, only the *specified* input bursts can
//! ever occur, so hazards on unspecified transitions are don't-cares the
//! mapper may exploit.
//!
//! Run with `cargo run --release --example hdc_mapping [-- <benchmark>]`.

use asyncmap::mapper::hdc_tmap;
use asyncmap::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "dme".to_owned());
    let (eqs, transitions) = asyncmap::burst::benchmark_with_transitions(&name);
    println!(
        "benchmark {name}: {} equations, {} specified bursts",
        eqs.equations.len(),
        transitions.len()
    );

    let mut lib = builtin::actel();
    lib.annotate_hazards();
    let opts = MapOptions::default();

    // Blanket asynchronous mapping: every transition protected.
    let full = async_tmap(&eqs, &lib, &opts).expect("mappable");
    // Hazard don't-care mapping: only the specified bursts protected.
    let hdc = hdc_tmap(&eqs, &lib, &opts, &transitions).expect("mappable");
    // And the unconstrained baseline for reference.
    let sync = tmap(&eqs, &lib, &opts).expect("mappable");

    assert!(hdc.verify_function(&lib));
    assert!(hdc.verify_hazards_on(&lib, &transitions));

    println!("{:28} {:>8} {:>8}", "flow", "area", "delay");
    println!(
        "{:28} {:>8.0} {:>7.2}n",
        "sync (unsafe)", sync.area, sync.delay
    );
    println!(
        "{:28} {:>8.0} {:>7.2}n",
        "async (all transitions)", full.area, full.delay
    );
    println!(
        "{:28} {:>8.0} {:>7.2}n",
        "hdc (specified bursts only)", hdc.area, hdc.delay
    );
    println!(
        "hdc re-covered {} cone(s) strictly; certified {} burst projections",
        hdc.stats.hazard_rejects, hdc.stats.hazard_checks
    );
}
