//! Brute-force reference implementations used to validate the fast hazard
//! algorithms in tests and benchmarks. Everything here enumerates minterm
//! pairs and is exponential in the variable count — use only on small
//! spaces.

use crate::function::{disjoint, dynamic_function_hazard_free};
use asyncmap_cube::{Bits, Cover, Cube};

/// All static 1-hazardous transitions of a two-level cover: ordered pairs
/// `(α, β)` of distinct minterms with `f ≡ 1` on `T[α, β]` but no single
/// cube containing the span. Returned as `(α, β)` index pairs with `α < β`.
pub fn brute_static1_transitions(f: &Cover) -> Vec<(usize, usize)> {
    let n = f.nvars();
    assert!(n <= 12, "oracle limited to 12 variables");
    let size = 1usize << n;
    let mut out = Vec::new();
    for a in 0..size {
        let ba = index_bits(n, a);
        if !f.eval(&ba) {
            continue;
        }
        for b in (a + 1)..size {
            let bb = index_bits(n, b);
            if !f.eval(&bb) {
                continue;
            }
            let span = Cube::minterm(&ba).supercube(&Cube::minterm(&bb));
            if !f.covers_cube(&span) {
                continue; // function hazard, not a logic hazard
            }
            if !f.single_cube_contains(&span) {
                out.push((a, b));
            }
        }
    }
    out
}

/// All m.i.c. dynamic-hazardous transitions of a two-level cover per
/// Theorem 4.1: ordered pairs `(α, β)` with `f(α) = 0`, `f(β) = 1`, a
/// function-hazard-free transition space, and a cube intersecting the space
/// without containing `β`.
pub fn brute_mic_dynamic_transitions(f: &Cover) -> Vec<(usize, usize)> {
    let n = f.nvars();
    assert!(n <= 12, "oracle limited to 12 variables");
    let size = 1usize << n;
    let mut out = Vec::new();
    for a in 0..size {
        let ba = index_bits(n, a);
        if f.eval(&ba) {
            continue;
        }
        for b in 0..size {
            if a == b {
                continue;
            }
            let bb = index_bits(n, b);
            if !f.eval(&bb) {
                continue;
            }
            if !dynamic_function_hazard_free(f, &ba, &bb) {
                continue;
            }
            let space = Cube::minterm(&ba).supercube(&Cube::minterm(&bb));
            let beta_cube = Cube::minterm(&bb);
            let cond2 = f
                .cubes()
                .iter()
                .any(|c| c.intersect(&space).is_some() && !c.contains(&beta_cube));
            if cond2 {
                out.push((a, b));
            }
        }
    }
    out
}

/// `true` iff a minterm pair is a static-1-induced dynamic hazard: the
/// transition `(α, β)` (with `f(α)=0`, `f(β)=1`) passes next to an
/// uncovered 1-1 span, i.e. some 1-point of the space together with `β`
/// spans a statically hazardous region (Example 4.2.3).
pub fn is_static1_induced(f: &Cover, alpha: &Bits, beta: &Bits) -> bool {
    let space = Cube::minterm(alpha).supercube(&Cube::minterm(beta));
    for m in space.minterms() {
        if !f.eval(&m) {
            continue;
        }
        let span = Cube::minterm(&m).supercube(&Cube::minterm(beta));
        if f.covers_cube(&span) && !f.single_cube_contains(&span) {
            return true;
        }
    }
    false
}

/// `true` iff the cover is identically 0 on `cube` — re-exported for
/// oracle users.
pub fn cover_disjoint(f: &Cover, cube: &Cube) -> bool {
    disjoint(f, cube)
}

/// Builds the assignment whose bit `i` is bit `i` of `m`.
pub fn index_bits(nvars: usize, m: usize) -> Bits {
    let mut b = Bits::new(nvars);
    for v in 0..nvars {
        b.set(v, (m >> v) & 1 == 1);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    #[test]
    fn brute_static1_matches_consensus_example() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c", &vars).unwrap();
        let hz = brute_static1_transitions(&f);
        // Exactly the pair abc(0b111) / a'bc(0b110): span bc uncovered.
        assert_eq!(hz, vec![(0b110, 0b111)]);
        let fixed = Cover::parse("ab + a'c + bc", &vars).unwrap();
        assert!(brute_static1_transitions(&fixed).is_empty());
    }

    #[test]
    fn brute_mic_matches_figure10() {
        let vars = VarTable::from_names(["w", "x", "y", "z"]);
        let f = Cover::parse("w'xz + w'xy + xyz", &vars).unwrap();
        let hz = brute_mic_dynamic_transitions(&f);
        assert!(!hz.is_empty());
        // The transition w'x'yz → w'xy'z (α=0b1100, β=0b1010) is among
        // them: the intersection cube w'xyz construction of Example 4.2.4.
        assert!(hz.contains(&(0b1100, 0b1010)));
    }

    #[test]
    fn single_cube_cover_is_clean() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("abc", &vars).unwrap();
        assert!(brute_static1_transitions(&f).is_empty());
        assert!(brute_mic_dynamic_transitions(&f).is_empty());
    }
}
