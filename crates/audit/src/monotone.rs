//! The hazard-set monotonicity ladder: re-proving
//! `hazards(candidate) ⊆ hazards(reference)` for a certified rewrite step
//! with `asyncmap-hazard`'s entry points, at a depth that scales with the
//! step's support.
//!
//! * Support of at most [`ORACLE_VAR_LIMIT`] variables: the full
//!   [`reverify_containment`] ladder (exhaustive transition sweep, guided
//!   comparison, static-1 cube adjacency and the brute-force oracle), and
//!   the verdict counts only if the methods also agree with each other.
//! * Wider supports: a *partial* check — both sides are flattened (when
//!   the independent product-count estimate stays under
//!   [`FLATTEN_REPLAY_CAP`]) and compared by exact cube-list equality or,
//!   failing that, the static-1 adjacency subset test, which is a
//!   necessary condition for full containment.

use asyncmap_bff::{flatten, Expr};
use asyncmap_hazard::{reverify_containment, static1_subset, ORACLE_VAR_LIMIT};

use crate::equiv::{compact_onto, union_support};

/// Upper bound on the independently-estimated product count above which a
/// flatten replay (and the partial hazard check that rides on it) is
/// skipped rather than risk an exponential distribution.
pub const FLATTEN_REPLAY_CAP: u64 = 4096;

/// Outcome of one monotonicity re-check.
#[derive(Debug, Clone)]
pub struct MonotoneOutcome {
    /// `false` iff the check positively refuted containment.
    pub ok: bool,
    /// `true` when only the partial (wide-support) method ran.
    pub partial: bool,
    /// `true` when even the partial method was skipped (flatten too big).
    pub skipped: bool,
    /// Human-readable description of what ran.
    pub detail: &'static str,
}

/// Number of products that hazard-preserving distribution of `expr`
/// produces, computed by independent arithmetic over the expression shape
/// (Or under even negations sums, And multiplies; the dual under odd
/// negations), saturating at `u64::MAX`.
pub fn product_estimate(expr: &Expr) -> u64 {
    fn go(e: &Expr, neg: bool) -> u64 {
        match e {
            Expr::Const(b) => {
                if *b != neg {
                    1
                } else {
                    0
                }
            }
            Expr::Var(_) => 1,
            Expr::Not(inner) => go(inner, !neg),
            Expr::And(es) if !neg => es.iter().fold(1u64, |p, e| p.saturating_mul(go(e, neg))),
            Expr::Or(es) if neg => es.iter().fold(1u64, |p, e| p.saturating_mul(go(e, neg))),
            Expr::And(es) | Expr::Or(es) => {
                es.iter().fold(0u64, |s, e| s.saturating_add(go(e, neg)))
            }
        }
    }
    go(expr, false)
}

/// Re-proves `hazards(candidate) ⊆ hazards(reference)` as deeply as the
/// shared support allows. Both expressions must compute the same function
/// (checked separately by the equivalence obligation).
pub fn recheck_monotone(candidate: &Expr, reference: &Expr) -> MonotoneOutcome {
    let support = union_support(candidate, reference);
    let k = support.len().max(1);
    let cand = compact_onto(candidate, &support);
    let refr = compact_onto(reference, &support);
    if k <= ORACLE_VAR_LIMIT {
        let r = reverify_containment(&cand, &refr, k);
        return MonotoneOutcome {
            ok: r.accepted() && r.methods_agree(),
            partial: false,
            skipped: false,
            detail: "full reverification ladder",
        };
    }
    let est = product_estimate(&cand).saturating_add(product_estimate(&refr));
    if est > FLATTEN_REPLAY_CAP {
        return MonotoneOutcome {
            ok: true,
            partial: true,
            skipped: true,
            detail: "skipped: product estimate over the flatten replay cap",
        };
    }
    let cf = flatten(&cand, k);
    let rf = flatten(&refr, k);
    if cf.cover.cubes() == rf.cover.cubes() && cf.vacuous == rf.vacuous {
        return MonotoneOutcome {
            ok: true,
            partial: true,
            skipped: false,
            detail: "partial: flattened forms identical",
        };
    }
    MonotoneOutcome {
        ok: static1_subset(&cf.cover, &rf.cover),
        partial: true,
        skipped: false,
        detail: "partial: static-1 adjacency subset on flattened covers",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    #[test]
    fn product_estimate_matches_distribution() {
        let mut vars = VarTable::new();
        // (w + y')(x + y) distributes to 4 products (one vacuous).
        let e = Expr::parse("(w + y')*(x + y)", &mut vars).unwrap();
        assert_eq!(product_estimate(&e), 4);
        // (a*b + c)' → (a' + b')*c' → 2 products.
        let n = Expr::parse("(a*b + c)'", &mut vars).unwrap();
        assert_eq!(product_estimate(&n), 2);
    }

    #[test]
    fn regrouping_is_monotone() {
        let mut vars = VarTable::new();
        let before = Expr::parse("a*b + a'*c + b*c", &mut vars).unwrap();
        let after = match &before {
            Expr::Or(es) => Expr::Or(vec![
                Expr::Or(vec![es[0].clone(), es[1].clone()]),
                es[2].clone(),
            ]),
            _ => unreachable!(),
        };
        let out = recheck_monotone(&after, &before);
        assert!(out.ok && !out.partial);
    }

    #[test]
    fn cube_deletion_is_refuted() {
        // Dropping the redundant consensus cube bc introduces a static
        // 1-hazard (paper Figure 3): containment must be refuted.
        let mut vars = VarTable::new();
        let full = Expr::parse("a*b + a'*c + b*c", &mut vars).unwrap();
        let pruned = Expr::parse_in("a*b + a'*c", &vars).unwrap();
        let out = recheck_monotone(&pruned, &full);
        assert!(!out.ok);
    }

    #[test]
    fn wide_supports_take_the_partial_path() {
        let names: Vec<String> = (0..9).map(|i| format!("v{i}")).collect();
        let vars = VarTable::from_names(names.iter().map(String::as_str));
        let terms: Vec<Expr> = (0..9).map(|i| Expr::Var(asyncmap_cube::VarId(i))).collect();
        let flat_or = Expr::Or(terms.clone());
        let regrouped = Expr::Or(vec![
            Expr::Or(terms[..5].to_vec()),
            Expr::Or(terms[5..].to_vec()),
        ]);
        let _ = vars;
        let out = recheck_monotone(&regrouped, &flat_or);
        assert!(out.ok && out.partial && !out.skipped);
    }
}
