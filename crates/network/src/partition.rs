//! Partitioning the decomposed network into single-output cones of logic at
//! points of multiple fanout (paper §3.1.2). Given a hazard-free starting
//! network, cutting at fanout points does not alter hazard behavior; it
//! only bounds what the covering step may replace at once.

use crate::certificate::{CutCertificate, PartitionTrace};
use crate::{Network, NodeKind, SignalId};
use asyncmap_bff::Expr;
use asyncmap_cube::{VarId, VarTable};
use std::collections::{HashMap, HashSet};

/// A single-output cone of logic: the tree of gates feeding `root`, cut at
/// primary inputs and multi-fanout signals.
#[derive(Debug, Clone)]
pub struct Cone {
    /// The cone's output signal.
    pub root: SignalId,
    /// Leaf signals (primary inputs or other cones' roots), deduplicated
    /// in first-visit order.
    pub leaves: Vec<SignalId>,
    /// Gate signals inside the cone, in topological order.
    pub gates: Vec<SignalId>,
}

/// The canonical partition boundary of a network: the signals at which
/// [`partition`] cuts it into cones, in topological order. A gate is a
/// legal cone root iff it drives a primary output or has fanout ≥ 2 —
/// cutting anywhere else would split a single-fanout tree edge, which the
/// paper's §3.1.2 argument (cuts only at multi-fanout points preserve
/// hazard behavior) does not license.
///
/// Exposed so that independent checkers can re-derive the boundary from
/// the raw network and compare it against a mapped design's cone roots
/// without going through [`partition`] itself.
pub fn partition_roots(net: &Network) -> Vec<SignalId> {
    let fanout = net.fanout_counts();
    let mut output_signals: HashSet<SignalId> = HashSet::new();
    for (_, s) in net.outputs() {
        output_signals.insert(*s);
    }
    // Cone roots: every output signal, plus every gate feeding ≥2 gates,
    // plus every gate that both feeds a gate and is an output.
    let mut roots: Vec<SignalId> = Vec::new();
    for s in net.signals() {
        if matches!(net.node(s), NodeKind::Input) {
            continue;
        }
        let is_output = output_signals.contains(&s);
        if is_output || fanout[s.index()] >= 2 {
            roots.push(s);
        }
    }
    roots
}

/// `true` iff `signal` is a legal partition boundary point of `net`: a
/// gate that drives a primary output or fans out to at least two gates.
/// Primary inputs are implicit cone leaves, never roots.
pub fn is_partition_boundary(net: &Network, signal: SignalId) -> bool {
    if matches!(net.node(signal), NodeKind::Input) {
        return false;
    }
    net.outputs().iter().any(|(_, s)| *s == signal) || net.fanout_counts()[signal.index()] >= 2
}

/// Splits the network into cones rooted at primary outputs and at internal
/// multi-fanout gates. Every gate belongs to exactly one cone.
pub fn partition(net: &Network) -> Vec<Cone> {
    let roots = partition_roots(net);
    let root_set: HashSet<SignalId> = roots.iter().copied().collect();
    roots
        .iter()
        .map(|&root| build_cone(net, root, &root_set))
        .collect()
}

/// [`partition`], additionally emitting one [`CutCertificate`] per cone
/// root recording the evidence that licenses the cut: the consuming gates
/// (fanout) and/or the primary outputs the signal drives. The cones are
/// identical to the untraced entry point's; `cuts[i]` certifies
/// `cones[i].root`.
pub fn partition_traced(net: &Network) -> (Vec<Cone>, PartitionTrace) {
    let mut consumers: Vec<Vec<SignalId>> = vec![Vec::new(); net.len()];
    for s in net.signals() {
        if let NodeKind::Gate { fanin, .. } = net.node(s) {
            for f in fanin {
                consumers[f.index()].push(s);
            }
        }
    }
    let roots = partition_roots(net);
    let cuts = roots
        .iter()
        .map(|&r| CutCertificate {
            signal: r,
            fanout: consumers[r.index()].len(),
            consumers: consumers[r.index()].clone(),
            outputs: net
                .outputs()
                .iter()
                .filter(|(_, s)| *s == r)
                .map(|(n, _)| n.clone())
                .collect(),
        })
        .collect();
    let root_set: HashSet<SignalId> = roots.iter().copied().collect();
    let cones = roots
        .iter()
        .map(|&root| build_cone(net, root, &root_set))
        .collect();
    (cones, PartitionTrace { cuts })
}

fn build_cone(net: &Network, root: SignalId, root_set: &HashSet<SignalId>) -> Cone {
    let mut leaves = Vec::new();
    let mut seen_leaves = HashSet::new();
    let mut gates = Vec::new();
    collect(
        net,
        root,
        root,
        root_set,
        &mut leaves,
        &mut seen_leaves,
        &mut gates,
    );
    gates.sort();
    Cone {
        root,
        leaves,
        gates,
    }
}

fn collect(
    net: &Network,
    signal: SignalId,
    root: SignalId,
    root_set: &HashSet<SignalId>,
    leaves: &mut Vec<SignalId>,
    seen_leaves: &mut HashSet<SignalId>,
    gates: &mut Vec<SignalId>,
) {
    let is_leaf = matches!(net.node(signal), NodeKind::Input)
        || (signal != root && root_set.contains(&signal));
    if is_leaf {
        if seen_leaves.insert(signal) {
            leaves.push(signal);
        }
        return;
    }
    gates.push(signal);
    if let NodeKind::Gate { fanin, .. } = net.node(signal) {
        for &f in fanin {
            collect(net, f, root, root_set, leaves, seen_leaves, gates);
        }
    }
}

impl Cone {
    /// Number of gates in the cone.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Builds the cone's logic as a BFF expression over a fresh variable
    /// space in which variable `i` is `leaves[i]`, together with that
    /// variable table (named after the underlying signals).
    pub fn to_expr(&self, net: &Network) -> (Expr, VarTable) {
        let mut vars = VarTable::new();
        let position: HashMap<SignalId, VarId> = self
            .leaves
            .iter()
            .map(|&s| (s, vars.intern(net.name(s))))
            .collect();
        let expr = expr_of(net, self.root, &position);
        (expr, vars)
    }
}

fn expr_of(net: &Network, signal: SignalId, leaves: &HashMap<SignalId, VarId>) -> Expr {
    if let Some(&v) = leaves.get(&signal) {
        return Expr::Var(v);
    }
    match net.node(signal) {
        NodeKind::Input => unreachable!("input signal must be a cone leaf"),
        NodeKind::Gate { op, fanin } => {
            let args: Vec<Expr> = fanin.iter().map(|&f| expr_of(net, f, leaves)).collect();
            match op {
                crate::GateOp::And => Expr::and(args),
                crate::GateOp::Or => Expr::or(args),
                crate::GateOp::Inv => args.into_iter().next().expect("inverter fanin").not(),
                crate::GateOp::Buf => args.into_iter().next().expect("buffer fanin"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{async_tech_decomp, EquationSet, GateOp};
    use asyncmap_cube::{Bits, Cover};

    #[test]
    fn single_equation_single_cone() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        assert_eq!(cones.len(), 1);
        let cone = &cones[0];
        assert_eq!(cone.num_gates(), net.num_gates());
        assert_eq!(cone.leaves.len(), 3);
    }

    #[test]
    fn shared_inverter_splits_cones() {
        // Two outputs sharing the inverter of a: the inverter feeds two
        // gates, so it becomes its own cone... only if it is a gate with
        // fanout ≥ 2.
        let vars = VarTable::from_names(["a", "b"]);
        let f = Cover::parse("a'b", &vars).unwrap();
        let g = Cover::parse("a'b'", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f), ("g".to_owned(), g)]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        // Cones: INV(a) (fanout 2), f's AND, g's AND... plus INV(b) has
        // fanout 1 and stays inside g's cone.
        assert_eq!(cones.len(), 3);
        // Every gate appears in exactly one cone.
        let mut all_gates: Vec<_> = cones.iter().flat_map(|c| c.gates.clone()).collect();
        all_gates.sort();
        all_gates.dedup();
        assert_eq!(all_gates.len(), net.num_gates());
    }

    #[test]
    fn cone_expr_matches_network() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        let eqs = EquationSet::new(vars.clone(), vec![("f".to_owned(), f.clone())]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        let (expr, local_vars) = cones[0].to_expr(&net);
        assert_eq!(local_vars.len(), 3);
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            // Local leaf order happens to match input order here (a,b,c
            // are all direct leaves); map values through names to be safe.
            let mut local = Bits::new(3);
            for (lv, name) in local_vars.iter() {
                let global = vars.lookup(name).unwrap();
                local.set(lv.index(), bits.get(global.index()));
            }
            assert_eq!(expr.eval(&local), f.eval(&bits), "mismatch at {m}");
        }
    }

    #[test]
    fn traced_partition_certifies_every_cut() {
        let vars = VarTable::from_names(["a", "b"]);
        let f = Cover::parse("a'b", &vars).unwrap();
        let g = Cover::parse("a'b'", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f), ("g".to_owned(), g)]);
        let net = async_tech_decomp(&eqs);
        let (cones, trace) = partition_traced(&net);
        assert_eq!(cones.len(), trace.cuts.len());
        let untraced = partition(&net);
        for (a, b) in cones.iter().zip(&untraced) {
            assert_eq!(a.root, b.root);
            assert_eq!(a.gates, b.gates);
            assert_eq!(a.leaves, b.leaves);
        }
        let fanout = net.fanout_counts();
        for (cone, cut) in cones.iter().zip(&trace.cuts) {
            assert_eq!(cut.signal, cone.root);
            assert_eq!(cut.fanout, fanout[cut.signal.index()]);
            assert_eq!(cut.consumers.len(), cut.fanout);
            // Every cut is licensed: drives an output or fans out ≥ 2.
            assert!(!cut.outputs.is_empty() || cut.fanout >= 2);
        }
        // The shared inverter of `a` is cut on fanout evidence alone.
        let inv_cut = trace
            .cuts
            .iter()
            .find(|c| c.outputs.is_empty())
            .expect("internal multi-fanout cut");
        assert_eq!(inv_cut.fanout, 2);
    }

    #[test]
    fn output_feeding_gates_becomes_root() {
        // An output that also feeds another output's logic must be a cone
        // root (cut point), not duplicated into the consumer cone.
        let mut net = crate::Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let and1 = net.add_gate(GateOp::And, vec![a, b]);
        let inv = net.add_gate(GateOp::Inv, vec![and1]);
        net.mark_output("x", and1);
        net.mark_output("y", inv);
        let cones = partition(&net);
        assert_eq!(cones.len(), 2);
        let y_cone = cones.iter().find(|c| c.root == inv).unwrap();
        assert_eq!(y_cone.leaves, vec![and1]);
        assert_eq!(y_cone.num_gates(), 1);
    }
}
