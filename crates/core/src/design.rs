//! Mapped designs: cover assembly, area/delay reporting and verification.

use crate::cover::{ConeCover, Instance};
use asyncmap_bdd::{Manager, Ref};
use asyncmap_bff::Expr;
use asyncmap_cube::VarId;
use asyncmap_library::Library;
use asyncmap_network::{Cone, Network, SignalId};
use std::collections::HashMap;

/// Counters describing one mapping run (the overhead decomposition behind
/// Tables 2 and 4).
///
/// Every field is **per-run**: repeated `map` calls — including repeated
/// [`crate::async_tmap_cached`] calls sharing one verdict cache — each
/// report only their own run's checks, memo traffic and phase times, never
/// an accumulation over earlier runs. (A [`crate::Matcher`] held directly
/// by the caller *does* accumulate; see [`crate::Matcher::counters`] /
/// [`crate::Matcher::reset_counters`] for per-run accounting there.)
#[derive(Debug, Clone, Copy, Default)]
pub struct MapStats {
    /// Hazard-containment checks performed during matching.
    pub hazard_checks: usize,
    /// Matches rejected by the hazard filter.
    pub hazard_rejects: usize,
    /// Hazard checks answered by the shared verdict cache during this run.
    /// With a pre-warmed cache (`async_tmap_cached`) this can exceed the
    /// number of distinct verdicts computed this run.
    pub cache_hits: usize,
    /// Hazard checks that actually evaluated `hazards_subset` during this
    /// run (cache misses).
    pub cache_misses: usize,
    /// Match-memo lookups served from the memo (raw-truth or
    /// canonical-class level). Zero when `ASYNCMAP_NPN_MEMO=0`.
    pub npn_hits: usize,
    /// Match-memo lookups that fell through to the full permutation
    /// search. Zero when `ASYNCMAP_NPN_MEMO=0`.
    pub npn_misses: usize,
    /// Gates whose cut list was truncated at
    /// [`crate::ClusterLimits::max_cuts_per_gate`].
    pub cut_truncations: usize,
    /// Cones whose cut enumeration ran entirely out of the pre-sized
    /// thread-local scratch — zero heap allocations beyond the returned
    /// cut lists. In steady state this tracks [`MapStats::cones`]. Zero
    /// when the `profile` feature is disabled.
    pub enum_warm_cones: usize,
    /// Scratch-buffer capacity-growth events during cut enumeration (each
    /// at least one heap allocation; cold-start sizing plus any later
    /// regrowth). Zero when the `profile` feature is disabled.
    pub enum_alloc_events: usize,
    /// Cones mapped.
    pub cones: usize,
    /// Cones whose cover was reused from an [`crate::EcoSession`] store
    /// instead of being re-covered. Zero outside ECO remaps.
    pub cones_reused: usize,
    /// Cones actually re-covered during an ECO remap (every cone, on the
    /// session's first map). Zero outside ECO remaps.
    pub cones_remapped: usize,
    /// Base gates in the subject network.
    pub subject_gates: usize,
    /// Fanout buffers added.
    pub buffers: usize,
    /// Translation-validation certificates replayed by the post-transform
    /// audit hook (`ASYNCMAP_AUDIT=1`); zero when the audit did not run.
    pub audit_certificates: usize,
    /// Cones analyzed clean by the post-map fundamental-mode analysis
    /// hook (`ASYNCMAP_FMA=1`); zero when the analyzer did not run.
    pub fma_cones: usize,
    /// Per-phase wall-clock breakdown of the run (all zero when the
    /// `profile` feature is disabled).
    pub phases: crate::profile::PhaseTimes,
}

/// The result of technology mapping one design against one library.
#[derive(Debug)]
pub struct MappedDesign {
    /// Library name the design was mapped to.
    pub library_name: String,
    /// The subject (decomposed) network.
    pub subject: Network,
    /// The cones of the subject network, aligned with `covers`.
    pub cones: Vec<Cone>,
    /// One cover per cone.
    pub covers: Vec<ConeCover>,
    /// Total cell area, including fanout buffers.
    pub area: f64,
    /// Critical-path delay through the chosen cells.
    pub delay: f64,
    /// Run counters.
    pub stats: MapStats,
}

impl MappedDesign {
    /// Total number of cell instances (excluding buffers).
    pub fn num_instances(&self) -> usize {
        self.covers.iter().map(|c| c.instances.len()).sum()
    }

    /// Evaluates the mapped netlist (through the chosen cells' functions,
    /// not the subject gates) at a primary-input assignment, returning the
    /// value of every primary output in declaration order.
    pub fn eval_mapped(&self, library: &Library, inputs: &asyncmap_cube::Bits) -> Vec<bool> {
        let net = &self.subject;
        debug_assert_eq!(inputs.len(), net.inputs().len());
        let mut values: HashMap<SignalId, bool> = HashMap::new();
        for (i, &s) in net.inputs().iter().enumerate() {
            values.insert(s, inputs.get(i));
        }
        // Covers in topological order of their roots; instances are
        // leaves-to-root within each cover.
        let mut order: Vec<usize> = (0..self.covers.len()).collect();
        order.sort_by_key(|&i| self.covers[i].root);
        for i in order {
            for inst in &self.covers[i].instances {
                let cell = &library.cells()[inst.cell_index];
                let mut pins = asyncmap_cube::Bits::new(cell.num_inputs());
                for (p, sig) in inst.inputs.iter().enumerate() {
                    let v = *values
                        .get(sig)
                        .unwrap_or_else(|| panic!("undriven signal {sig} in mapped netlist"));
                    pins.set(p, v);
                }
                values.insert(inst.output, cell.bff().eval(&pins));
            }
        }
        net.outputs()
            .iter()
            .map(|(_, s)| values.get(s).copied().unwrap_or(false))
            .collect()
    }

    /// Checks that every cone's cover computes exactly the cone's function
    /// (BDD equivalence over the cone leaves).
    pub fn verify_function(&self, library: &Library) -> bool {
        self.cones
            .iter()
            .zip(&self.covers)
            .all(|(cone, cover)| verify_cone_function(&self.subject, cone, cover, library))
    }

    /// Checks hazard containment cone by cone:
    /// `hazards(mapped cone) ⊆ hazards(subject cone)`, via the exhaustive
    /// waveform sweep. Cones wider than the sweep limit are skipped
    /// (their safety follows from the per-match checks and the composition
    /// theorem, paper Theorem 3.2/Lemma 4.5).
    pub fn verify_hazards(&self, library: &Library) -> bool {
        self.cones.iter().zip(&self.covers).all(|(cone, cover)| {
            if cone.leaves.len() > asyncmap_hazard::EXHAUSTIVE_VAR_LIMIT {
                return true;
            }
            let (orig, _) = cone.to_expr(&self.subject);
            let mapped = mapped_cone_expr(&self.subject, cone, cover, library);
            asyncmap_hazard::hazards_subset(&mapped, &orig, cone.leaves.len())
        })
    }
}

/// Builds the mapped cone's logic as an expression over the cone's local
/// leaf variables (`cone.leaves[i]` = variable `i`), by composing the
/// chosen cells' BFFs. This is the *structure* of the mapped cone, suitable
/// for hazard analysis.
pub fn mapped_cone_expr(net: &Network, cone: &Cone, cover: &ConeCover, library: &Library) -> Expr {
    let leaf_var: HashMap<SignalId, VarId> = cone
        .leaves
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, VarId(i)))
        .collect();
    let by_output: HashMap<SignalId, &Instance> =
        cover.instances.iter().map(|i| (i.output, i)).collect();
    let _ = net;
    build_expr(cover.root, &leaf_var, &by_output, library)
}

fn build_expr(
    signal: SignalId,
    leaf_var: &HashMap<SignalId, VarId>,
    by_output: &HashMap<SignalId, &Instance>,
    library: &Library,
) -> Expr {
    if let Some(&v) = leaf_var.get(&signal) {
        return Expr::Var(v);
    }
    let inst = by_output
        .get(&signal)
        .unwrap_or_else(|| panic!("signal {signal} neither leaf nor instance output"));
    let cell = &library.cells()[inst.cell_index];
    let args: Vec<Expr> = inst
        .inputs
        .iter()
        .map(|&s| build_expr(s, leaf_var, by_output, library))
        .collect();
    substitute_exprs(cell.bff(), &args)
}

/// Replaces variable `i` of `bff` with `args[i]`.
fn substitute_exprs(bff: &Expr, args: &[Expr]) -> Expr {
    match bff {
        Expr::Const(b) => Expr::Const(*b),
        Expr::Var(v) => args[v.index()].clone(),
        Expr::Not(e) => substitute_exprs(e, args).not(),
        Expr::And(es) => Expr::and(es.iter().map(|e| substitute_exprs(e, args)).collect()),
        Expr::Or(es) => Expr::or(es.iter().map(|e| substitute_exprs(e, args)).collect()),
    }
}

/// BDD of an expression over `mgr`'s variable space.
pub fn bdd_of_expr(mgr: &mut Manager, expr: &Expr) -> Ref {
    match expr {
        Expr::Const(true) => Ref::ONE,
        Expr::Const(false) => Ref::ZERO,
        Expr::Var(v) => mgr.var(*v),
        Expr::Not(e) => {
            let inner = bdd_of_expr(mgr, e);
            mgr.not(inner)
        }
        Expr::And(es) => {
            let mut acc = Ref::ONE;
            for e in es {
                let r = bdd_of_expr(mgr, e);
                acc = mgr.and(acc, r);
            }
            acc
        }
        Expr::Or(es) => {
            let mut acc = Ref::ZERO;
            for e in es {
                let r = bdd_of_expr(mgr, e);
                acc = mgr.or(acc, r);
            }
            acc
        }
    }
}

/// `true` iff the cover computes exactly the cone's function.
pub fn verify_cone_function(
    net: &Network,
    cone: &Cone,
    cover: &ConeCover,
    library: &Library,
) -> bool {
    let (orig, _) = cone.to_expr(net);
    let mapped = mapped_cone_expr(net, cone, cover, library);
    let mut mgr = Manager::new(cone.leaves.len());
    bdd_of_expr(&mut mgr, &orig) == bdd_of_expr(&mut mgr, &mapped)
}

/// Assembles covers into a [`MappedDesign`]: totals area (adding a fanout
/// buffer at every multi-fanout cone root when the library provides one)
/// and computes the critical-path delay through the chosen cells.
pub fn assemble(
    library: &Library,
    subject: Network,
    cones: Vec<Cone>,
    covers: Vec<ConeCover>,
    mut stats: MapStats,
    add_buffers: bool,
) -> MappedDesign {
    assert_eq!(cones.len(), covers.len());
    stats.cones = cones.len();
    stats.subject_gates = subject.num_gates();
    let mut area: f64 = covers.iter().map(|c| c.area).sum();
    // Fanout buffers (included in automatic mapping per Table 3's note).
    let buffer_cell = library
        .cells()
        .iter()
        .filter(|c| c.name().starts_with("BUF"))
        .min_by(|a, b| a.area().total_cmp(&b.area()));
    let fanout = subject.fanout_counts();
    let mut buffer_delay_by_root: Vec<f64> = vec![0.0; subject.len()];
    if add_buffers {
        if let Some(buf) = buffer_cell {
            for cover in &covers {
                if fanout[cover.root.index()] >= 2 {
                    area += buf.area();
                    stats.buffers += 1;
                    buffer_delay_by_root[cover.root.index()] = buf.delay();
                }
            }
        }
    }
    // Arrival-time propagation, signal-indexed (a per-signal HashMap put
    // assemble on the ECO critical path; a flat Vec is branch-free here).
    // Signals never written (inputs, uncovered gates) read as arrival 0.
    let mut arrival: Vec<f64> = vec![0.0; subject.len()];
    let mut order: Vec<usize> = (0..covers.len()).collect();
    order.sort_by_key(|&i| covers[i].root);
    for i in order {
        let cover = &covers[i];
        for inst in &cover.instances {
            let cell = &library.cells()[inst.cell_index];
            let worst = inst
                .inputs
                .iter()
                .map(|s| arrival[s.index()])
                .fold(0.0f64, f64::max);
            arrival[inst.output.index()] = worst + cell.delay();
        }
        arrival[cover.root.index()] += buffer_delay_by_root[cover.root.index()];
    }
    let delay = subject
        .outputs()
        .iter()
        .map(|(_, s)| arrival[s.index()])
        .fold(0.0f64, f64::max);
    MappedDesign {
        library_name: library.name().to_owned(),
        subject,
        cones,
        covers,
        area,
        delay,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterLimits;
    use crate::cover::cover_cone;
    use crate::matcher::{HazardPolicy, Matcher};
    use asyncmap_cube::{Cover, VarTable};
    use asyncmap_library::builtin;
    use asyncmap_network::{async_tech_decomp, partition, EquationSet};

    fn mapped(text: &str, names: &[&str]) -> (MappedDesign, Library) {
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let vars = VarTable::from_names(names.iter().copied());
        let f = Cover::parse(text, &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        let covers: Vec<ConeCover> = cones
            .iter()
            .map(|c| cover_cone(&net, c, &matcher, &ClusterLimits::default()).unwrap())
            .collect();
        let design = assemble(&lib, net, cones, covers, MapStats::default(), true);
        (design, lib)
    }

    #[test]
    fn mapped_design_verifies_function_and_hazards() {
        let (design, lib) = mapped("ab + a'c + bc", &["a", "b", "c"]);
        assert!(design.verify_function(&lib));
        assert!(design.verify_hazards(&lib));
        assert!(design.area > 0.0);
        assert!(design.delay > 0.0);
        assert!(design.num_instances() > 0);
    }

    #[test]
    fn mapped_cone_expr_composes_cells() {
        let (design, lib) = mapped("a' + b'", &["a", "b"]);
        let cone = &design.cones[0];
        let cover = &design.covers[0];
        let expr = mapped_cone_expr(&design.subject, cone, cover, &lib);
        // NAND2 = (a*b)'.
        let n = cone.leaves.len();
        let tt = crate::matcher::truth_table_of(&expr, n);
        assert!(tt.get(0) && !tt.get(3));
    }

    #[test]
    fn delay_is_positive_and_additive() {
        let (d1, _) = mapped("ab", &["a", "b"]);
        let (d2, _) = mapped("abcd + a'b'c'd'", &["a", "b", "c", "d"]);
        assert!(d2.delay >= d1.delay);
    }
}
