//! Writes the four built-in technology libraries to `libraries/*.lib` in
//! the text format, so they can be inspected, edited and re-loaded with
//! `Library::parse` (see `examples/library_audit.rs -- libraries/gdt.lib`).
//!
//! Run with `cargo run --example export_libraries`.

use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let dir = Path::new("libraries");
    fs::create_dir_all(dir)?;
    for lib in asyncmap::library::builtin::all_libraries() {
        let path = dir.join(format!("{}.lib", lib.name().to_lowercase()));
        fs::write(&path, lib.to_text())?;
        println!("wrote {} ({} cells)", path.display(), lib.len());
    }
    Ok(())
}
