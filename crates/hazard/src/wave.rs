//! Eight-valued waveform algebra: an exact per-transition hazard oracle for
//! tree-structured expressions under the arbitrary pure-delay model.
//!
//! For a single input burst `α → β`, every signal in a *tree* circuit
//! (every leaf occurrence is a distinct wire, so all delays are
//! independent — exactly the BFF situation) behaves as one of eight
//! waveform classes: constant 0/1, clean rise/fall, rise/fall with possible
//! extra transitions (a **dynamic hazard**), or constant-valued with a
//! possible pulse/dip (a **static hazard**). AND/OR/NOT act on these
//! classes exactly:
//!
//! * a constant 0 (1) input masks everything at an AND (OR);
//! * an input hazard propagates through any non-masking gate;
//! * two clean opposite transitions meeting at an AND (OR) create a
//!   possible pulse (dip).
//!
//! This is the classical eight-valued extension of Eichelberger's ternary
//! algebra (cf. Brzozowski & Seger; Beister's unified treatment, the
//! paper's ref. [16]); the paper's `findMicDynHazMultiLevel` step 3 uses it
//! to discard false hazards reported by the flattened two-level filter.

use asyncmap_bff::Expr;
use asyncmap_cube::Bits;
use std::fmt;

/// A waveform class for one signal during one input burst.
///
/// `start`/`end` are the settled values before and after the burst;
/// `hazard` records whether some delay assignment produces more than the
/// minimal number of output transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wave {
    /// Settled value before the burst.
    pub start: bool,
    /// Settled value after the burst.
    pub end: bool,
    /// `true` if extra transitions are possible (a hazard).
    pub hazard: bool,
}

impl Wave {
    /// Constant 0.
    pub const C0: Wave = Wave::new(false, false, false);
    /// Constant 1.
    pub const C1: Wave = Wave::new(true, true, false);
    /// Clean monotone rise.
    pub const RISE: Wave = Wave::new(false, true, false);
    /// Clean monotone fall.
    pub const FALL: Wave = Wave::new(true, false, false);

    const fn new(start: bool, end: bool, hazard: bool) -> Wave {
        Wave { start, end, hazard }
    }

    /// `true` when the signal is steady (equal endpoints).
    pub fn is_static(self) -> bool {
        self.start == self.end
    }

    /// `true` for a static hazard (steady value with a possible glitch).
    pub fn is_static_hazard(self) -> bool {
        self.is_static() && self.hazard
    }

    /// `true` for a dynamic hazard (changing value with possible extra
    /// transitions).
    pub fn is_dynamic_hazard(self) -> bool {
        !self.is_static() && self.hazard
    }

    /// Waveform AND. A constant-0 operand masks the other completely.
    pub fn and(self, other: Wave) -> Wave {
        if self == Wave::C0 || other == Wave::C0 {
            return Wave::C0;
        }
        let start = self.start && other.start;
        let end = self.end && other.end;
        // Opposite clean transitions can overlap high: a created pulse.
        let created =
            self.start != self.end && other.start != other.end && self.start != other.start;
        Wave::new(start, end, self.hazard || other.hazard || created)
    }

    /// Waveform OR. A constant-1 operand masks the other completely.
    pub fn or(self, other: Wave) -> Wave {
        if self == Wave::C1 || other == Wave::C1 {
            return Wave::C1;
        }
        let start = self.start || other.start;
        let end = self.end || other.end;
        // Opposite clean transitions can both be low momentarily: a dip.
        let created =
            self.start != self.end && other.start != other.end && self.start != other.start;
        Wave::new(start, end, self.hazard || other.hazard || created)
    }

    /// Waveform NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Wave {
        Wave::new(!self.start, !self.end, self.hazard)
    }
}

impl fmt::Display for Wave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match (self.start, self.end) {
            (false, false) => "0",
            (true, true) => "1",
            (false, true) => "R",
            (true, false) => "F",
        };
        write!(f, "{base}{}", if self.hazard { "*" } else { "" })
    }
}

/// Evaluates the waveform class of `expr` for the burst from assignment
/// `from` to assignment `to`.
/// # Examples
///
/// ```
/// use asyncmap_bff::Expr;
/// use asyncmap_cube::{Bits, VarTable};
/// use asyncmap_hazard::wave_eval;
///
/// // Figure 4a's burst w↓ x↑ with y = 1 glitches the two-level mux.
/// let mut vars = VarTable::new();
/// let e = Expr::parse("w*x + x'*y", &mut vars)?;
/// let mut from = Bits::new(3);
/// from.set(0, true); // w
/// from.set(2, true); // y
/// let mut to = Bits::new(3);
/// to.set(1, true); // x
/// to.set(2, true); // y
/// assert!(wave_eval(&e, &from, &to).is_dynamic_hazard());
/// # Ok::<(), asyncmap_bff::ParseBffError>(())
/// ```
pub fn wave_eval(expr: &Expr, from: &Bits, to: &Bits) -> Wave {
    match expr {
        Expr::Const(b) => {
            if *b {
                Wave::C1
            } else {
                Wave::C0
            }
        }
        Expr::Var(v) => match (from.get(v.index()), to.get(v.index())) {
            (false, false) => Wave::C0,
            (true, true) => Wave::C1,
            (false, true) => Wave::RISE,
            (true, false) => Wave::FALL,
        },
        Expr::Not(e) => wave_eval(e, from, to).not(),
        Expr::And(es) => es
            .iter()
            .map(|e| wave_eval(e, from, to))
            .fold(Wave::C1, Wave::and),
        Expr::Or(es) => es
            .iter()
            .map(|e| wave_eval(e, from, to))
            .fold(Wave::C0, Wave::or),
    }
}

/// `true` if the transition `from → to` can glitch in the structure of
/// `expr` (static or dynamic hazard).
pub fn transition_has_hazard(expr: &Expr, from: &Bits, to: &Bits) -> bool {
    wave_eval(expr, from, to).hazard
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    fn bits(n: usize, m: usize) -> Bits {
        let mut b = Bits::new(n);
        for v in 0..n {
            b.set(v, (m >> v) & 1 == 1);
        }
        b
    }

    #[test]
    fn algebra_basic_masking() {
        assert_eq!(Wave::C0.and(Wave::RISE), Wave::C0);
        assert_eq!(Wave::C1.or(Wave::FALL), Wave::C1);
        assert_eq!(Wave::C1.and(Wave::RISE), Wave::RISE);
        assert_eq!(Wave::C0.or(Wave::FALL), Wave::FALL);
    }

    #[test]
    fn opposite_transitions_create_hazards() {
        let p = Wave::RISE.and(Wave::FALL);
        assert!(p.is_static_hazard());
        assert_eq!(p.to_string(), "0*");
        let d = Wave::RISE.or(Wave::FALL);
        assert!(d.is_static_hazard());
        assert_eq!(d.to_string(), "1*");
        // Same-direction transitions are clean.
        assert_eq!(Wave::RISE.and(Wave::RISE), Wave::RISE);
        assert_eq!(Wave::FALL.or(Wave::FALL), Wave::FALL);
    }

    #[test]
    fn hazards_propagate() {
        let pulse = Wave::RISE.and(Wave::FALL); // 0*
        let out = pulse.or(Wave::RISE);
        assert!(out.is_dynamic_hazard());
        assert_eq!(out.to_string(), "R*");
        // But a constant-1 masks it at an OR.
        assert_eq!(pulse.or(Wave::C1), Wave::C1);
    }

    #[test]
    fn not_flips_endpoints_keeps_hazard() {
        let d = Wave::new(false, true, true);
        let n = d.not();
        assert_eq!(n, Wave::new(true, false, true));
        assert_eq!(Wave::RISE.not(), Wave::FALL);
    }

    #[test]
    fn figure4a_two_level_mux_glitches() {
        // Figure 4a two-cube structure: f = wx + x'y. Burst w↓ x↑ with
        // y = 1: the wx gate can pulse after x'y has fallen → dynamic
        // hazard on the falling output.
        let mut vars = VarTable::new();
        let e = Expr::parse("w*x + x'*y", &mut vars).unwrap();
        // vars: w=0, x=1, y=2. α = (w=1, x=0, y=1), β = (w=0, x=1, y=1).
        let alpha = bits(3, 0b101);
        let beta = bits(3, 0b110);
        let w = wave_eval(&e, &alpha, &beta);
        assert!(w.is_dynamic_hazard());
        assert_eq!(w.to_string(), "F*");
    }

    #[test]
    fn figure4b_factored_mux_is_clean_for_that_burst() {
        // Figure 4b structure for the same function: (w + x')(x + y).
        // For the same burst the first OR falls cleanly and the second OR
        // is held at 1 by y: no hazard.
        let mut vars = VarTable::new();
        let e = Expr::parse("(w + x')*(x + y)", &mut vars).unwrap();
        let alpha = bits(3, 0b101);
        let beta = bits(3, 0b110);
        let w = wave_eval(&e, &alpha, &beta);
        assert_eq!(w, Wave::FALL);
        assert!(!w.hazard);
    }

    #[test]
    fn static1_hazard_seen_by_waves() {
        // ab + a'b with b=1 and a changing: classic static-1 hazard.
        let mut vars = VarTable::new();
        let e = Expr::parse("a*b + a'*b", &mut vars).unwrap();
        let alpha = bits(2, 0b10); // a=0 b=1
        let beta = bits(2, 0b11);
        let w = wave_eval(&e, &alpha, &beta);
        assert!(w.is_static_hazard());
        // The consensus gate removes it.
        let fixed = Expr::parse("a*b + a'*b + b", &mut vars).unwrap();
        assert_eq!(wave_eval(&fixed, &alpha, &beta), Wave::C1);
    }

    #[test]
    fn vacuous_pulse_seen_by_waves() {
        // (w + x)(x' + z) at w=0, z=0: x·x' pulse on a 0 output.
        let mut vars = VarTable::new();
        let e = Expr::parse("(w + x)*(x' + z)", &mut vars).unwrap();
        // vars w=0,x=1,x... z=2? Parse order: w, x, z.
        let alpha = bits(3, 0b000);
        let beta = bits(3, 0b010); // x rises
        let w = wave_eval(&e, &alpha, &beta);
        assert!(w.is_static_hazard());
        assert!(!w.start && !w.end);
    }

    #[test]
    fn clean_single_gate_transition() {
        let mut vars = VarTable::new();
        let e = Expr::parse("a*b*c", &mut vars).unwrap();
        let alpha = bits(3, 0b011);
        let beta = bits(3, 0b111);
        assert_eq!(wave_eval(&e, &alpha, &beta), Wave::RISE);
    }
}
