//! Boolean factored form (BFF): the structural representation of logic used
//! by the hazard-aware technology mapper.
//!
//! The paper (§3.2.1) represents each library element's *structure* — not
//! just its function — as a Boolean factored form, because two structures
//! for the same function can have different hazard behavior (Figure 4:
//! `wy + xy'` glitches on a `{w,x}` burst with `y = 1`, while
//! `(w + y')(x + y)` does not). This crate provides:
//!
//! * the [`Expr`] AST with a parser and printer;
//! * hazard-preserving transformations only: NNF via DeMorgan
//!   ([`Expr::to_nnf`]), associativity ([`Expr::simplify_assoc`]) and
//!   distribution to two-level form ([`flatten`]) — Unger's theorems
//!   guarantee these do not change logic-hazard behavior;
//! * path labeling ([`PathSop`]) for static-0 / single-input-change dynamic
//!   hazard analysis (§4.2.3);
//! * ternary (Eichelberger) evaluation ([`eval_ternary`]) as an independent
//!   hazard oracle.
//!
//! # Examples
//!
//! ```
//! use asyncmap_bff::{flatten, Expr};
//! use asyncmap_cube::VarTable;
//!
//! let mut vars = VarTable::new();
//! // Figure 4b: the factored mux structure.
//! let cell = Expr::parse("(w + y')*(x + y)", &mut vars)?;
//! let flat = flatten(&cell, vars.len());
//! // Distribution keeps the vacuous product y'y, which two-level
//! // simplification would silently delete.
//! assert_eq!(flat.vacuous.len(), 1);
//! # Ok::<(), asyncmap_bff::ParseBffError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod flatten;
mod parser;
mod paths;
mod ternary;

pub use ast::{DisplayExpr, Expr};
pub use flatten::{flatten, flatten_traced, FlatSop, FlattenTrace, VacuousProduct};
pub use parser::{parse_letters, ParseBffError};
pub use paths::{label_paths, PathLabeling, PathSop};
pub use ternary::{burst_assignment, eval_ternary, Tern};
