//! Cluster (cut) enumeration: the candidate subnetworks of a cone that the
//! matcher compares against library cells.
//!
//! A cluster rooted at gate `g` is the tree of base gates from `g` down to
//! a chosen *cut* of leaf signals. Because a cone is a tree of gates, a
//! cluster is uniquely identified by its leaf set, and enumeration is a
//! bounded product of the fanin cut sets. Bounds follow CERES: a maximum
//! gate depth (the paper's tables use "depth of 5") and a maximum leaf
//! count (the widest library cell).

use asyncmap_bff::Expr;
use asyncmap_cube::{VarId, VarTable};
use asyncmap_network::{Cone, GateOp, Network, NodeKind, SignalId};
use std::collections::{HashMap, HashSet};

/// A candidate subnetwork for matching.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The gate whose output the cluster computes.
    pub root: SignalId,
    /// Leaf signals, deduplicated in first-visit order.
    pub leaves: Vec<SignalId>,
    /// The cluster's structure over local variables (`leaves[i]` =
    /// variable `i`).
    pub expr: Expr,
    /// Number of gates the cluster covers.
    pub num_gates: usize,
}

/// Enumeration limits.
#[derive(Debug, Clone, Copy)]
pub struct ClusterLimits {
    /// Maximum gate depth of a cluster (paper: 5).
    pub max_depth: usize,
    /// Maximum number of distinct leaves (the widest library cell).
    pub max_leaves: usize,
    /// Cap on cuts kept per gate (guards pathological cones).
    pub max_cuts_per_gate: usize,
}

impl Default for ClusterLimits {
    fn default() -> Self {
        ClusterLimits {
            max_depth: 5,
            max_leaves: 8,
            max_cuts_per_gate: 200,
        }
    }
}

/// Enumerates the clusters rooted at every gate of `cone`, keyed by root
/// signal.
pub fn enumerate_clusters(
    net: &Network,
    cone: &Cone,
    limits: &ClusterLimits,
) -> HashMap<SignalId, Vec<Cluster>> {
    let cone_gates: HashSet<SignalId> = cone.gates.iter().copied().collect();
    // cuts[g] = leaf sets of clusters rooted at g, each sorted.
    let mut cuts: HashMap<SignalId, Vec<Vec<SignalId>>> = HashMap::new();
    for &g in &cone.gates {
        // cone.gates is in topological (ascending id) order.
        let NodeKind::Gate { fanin, .. } = net.node(g) else {
            unreachable!("cone gate is not a gate")
        };
        let mut gate_cuts: Vec<Vec<SignalId>> = Vec::new();
        let fanin_options: Vec<Vec<Vec<SignalId>>> = fanin
            .iter()
            .map(|&f| {
                let mut options = vec![vec![f]]; // stop at the fanin signal
                if cone_gates.contains(&f) {
                    if let Some(sub) = cuts.get(&f) {
                        options.extend(sub.iter().cloned());
                    }
                }
                options
            })
            .collect();
        cross_product(&fanin_options, &mut gate_cuts, limits.max_leaves);
        // The trivial cut (the gate's own fanin) must always survive the
        // cap: it guarantees every gate is coverable by a base cell.
        let mut trivial: Vec<SignalId> = fanin.clone();
        trivial.sort();
        trivial.dedup();
        gate_cuts.sort();
        gate_cuts.dedup();
        gate_cuts.retain(|c| *c != trivial);
        gate_cuts.truncate(limits.max_cuts_per_gate.saturating_sub(1));
        gate_cuts.insert(0, trivial);
        cuts.insert(g, gate_cuts);
    }
    // Materialize clusters and apply the depth bound.
    let mut out: HashMap<SignalId, Vec<Cluster>> = HashMap::new();
    for &g in &cone.gates {
        let mut clusters = Vec::new();
        for cut in &cuts[&g] {
            // Cuts are sorted and deduplicated, so membership is a binary
            // search — no per-cluster hash set.
            if let Some(cluster) = build_cluster(net, g, cut, limits) {
                clusters.push(cluster);
            }
        }
        out.insert(g, clusters);
    }
    out
}

fn cross_product(options: &[Vec<Vec<SignalId>>], out: &mut Vec<Vec<SignalId>>, max_leaves: usize) {
    fn rec(
        options: &[Vec<Vec<SignalId>>],
        idx: usize,
        acc: &mut Vec<SignalId>,
        out: &mut Vec<Vec<SignalId>>,
        max_leaves: usize,
    ) {
        if idx == options.len() {
            let mut cut = acc.clone();
            cut.sort();
            cut.dedup();
            if cut.len() <= max_leaves {
                out.push(cut);
            }
            return;
        }
        for choice in &options[idx] {
            let mark = acc.len();
            acc.extend(choice.iter().copied());
            rec(options, idx + 1, acc, out, max_leaves);
            acc.truncate(mark);
        }
    }
    let mut acc = Vec::new();
    rec(options, 0, &mut acc, out, max_leaves);
}

/// Builds the cluster for a given cut (sorted ascending), returning `None`
/// when the depth bound is exceeded.
fn build_cluster(
    net: &Network,
    root: SignalId,
    cut: &[SignalId],
    limits: &ClusterLimits,
) -> Option<Cluster> {
    let mut leaves: Vec<SignalId> = Vec::new();
    let mut num_gates = 0usize;
    let expr = walk(
        net,
        root,
        cut,
        0,
        limits.max_depth,
        &mut leaves,
        &mut num_gates,
    )?;
    Some(Cluster {
        root,
        leaves,
        expr,
        num_gates,
    })
}

#[allow(clippy::too_many_arguments)]
fn walk(
    net: &Network,
    signal: SignalId,
    cut: &[SignalId],
    depth: usize,
    max_depth: usize,
    leaves: &mut Vec<SignalId>,
    num_gates: &mut usize,
) -> Option<Expr> {
    if depth > 0 && cut.binary_search(&signal).is_ok() {
        // Leaves are few (bounded by max_leaves), so a linear scan beats
        // a hash map for variable lookup.
        let v = match leaves.iter().position(|&s| s == signal) {
            Some(i) => VarId(i),
            None => {
                leaves.push(signal);
                VarId(leaves.len() - 1)
            }
        };
        return Some(Expr::Var(v));
    }
    if depth >= max_depth {
        return None;
    }
    let NodeKind::Gate { op, fanin } = net.node(signal) else {
        // Reached a primary input that is not in the cut: the cut is
        // malformed for this walk.
        unreachable!("walk hit a non-cut input signal");
    };
    *num_gates += 1;
    let mut args = Vec::with_capacity(fanin.len());
    for &f in fanin {
        args.push(walk(net, f, cut, depth + 1, max_depth, leaves, num_gates)?);
    }
    Some(match op {
        GateOp::And => Expr::and(args),
        GateOp::Or => Expr::or(args),
        GateOp::Inv => args.into_iter().next().expect("inverter fanin").not(),
        GateOp::Buf => args.into_iter().next().expect("buffer fanin"),
    })
}

impl Cluster {
    /// A local variable table naming the cluster leaves after their network
    /// signals.
    pub fn local_vars(&self, net: &Network) -> VarTable {
        VarTable::from_names(self.leaves.iter().map(|&s| net.name(s).to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::Cover;
    use asyncmap_network::{async_tech_decomp, partition, EquationSet};

    fn cone_of(text: &str, names: &[&str]) -> (Network, Cone) {
        let vars = VarTable::from_names(names.iter().copied());
        let f = Cover::parse(text, &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        assert_eq!(cones.len(), 1);
        let cone = cones[0].clone();
        (net, cone)
    }

    #[test]
    fn every_gate_has_its_trivial_cluster() {
        let (net, cone) = cone_of("ab + a'c", &["a", "b", "c"]);
        let clusters = enumerate_clusters(&net, &cone, &ClusterLimits::default());
        for g in &cone.gates {
            let list = &clusters[g];
            assert!(
                list.iter().any(|c| c.num_gates == 1),
                "gate {g} lacks its single-gate cluster"
            );
        }
    }

    #[test]
    fn root_cluster_can_cover_whole_cone() {
        let (net, cone) = cone_of("ab + a'c", &["a", "b", "c"]);
        let clusters = enumerate_clusters(&net, &cone, &ClusterLimits::default());
        let at_root = &clusters[&cone.root];
        let full = at_root
            .iter()
            .find(|c| c.num_gates == cone.num_gates())
            .expect("whole-cone cluster missing");
        // Function check: full cluster computes ab + a'c over its leaves.
        let local = full.local_vars(&net);
        let want = Cover::parse_tokens("a*b + a'*c", &local).unwrap();
        for m in 0..8usize {
            let mut bits = asyncmap_cube::Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(full.expr.eval(&bits), want.eval(&bits));
        }
    }

    #[test]
    fn depth_bound_limits_clusters() {
        let (net, cone) = cone_of("abcd + a'b'c'd'", &["a", "b", "c", "d"]);
        let tight = ClusterLimits {
            max_depth: 1,
            ..ClusterLimits::default()
        };
        let clusters = enumerate_clusters(&net, &cone, &tight);
        for list in clusters.values() {
            for c in list {
                assert_eq!(c.num_gates, 1, "depth-1 cluster covers one gate");
            }
        }
    }

    #[test]
    fn leaf_limit_enforced() {
        let (net, cone) = cone_of("abcd + a'b'c'd'", &["a", "b", "c", "d"]);
        let limits = ClusterLimits {
            max_leaves: 3,
            ..ClusterLimits::default()
        };
        let clusters = enumerate_clusters(&net, &cone, &limits);
        for list in clusters.values() {
            for c in list {
                assert!(c.leaves.len() <= 3);
            }
        }
    }

    #[test]
    fn repeated_input_is_one_leaf() {
        // f = ab + ab': input a feeds two AND gates inside the cone.
        let (net, cone) = cone_of("ab + ab'", &["a", "b"]);
        let clusters = enumerate_clusters(&net, &cone, &ClusterLimits::default());
        let at_root = &clusters[&cone.root];
        let full = at_root.iter().max_by_key(|c| c.num_gates).unwrap();
        // Leaves are a and b only (a deduplicated).
        assert!(full.leaves.len() <= 3); // a, b, and possibly the INV output
    }
}
