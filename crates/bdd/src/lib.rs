//! A small hash-consed reduced ordered binary decision diagram (ROBDD)
//! package.
//!
//! CERES-style technology mapping uses Boolean operations on canonical
//! function representations for matching and verification (Mailhot &
//! De Micheli). This crate provides exactly the operations the mapper and
//! the hazard analyses need:
//!
//! * canonical construction from covers ([`Manager::from_cover`]), so
//!   functional equivalence is pointer equality;
//! * the `ite`/apply family;
//! * satisfiability queries ([`Manager::any_sat`], [`Manager::sat_count`]),
//!   used by the single-input-change dynamic hazard analysis to decide
//!   whether a candidate hazard is sensitizable;
//! * structural queries (`support`, `restrict`, `eval`).
//!
//! Nodes are never garbage collected: managers are created per analysis and
//! dropped wholesale, which matches how the mapper uses them (one manager
//! per cone / cell).
//!
//! # Examples
//!
//! ```
//! use asyncmap_bdd::Manager;
//! use asyncmap_cube::{Cover, VarTable};
//!
//! let vars = VarTable::from_names(["a", "b", "c"]);
//! let mut mgr = Manager::new(vars.len());
//! let f = mgr.from_cover(&Cover::parse("ab + a'c", &vars)?);
//! let g = mgr.from_cover(&Cover::parse("ab + a'c + bc", &vars)?);
//! assert_eq!(f, g); // the consensus cube is redundant
//! assert_eq!(mgr.sat_count(f), 4);
//! # Ok::<(), asyncmap_cube::ParseSopError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asyncmap_cube::{Bits, Cover, Cube, Phase, VarId};
use std::collections::HashMap;

/// Reference to a BDD node inside a [`Manager`].
///
/// Equality of `Ref`s obtained from the *same* manager is functional
/// equality of the Boolean functions they denote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

impl Ref {
    /// The constant-0 function.
    pub const ZERO: Ref = Ref(0);
    /// The constant-1 function.
    pub const ONE: Ref = Ref(1);

    /// `true` if this is one of the two terminal nodes.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// A BDD manager: node store, unique table and operation caches, over a
/// fixed variable count with the natural variable order.
#[derive(Debug, Default)]
pub struct Manager {
    nvars: usize,
    nodes: Vec<Node>,
    unique: HashMap<Node, Ref>,
    apply_cache: HashMap<(Op, Ref, Ref), Ref>,
    not_cache: HashMap<Ref, Ref>,
}

impl Manager {
    /// Creates a manager for functions of `nvars` variables.
    pub fn new(nvars: usize) -> Self {
        let mut m = Manager {
            nvars,
            nodes: Vec::new(),
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
        };
        // Slots 0 and 1 are reserved for the terminals; their node contents
        // are never inspected.
        m.nodes.push(Node {
            var: u32::MAX,
            lo: Ref::ZERO,
            hi: Ref::ZERO,
        });
        m.nodes.push(Node {
            var: u32::MAX,
            lo: Ref::ONE,
            hi: Ref::ONE,
        });
        m
    }

    /// Number of variables the manager was created with.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    fn var_of(&self, r: Ref) -> u32 {
        if r.is_const() {
            u32::MAX
        } else {
            self.nodes[r.0 as usize].var
        }
    }

    fn cofactors(&self, r: Ref, var: u32) -> (Ref, Ref) {
        if r.is_const() || self.nodes[r.0 as usize].var != var {
            (r, r)
        } else {
            let n = self.nodes[r.0 as usize];
            (n.lo, n.hi)
        }
    }

    /// The function of a single positive literal.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&mut self, v: VarId) -> Ref {
        assert!(v.index() < self.nvars, "variable {v} out of range");
        self.mk(v.index() as u32, Ref::ZERO, Ref::ONE)
    }

    /// The function of a single literal with the given phase.
    pub fn literal(&mut self, v: VarId, phase: Phase) -> Ref {
        let f = self.var(v);
        if phase.is_pos() {
            f
        } else {
            self.not(f)
        }
    }

    /// Logical complement.
    pub fn not(&mut self, f: Ref) -> Ref {
        if f == Ref::ZERO {
            return Ref::ONE;
        }
        if f == Ref::ONE {
            return Ref::ZERO;
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let n = self.nodes[f.0 as usize];
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(f, r);
        r
    }

    fn apply(&mut self, op: Op, f: Ref, g: Ref) -> Ref {
        match (op, f, g) {
            (Op::And, Ref::ZERO, _) | (Op::And, _, Ref::ZERO) => return Ref::ZERO,
            (Op::And, Ref::ONE, x) | (Op::And, x, Ref::ONE) => return x,
            (Op::Or, Ref::ONE, _) | (Op::Or, _, Ref::ONE) => return Ref::ONE,
            (Op::Or, Ref::ZERO, x) | (Op::Or, x, Ref::ZERO) => return x,
            (Op::Xor, Ref::ZERO, x) | (Op::Xor, x, Ref::ZERO) => return x,
            (Op::Xor, Ref::ONE, x) | (Op::Xor, x, Ref::ONE) => return self.not(x),
            _ => {}
        }
        if f == g {
            return match op {
                Op::And | Op::Or => f,
                Op::Xor => Ref::ZERO,
            };
        }
        // Commutative ops: normalize operand order for the cache.
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = self.apply_cache.get(&(op, f, g)) {
            return r;
        }
        let var = self.var_of(f).min(self.var_of(g));
        let (flo, fhi) = self.cofactors(f, var);
        let (glo, ghi) = self.cofactors(g, var);
        let lo = self.apply(op, flo, glo);
        let hi = self.apply(op, fhi, ghi);
        let r = self.mk(var, lo, hi);
        self.apply_cache.insert((op, f, g), r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.apply(Op::And, f, g)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.apply(Op::Xor, f, g)
    }

    /// If-then-else: `f·g + f'·h`.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        let fg = self.and(f, g);
        let nf = self.not(f);
        let nfh = self.and(nf, h);
        self.or(fg, nfh)
    }

    /// `true` iff `f ⇒ g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> bool {
        let ng = self.not(g);
        self.and(f, ng) == Ref::ZERO
    }

    /// Builds the function of a single cube.
    pub fn from_cube(&mut self, cube: &Cube) -> Ref {
        let mut acc = Ref::ONE;
        // Build bottom-up (highest variable first) for linear work.
        let lits: Vec<(VarId, Phase)> = cube.literals().collect();
        for &(v, p) in lits.iter().rev() {
            let l = self.literal(v, p);
            acc = self.and(l, acc);
        }
        acc
    }

    /// Builds the function of an SOP cover.
    pub fn from_cover(&mut self, cover: &Cover) -> Ref {
        let mut acc = Ref::ZERO;
        for c in cover.cubes() {
            let cf = self.from_cube(c);
            acc = self.or(acc, cf);
        }
        acc
    }

    /// Restricts variable `v` to a constant.
    pub fn restrict(&mut self, f: Ref, v: VarId, value: bool) -> Ref {
        if f.is_const() {
            return f;
        }
        let n = self.nodes[f.0 as usize];
        let target = v.index() as u32;
        if n.var > target {
            return f;
        }
        if n.var == target {
            return if value { n.hi } else { n.lo };
        }
        let lo = self.restrict(n.lo, v, value);
        let hi = self.restrict(n.hi, v, value);
        self.mk(n.var, lo, hi)
    }

    /// Existential quantification over `v`.
    pub fn exists(&mut self, f: Ref, v: VarId) -> Ref {
        let f0 = self.restrict(f, v, false);
        let f1 = self.restrict(f, v, true);
        self.or(f0, f1)
    }

    /// Evaluates `f` at a full assignment.
    pub fn eval(&self, f: Ref, assignment: &Bits) -> bool {
        debug_assert_eq!(assignment.len(), self.nvars);
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            cur = if assignment.get(n.var as usize) {
                n.hi
            } else {
                n.lo
            };
        }
        cur == Ref::ONE
    }

    /// Number of satisfying assignments over all `nvars` variables.
    pub fn sat_count(&self, f: Ref) -> u64 {
        let mut memo: HashMap<Ref, u64> = HashMap::new();
        self.sat_count_rec(f, &mut memo, 0)
    }

    fn sat_count_rec(&self, f: Ref, memo: &mut HashMap<Ref, u64>, from_var: u32) -> u64 {
        // Count assignments of variables in [from_var, nvars).
        if f == Ref::ZERO {
            return 0;
        }
        if f == Ref::ONE {
            return 1u64 << (self.nvars as u32 - from_var);
        }
        let n = self.nodes[f.0 as usize];
        let below = if let Some(&c) = memo.get(&f) {
            c
        } else {
            let lo = self.sat_count_rec(n.lo, memo, n.var + 1);
            let hi = self.sat_count_rec(n.hi, memo, n.var + 1);
            let c = lo + hi;
            memo.insert(f, c);
            c
        };
        below << (n.var - from_var)
    }

    /// Returns one satisfying assignment (variables off the satisfying path
    /// are set to 0), or `None` if `f` is unsatisfiable.
    pub fn any_sat(&self, f: Ref) -> Option<Bits> {
        if f == Ref::ZERO {
            return None;
        }
        let mut a = Bits::new(self.nvars);
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            if n.hi != Ref::ZERO {
                a.set(n.var as usize, true);
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        Some(a)
    }

    /// Extracts the function as an SOP cover (one cube per 1-path of the
    /// diagram; the cubes are pairwise disjoint).
    pub fn to_cover(&self, f: Ref) -> Cover {
        let mut out = Cover::zero(self.nvars);
        let mut prefix: Vec<(VarId, Phase)> = Vec::new();
        self.paths_rec(f, &mut prefix, &mut out);
        out
    }

    fn paths_rec(&self, f: Ref, prefix: &mut Vec<(VarId, Phase)>, out: &mut Cover) {
        if f == Ref::ZERO {
            return;
        }
        if f == Ref::ONE {
            out.push(Cube::from_literals(self.nvars, prefix.iter().copied()));
            return;
        }
        let n = self.nodes[f.0 as usize];
        prefix.push((VarId(n.var as usize), Phase::Neg));
        self.paths_rec(n.lo, prefix, out);
        prefix.pop();
        prefix.push((VarId(n.var as usize), Phase::Pos));
        self.paths_rec(n.hi, prefix, out);
        prefix.pop();
    }

    /// The set of variables `f` actually depends on.
    pub fn support(&self, f: Ref) -> Vec<VarId> {
        let mut seen = vec![false; self.nvars];
        let mut stack = vec![f];
        let mut visited: std::collections::HashSet<Ref> = std::collections::HashSet::new();
        while let Some(r) = stack.pop() {
            if r.is_const() || !visited.insert(r) {
                continue;
            }
            let n = self.nodes[r.0 as usize];
            seen[n.var as usize] = true;
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| VarId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    fn vars3() -> VarTable {
        VarTable::from_names(["a", "b", "c"])
    }

    fn build(text: &str, mgr: &mut Manager, vars: &VarTable) -> Ref {
        mgr.from_cover(&Cover::parse(text, vars).unwrap())
    }

    #[test]
    fn constants() {
        let mut m = Manager::new(2);
        assert_eq!(m.not(Ref::ZERO), Ref::ONE);
        assert_eq!(m.and(Ref::ONE, Ref::ZERO), Ref::ZERO);
        assert_eq!(m.or(Ref::ONE, Ref::ZERO), Ref::ONE);
        assert_eq!(m.xor(Ref::ONE, Ref::ONE), Ref::ZERO);
    }

    #[test]
    fn canonical_equality_detects_redundancy() {
        let vars = vars3();
        let mut m = Manager::new(3);
        let f = build("ab + a'c", &mut m, &vars);
        let g = build("ab + a'c + bc", &mut m, &vars);
        assert_eq!(f, g);
    }

    #[test]
    fn distinct_functions_differ() {
        let vars = vars3();
        let mut m = Manager::new(3);
        let f = build("ab", &mut m, &vars);
        let g = build("ab + c", &mut m, &vars);
        assert_ne!(f, g);
    }

    #[test]
    fn ite_and_implies() {
        let vars = vars3();
        let mut m = Manager::new(3);
        let a = m.var(VarId(0));
        let b = m.var(VarId(1));
        let c = m.var(VarId(2));
        let mux = m.ite(a, b, c); // ab + a'c
        let expect = build("ab + a'c", &mut m, &vars);
        assert_eq!(mux, expect);
        let ab = m.and(a, b);
        assert!(m.implies(ab, a));
        assert!(!m.implies(a, ab));
    }

    #[test]
    fn sat_count_and_any_sat() {
        let vars = vars3();
        let mut m = Manager::new(3);
        let f = build("ab + a'c", &mut m, &vars);
        assert_eq!(m.sat_count(f), 4); // ab: 2, a'c: 2, disjoint
        let a = m.any_sat(f).unwrap();
        assert!(m.eval(f, &a));
        assert!(m.any_sat(Ref::ZERO).is_none());
        assert_eq!(m.sat_count(Ref::ONE), 8);
    }

    #[test]
    fn restrict_and_exists() {
        let vars = vars3();
        let mut m = Manager::new(3);
        let f = build("ab + a'c", &mut m, &vars);
        let f_a1 = m.restrict(f, VarId(0), true);
        let b = m.var(VarId(1));
        assert_eq!(f_a1, b);
        let ex = m.exists(f, VarId(0));
        let b_or_c = build("b + c", &mut m, &vars);
        assert_eq!(ex, b_or_c);
    }

    #[test]
    fn support_reports_dependencies() {
        let vars = vars3();
        let mut m = Manager::new(3);
        let f = build("ab + a'b", &mut m, &vars); // = b
        assert_eq!(m.support(f), vec![VarId(1)]);
        let g = build("ab + c", &mut m, &vars);
        assert_eq!(g, g);
        assert_eq!(m.support(g), vec![VarId(0), VarId(1), VarId(2)]);
    }

    #[test]
    fn eval_walks_structure() {
        let vars = vars3();
        let mut m = Manager::new(3);
        let f = build("ab + a'c", &mut m, &vars);
        let mut a = Bits::new(3);
        a.set(0, true);
        a.set(1, true);
        assert!(m.eval(f, &a)); // a=1 b=1
        a.set(1, false);
        assert!(!m.eval(f, &a)); // a=1 b=0 c=0
    }

    #[test]
    fn not_is_involutive() {
        let vars = vars3();
        let mut m = Manager::new(3);
        let f = build("ab + a'c", &mut m, &vars);
        let nf = m.not(f);
        assert_ne!(f, nf);
        assert_eq!(m.not(nf), f);
        assert_eq!(m.sat_count(nf), 8 - 4);
    }

    #[test]
    fn xor_via_and_or_not() {
        let vars = vars3();
        let mut m = Manager::new(3);
        let f = build("ab", &mut m, &vars);
        let g = build("a'c", &mut m, &vars);
        let x = m.xor(f, g);
        let fg_or = m.or(f, g);
        let fg_and = m.and(f, g);
        let n_and = m.not(fg_and);
        let manual = m.and(fg_or, n_and);
        assert_eq!(x, manual);
    }

    #[test]
    fn to_cover_roundtrips() {
        let vars = vars3();
        let mut m = Manager::new(3);
        let f = build("ab + a'c + bc", &mut m, &vars);
        let cover = m.to_cover(f);
        let back = m.from_cover(&cover);
        assert_eq!(back, f);
        // Paths are pairwise disjoint.
        for (i, a) in cover.cubes().iter().enumerate() {
            for b in cover.cubes().iter().skip(i + 1) {
                assert!(a.intersect(b).is_none());
            }
        }
        assert!(m.to_cover(Ref::ZERO).is_empty());
        assert!(m.to_cover(Ref::ONE).cubes()[0].is_universe());
    }

    #[test]
    fn from_cube_of_universe_is_one() {
        let mut m = Manager::new(3);
        assert_eq!(m.from_cube(&Cube::universe(3)), Ref::ONE);
        assert_eq!(m.from_cover(&Cover::zero(3)), Ref::ZERO);
    }
}
