//! Quickstart: specify a burst-mode controller, synthesize hazard-free
//! logic, and technology-map it with the asynchronous mapper.
//!
//! Run with `cargo run --example quickstart`.

use asyncmap::burst::{expand, figure1_example, hazard_free_cover};
use asyncmap::prelude::*;
use asyncmap_cube::VarTable;

fn main() {
    // 1. A burst-mode specification (paper Figure 1): two states,
    //    a+ b+ / y+ then a- b- / y-.
    let spec = figure1_example();
    let entry = spec.validate().expect("spec is well-formed");
    println!(
        "machine {:?}: {} states, {} edges",
        spec.name,
        spec.num_states,
        spec.edges.len()
    );
    for (s, v) in entry.inputs.iter().enumerate() {
        println!("  state {s} entered with inputs {:?}", v.as_ref().unwrap());
    }

    // 2. Flow-table expansion and hazard-free two-level synthesis.
    let flow = expand(&spec).expect("expansion is consistent");
    let mut vars = VarTable::new();
    for n in &flow.var_names {
        vars.intern(n);
    }
    let mut equations = Vec::new();
    for f in &flow.functions {
        let cover = hazard_free_cover(f).expect("synthesizable");
        println!("  {} = {}", f.name, cover.display(&vars));
        equations.push((f.name.clone(), cover));
    }
    let eqs = EquationSet::new(vars, equations);

    // 3. Map against a mux-rich commercial library, hazard-aware.
    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    println!(
        "library {}: {} cells, {} hazardous",
        lib.name(),
        lib.len(),
        lib.hazardous_cells().len()
    );
    let design = async_tmap(&eqs, &lib, &MapOptions::default()).expect("mappable");
    println!(
        "mapped: {} cells, area {:.0}, delay {:.2} ns ({} hazard checks, {} rejections)",
        design.num_instances(),
        design.area,
        design.delay,
        design.stats.hazard_checks,
        design.stats.hazard_rejects
    );

    // 4. Certify the result and print the cell-usage report.
    assert!(design.verify_function(&lib), "function preserved");
    assert!(design.verify_hazards(&lib), "no new hazards");
    println!("verified: functionally equivalent and hazard-non-increasing");
    print!("{}", asyncmap::mapper::render_report(&design, &lib));
}
