//! Portable 4-lane word-parallel SIMD layer.
//!
//! [`U64x4`] is a `u64x4`-style vector of four 64-bit words. The stable
//! toolchain has no `std::simd`, so the type is a plain aligned array
//! whose lockstep operations are written in the shape LLVM's
//! auto-vectorizer reliably turns into 256-bit (or 2×128-bit) vector
//! instructions; on targets without vector units it degrades to four
//! scalar ops with no abstraction penalty.
//!
//! On top of the wrapper sit the *fused cube kernels*: the word walks
//! behind [`crate::Cube::contains`], [`crate::Cube::distance`],
//! [`crate::Cube::conflicts_with`], [`crate::Cube::eval`],
//! [`crate::Bits::is_subset`] and [`crate::Bits::is_disjoint`], each
//! processing four words per step with a scalar tail. Every kernel has a
//! plain one-word-at-a-time reference (`*_scalar`), and building with the
//! `scalar-kernels` cargo feature selects those references as the only
//! implementation — the build-time fallback for targets where the wide
//! path does not pay. Both paths are bit-identical by construction and
//! the equivalence is locked by proptests and the kernels microbench
//! divergence gate.

use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// Number of word lanes processed per SIMD step.
pub const LANES: usize = 4;

/// A 4-lane vector of `u64` words, 32-byte aligned so loads straddle no
/// cache line when the backing slice is itself aligned.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
#[repr(align(32))]
pub struct U64x4(pub [u64; LANES]);

impl U64x4 {
    /// All-zero vector.
    pub const ZERO: U64x4 = U64x4([0; LANES]);

    /// All-ones vector.
    pub const ONES: U64x4 = U64x4([!0; LANES]);

    /// Broadcasts `w` into every lane.
    #[inline(always)]
    pub fn splat(w: u64) -> U64x4 {
        U64x4([w; LANES])
    }

    /// Loads the first four words of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` holds fewer than four words.
    #[inline(always)]
    pub fn load(s: &[u64]) -> U64x4 {
        U64x4([s[0], s[1], s[2], s[3]])
    }

    /// Loads up to four words of `s`, zero-filling missing lanes.
    #[inline(always)]
    pub fn load_or_zero(s: &[u64]) -> U64x4 {
        let mut w = [0u64; LANES];
        for (lane, &word) in w.iter_mut().zip(s) {
            *lane = word;
        }
        U64x4(w)
    }

    /// The lane words.
    #[inline(always)]
    pub fn to_array(self) -> [u64; LANES] {
        self.0
    }

    /// `true` iff every lane is zero.
    #[inline(always)]
    pub fn is_zero(self) -> bool {
        (self.0[0] | self.0[1] | self.0[2] | self.0[3]) == 0
    }

    /// OR of all lanes.
    #[inline(always)]
    pub fn reduce_or(self) -> u64 {
        (self.0[0] | self.0[1]) | (self.0[2] | self.0[3])
    }

    /// AND of all lanes.
    #[inline(always)]
    pub fn reduce_and(self) -> u64 {
        (self.0[0] & self.0[1]) & (self.0[2] & self.0[3])
    }

    /// Total population count over all lanes.
    #[inline(always)]
    pub fn count_ones(self) -> u32 {
        self.0[0].count_ones()
            + self.0[1].count_ones()
            + self.0[2].count_ones()
            + self.0[3].count_ones()
    }

    /// Per-lane population count.
    #[inline(always)]
    pub fn count_ones_per_lane(self) -> [u32; LANES] {
        [
            self.0[0].count_ones(),
            self.0[1].count_ones(),
            self.0[2].count_ones(),
            self.0[3].count_ones(),
        ]
    }

    /// `self & !other`, the one fused op the `std::ops` traits miss
    /// (maps to a single `vandnps`-class instruction).
    #[inline(always)]
    pub fn and_not(self, other: U64x4) -> U64x4 {
        U64x4([
            self.0[0] & !other.0[0],
            self.0[1] & !other.0[1],
            self.0[2] & !other.0[2],
            self.0[3] & !other.0[3],
        ])
    }
}

/// Shifts every lane left by `k` bits.
impl std::ops::Shl<u32> for U64x4 {
    type Output = U64x4;

    #[inline(always)]
    fn shl(self, k: u32) -> U64x4 {
        U64x4([
            self.0[0] << k,
            self.0[1] << k,
            self.0[2] << k,
            self.0[3] << k,
        ])
    }
}

/// Shifts every lane right by `k` bits.
impl std::ops::Shr<u32> for U64x4 {
    type Output = U64x4;

    #[inline(always)]
    fn shr(self, k: u32) -> U64x4 {
        U64x4([
            self.0[0] >> k,
            self.0[1] >> k,
            self.0[2] >> k,
            self.0[3] >> k,
        ])
    }
}

macro_rules! lanewise {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for U64x4 {
            type Output = U64x4;
            #[inline(always)]
            fn $method(self, rhs: U64x4) -> U64x4 {
                U64x4([
                    self.0[0] $op rhs.0[0],
                    self.0[1] $op rhs.0[1],
                    self.0[2] $op rhs.0[2],
                    self.0[3] $op rhs.0[3],
                ])
            }
        }
        impl $assign_trait for U64x4 {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: U64x4) {
                *self = *self $op rhs;
            }
        }
    };
}

lanewise!(BitAnd, bitand, BitAndAssign, bitand_assign, &);
lanewise!(BitOr, bitor, BitOrAssign, bitor_assign, |);
lanewise!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^);

impl Not for U64x4 {
    type Output = U64x4;
    #[inline(always)]
    fn not(self) -> U64x4 {
        U64x4([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

// ---------------------------------------------------------------------------
// Fused cube kernels over raw word slices.
//
// Each kernel exists twice: the lane-widened walk (default) and the scalar
// reference. `scalar-kernels` flips which one backs the public name; the
// scalar body is additionally always exported as `*_scalar` so tests can
// compare the two regardless of the active build.
// ---------------------------------------------------------------------------

/// Scalar reference for [`contains_words`].
#[inline]
pub fn contains_words_scalar(u1: &[u64], p1: &[u64], u2: &[u64], p2: &[u64]) -> bool {
    (0..u1.len()).all(|i| u1[i] & !u2[i] == 0 && (p1[i] ^ p2[i]) & u1[i] == 0)
}

/// Fused containment walk: `USED₁ ⊆ USED₂` and phases agree wherever
/// `USED₁`, four words per step.
#[inline]
pub fn contains_words(u1: &[u64], p1: &[u64], u2: &[u64], p2: &[u64]) -> bool {
    #[cfg(feature = "scalar-kernels")]
    {
        contains_words_scalar(u1, p1, u2, p2)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let n = u1.len();
        let mut i = 0;
        while i + LANES <= n {
            let (a, x) = (U64x4::load(&u1[i..]), U64x4::load(&p1[i..]));
            let (b, y) = (U64x4::load(&u2[i..]), U64x4::load(&p2[i..]));
            if !(a.and_not(b) | ((x ^ y) & a)).is_zero() {
                return false;
            }
            i += LANES;
        }
        contains_words_scalar(&u1[i..], &p1[i..], &u2[i..], &p2[i..])
    }
}

/// Scalar reference for [`distance_words`].
#[inline]
pub fn distance_words_scalar(u1: &[u64], p1: &[u64], u2: &[u64], p2: &[u64]) -> u32 {
    (0..u1.len())
        .map(|i| ((u1[i] & u2[i]) & (p1[i] ^ p2[i])).count_ones())
        .sum()
}

/// Fused conflict count: `popcount((USED₁ & USED₂) & (PHASE₁ ⊕ PHASE₂))`,
/// four words per step.
#[inline]
pub fn distance_words(u1: &[u64], p1: &[u64], u2: &[u64], p2: &[u64]) -> u32 {
    #[cfg(feature = "scalar-kernels")]
    {
        distance_words_scalar(u1, p1, u2, p2)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let n = u1.len();
        let mut i = 0;
        let mut total = 0u32;
        while i + LANES <= n {
            let (a, x) = (U64x4::load(&u1[i..]), U64x4::load(&p1[i..]));
            let (b, y) = (U64x4::load(&u2[i..]), U64x4::load(&p2[i..]));
            total += ((a & b) & (x ^ y)).count_ones();
            i += LANES;
        }
        total + distance_words_scalar(&u1[i..], &p1[i..], &u2[i..], &p2[i..])
    }
}

/// Scalar reference for [`conflicts_any_words`].
#[inline]
pub fn conflicts_any_words_scalar(u1: &[u64], p1: &[u64], u2: &[u64], p2: &[u64]) -> bool {
    (0..u1.len()).any(|i| (u1[i] & u2[i]) & (p1[i] ^ p2[i]) != 0)
}

/// Fused conflict test (distance > 0 without the count), four words per
/// step.
#[inline]
pub fn conflicts_any_words(u1: &[u64], p1: &[u64], u2: &[u64], p2: &[u64]) -> bool {
    #[cfg(feature = "scalar-kernels")]
    {
        conflicts_any_words_scalar(u1, p1, u2, p2)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let n = u1.len();
        let mut i = 0;
        while i + LANES <= n {
            let (a, x) = (U64x4::load(&u1[i..]), U64x4::load(&p1[i..]));
            let (b, y) = (U64x4::load(&u2[i..]), U64x4::load(&p2[i..]));
            if !((a & b) & (x ^ y)).is_zero() {
                return true;
            }
            i += LANES;
        }
        conflicts_any_words_scalar(&u1[i..], &p1[i..], &u2[i..], &p2[i..])
    }
}

/// Scalar reference for [`eval_words`].
#[inline]
pub fn eval_words_scalar(u: &[u64], p: &[u64], a: &[u64]) -> bool {
    (0..u.len()).all(|i| (p[i] ^ a[i]) & u[i] == 0)
}

/// Fused cube evaluation: the assignment agrees with every literal's
/// phase, four words per step.
#[inline]
pub fn eval_words(u: &[u64], p: &[u64], a: &[u64]) -> bool {
    #[cfg(feature = "scalar-kernels")]
    {
        eval_words_scalar(u, p, a)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let n = u.len();
        let mut i = 0;
        while i + LANES <= n {
            let (uu, pp) = (U64x4::load(&u[i..]), U64x4::load(&p[i..]));
            let aa = U64x4::load(&a[i..]);
            if !((pp ^ aa) & uu).is_zero() {
                return false;
            }
            i += LANES;
        }
        eval_words_scalar(&u[i..], &p[i..], &a[i..])
    }
}

/// Scalar reference for [`subset_words`].
#[inline]
pub fn subset_words_scalar(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// Word-set inclusion `a ⊆ b`, four words per step.
#[inline]
pub fn subset_words(a: &[u64], b: &[u64]) -> bool {
    #[cfg(feature = "scalar-kernels")]
    {
        subset_words_scalar(a, b)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let n = a.len();
        let mut i = 0;
        while i + LANES <= n {
            if !U64x4::load(&a[i..]).and_not(U64x4::load(&b[i..])).is_zero() {
                return false;
            }
            i += LANES;
        }
        subset_words_scalar(&a[i..], &b[i..])
    }
}

/// Scalar reference for [`disjoint_words`].
#[inline]
pub fn disjoint_words_scalar(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & y == 0)
}

/// Word-set disjointness, four words per step.
#[inline]
pub fn disjoint_words(a: &[u64], b: &[u64]) -> bool {
    #[cfg(feature = "scalar-kernels")]
    {
        disjoint_words_scalar(a, b)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let n = a.len();
        let mut i = 0;
        while i + LANES <= n {
            if !(U64x4::load(&a[i..]) & U64x4::load(&b[i..])).is_zero() {
                return false;
            }
            i += LANES;
        }
        disjoint_words_scalar(&a[i..], &b[i..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        // SplitMix64 so the test needs no RNG dependency.
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn lanewise_ops_match_scalar() {
        let a = U64x4::load(&words(1, 4));
        let b = U64x4::load(&words(2, 4));
        for i in 0..LANES {
            assert_eq!((a & b).0[i], a.0[i] & b.0[i]);
            assert_eq!((a | b).0[i], a.0[i] | b.0[i]);
            assert_eq!((a ^ b).0[i], a.0[i] ^ b.0[i]);
            assert_eq!((!a).0[i], !a.0[i]);
            assert_eq!(a.and_not(b).0[i], a.0[i] & !b.0[i]);
            assert_eq!((a << 7).0[i], a.0[i] << 7);
            assert_eq!((a >> 9).0[i], a.0[i] >> 9);
        }
        assert_eq!(a.count_ones(), a.0.iter().map(|w| w.count_ones()).sum());
        assert_eq!(a.reduce_or(), a.0.iter().fold(0, |x, w| x | w));
        assert_eq!(a.reduce_and(), a.0.iter().fold(!0, |x, w| x & w));
        assert!(U64x4::ZERO.is_zero() && !U64x4::ONES.is_zero());
    }

    #[test]
    fn load_or_zero_pads() {
        let w = words(3, 2);
        let v = U64x4::load_or_zero(&w);
        assert_eq!(v.0, [w[0], w[1], 0, 0]);
    }

    #[test]
    fn fused_kernels_match_scalar_references() {
        // Straddle the 4-word chunk boundary: lengths 0..=9 cover pure
        // tail, exactly one chunk, and chunk+tail shapes.
        for n in 0..10usize {
            let u1 = words(11, n);
            let p1: Vec<u64> = words(12, n).iter().zip(&u1).map(|(w, u)| w & u).collect();
            let mut u2 = words(13, n);
            // Make some instances genuine subsets so both outcomes occur.
            if n % 2 == 0 {
                for (x, y) in u2.iter_mut().zip(&u1) {
                    *x |= y;
                }
            }
            let p2: Vec<u64> = words(14, n).iter().zip(&u2).map(|(w, u)| w & u).collect();
            let a = words(15, n);
            assert_eq!(
                contains_words(&u1, &p1, &u2, &p2),
                contains_words_scalar(&u1, &p1, &u2, &p2),
                "contains n={n}"
            );
            assert_eq!(
                distance_words(&u1, &p1, &u2, &p2),
                distance_words_scalar(&u1, &p1, &u2, &p2),
                "distance n={n}"
            );
            assert_eq!(
                conflicts_any_words(&u1, &p1, &u2, &p2),
                conflicts_any_words_scalar(&u1, &p1, &u2, &p2),
                "conflicts n={n}"
            );
            assert_eq!(
                eval_words(&u1, &p1, &a),
                eval_words_scalar(&u1, &p1, &a),
                "eval n={n}"
            );
            assert_eq!(
                subset_words(&u1, &u2),
                subset_words_scalar(&u1, &u2),
                "subset n={n}"
            );
            assert_eq!(
                disjoint_words(&u1, &u2),
                disjoint_words_scalar(&u1, &u2),
                "disjoint n={n}"
            );
        }
    }
}
