//! Property tests: the paper's fast hazard algorithms against brute-force
//! oracles and the eight-valued waveform algebra on random small functions.

use asyncmap_bff::Expr;
use asyncmap_cube::{Cover, Cube, Phase, VarId};
use asyncmap_hazard::oracle::{
    brute_mic_dynamic_transitions, brute_static1_transitions, index_bits, is_static1_induced,
};
use asyncmap_hazard::{
    analyze_expr, find_mic_dyn_haz_2level, has_static_hazard, hazards_subset_exhaustive,
    is_static_1_hazard_free, static1_subset, static_1_analysis, static_1_complete, wave_eval,
    Hazard,
};
use proptest::prelude::*;

const NVARS: usize = 4;

prop_compose! {
    fn arb_cube()(used in 1u8..16, phase in 0u8..16) -> Cube {
        let mut lits = Vec::new();
        for v in 0..NVARS {
            if (used >> v) & 1 == 1 {
                let p = if (phase >> v) & 1 == 1 { Phase::Pos } else { Phase::Neg };
                lits.push((VarId(v), p));
            }
        }
        Cube::from_literals(NVARS, lits)
    }
}

prop_compose! {
    fn arb_cover()(cubes in prop::collection::vec(arb_cube(), 1..6)) -> Cover {
        Cover::from_cubes(NVARS, cubes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn static1_complete_agrees_with_brute_force(f in arb_cover()) {
        let brute = brute_static1_transitions(&f);
        prop_assert_eq!(is_static_1_hazard_free(&f), brute.is_empty());
        // Every brute-hazardous span lies inside some reported hazard span.
        let spans: Vec<Cube> = static_1_complete(&f)
            .into_iter()
            .map(|h| match h { Hazard::Static1 { span } => span, _ => unreachable!() })
            .collect();
        for (a, b) in brute {
            let span = Cube::minterm(&index_bits(NVARS, a))
                .supercube(&Cube::minterm(&index_bits(NVARS, b)));
            prop_assert!(
                spans.iter().any(|s| s.contains(&span)),
                "uncaptured static-1 span {:?}", span
            );
        }
    }

    #[test]
    fn static1_single_pass_is_sound(f in arb_cover()) {
        // Every span the paper's single pass reports is truly uncovered.
        for h in static_1_analysis(&f) {
            let Hazard::Static1 { span } = h else { unreachable!() };
            prop_assert!(f.covers_cube(&span));
            prop_assert!(!f.single_cube_contains(&span));
        }
    }

    #[test]
    fn static1_matches_wave_oracle(f in arb_cover()) {
        // The complete static-1 report agrees per-transition with the
        // waveform algebra on the two-level structure.
        let expr = Expr::from_cover(&f);
        let brute = brute_static1_transitions(&f);
        for a in 0..(1usize << NVARS) {
            for b in (a + 1)..(1usize << NVARS) {
                let (ba, bb) = (index_bits(NVARS, a), index_bits(NVARS, b));
                if !f.eval(&ba) || !f.eval(&bb) {
                    continue;
                }
                let span = Cube::minterm(&ba).supercube(&Cube::minterm(&bb));
                if !f.covers_cube(&span) {
                    continue; // function hazard
                }
                let wave_hz = wave_eval(&expr, &ba, &bb).is_static_hazard();
                prop_assert_eq!(wave_hz, brute.contains(&(a, b)),
                    "wave vs brute mismatch on {}→{}", a, b);
                prop_assert_eq!(wave_hz, has_static_hazard(&expr, &ba, &bb),
                    "wave vs ternary mismatch on {}→{}", a, b);
            }
        }
    }

    #[test]
    fn mic_dynamic_descriptors_are_sound(f in arb_cover()) {
        // Every (α, β) pair inside a descriptor is hazardous per the brute
        // Theorem-4.1 oracle (restricted to function-hazard-free pairs).
        let brute = brute_mic_dynamic_transitions(&f);
        for h in find_mic_dyn_haz_2level(&f) {
            let Hazard::DynamicMic { zero_end, one_end, .. } = h else { unreachable!() };
            for alpha in zero_end.minterms() {
                for beta in one_end.minterms() {
                    let a = to_index(&alpha);
                    let b = to_index(&beta);
                    if asyncmap_hazard::dynamic_function_hazard_free(&f, &alpha, &beta) {
                        prop_assert!(brute.contains(&(a, b)),
                            "descriptor pair {}→{} not hazardous", a, b);
                    }
                }
            }
        }
    }

    #[test]
    fn mic_dynamic_complete_modulo_static1(f in arb_cover()) {
        // Every brute-hazardous dynamic transition *in the neighborhood the
        // paper's procedure examines* (endpoints within distance 1 of a
        // cube intersection) is either captured by a descriptor's
        // transition space or induced by a static-1 hazard (Example 4.2.3).
        // Outside that neighborhood the published procedure can miss
        // hazards — see `dynamic2l::tests::published_procedure_gap`.
        let descriptors = find_mic_dyn_haz_2level(&f);
        let intersections = asyncmap_hazard::irredundant_intersections(&f);
        for (a, b) in brute_mic_dynamic_transitions(&f) {
            let (ba, bb) = (index_bits(NVARS, a), index_bits(NVARS, b));
            if is_static1_induced(&f, &ba, &bb) {
                continue;
            }
            let near = intersections.iter().any(|c| {
                c.distance(&Cube::minterm(&ba)) <= 1 && c.distance(&Cube::minterm(&bb)) <= 1
            });
            if !near {
                continue;
            }
            let space = Cube::minterm(&ba).supercube(&Cube::minterm(&bb));
            let captured = descriptors.iter().any(|h| {
                let Hazard::DynamicMic { space: s, .. } = h else { return false };
                s.intersect(&space).is_some()
            });
            prop_assert!(captured, "transition {}→{} not captured", a, b);
        }
    }

    #[test]
    fn analyze_expr_hazard_free_iff_wave_clean(f in arb_cover()) {
        // A structure is reported hazard-free iff no function-hazard-free
        // transition can glitch under the waveform oracle.
        let expr = Expr::from_cover(&f);
        let report = analyze_expr(&expr, NVARS);
        let mut wave_dirty = false;
        'outer: for a in 0..(1usize << NVARS) {
            for b in 0..(1usize << NVARS) {
                if a == b { continue; }
                let (ba, bb) = (index_bits(NVARS, a), index_bits(NVARS, b));
                if !asyncmap_hazard::transition_function_hazard_free(&f, &ba, &bb) {
                    continue;
                }
                if wave_eval(&expr, &ba, &bb).hazard {
                    wave_dirty = true;
                    break 'outer;
                }
            }
        }
        prop_assert_eq!(!report.is_hazard_free(), wave_dirty,
            "report: {}", report.summary());
    }

    #[test]
    fn static1_subset_matches_transition_semantics(f in arb_cover(), g in arb_cover()) {
        // static1_subset(candidate=f, reference=g) iff every 1-1
        // transition hazard-free in g is hazard-free in f — checked only
        // when f and g denote the same function.
        if f.equivalent(&g) {
            let claim = static1_subset(&f, &g);
            let brute_f = brute_static1_transitions(&f);
            let brute_g = brute_static1_transitions(&g);
            let semantic = brute_f.iter().all(|p| brute_g.contains(p));
            prop_assert_eq!(claim, semantic);
        }
    }

    #[test]
    fn exhaustive_subset_is_reflexive_and_transitive_with_self(f in arb_cover()) {
        let expr = Expr::from_cover(&f);
        prop_assert!(hazards_subset_exhaustive(&expr, &expr, NVARS));
    }
}

fn to_index(bits: &asyncmap_cube::Bits) -> usize {
    (0..NVARS).fold(0usize, |acc, v| acc | (usize::from(bits.get(v)) << v))
}
