//! Incremental-remap (ECO) support: canonical cone shape keys and dirty
//! propagation over the partition DAG.
//!
//! A cone's cover is a pure function of its *local shape* — the operator
//! tree of its gates with leaves treated as opaque variables — together
//! with the library, limits and objective (all fixed per mapping session).
//! Which network signals happen to carry the leaves, and what logic sits
//! upstream, never enter the covering DP. [`cone_shape_key`] canonicalizes
//! that local shape into an exact (collision-free) key: two cones with
//! equal keys are isomorphic under the positional correspondence
//! `gates[i] ↔ gates[i]`, `leaves[j] ↔ leaves[j]`, so a cover computed for
//! one translates verbatim to the other.
//!
//! [`PartitionDag`] captures the cone-level dependency structure (a cone
//! consumes another cone's root as a leaf). An edit's *blast radius* —
//! every cone downstream of a shape-changed one — is computed by
//! [`propagate_dirty`]; shape-keyed reuse makes remapping those cones
//! unnecessary for bit-identical results, but the radius is the honest
//! measure of how much of the design an edit could have disturbed.

use crate::{Cone, GateOp, Network, NodeKind, SignalId};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Canonical encoding of a cone's local structure. Exact, not a hash:
/// key equality *is* cone-shape isomorphism, so a reuse decision keyed on
/// it carries no collision risk.
///
/// Layout: `[num_leaves, num_gates]`, then per gate of `Cone::gates` (in
/// ascending signal order) the operator tag followed by one local
/// reference per fanin. A local reference encodes leaf position `i` as
/// `i << 1` and gate position `j` as `(j << 1) | 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeShapeKey(Vec<u32>);

impl ConeShapeKey {
    /// Wraps raw encoded words (as produced by
    /// [`ShapeKeyScratch::append_key`]) back into a key.
    pub fn from_words(words: Vec<u32>) -> Self {
        ConeShapeKey(words)
    }

    /// The raw encoded words.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Consumes the key, returning the encoded words (for callers that
    /// extend the encoding, e.g. a cover-keyed lint cache).
    pub fn into_inner(self) -> Vec<u32> {
        self.0
    }
}

// Hash as the word slice (explicitly, not derived) so a map keyed by
// `ConeShapeKey` can be probed with a borrowed `&[u32]` — e.g. a slice of
// a per-partition key arena — without allocating a key per lookup.
impl Hash for ConeShapeKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0[..].hash(state);
    }
}

impl Borrow<[u32]> for ConeShapeKey {
    fn borrow(&self) -> &[u32] {
        &self.0
    }
}

fn op_tag(op: GateOp) -> u32 {
    match op {
        GateOp::And => 0,
        GateOp::Or => 1,
        GateOp::Inv => 2,
        GateOp::Buf => 3,
    }
}

/// Positional maps of one cone: signal → leaf position / gate position.
/// Built once per cone and shared by shape-key computation and cover
/// localization (both here and in downstream crates' reuse caches).
#[derive(Debug)]
pub struct ConeLocalMap {
    leaf_pos: HashMap<SignalId, u32>,
    gate_pos: HashMap<SignalId, u32>,
}

impl ConeLocalMap {
    /// Builds the positional maps of `cone`.
    pub fn new(cone: &Cone) -> Self {
        ConeLocalMap {
            leaf_pos: cone
                .leaves
                .iter()
                .enumerate()
                .map(|(i, &s)| (s, i as u32))
                .collect(),
            gate_pos: cone
                .gates
                .iter()
                .enumerate()
                .map(|(j, &s)| (s, j as u32))
                .collect(),
        }
    }

    /// Local reference of `signal`: leaf position `i` encodes as `i << 1`,
    /// gate position `j` as `(j << 1) | 1`. `None` when the signal is
    /// neither a leaf nor a gate of the cone.
    pub fn local_ref(&self, signal: SignalId) -> Option<u32> {
        if let Some(&i) = self.leaf_pos.get(&signal) {
            return Some(i << 1);
        }
        self.gate_pos.get(&signal).map(|&j| (j << 1) | 1)
    }

    /// Gate position of `signal` within the cone, if it is a cone gate.
    pub fn gate_pos(&self, signal: SignalId) -> Option<u32> {
        self.gate_pos.get(&signal).copied()
    }

    /// Decodes a local reference back to a signal of `cone`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range for the cone.
    pub fn resolve(cone: &Cone, local: u32) -> SignalId {
        let idx = (local >> 1) as usize;
        if local & 1 == 1 {
            cone.gates[idx]
        } else {
            cone.leaves[idx]
        }
    }
}

/// Computes the canonical shape key of `cone` (see [`ConeShapeKey`]).
pub fn cone_shape_key(net: &Network, cone: &Cone) -> ConeShapeKey {
    cone_shape_key_with(net, cone, &ConeLocalMap::new(cone))
}

/// [`cone_shape_key`] with a caller-built [`ConeLocalMap`] (so one map
/// serves both the key and a cover localization pass).
pub fn cone_shape_key_with(net: &Network, cone: &Cone, map: &ConeLocalMap) -> ConeShapeKey {
    let mut key = Vec::with_capacity(2 + cone.gates.len() * 3);
    key.push(cone.leaves.len() as u32);
    key.push(cone.gates.len() as u32);
    for &g in &cone.gates {
        let NodeKind::Gate { op, fanin } = net.node(g) else {
            unreachable!("cone gate {g} is not a gate node");
        };
        key.push(op_tag(*op));
        for &f in fanin {
            key.push(
                map.local_ref(f)
                    .unwrap_or_else(|| panic!("fanin {f} escapes the cone")),
            );
        }
    }
    // The root is always the cone's last gate in ascending-signal order
    // (every other gate feeds it transitively and the network is
    // topologically ordered), so it needs no explicit word; debug-check
    // the invariant the decoder relies on.
    debug_assert_eq!(cone.gates.last(), Some(&cone.root));
    ConeShapeKey(key)
}

/// Reusable scratch for shape-keying every cone of a partition without
/// per-cone allocation: local references resolve through two epoch-stamped
/// signal-indexed vectors instead of per-cone hash maps, and key words
/// append to a caller-owned arena. On a 50k-gate partition this is the
/// difference between ~5k transient `HashMap`s and none — it is what keeps
/// the ECO dirty-mark phase inside the incremental time budget.
#[derive(Debug, Default)]
pub struct ShapeKeyScratch {
    local: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl ShapeKeyScratch {
    /// Creates an empty scratch; it grows to the network size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the shape-key words of `cone` to `out` and returns the
    /// appended range. The words are identical to
    /// [`cone_shape_key`]`(net, cone).as_slice()`.
    ///
    /// # Panics
    ///
    /// Panics if a gate's fanin escapes the cone (not a leaf or gate of it).
    pub fn append_key(
        &mut self,
        net: &Network,
        cone: &Cone,
        out: &mut Vec<u32>,
    ) -> std::ops::Range<usize> {
        debug_assert_eq!(cone.gates.last(), Some(&cone.root));
        if self.local.len() < net.len() {
            self.local.resize(net.len(), 0);
            self.stamp.resize(net.len(), 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        for (i, &s) in cone.leaves.iter().enumerate() {
            self.local[s.index()] = (i as u32) << 1;
            self.stamp[s.index()] = epoch;
        }
        for (j, &s) in cone.gates.iter().enumerate() {
            self.local[s.index()] = ((j as u32) << 1) | 1;
            self.stamp[s.index()] = epoch;
        }
        let start = out.len();
        out.reserve(2 + cone.gates.len() * 3);
        out.push(cone.leaves.len() as u32);
        out.push(cone.gates.len() as u32);
        for &g in &cone.gates {
            let NodeKind::Gate { op, fanin } = net.node(g) else {
                unreachable!("cone gate {g} is not a gate node");
            };
            out.push(op_tag(*op));
            for &f in fanin {
                assert_eq!(self.stamp[f.index()], epoch, "fanin {f} escapes the cone");
                out.push(self.local[f.index()]);
            }
        }
        start..out.len()
    }
}

/// Cone-level dependency DAG of one partition: an edge `p → c` when cone
/// `c` reads cone `p`'s root as a leaf.
#[derive(Debug, Clone)]
pub struct PartitionDag {
    /// `consumers[i]` — indices of the cones that consume cone `i`'s root.
    consumers: Vec<Vec<u32>>,
}

impl PartitionDag {
    /// Indices of the cones consuming cone `i`'s root.
    pub fn consumers(&self, i: usize) -> &[u32] {
        &self.consumers[i]
    }

    /// Number of cones.
    pub fn len(&self) -> usize {
        self.consumers.len()
    }

    /// `true` when the partition has no cones.
    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty()
    }
}

/// Builds the [`PartitionDag`] of `cones` (as produced by
/// [`crate::partition`]; cone order is preserved).
pub fn build_partition_dag(cones: &[Cone]) -> PartitionDag {
    // Roots index densely into the network's signal space, so a flat
    // lookup table beats a hash map; `NONE` marks non-root signals.
    const NONE: u32 = u32::MAX;
    let max_signal = cones
        .iter()
        .flat_map(|c| c.leaves.iter().chain(std::iter::once(&c.root)))
        .map(|s| s.index())
        .max()
        .map_or(0, |m| m + 1);
    let mut root_cone = vec![NONE; max_signal];
    for (i, cone) in cones.iter().enumerate() {
        root_cone[cone.root.index()] = i as u32;
    }
    let mut consumers = vec![Vec::new(); cones.len()];
    for (i, cone) in cones.iter().enumerate() {
        for leaf in &cone.leaves {
            let p = root_cone[leaf.index()];
            if p != NONE {
                consumers[p as usize].push(i as u32);
            }
        }
    }
    PartitionDag { consumers }
}

/// Propagates dirtiness downstream: every cone reachable from a dirty cone
/// through consumer edges becomes dirty. `dirty` is updated in place.
///
/// # Panics
///
/// Panics if `dirty.len()` differs from the DAG's cone count.
pub fn propagate_dirty(dag: &PartitionDag, dirty: &mut [bool]) {
    assert_eq!(dirty.len(), dag.len(), "dirty mask / DAG size mismatch");
    let mut queue: Vec<u32> = (0..dirty.len() as u32)
        .filter(|&i| dirty[i as usize])
        .collect();
    while let Some(i) = queue.pop() {
        for &c in dag.consumers(i as usize) {
            if !dirty[c as usize] {
                dirty[c as usize] = true;
                queue.push(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{async_tech_decomp, partition, EquationSet};
    use asyncmap_cube::{Cover, VarTable};

    fn eqs_of(pairs: &[(&str, &str)], names: &[&str]) -> EquationSet {
        let vars = VarTable::from_names(names.iter().copied());
        let equations = pairs
            .iter()
            .map(|(n, t)| ((*n).to_owned(), Cover::parse(t, &vars).unwrap()))
            .collect();
        EquationSet::new(vars, equations)
    }

    #[test]
    fn equal_shape_different_signals() {
        // f and g have identical structure over different outputs; the two
        // cones sit at different signal ranges but share one shape key.
        let eqs = eqs_of(&[("f", "ab + cd"), ("g", "ab + cd")], &["a", "b", "c", "d"]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        assert_eq!(cones.len(), 2);
        let k0 = cone_shape_key(&net, &cones[0]);
        let k1 = cone_shape_key(&net, &cones[1]);
        assert_eq!(k0, k1);
        assert_ne!(cones[0].root, cones[1].root);
    }

    #[test]
    fn different_shapes_differ() {
        let eqs = eqs_of(
            &[("f", "ab + cd"), ("g", "ab + c'd")],
            &["a", "b", "c", "d"],
        );
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        let keys: Vec<ConeShapeKey> = cones.iter().map(|c| cone_shape_key(&net, c)).collect();
        // g's cone contains an extra inverter, so its key must differ.
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn commuted_fanin_normalizes_positionally() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateOp::And, vec![a, b]);
        let g2 = net.add_gate(GateOp::And, vec![b, a]);
        net.mark_output("f", g1);
        net.mark_output("g", g2);
        let cones = partition(&net);
        let ka = cone_shape_key(&net, &cones[0]);
        let kb = cone_shape_key(&net, &cones[1]);
        // Both cones record their own leaves in first-visit order, so
        // AND(a,b) and AND(b,a) normalize to the same local shape — and
        // that is correct: the positional leaf correspondence maps a↔b,
        // under which the cones are isomorphic.
        assert_eq!(ka, kb);
    }

    #[test]
    fn local_map_round_trips() {
        let eqs = eqs_of(&[("f", "ab + a'c + bc")], &["a", "b", "c"]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        let cone = &cones[0];
        let map = ConeLocalMap::new(cone);
        for &s in cone.leaves.iter().chain(&cone.gates) {
            let local = map.local_ref(s).unwrap();
            assert_eq!(ConeLocalMap::resolve(cone, local), s);
        }
        assert_eq!(map.local_ref(SignalId(usize::MAX - 1)), None);
    }

    #[test]
    fn dag_edges_follow_shared_logic() {
        // f and g share the inverter of a → the inverter cone feeds both.
        let eqs = eqs_of(&[("f", "a'b"), ("g", "a'b'")], &["a", "b"]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        let dag = build_partition_dag(&cones);
        assert_eq!(dag.len(), cones.len());
        let inv_idx = (0..cones.len())
            .find(|&i| cones.iter().any(|c| c.leaves.contains(&cones[i].root)))
            .expect("shared cone");
        assert_eq!(dag.consumers(inv_idx).len(), 2);
    }

    #[test]
    fn dirty_propagates_downstream_only() {
        let eqs = eqs_of(&[("f", "a'b"), ("g", "a'b'")], &["a", "b"]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        let dag = build_partition_dag(&cones);
        let inv_idx = (0..cones.len())
            .find(|&i| cones.iter().any(|c| c.leaves.contains(&cones[i].root)))
            .unwrap();
        let mut dirty = vec![false; cones.len()];
        dirty[inv_idx] = true;
        propagate_dirty(&dag, &mut dirty);
        assert!(dirty.iter().all(|&d| d), "inverter feeds every other cone");
        // Marking a sink dirty reaches nothing else.
        let sink = (0..cones.len()).find(|&i| i != inv_idx).unwrap();
        let mut dirty = vec![false; cones.len()];
        dirty[sink] = true;
        propagate_dirty(&dag, &mut dirty);
        assert_eq!(dirty.iter().filter(|&&d| d).count(), 1);
    }

    #[test]
    fn scratch_matches_allocating_keyer() {
        let eqs = eqs_of(
            &[("f", "ab + a'c + bc"), ("g", "a'd + bc'd")],
            &["a", "b", "c", "d"],
        );
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        let mut scratch = ShapeKeyScratch::new();
        let mut arena = Vec::new();
        for cone in &cones {
            let range = scratch.append_key(&net, cone, &mut arena);
            let key = cone_shape_key(&net, cone);
            assert_eq!(&arena[range], key.as_slice());
            // Slice probing must agree with key equality (Borrow contract).
            use std::collections::HashMap;
            let mut m = HashMap::new();
            m.insert(key.clone(), 1u8);
            assert_eq!(m.get(key.as_slice()), Some(&1));
        }
    }

    #[test]
    fn shape_key_is_deterministic() {
        let eqs = eqs_of(&[("f", "ab + a'c + bc")], &["a", "b", "c"]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        let a = cone_shape_key(&net, &cones[0]);
        let b = cone_shape_key(&net, &cones[0]);
        assert_eq!(a, b);
        assert_eq!(a.as_slice()[0], cones[0].leaves.len() as u32);
        assert_eq!(a.as_slice()[1], cones[0].gates.len() as u32);
    }
}
