//! Criterion microbenchmarks for the word-level kernels underneath the
//! mapper: the cube-algebra primitives (`complement`, `all_primes`,
//! `is_tautology`), the matcher's truth-table construction, and the
//! two-level dynamic-hazard search, each at input widths 4, 8 and 16.
//!
//! The truth-table benchmarks also cross-check the word-parallel fast
//! path against the scalar generic path and abort on divergence, and the
//! cut-enumeration benchmark maps `dme` with the dominance-pruned and the
//! legacy enumerator and aborts on any mapped-design fingerprint mismatch,
//! so a CI run of this bench doubles as an equivalence smoke test. The
//! `simd_kernels` group extends the gate to every 4-lane [`U64x4`]-widened
//! kernel (fused cube ops, delta-swap permuters): each is cross-checked
//! against its scalar twin before being timed.

use asyncmap_bench::design_fingerprint;
use asyncmap_bff::Expr;
use asyncmap_core::truth;
use asyncmap_core::{
    async_tmap, truth_table_of, truth_table_of_generic, ClusterLimits, MapOptions,
};
use asyncmap_cube::simd;
use asyncmap_cube::{Cover, Cube, Phase, VarId};
use asyncmap_hazard::find_mic_dyn_haz_2level;
use asyncmap_library::builtin;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const WIDTHS: [usize; 3] = [4, 8, 16];

/// Deterministic pseudo-random cover: `ncubes` cubes over `nvars`
/// variables, each literal present with probability 1/2 and then in a
/// random phase. Seeded per width so every run benches the same input.
fn random_cover(nvars: usize, ncubes: usize, seed: u64) -> Cover {
    let mut rng = StdRng::seed_from_u64(seed ^ (nvars as u64));
    let cubes = (0..ncubes)
        .map(|_| {
            let mut literals: Vec<(VarId, Phase)> = Vec::new();
            for v in 0..nvars {
                if rng.random::<bool>() {
                    let phase = if rng.random::<bool>() {
                        Phase::Pos
                    } else {
                        Phase::Neg
                    };
                    literals.push((VarId(v), phase));
                }
            }
            Cube::from_literals(nvars, literals)
        })
        .collect();
    Cover::from_cubes(nvars, cubes)
}

/// Deterministic random expression over `nvars` variables, depth-bounded.
fn random_expr(nvars: usize, depth: usize, rng: &mut StdRng) -> Expr {
    if depth == 0 || rng.random_range(0..4) == 0 {
        let v = Expr::Var(VarId(rng.random_range(0..nvars)));
        return if rng.random::<bool>() { v.not() } else { v };
    }
    let arity = rng.random_range(2..4);
    let args: Vec<Expr> = (0..arity)
        .map(|_| random_expr(nvars, depth - 1, rng))
        .collect();
    if rng.random::<bool>() {
        Expr::and(args)
    } else {
        Expr::or(args)
    }
}

fn bench_cover_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("cube_kernels");
    for w in WIDTHS {
        let f = random_cover(w, 2 * w, 0xC0FE);
        g.bench_function(format!("complement/w{w}"), |b| {
            b.iter(|| black_box(&f).complement())
        });
        g.bench_function(format!("all_primes/w{w}"), |b| {
            b.iter(|| black_box(&f).all_primes())
        });
        // `f + f'` is a tautology: exercises the full recursion rather
        // than an early unate exit.
        let mut taut = f.clone();
        for cube in f.complement().cubes() {
            taut.push(cube.clone());
        }
        g.bench_function(format!("is_tautology/w{w}"), |b| {
            b.iter(|| black_box(&taut).is_tautology())
        });
    }
    g.finish();
}

fn bench_truth_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("truth_table_of");
    for w in WIDTHS {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ (w as u64));
        let expr = random_expr(w, 4, &mut rng);
        // Divergence gate: the word-parallel path must agree with the
        // scalar path bit-for-bit, else the bench (and CI) fails.
        assert_eq!(
            truth_table_of(&expr, w),
            truth_table_of_generic(&expr, w),
            "fast/generic truth-table divergence at width {w}"
        );
        g.bench_function(format!("word_parallel/w{w}"), |b| {
            b.iter(|| truth_table_of(black_box(&expr), w))
        });
        g.bench_function(format!("generic/w{w}"), |b| {
            b.iter(|| truth_table_of_generic(black_box(&expr), w))
        });
    }
    g.finish();
}

fn bench_cut_enumeration(c: &mut Criterion) {
    let mut actel = builtin::actel();
    actel.annotate_hazards();
    let eqs = asyncmap_burst::benchmark("dme");
    let new_opts = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };
    let legacy_opts = MapOptions {
        threads: 1,
        limits: ClusterLimits {
            legacy_enum: true,
            ..ClusterLimits::default()
        },
        ..MapOptions::default()
    };
    // Divergence gate: the dominance-pruned interned enumerator must map
    // to the exact design the legacy recursive enumerator produces, else
    // the bench (and CI) fails.
    let new_design = async_tmap(&eqs, &actel, &new_opts).expect("mappable");
    let legacy_design = async_tmap(&eqs, &actel, &legacy_opts).expect("mappable");
    assert_eq!(
        design_fingerprint(&new_design),
        design_fingerprint(&legacy_design),
        "cut/legacy enumerator divergence on dme"
    );
    let mut g = c.benchmark_group("map_dme");
    g.bench_function("cut_enum", |b| {
        b.iter(|| async_tmap(black_box(&eqs), &actel, &new_opts).expect("mappable"))
    });
    g.bench_function("legacy_enum", |b| {
        b.iter(|| async_tmap(black_box(&eqs), &actel, &legacy_opts).expect("mappable"))
    });
    g.finish();
}

fn bench_simd_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x51D5);
    // Deterministic word blocks, sized past the 4-lane width so the tail
    // path is exercised too.
    let nwords = 11usize;
    let gen_block = |rng: &mut StdRng| -> (Vec<u64>, Vec<u64>) {
        let used: Vec<u64> = (0..nwords).map(|_| rng.random()).collect();
        let phase: Vec<u64> = used.iter().map(|&u| u & rng.random::<u64>()).collect();
        (used, phase)
    };
    let (u1, p1) = gen_block(&mut rng);
    let (u2, p2) = gen_block(&mut rng);
    // Divergence gates: every lane-widened kernel must agree with its
    // scalar twin on the same block, else the bench (and CI) fails.
    assert_eq!(
        simd::contains_words(&u1, &p1, &u2, &p2),
        simd::contains_words_scalar(&u1, &p1, &u2, &p2),
        "SIMD/scalar divergence in contains_words"
    );
    assert_eq!(
        simd::distance_words(&u1, &p1, &u2, &p2),
        simd::distance_words_scalar(&u1, &p1, &u2, &p2),
        "SIMD/scalar divergence in distance_words"
    );
    assert_eq!(
        simd::conflicts_any_words(&u1, &p1, &u2, &p2),
        simd::conflicts_any_words_scalar(&u1, &p1, &u2, &p2),
        "SIMD/scalar divergence in conflicts_any_words"
    );
    assert_eq!(
        simd::eval_words(&u1, &p1, &u2),
        simd::eval_words_scalar(&u1, &p1, &u2),
        "SIMD/scalar divergence in eval_words"
    );
    assert_eq!(
        simd::subset_words(&u1, &u2),
        simd::subset_words_scalar(&u1, &u2),
        "SIMD/scalar divergence in subset_words"
    );
    assert_eq!(
        simd::disjoint_words(&u1, &u2),
        simd::disjoint_words_scalar(&u1, &u2),
        "SIMD/scalar divergence in disjoint_words"
    );
    for n in 1..=6 {
        let t: u64 = rng.random::<u64>() & truth::full_mask(n);
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.random_range(0..i + 1));
        }
        assert_eq!(
            truth::apply_perm6(t, &perm, n),
            truth::apply_perm6_generic(t, &perm, n),
            "SIMD/scalar divergence in apply_perm6 at n={n}"
        );
    }
    for n in 7..=8 {
        let live_words = (1usize << n) / 64;
        let mut t = [0u64; 4];
        for w in t.iter_mut().take(live_words) {
            *w = rng.random();
        }
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.random_range(0..i + 1));
        }
        assert_eq!(
            truth::apply_perm_wide(t, &perm, n),
            truth::apply_perm_wide_generic(t, &perm, n),
            "SIMD/scalar divergence in apply_perm_wide at n={n}"
        );
    }
    let mut g = c.benchmark_group("simd_kernels");
    g.bench_function("contains_words/simd", |b| {
        b.iter(|| simd::contains_words(black_box(&u1), &p1, &u2, &p2))
    });
    g.bench_function("contains_words/scalar", |b| {
        b.iter(|| simd::contains_words_scalar(black_box(&u1), &p1, &u2, &p2))
    });
    g.bench_function("distance_words/simd", |b| {
        b.iter(|| simd::distance_words(black_box(&u1), &p1, &u2, &p2))
    });
    g.bench_function("distance_words/scalar", |b| {
        b.iter(|| simd::distance_words_scalar(black_box(&u1), &p1, &u2, &p2))
    });
    g.bench_function("subset_words/simd", |b| {
        b.iter(|| simd::subset_words(black_box(&u1), &u2))
    });
    g.bench_function("subset_words/scalar", |b| {
        b.iter(|| simd::subset_words_scalar(black_box(&u1), &u2))
    });
    g.finish();
}

fn bench_hazard_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("find_mic_dyn_haz_2level");
    for w in WIDTHS {
        let f = random_cover(w, 2 * w, 0x4A55);
        g.bench_function(format!("w{w}"), |b| {
            b.iter(|| find_mic_dyn_haz_2level(black_box(&f)))
        });
    }
    g.finish();
}

criterion_group!(
    kernels,
    bench_cover_kernels,
    bench_truth_tables,
    bench_cut_enumeration,
    bench_simd_kernels,
    bench_hazard_search
);
criterion_main!(kernels);
