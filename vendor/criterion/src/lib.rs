//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no network access, so the real `criterion`
//! cannot be fetched. This crate implements the macro and builder surface
//! the workspace's benches use — `criterion_group!`/`criterion_main!`,
//! `Criterion::{default, sample_size, measurement_time, warm_up_time,
//! benchmark_group, bench_function}`, `Bencher::iter` — with a simple
//! median-of-samples timer printed to stdout. No statistics, plots, or
//! baselines: just enough to keep `cargo bench` runnable offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement budget per benchmark (upper bound here).
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark (upper bound here).
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let config = self.clone();
        run_one(&config, &id, &mut f);
        self
    }
}

/// A named group of benchmarks sharing the parent configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let config = self.criterion.clone();
        run_one(&config, &full, &mut f);
        self
    }

    /// Closes the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, collecting up to `sample_size` samples within the
    /// measurement budget.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, id: &str, f: &mut F) {
    // Warm-up pass (bounded by the warm-up budget).
    let warm_start = Instant::now();
    let mut warm = Bencher {
        samples: Vec::new(),
        sample_size: 1,
        budget: config.warm_up_time,
    };
    while warm_start.elapsed() < config.warm_up_time {
        f(&mut warm);
        if warm.samples.is_empty() {
            break; // closure never called iter: nothing to time
        }
        warm.samples.clear();
    }
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: config.sample_size,
        budget: config.measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let (lo, hi) = (b.samples[0], b.samples[b.samples.len() - 1]);
    println!(
        "{id:<48} median {median:>10.2?}  min {lo:>10.2?}  max {hi:>10.2?}  ({} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
