//! Abstract syntax of Boolean factored form expressions.
//!
//! A BFF is the paper's carrier of *structure* (§3.2.1): two expressions for
//! the same function (e.g. `wy + xy'` vs `(w + y')(x + y)`) describe
//! different gate networks with different hazard behavior, so none of the
//! operations here rewrite an expression implicitly.

use asyncmap_cube::{Bits, Cover, Cube, Phase, VarId, VarTable};
use std::fmt;

/// A Boolean factored form expression.
///
/// `And`/`Or` are n-ary (the associative law is hazard-preserving, so
/// flattening nested same-operator nodes is safe and done by
/// [`Expr::simplify_assoc`], never implicitly).
///
/// # Examples
///
/// ```
/// use asyncmap_bff::Expr;
/// use asyncmap_cube::VarTable;
/// let mut vars = VarTable::new();
/// let e = Expr::parse("w*y + x*y'", &mut vars)?;
/// assert_eq!(e.num_literals(), 4);
/// # Ok::<(), asyncmap_bff::ParseBffError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A Boolean constant.
    Const(bool),
    /// A variable leaf.
    Var(VarId),
    /// Logical complement of a subexpression.
    Not(Box<Expr>),
    /// n-ary conjunction.
    And(Vec<Expr>),
    /// n-ary disjunction.
    Or(Vec<Expr>),
}

impl Expr {
    /// A literal leaf: the variable, complemented for [`Phase::Neg`].
    pub fn literal(v: VarId, phase: Phase) -> Expr {
        match phase {
            Phase::Pos => Expr::Var(v),
            Phase::Neg => Expr::Not(Box::new(Expr::Var(v))),
        }
    }

    /// Conjunction of the given subexpressions (flattening trivial cases).
    pub fn and(mut terms: Vec<Expr>) -> Expr {
        match terms.len() {
            0 => Expr::Const(true),
            1 => terms.pop().expect("len checked"),
            _ => Expr::And(terms),
        }
    }

    /// Disjunction of the given subexpressions (flattening trivial cases).
    pub fn or(mut terms: Vec<Expr>) -> Expr {
        match terms.len() {
            0 => Expr::Const(false),
            1 => terms.pop().expect("len checked"),
            _ => Expr::Or(terms),
        }
    }

    /// Complement of `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Builds a two-level expression (OR of ANDs) from an SOP cover.
    ///
    /// The cube list order and every cube (including redundant ones) are
    /// preserved, so the expression has exactly the hazard behavior of the
    /// two-level AND–OR circuit the cover denotes.
    pub fn from_cover(cover: &Cover) -> Expr {
        let terms: Vec<Expr> = cover
            .cubes()
            .iter()
            .map(|c| Expr::and(c.literals().map(|(v, p)| Expr::literal(v, p)).collect()))
            .collect();
        Expr::or(terms)
    }

    /// Number of variable leaves (literal count). For a complementary CMOS
    /// complex gate this is the transistor count of the pulldown network —
    /// the paper's Table 3 area unit.
    pub fn num_literals(&self) -> u32 {
        match self {
            Expr::Const(_) => 0,
            Expr::Var(_) => 1,
            Expr::Not(e) => e.num_literals(),
            Expr::And(es) | Expr::Or(es) => es.iter().map(Expr::num_literals).sum(),
        }
    }

    /// Nesting depth of gate operators (a bare literal has depth 0; an
    /// inverter on a leaf counts as depth 1).
    pub fn depth(&self) -> u32 {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Not(e) => 1 + e.depth(),
            Expr::And(es) | Expr::Or(es) => 1 + es.iter().map(Expr::depth).max().unwrap_or(0),
        }
    }

    /// The set of variables appearing in the expression, in increasing
    /// index order.
    pub fn support(&self) -> Vec<VarId> {
        let mut seen = std::collections::BTreeSet::new();
        self.visit_vars(&mut |v| {
            seen.insert(v);
        });
        seen.into_iter().collect()
    }

    fn visit_vars(&self, f: &mut impl FnMut(VarId)) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => f(*v),
            Expr::Not(e) => e.visit_vars(f),
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.visit_vars(f);
                }
            }
        }
    }

    /// Evaluates the expression at a full assignment.
    pub fn eval(&self, assignment: &Bits) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(v) => assignment.get(v.index()),
            Expr::Not(e) => !e.eval(assignment),
            Expr::And(es) => es.iter().all(|e| e.eval(assignment)),
            Expr::Or(es) => es.iter().any(|e| e.eval(assignment)),
        }
    }

    /// Rewrites every variable leaf through `map`, which supplies the
    /// replacement variable and a phase (a [`Phase::Neg`] replacement
    /// inserts an inverter at the leaf).
    ///
    /// Used to instantiate a library cell's BFF onto the signals of a
    /// matched subnetwork.
    pub fn substitute(&self, map: &impl Fn(VarId) -> (VarId, Phase)) -> Expr {
        match self {
            Expr::Const(b) => Expr::Const(*b),
            Expr::Var(v) => {
                let (nv, phase) = map(*v);
                Expr::literal(nv, phase)
            }
            Expr::Not(e) => e.substitute(map).not(),
            Expr::And(es) => Expr::And(es.iter().map(|e| e.substitute(map)).collect()),
            Expr::Or(es) => Expr::Or(es.iter().map(|e| e.substitute(map)).collect()),
        }
    }

    /// Negation-normal form: pushes every inverter to the leaves using only
    /// DeMorgan's law and double-negation elimination — both
    /// hazard-preserving transformations (Unger; paper §3.1.1).
    pub fn to_nnf(&self) -> Expr {
        self.nnf_rec(false)
    }

    fn nnf_rec(&self, negate: bool) -> Expr {
        match self {
            Expr::Const(b) => Expr::Const(*b != negate),
            Expr::Var(v) => {
                if negate {
                    Expr::literal(*v, Phase::Neg)
                } else {
                    Expr::Var(*v)
                }
            }
            Expr::Not(e) => e.nnf_rec(!negate),
            Expr::And(es) => {
                let parts: Vec<Expr> = es.iter().map(|e| e.nnf_rec(negate)).collect();
                if negate {
                    Expr::or(parts)
                } else {
                    Expr::and(parts)
                }
            }
            Expr::Or(es) => {
                let parts: Vec<Expr> = es.iter().map(|e| e.nnf_rec(negate)).collect();
                if negate {
                    Expr::and(parts)
                } else {
                    Expr::or(parts)
                }
            }
        }
    }

    /// Flattens directly nested same-operator nodes (the associative law —
    /// hazard-preserving) and removes constant identities. The gate
    /// *structure across operator alternations* is untouched.
    pub fn simplify_assoc(&self) -> Expr {
        match self {
            Expr::Const(_) | Expr::Var(_) => self.clone(),
            Expr::Not(e) => {
                let inner = e.simplify_assoc();
                match inner {
                    Expr::Const(b) => Expr::Const(!b),
                    Expr::Not(inner2) => *inner2,
                    other => other.not(),
                }
            }
            Expr::And(es) => {
                let mut parts = Vec::new();
                for e in es {
                    match e.simplify_assoc() {
                        Expr::Const(true) => {}
                        Expr::Const(false) => return Expr::Const(false),
                        Expr::And(inner) => parts.extend(inner),
                        other => parts.push(other),
                    }
                }
                Expr::and(parts)
            }
            Expr::Or(es) => {
                let mut parts = Vec::new();
                for e in es {
                    match e.simplify_assoc() {
                        Expr::Const(false) => {}
                        Expr::Const(true) => return Expr::Const(true),
                        Expr::Or(inner) => parts.extend(inner),
                        other => parts.push(other),
                    }
                }
                Expr::or(parts)
            }
        }
    }

    /// `true` if the expression is a pure two-level OR-of-ANDs (or simpler)
    /// with inverters only at leaves.
    pub fn is_sop_shaped(&self) -> bool {
        fn is_literal(e: &Expr) -> bool {
            matches!(e, Expr::Var(_))
                || matches!(e, Expr::Not(inner) if matches!(**inner, Expr::Var(_)))
        }
        fn is_product(e: &Expr) -> bool {
            is_literal(e) || matches!(e, Expr::And(es) if es.iter().all(is_literal))
        }
        match self {
            Expr::Const(_) => true,
            Expr::Or(es) => es.iter().all(is_product),
            other => is_product(other),
        }
    }

    /// Renders the expression with names from `vars`; complements print as
    /// postfix `'`, conjunction as `*`.
    pub fn display<'a>(&'a self, vars: &'a VarTable) -> DisplayExpr<'a> {
        DisplayExpr { expr: self, vars }
    }
}

/// Helper returned by [`Expr::display`].
#[derive(Debug)]
pub struct DisplayExpr<'a> {
    expr: &'a Expr,
    vars: &'a VarTable,
}

impl DisplayExpr<'_> {
    fn fmt_prec(&self, e: &Expr, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: Or = 0, And = 1, Not/leaf = 2.
        match e {
            Expr::Const(b) => write!(f, "{}", u8::from(*b)),
            Expr::Var(v) => write!(f, "{}", self.vars.name(*v)),
            Expr::Not(inner) => {
                if matches!(**inner, Expr::Var(_)) {
                    self.fmt_prec(inner, 2, f)?;
                } else {
                    write!(f, "(")?;
                    self.fmt_prec(inner, 0, f)?;
                    write!(f, ")")?;
                }
                write!(f, "'")
            }
            Expr::And(es) => {
                let need = parent > 1;
                if need {
                    write!(f, "(")?;
                }
                for (i, t) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    self.fmt_prec(t, 2, f)?;
                }
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Or(es) => {
                let need = parent > 0;
                if need {
                    write!(f, "(")?;
                }
                for (i, t) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    self.fmt_prec(t, 1, f)?;
                }
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(self.expr, 0, f)
    }
}

/// Converts a cube to the corresponding AND-of-literals expression.
impl From<&Cube> for Expr {
    fn from(cube: &Cube) -> Expr {
        Expr::and(cube.literals().map(|(v, p)| Expr::literal(v, p)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str, vars: &mut VarTable) -> Expr {
        Expr::parse(text, vars).unwrap()
    }

    #[test]
    fn literal_count_and_depth() {
        let mut vars = VarTable::new();
        let e = parse("(w + y')*(x + y)", &mut vars);
        assert_eq!(e.num_literals(), 4);
        // Or (1) under And (1) with the leaf inverter y' adding one more.
        assert_eq!(e.depth(), 3);
        let lit = parse("a'", &mut vars);
        assert_eq!(lit.depth(), 1);
        assert_eq!(lit.num_literals(), 1);
    }

    #[test]
    fn eval_mux() {
        let mut vars = VarTable::new();
        let e = parse("s*a + s'*b", &mut vars);
        let mut bits = Bits::new(3);
        bits.set(0, true); // s
        bits.set(1, true); // a
        assert!(e.eval(&bits));
        bits.set(0, false);
        assert!(!e.eval(&bits)); // b = 0
        bits.set(2, true);
        assert!(e.eval(&bits));
    }

    #[test]
    fn nnf_pushes_inverters() {
        let mut vars = VarTable::new();
        let e = parse("(a + b*c)'", &mut vars);
        let nnf = e.to_nnf();
        // (a + bc)' = a'(b' + c')
        let want = parse("a' * (b' + c')", &mut vars);
        assert_eq!(nnf, want);
        // NNF preserves the function.
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(e.eval(&bits), nnf.eval(&bits));
        }
    }

    #[test]
    fn simplify_assoc_flattens() {
        let a = Expr::Var(VarId(0));
        let b = Expr::Var(VarId(1));
        let c = Expr::Var(VarId(2));
        let nested = Expr::And(vec![a.clone(), Expr::And(vec![b.clone(), c.clone()])]);
        assert_eq!(nested.simplify_assoc(), Expr::And(vec![a, b, c]));
    }

    #[test]
    fn simplify_assoc_handles_constants() {
        let a = Expr::Var(VarId(0));
        let t = Expr::And(vec![a.clone(), Expr::Const(true)]);
        assert_eq!(t.simplify_assoc(), a.clone());
        let z = Expr::And(vec![a.clone(), Expr::Const(false)]);
        assert_eq!(z.simplify_assoc(), Expr::Const(false));
        let dn = a.clone().not().not();
        assert_eq!(dn.simplify_assoc(), a);
    }

    #[test]
    fn from_cover_is_sop_shaped() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        let e = Expr::from_cover(&f);
        assert!(e.is_sop_shaped());
        assert_eq!(e.num_literals(), 6);
        assert_eq!(e.display(&vars).to_string(), "a*b + a'*c + b*c");
    }

    #[test]
    fn factored_form_is_not_sop_shaped() {
        let mut vars = VarTable::new();
        let e = parse("(w + y')*(x + y)", &mut vars);
        assert!(!e.is_sop_shaped());
    }

    #[test]
    fn substitute_remaps_and_flips() {
        let mut vars = VarTable::new();
        let e = parse("a*b", &mut vars);
        let sub = e.substitute(&|v| (VarId(v.index() + 2), Phase::Neg));
        let mut vars2 = VarTable::from_names(["a", "b", "c", "d"]);
        let want = parse("c'*d'", &mut vars2);
        assert_eq!(sub, want);
    }

    #[test]
    fn support_is_sorted_unique() {
        let mut vars = VarTable::new();
        let e = parse("b*a + a'*b", &mut vars);
        // interning order: b=0, a=1
        assert_eq!(e.support(), vec![VarId(0), VarId(1)]);
    }

    #[test]
    fn display_parenthesizes_correctly() {
        let mut vars = VarTable::new();
        let e = parse("(a + b)*c'", &mut vars);
        let text = e.display(&vars).to_string();
        assert_eq!(text, "(a + b)*c'");
        // Round-trip.
        let mut vars2 = VarTable::from_names(["a", "b", "c"]);
        assert_eq!(Expr::parse(&text, &mut vars2).unwrap(), e);
    }
}
