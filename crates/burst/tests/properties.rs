//! Property tests for the burst-mode front end: every randomly generated
//! well-formed machine synthesizes to hazard-free logic that passes
//! closed-loop fundamental-mode simulation.

use asyncmap_burst::{
    expand, hazard_free_cover, simulate_machine, BurstEdge, BurstSpec, StateId, TransKind,
};
use asyncmap_cube::{Bits, Cover};
use proptest::prelude::*;

const NI: usize = 3;
const NO: usize = 2;
const NS: usize = 3;

fn bits_from(mask: u8, len: usize) -> Bits {
    let mut b = Bits::new(len);
    for i in 0..len {
        b.set(i, (mask >> i) & 1 == 1);
    }
    b
}

prop_compose! {
    /// A random tree-shaped burst machine with distinct entry vectors —
    /// the well-formedness recipe of the benchmark generator.
    fn arb_spec()(
        v1 in 1u8..8,
        v2 in 1u8..8,
        o1 in 0u8..4,
        o2 in 0u8..4,
        parent2 in 0usize..2,
    ) -> Option<BurstSpec> {
        if v1 == v2 {
            return None; // entry vectors must be distinct
        }
        let vectors = [0u8, v1, v2];
        let outs = [0u8, o1, o2];
        let parents = [usize::MAX, 0, parent2];
        let mut edges = Vec::new();
        for s in 1..NS {
            let p = parents[s];
            edges.push(BurstEdge {
                from: StateId(p),
                to: StateId(s),
                input_burst: bits_from(vectors[p] ^ vectors[s], NI),
                output_burst: bits_from(outs[p] ^ outs[s], NO),
            });
        }
        Some(BurstSpec {
            name: "prop".into(),
            input_names: (0..NI).map(|i| format!("i{i}")).collect(),
            output_names: (0..NO).map(|o| format!("o{o}")).collect(),
            num_states: NS,
            edges,
            initial_inputs: Bits::new(NI),
            initial_outputs: Bits::new(NO),
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_machines_synthesize_and_simulate(spec in arb_spec()) {
        let Some(spec) = spec else { return Ok(()) };
        if spec.validate().is_err() {
            // e.g. subset bursts out of a shared parent: a legitimately
            // rejected machine.
            return Ok(());
        }
        let Ok(flow) = expand(&spec) else { return Ok(()) };
        let mut covers: Vec<Cover> = Vec::new();
        for f in &flow.functions {
            match hazard_free_cover(f) {
                Ok(c) => covers.push(c),
                Err(_) => return Ok(()), // unsatisfiable requirement set
            }
        }
        // Certified: every specified transition is wave-clean (the
        // synthesizer guarantees this; re-assert it independently).
        for (f, cover) in flow.functions.iter().zip(&covers) {
            let expr = asyncmap_bff::Expr::from_cover(cover);
            for t in &f.transitions {
                let w = asyncmap_hazard::wave_eval(&expr, &t.start, &t.end);
                prop_assert!(!w.hazard, "{}: {:?} transition glitches", f.name, t.kind);
                let (ws, we) = match t.kind {
                    TransKind::Static1 => (true, true),
                    TransKind::Static0 => (false, false),
                    TransKind::Rise => (false, true),
                    TransKind::Fall => (true, false),
                };
                prop_assert_eq!((w.start, w.end), (ws, we));
            }
        }
        // Closed-loop simulation of the golden block.
        let no = spec.num_outputs();
        let outputs = covers[..no].to_vec();
        let state_bits = covers[no..].to_vec();
        let block = move |total: &Bits| {
            let mut outs = Bits::new(outputs.len());
            for (i, c) in outputs.iter().enumerate() {
                outs.set(i, c.eval(total));
            }
            let mut code = Bits::new(state_bits.len());
            for (i, c) in state_bits.iter().enumerate() {
                code.set(i, c.eval(total));
            }
            (outs, code)
        };
        prop_assert!(simulate_machine(&spec, &block, 4).is_ok());
    }
}
