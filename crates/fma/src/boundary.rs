//! Per-cone hazard containment at the cone boundaries.
//!
//! A cone's leaves are primary inputs or other cones' roots, and the
//! generalized-fundamental-mode composition argument (paper Theorem
//! 3.2 / Lemma 4.5) only goes through when every cone adds no hazard over
//! its subject function: any monotone input burst the subject cone
//! handles glitch-free, the mapped cone must too. This module re-derives
//! that obligation from the finished design alone.
//!
//! Narrow cones (≤ [`asyncmap_hazard::EXHAUSTIVE_VAR_LIMIT`] leaves) get
//! the exhaustive waveform sweep, interned in the shared
//! [`HazardCache`] so repeated shapes — and re-analysis after an ECO
//! edit — pay once. Wider cones get a bounded-delay fallback ladder
//! instead of an exponential sweep:
//!
//! 1. structural equality (a 1:1 cover adds nothing);
//! 2. hazard-preserving flattening of both structures (product count
//!    permitting) and the exact static-1 containment condition on the
//!    flats — its failure is a real violation
//!    (`boundary.static1-escape`);
//! 3. otherwise the cone is counted as *partially* verified — a counter,
//!    not a finding, because an inconclusive bound is not evidence of a
//!    defect.

use asyncmap_bff::{flatten, Expr};
use asyncmap_core::{cone_cover_words, mapped_cone_expr, HazardCache, MappedDesign};
use asyncmap_hazard::{hazards_subset_exhaustive, static1_subset, EXHAUSTIVE_VAR_LIMIT};
use asyncmap_library::Library;
use asyncmap_report::Severity;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Flattening is abandoned when either structure would expand past this
/// many products — the same bound the transformation audit uses for its
/// replay ladder.
const FLATTEN_CAP: usize = 4096;

/// Outcome of one cone's boundary check, merged in partition order.
pub(crate) struct ConeOutcome {
    /// Findings to append: `(severity, code, path, message)`.
    pub findings: Vec<(Severity, &'static str, String, String)>,
    /// Exhaustive sweep ran.
    pub exact: bool,
    /// Wide-cone ladder ran.
    pub wide: bool,
    /// Ladder ended without a full verdict.
    pub partial: bool,
    /// Skipped — the cone's key was already known clean.
    pub reused: bool,
    /// Reuse key, present when the cone is self-contained and quiet.
    pub key: Option<Vec<u32>>,
}

/// Checks every cone on `threads` workers pulling indices from a shared
/// atomic counter; results come back in partition order, so reports are
/// identical across thread counts.
pub(crate) fn check_boundaries(
    design: &MappedDesign,
    library: &Library,
    hcache: &HazardCache,
    known_clean: &HashSet<Vec<u32>>,
    threads: usize,
) -> Vec<ConeOutcome> {
    let jobs = design.cones.len();
    let next = AtomicUsize::new(0);
    let mut results: Vec<(usize, ConeOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(jobs).max(1))
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        local.push((i, check_cone(design, library, hcache, known_clean, i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("boundary worker panicked"))
            .collect()
    });
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

fn check_cone(
    design: &MappedDesign,
    library: &Library,
    hcache: &HazardCache,
    known_clean: &HashSet<Vec<u32>>,
    index: usize,
) -> ConeOutcome {
    let net = &design.subject;
    let cone = &design.cones[index];
    let cover = &design.covers[index];
    let mut out = ConeOutcome {
        findings: Vec::new(),
        exact: false,
        wide: false,
        partial: false,
        reused: false,
        key: cone_cover_words(net, cone, cover),
    };
    if let Some(key) = &out.key {
        if known_clean.contains(key) {
            out.reused = true;
            return out;
        }
    }

    let n = cone.leaves.len();
    let path = net.name(cone.root).to_owned();
    let (subject, _) = cone.to_expr(net);
    let mapped = mapped_cone_expr(net, cone, cover, library);

    if n <= EXHAUSTIVE_VAR_LIMIT {
        out.exact = true;
        let contained = hcache.expr_verdict(&mapped, &subject, n, || {
            hazards_subset_exhaustive(&mapped, &subject, n)
        });
        if !contained {
            out.findings.push((
                Severity::Error,
                "boundary.containment",
                path,
                format!(
                    "mapped cone can glitch on an input burst its subject function \
                     handles clean ({n} leaves, exhaustive waveform sweep) — upstream \
                     monotone transitions no longer cover this cone's bursts"
                ),
            ));
        }
    } else {
        out.wide = true;
        if mapped != subject {
            if product_estimate(&mapped) <= FLATTEN_CAP && product_estimate(&subject) <= FLATTEN_CAP
            {
                let mflat = flatten(&mapped, n).cover;
                let sflat = flatten(&subject, n).cover;
                if static1_subset(&mflat, &sflat) {
                    // Static-1 behavior certified; the dynamic classes are
                    // covered by the mapper's per-match checks but not
                    // re-proved here.
                    out.partial = true;
                } else {
                    out.findings.push((
                        Severity::Error,
                        "boundary.static1-escape",
                        path,
                        format!(
                            "wide cone ({n} leaves): a static-1 transition of the subject \
                             function has no single covering product in the mapped \
                             structure's flattening — the cone can glitch while holding 1"
                        ),
                    ));
                }
            } else {
                out.partial = true;
            }
        }
    }

    if !out.findings.is_empty() {
        out.key = None;
    }
    out
}

/// Saturating upper bound on the number of products a hazard-preserving
/// flattening of `expr` produces, on the negation-normal form `flatten`
/// itself uses.
fn product_estimate(expr: &Expr) -> usize {
    fn est(expr: &Expr, negated: bool) -> usize {
        match expr {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Not(e) => est(e, !negated),
            Expr::And(es) if !negated => es.iter().fold(1usize, |a, e| {
                a.saturating_mul(est(e, negated)).min(usize::MAX / 2)
            }),
            Expr::Or(es) if negated => es.iter().fold(1usize, |a, e| {
                a.saturating_mul(est(e, negated)).min(usize::MAX / 2)
            }),
            Expr::And(es) | Expr::Or(es) => es
                .iter()
                .fold(0usize, |a, e| a.saturating_add(est(e, negated))),
        }
    }
    est(expr, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarId;

    fn v(i: usize) -> Expr {
        Expr::Var(VarId(i))
    }

    #[test]
    fn product_estimate_bounds_flatten() {
        // (a + b)(c + d) -> 4 products; a'(b + c) -> 2.
        let e = Expr::And(vec![Expr::Or(vec![v(0), v(1)]), Expr::Or(vec![v(2), v(3)])]);
        assert_eq!(product_estimate(&e), 4);
        assert_eq!(flatten(&e, 4).cover.len(), 4);
        let e = Expr::And(vec![Expr::Not(Box::new(v(0))), Expr::Or(vec![v(1), v(2)])]);
        assert_eq!(product_estimate(&e), 2);
        // DeMorgan: !(ab) flattens to a' + b'.
        let e = Expr::Not(Box::new(Expr::And(vec![v(0), v(1)])));
        assert_eq!(product_estimate(&e), 2);
    }
}
