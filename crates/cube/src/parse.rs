//! Text parsing of cubes and sum-of-products expressions.
//!
//! Two syntaxes are supported:
//!
//! * **letter syntax** — every alphabetic character is a single-letter
//!   variable, a trailing `'` complements it, whitespace and `*` are
//!   ignored. This matches how the paper writes functions
//!   (`f = w'xz + w'xy + xyz`).
//! * **token syntax** — identifiers may be multi-character and must be
//!   separated by whitespace or `*`; `'` still complements.

use crate::{Cube, Phase, VarId, VarTable};
use std::error::Error;
use std::fmt;

/// Error produced when parsing a cube or SOP expression fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSopError {
    message: String,
}

impl ParseSopError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseSopError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseSopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SOP expression: {}", self.message)
    }
}

impl Error for ParseSopError {}

fn push_literal(
    literals: &mut Vec<(VarId, Phase)>,
    v: VarId,
    phase: Phase,
    name: &str,
) -> Result<(), ParseSopError> {
    if let Some((_, existing)) = literals.iter().find(|(id, _)| *id == v) {
        if *existing != phase {
            return Err(ParseSopError::new(format!(
                "variable {name:?} appears with both phases in one product"
            )));
        }
        return Ok(());
    }
    literals.push((v, phase));
    Ok(())
}

/// Parses a single product term in letter syntax (see module docs).
pub fn parse_cube_letters(text: &str, vars: &VarTable) -> Result<Cube, ParseSopError> {
    let text = text.trim();
    if text == "1" {
        return Ok(Cube::universe(vars.len()));
    }
    let mut literals: Vec<(VarId, Phase)> = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(ch) = chars.next() {
        if ch.is_whitespace() || ch == '*' {
            continue;
        }
        if !ch.is_alphabetic() {
            return Err(ParseSopError::new(format!(
                "unexpected character {ch:?} in product {text:?}"
            )));
        }
        let name = ch.to_string();
        let v = vars
            .lookup(&name)
            .ok_or_else(|| ParseSopError::new(format!("unknown variable {name:?}")))?;
        let phase = if chars.peek() == Some(&'\'') {
            chars.next();
            Phase::Neg
        } else {
            Phase::Pos
        };
        push_literal(&mut literals, v, phase, &name)?;
    }
    if literals.is_empty() {
        return Err(ParseSopError::new(format!("empty product term {text:?}")));
    }
    Ok(Cube::from_literals(vars.len(), literals))
}

/// Parses a single product term in token syntax (see module docs).
pub fn parse_cube_tokens(text: &str, vars: &VarTable) -> Result<Cube, ParseSopError> {
    let text = text.trim();
    if text == "1" {
        return Ok(Cube::universe(vars.len()));
    }
    let mut literals: Vec<(VarId, Phase)> = Vec::new();
    for tok in text.split(|c: char| c.is_whitespace() || c == '*') {
        if tok.is_empty() {
            continue;
        }
        let (name, phase) = match tok.strip_suffix('\'') {
            Some(base) => (base, Phase::Neg),
            None => (tok, Phase::Pos),
        };
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(ParseSopError::new(format!("malformed literal {tok:?}")));
        }
        let v = vars
            .lookup(name)
            .ok_or_else(|| ParseSopError::new(format!("unknown variable {name:?}")))?;
        push_literal(&mut literals, v, phase, name)?;
    }
    if literals.is_empty() {
        return Err(ParseSopError::new(format!("empty product term {text:?}")));
    }
    Ok(Cube::from_literals(vars.len(), literals))
}

/// Splits an SOP string on `+` and parses each product with `parse_term`.
pub(crate) fn parse_sop_with(
    text: &str,
    vars: &VarTable,
    parse_term: impl Fn(&str, &VarTable) -> Result<Cube, ParseSopError>,
) -> Result<Vec<Cube>, ParseSopError> {
    let text = text.trim();
    if text == "0" || text.is_empty() {
        return Ok(Vec::new());
    }
    text.split('+').map(|t| parse_term(t, vars)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letter_syntax_parses_paper_style() {
        let vars = VarTable::from_names(["w", "x", "y", "z"]);
        let c = parse_cube_letters("w'x y*z", &vars).unwrap();
        assert_eq!(c.display(&vars).to_string(), "w'xyz");
    }

    #[test]
    fn token_syntax_handles_multichar_names() {
        let vars = VarTable::from_names(["sel", "din0", "din1"]);
        let c = parse_cube_tokens("sel' * din1", &vars).unwrap();
        assert_eq!(c.display(&vars).to_string(), "sel'*din1");
    }

    #[test]
    fn duplicate_same_phase_is_idempotent() {
        let vars = VarTable::from_names(["a", "b"]);
        let c = parse_cube_letters("aab", &vars).unwrap();
        assert_eq!(c.num_literals(), 2);
    }

    #[test]
    fn contradictory_literal_is_error() {
        let vars = VarTable::from_names(["a", "b"]);
        assert!(parse_cube_letters("aa'b", &vars).is_err());
    }

    #[test]
    fn unknown_variable_is_error() {
        let vars = VarTable::from_names(["a"]);
        let err = parse_cube_letters("q", &vars).unwrap_err();
        assert!(err.to_string().contains("unknown variable"));
    }

    #[test]
    fn constant_one_is_universe() {
        let vars = VarTable::from_names(["a"]);
        assert!(parse_cube_letters("1", &vars).unwrap().is_universe());
    }

    #[test]
    fn garbage_is_error() {
        let vars = VarTable::from_names(["a"]);
        assert!(parse_cube_letters("a&b", &vars).is_err());
        assert!(parse_cube_tokens("a&b", &vars).is_err());
    }
}
