//! Property tests: BDD operations agree with brute-force truth-table
//! semantics of random covers.

use asyncmap_bdd::{Manager, Ref};
use asyncmap_cube::{Bits, Cover, Cube, Phase, VarId};
use proptest::prelude::*;

const NVARS: usize = 5;

fn assignment(m: usize) -> Bits {
    let mut b = Bits::new(NVARS);
    for v in 0..NVARS {
        b.set(v, (m >> v) & 1 == 1);
    }
    b
}

prop_compose! {
    fn arb_cube()(used in 0u8..32, phase in 0u8..32) -> Cube {
        let mut lits = Vec::new();
        for v in 0..NVARS {
            if (used >> v) & 1 == 1 {
                let p = if (phase >> v) & 1 == 1 { Phase::Pos } else { Phase::Neg };
                lits.push((VarId(v), p));
            }
        }
        Cube::from_literals(NVARS, lits)
    }
}

prop_compose! {
    fn arb_cover()(cubes in prop::collection::vec(arb_cube(), 0..8)) -> Cover {
        Cover::from_cubes(NVARS, cubes)
    }
}

proptest! {
    #[test]
    fn from_cover_matches_eval(f in arb_cover()) {
        let mut m = Manager::new(NVARS);
        let r = m.from_cover(&f);
        for a in 0..(1usize << NVARS) {
            prop_assert_eq!(m.eval(r, &assignment(a)), f.eval(&assignment(a)));
        }
    }

    #[test]
    fn canonical_iff_equivalent(f in arb_cover(), g in arb_cover()) {
        let mut m = Manager::new(NVARS);
        let rf = m.from_cover(&f);
        let rg = m.from_cover(&g);
        prop_assert_eq!(rf == rg, f.equivalent(&g));
    }

    #[test]
    fn boolean_ops_match(f in arb_cover(), g in arb_cover()) {
        let mut m = Manager::new(NVARS);
        let rf = m.from_cover(&f);
        let rg = m.from_cover(&g);
        let and = m.and(rf, rg);
        let or = m.or(rf, rg);
        let xor = m.xor(rf, rg);
        let not = m.not(rf);
        for a in 0..(1usize << NVARS) {
            let (va, vb) = (f.eval(&assignment(a)), g.eval(&assignment(a)));
            prop_assert_eq!(m.eval(and, &assignment(a)), va && vb);
            prop_assert_eq!(m.eval(or, &assignment(a)), va || vb);
            prop_assert_eq!(m.eval(xor, &assignment(a)), va ^ vb);
            prop_assert_eq!(m.eval(not, &assignment(a)), !va);
        }
    }

    #[test]
    fn sat_count_matches_truth_table(f in arb_cover()) {
        let mut m = Manager::new(NVARS);
        let r = m.from_cover(&f);
        let count = (0..(1usize << NVARS))
            .filter(|&a| f.eval(&assignment(a)))
            .count() as u64;
        prop_assert_eq!(m.sat_count(r), count);
        match m.any_sat(r) {
            Some(a) => prop_assert!(m.eval(r, &a)),
            None => prop_assert_eq!(count, 0),
        }
    }

    #[test]
    fn restrict_matches_cofactor(f in arb_cover(), v in 0usize..NVARS, val: bool) {
        let mut m = Manager::new(NVARS);
        let r = m.from_cover(&f);
        let restricted = m.restrict(r, VarId(v), val);
        let phase = if val { Phase::Pos } else { Phase::Neg };
        let cof = m.from_cover(&f.cofactor(VarId(v), phase));
        prop_assert_eq!(restricted, cof);
    }

    #[test]
    fn implies_matches_cover_implication(f in arb_cover(), g in arb_cover()) {
        let mut m = Manager::new(NVARS);
        let rf = m.from_cover(&f);
        let rg = m.from_cover(&g);
        prop_assert_eq!(m.implies(rf, rg), f.implies(&g));
    }

    #[test]
    fn support_is_semantic(f in arb_cover()) {
        let mut m = Manager::new(NVARS);
        let r = m.from_cover(&f);
        let support = m.support(r);
        for v in 0..NVARS {
            let f0 = m.restrict(r, VarId(v), false);
            let f1 = m.restrict(r, VarId(v), true);
            prop_assert_eq!(support.contains(&VarId(v)), f0 != f1);
        }
    }

    #[test]
    fn tautology_iff_one(f in arb_cover()) {
        let mut m = Manager::new(NVARS);
        let r = m.from_cover(&f);
        prop_assert_eq!(r == Ref::ONE, f.is_tautology());
    }
}
