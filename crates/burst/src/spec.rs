//! Burst-mode machine specifications (paper Figure 1): states connected by
//! transitions labeled with an *input burst* (a nonempty set of input
//! changes, in any order) and an *output burst*.
//!
//! Validity conditions enforced here:
//!
//! * **entry-vector consistency** — every path into a state arrives with
//!   the same input vector (burst-mode well-formedness);
//! * **maximal set property** — no input burst out of a state is a proper
//!   subset of another from the same state (so burst completion is
//!   unambiguous);
//! * **distinguishability** — no two input bursts out of a state are
//!   identical (so the machine can tell which transition fired);
//! * output consistency — every path into a state arrives with the same
//!   output values.
//!
//! Each violation is reported as a [`SpecError`] carrying a typed
//! [`SpecErrorKind`]; [`crate::parse_bms`] runs [`BurstSpec::validate`] on
//! load, so malformed `.bms` files are rejected rather than silently
//! accepted.

use asyncmap_cube::Bits;
use std::error::Error;
use std::fmt;

/// Identifier of a machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

/// One burst-mode transition.
#[derive(Debug, Clone)]
pub struct BurstEdge {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Input burst: bit `i` set means input `i` changes.
    pub input_burst: Bits,
    /// Output burst: bit `o` set means output `o` changes.
    pub output_burst: Bits,
}

/// A burst-mode specification.
#[derive(Debug, Clone)]
pub struct BurstSpec {
    /// Human-readable machine name.
    pub name: String,
    /// Input signal names.
    pub input_names: Vec<String>,
    /// Output signal names.
    pub output_names: Vec<String>,
    /// Number of states (state 0 is initial).
    pub num_states: usize,
    /// The transitions.
    pub edges: Vec<BurstEdge>,
    /// Input vector on entry to state 0.
    pub initial_inputs: Bits,
    /// Output values on entry to state 0.
    pub initial_outputs: Bits,
}

/// Machine-readable class of a burst-mode spec violation. Carried by every
/// [`SpecError`] so callers (and the `asyncmap-audit` spec checker) can
/// dispatch on the violated property instead of parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SpecErrorKind {
    /// Malformed spec text (bad directive, bad token, missing section).
    Syntax,
    /// A vector or burst has the wrong bit width.
    Width,
    /// An edge's input burst is empty.
    EmptyBurst,
    /// An edge loops back to its own source state.
    SelfLoop,
    /// An edge references a state outside `0..num_states`.
    DanglingState,
    /// An input burst out of a state is a *proper subset* of a sibling
    /// burst (maximal set property, paper §2.1).
    MaximalSet,
    /// Two input bursts out of the same state are identical, so the
    /// machine cannot distinguish which transition fired.
    Indistinguishable,
    /// A state is entered with differing input or output vectors along
    /// different paths.
    EntryInconsistency,
    /// A state cannot be reached from the initial state.
    Unreachable,
    /// Specified ON/OFF function values conflict during flow-table
    /// expansion.
    Conflict,
}

/// Validation failure for a burst-mode spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Which well-formedness property was violated.
    pub kind: SpecErrorKind,
    /// Description of the violation.
    pub message: String,
}

impl SpecError {
    /// Builds a typed spec error.
    pub fn new(kind: SpecErrorKind, message: impl Into<String>) -> Self {
        SpecError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid burst-mode spec: {}", self.message)
    }
}

impl Error for SpecError {}

/// Per-state entry values derived by propagating bursts from the initial
/// state.
#[derive(Debug, Clone)]
pub struct EntryVectors {
    /// Entry input vector per state (`None` = unreachable).
    pub inputs: Vec<Option<Bits>>,
    /// Entry output values per state.
    pub outputs: Vec<Option<Bits>>,
}

impl BurstSpec {
    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.output_names.len()
    }

    /// Validates the spec and computes per-state entry vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on empty bursts, dangling states, inconsistent
    /// entry vectors, subset bursts from a common state, or unreachable
    /// states.
    pub fn validate(&self) -> Result<EntryVectors, SpecError> {
        let err = SpecError::new;
        if self.initial_inputs.len() != self.num_inputs()
            || self.initial_outputs.len() != self.num_outputs()
        {
            return Err(err(
                SpecErrorKind::Width,
                "initial vector width mismatch".to_owned(),
            ));
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.from.0 >= self.num_states || e.to.0 >= self.num_states {
                return Err(err(
                    SpecErrorKind::DanglingState,
                    format!("edge {i} references undefined state"),
                ));
            }
            if e.input_burst.len() != self.num_inputs()
                || e.output_burst.len() != self.num_outputs()
            {
                return Err(err(
                    SpecErrorKind::Width,
                    format!("edge {i} has wrong burst width"),
                ));
            }
            if e.input_burst.is_zero() {
                return Err(err(
                    SpecErrorKind::EmptyBurst,
                    format!("edge {i} has an empty input burst"),
                ));
            }
            if e.from == e.to {
                return Err(err(
                    SpecErrorKind::SelfLoop,
                    format!("edge {i} is a self-loop"),
                ));
            }
        }
        // Maximal set property + distinguishability. Equal bursts violate
        // distinguishability (the machine cannot tell which transition
        // fired); a *proper* subset violates the maximal set property
        // (burst completion becomes ambiguous).
        for s in 0..self.num_states {
            let bursts: Vec<&Bits> = self
                .edges
                .iter()
                .filter(|e| e.from.0 == s)
                .map(|e| &e.input_burst)
                .collect();
            for (i, a) in bursts.iter().enumerate() {
                for (j, b) in bursts.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    if *a == *b {
                        if i < j {
                            return Err(err(
                                SpecErrorKind::Indistinguishable,
                                format!(
                                    "state {s}: input bursts {i} and {j} are indistinguishable"
                                ),
                            ));
                        }
                    } else if a.is_subset(b) {
                        return Err(err(
                            SpecErrorKind::MaximalSet,
                            format!("state {s}: input burst {i} is a subset of burst {j}"),
                        ));
                    }
                }
            }
        }
        // Entry-vector propagation (fixpoint over edges).
        let mut inputs: Vec<Option<Bits>> = vec![None; self.num_states];
        let mut outputs: Vec<Option<Bits>> = vec![None; self.num_states];
        inputs[0] = Some(self.initial_inputs.clone());
        outputs[0] = Some(self.initial_outputs.clone());
        let mut changed = true;
        while changed {
            changed = false;
            for e in &self.edges {
                let (Some(vi), Some(vo)) = (inputs[e.from.0].clone(), outputs[e.from.0].clone())
                else {
                    continue;
                };
                let ni = vi.xor(&e.input_burst);
                let no = vo.xor(&e.output_burst);
                match &inputs[e.to.0] {
                    None => {
                        inputs[e.to.0] = Some(ni);
                        outputs[e.to.0] = Some(no);
                        changed = true;
                    }
                    Some(existing) => {
                        if *existing != ni {
                            return Err(err(
                                SpecErrorKind::EntryInconsistency,
                                format!("state {} has inconsistent entry inputs", e.to.0),
                            ));
                        }
                        if outputs[e.to.0].as_ref() != Some(&no) {
                            return Err(err(
                                SpecErrorKind::EntryInconsistency,
                                format!("state {} has inconsistent entry outputs", e.to.0),
                            ));
                        }
                    }
                }
            }
        }
        if let Some(s) = inputs.iter().position(Option::is_none) {
            return Err(err(
                SpecErrorKind::Unreachable,
                format!("state {s} is unreachable"),
            ));
        }
        Ok(EntryVectors { inputs, outputs })
    }
}

/// The Figure-1-style two-state example used by the quickstart: an
/// `a+ b+ / y+` burst followed by `a- b- / y-`.
pub fn figure1_example() -> BurstSpec {
    let mut burst_in = Bits::new(2);
    burst_in.set(0, true);
    burst_in.set(1, true);
    let mut burst_out = Bits::new(1);
    burst_out.set(0, true);
    BurstSpec {
        name: "figure1".to_owned(),
        input_names: vec!["a".into(), "b".into()],
        output_names: vec!["y".into()],
        num_states: 2,
        edges: vec![
            BurstEdge {
                from: StateId(0),
                to: StateId(1),
                input_burst: burst_in.clone(),
                output_burst: burst_out.clone(),
            },
            BurstEdge {
                from: StateId(1),
                to: StateId(0),
                input_burst: burst_in,
                output_burst: burst_out,
            },
        ],
        initial_inputs: Bits::new(2),
        initial_outputs: Bits::new(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_validates() {
        let spec = figure1_example();
        let entry = spec.validate().unwrap();
        // State 1 is entered with a=b=1, y=1.
        let v1 = entry.inputs[1].as_ref().unwrap();
        assert!(v1.get(0) && v1.get(1));
        assert!(entry.outputs[1].as_ref().unwrap().get(0));
    }

    #[test]
    fn empty_burst_rejected() {
        let mut spec = figure1_example();
        spec.edges[0].input_burst = Bits::new(2);
        let e = spec.validate().unwrap_err();
        assert!(e.to_string().contains("empty input burst"));
    }

    #[test]
    fn subset_burst_rejected() {
        let mut spec = figure1_example();
        // Add a second edge from state 0 whose burst {a} ⊂ {a,b}.
        let mut small = Bits::new(2);
        small.set(0, true);
        spec.num_states = 3;
        spec.edges.push(BurstEdge {
            from: StateId(0),
            to: StateId(2),
            input_burst: small,
            output_burst: Bits::new(1),
        });
        let e = spec.validate().unwrap_err();
        assert!(e.to_string().contains("subset"));
        assert_eq!(e.kind, SpecErrorKind::MaximalSet);
    }

    #[test]
    fn identical_bursts_rejected_as_indistinguishable() {
        let mut spec = figure1_example();
        // A second edge from state 0 with the *same* burst {a,b}: the
        // machine cannot tell which transition fired.
        spec.num_states = 3;
        spec.edges.push(BurstEdge {
            from: StateId(0),
            to: StateId(2),
            input_burst: spec.edges[0].input_burst.clone(),
            output_burst: Bits::new(1),
        });
        let e = spec.validate().unwrap_err();
        assert_eq!(e.kind, SpecErrorKind::Indistinguishable);
        assert!(e.to_string().contains("indistinguishable"), "{e}");
    }

    #[test]
    fn error_kinds_are_typed() {
        let mut spec = figure1_example();
        spec.edges[0].input_burst = Bits::new(2);
        assert_eq!(spec.validate().unwrap_err().kind, SpecErrorKind::EmptyBurst);
        let mut spec = figure1_example();
        spec.edges[0].to = StateId(7);
        assert_eq!(
            spec.validate().unwrap_err().kind,
            SpecErrorKind::DanglingState
        );
        let mut spec = figure1_example();
        spec.num_states = 3;
        assert_eq!(
            spec.validate().unwrap_err().kind,
            SpecErrorKind::Unreachable
        );
    }

    #[test]
    fn inconsistent_entry_rejected() {
        let mut spec = figure1_example();
        // Returning edge toggles only a: state 0 re-entered with b=1.
        let mut only_a = Bits::new(2);
        only_a.set(0, true);
        spec.edges[1].input_burst = only_a;
        let e = spec.validate().unwrap_err();
        assert!(e.to_string().contains("inconsistent entry inputs"));
    }

    #[test]
    fn unreachable_state_rejected() {
        let mut spec = figure1_example();
        spec.num_states = 3;
        let e = spec.validate().unwrap_err();
        assert!(e.to_string().contains("unreachable"));
    }
}
