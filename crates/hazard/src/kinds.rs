//! Hazard descriptors and hazard reports.
//!
//! A descriptor identifies a *family of hazardous transitions* of one
//! implementation structure:
//!
//! * [`Hazard::Static1`] — a 1→1 transition span not held by any single
//!   gate (§4.1.1);
//! * [`Hazard::Static0`] — a 0→0 transition glitching through a vacuous
//!   product (§4.1.2);
//! * [`Hazard::DynamicMic`] — a multi-input-change dynamic hazard: a
//!   function-hazard-free transition space intersected by a gate that does
//!   not hold the settling endpoint (§4.2.1, Theorem 4.1);
//! * [`Hazard::DynamicSic`] — a single-input-change dynamic hazard from a
//!   reconvergent vacuous product (§4.2.3).

use asyncmap_cube::{Cover, Cube, VarId, VarTable};
use std::fmt;

/// One logic hazard of an implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hazard {
    /// Static logic 1-hazard: the transitions inside `span` (a 1-1
    /// transition region, i.e. an implicant) are not covered by any single
    /// gate.
    Static1 {
        /// The uncovered transition region.
        span: Cube,
    },
    /// Static logic 0-hazard: with the inputs in `condition`, a change of
    /// `var` can pulse the output through a vacuous product.
    Static0 {
        /// The variable whose change excites the hazard.
        var: VarId,
        /// Assignments of the remaining variables that sensitize the pulse.
        condition: Cover,
    },
    /// Multi-input-change dynamic logic hazard on the transition space
    /// `space = T[zero_end, one_end]`.
    DynamicMic {
        /// The minimal function-hazard-free transition space.
        space: Cube,
        /// Endpoints where the function is 0.
        zero_end: Cube,
        /// Endpoints where the function is 1 (the settling side).
        one_end: Cube,
    },
    /// Single-input-change dynamic logic hazard: with the inputs in
    /// `condition`, the change of `var` that moves the output in the
    /// `rising` direction can glitch.
    DynamicSic {
        /// The changing variable.
        var: VarId,
        /// `true` when the output transition is 0→1.
        rising: bool,
        /// Sensitizing assignments of the remaining variables.
        condition: Cover,
    },
}

impl Hazard {
    /// Coarse class of the hazard, for reporting.
    pub fn kind(&self) -> HazardKind {
        match self {
            Hazard::Static1 { .. } => HazardKind::Static1,
            Hazard::Static0 { .. } => HazardKind::Static0,
            Hazard::DynamicMic { .. } => HazardKind::DynamicMic,
            Hazard::DynamicSic { .. } => HazardKind::DynamicSic,
        }
    }

    /// Renders the hazard with variable names from `vars`.
    pub fn display<'a>(&'a self, vars: &'a VarTable) -> DisplayHazard<'a> {
        DisplayHazard { hazard: self, vars }
    }
}

/// The four hazard classes of the paper's taxonomy (logic hazards only;
/// function hazards are implementation-independent and never reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HazardKind {
    /// Static logic 1-hazard.
    Static1,
    /// Static logic 0-hazard.
    Static0,
    /// Multi-input-change dynamic logic hazard.
    DynamicMic,
    /// Single-input-change dynamic logic hazard.
    DynamicSic,
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HazardKind::Static1 => write!(f, "static-1"),
            HazardKind::Static0 => write!(f, "static-0"),
            HazardKind::DynamicMic => write!(f, "dynamic (m.i.c.)"),
            HazardKind::DynamicSic => write!(f, "dynamic (s.i.c.)"),
        }
    }
}

/// Helper returned by [`Hazard::display`].
#[derive(Debug)]
pub struct DisplayHazard<'a> {
    hazard: &'a Hazard,
    vars: &'a VarTable,
}

impl fmt::Display for DisplayHazard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hazard {
            Hazard::Static1 { span } => {
                write!(f, "static-1 over {}", span.display(self.vars))
            }
            Hazard::Static0 { var, condition } => write!(
                f,
                "static-0 on {} when {}",
                self.vars.name(*var),
                condition.display(self.vars)
            ),
            Hazard::DynamicMic {
                space,
                zero_end,
                one_end,
            } => write!(
                f,
                "dynamic m.i.c. in T[{}, {}] (space {})",
                zero_end.display(self.vars),
                one_end.display(self.vars),
                space.display(self.vars)
            ),
            Hazard::DynamicSic {
                var,
                rising,
                condition,
            } => write!(
                f,
                "dynamic s.i.c. on {} ({}) when {}",
                self.vars.name(*var),
                if *rising { "0→1" } else { "1→0" },
                condition.display(self.vars)
            ),
        }
    }
}

/// The full logic-hazard characterization of one implementation structure
/// (a library cell's BFF or a mapped subnetwork), as computed by
/// [`crate::analyze_expr`].
#[derive(Debug, Clone)]
pub struct HazardReport {
    /// Width of the variable space the descriptors live in.
    pub nvars: usize,
    /// Static 1-hazards.
    pub static1: Vec<Hazard>,
    /// Static 0-hazards.
    pub static0: Vec<Hazard>,
    /// Multi-input-change dynamic hazards.
    pub dynamic_mic: Vec<Hazard>,
    /// Single-input-change dynamic hazards.
    pub dynamic_sic: Vec<Hazard>,
    /// The hazard-preserving two-level flattening of the structure (proper
    /// products only), used by the per-transition checks.
    pub flat: Cover,
}

impl HazardReport {
    /// Total number of hazard descriptors.
    pub fn total(&self) -> usize {
        self.static1.len() + self.static0.len() + self.dynamic_mic.len() + self.dynamic_sic.len()
    }

    /// `true` when the structure has no logic hazards of any class.
    pub fn is_hazard_free(&self) -> bool {
        self.total() == 0
    }

    /// Iterator over all descriptors, static hazards first.
    pub fn iter(&self) -> impl Iterator<Item = &Hazard> {
        self.static1
            .iter()
            .chain(&self.static0)
            .chain(&self.dynamic_mic)
            .chain(&self.dynamic_sic)
    }

    /// One-line summary such as `"2 static-1, 1 dynamic (m.i.c.)"`, or
    /// `"hazard-free"`.
    pub fn summary(&self) -> String {
        if self.is_hazard_free() {
            return "hazard-free".to_owned();
        }
        let mut parts = Vec::new();
        for (list, kind) in [
            (&self.static1, HazardKind::Static1),
            (&self.static0, HazardKind::Static0),
            (&self.dynamic_mic, HazardKind::DynamicMic),
            (&self.dynamic_sic, HazardKind::DynamicSic),
        ] {
            if !list.is_empty() {
                parts.push(format!("{} {kind}", list.len()));
            }
        }
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::Cube;

    fn sample_report() -> HazardReport {
        let vars = VarTable::from_names(["a", "b"]);
        HazardReport {
            nvars: 2,
            static1: vec![Hazard::Static1 {
                span: Cube::parse("b", &vars).unwrap(),
            }],
            static0: vec![],
            dynamic_mic: vec![],
            dynamic_sic: vec![Hazard::DynamicSic {
                var: VarId(0),
                rising: true,
                condition: Cover::parse("b", &vars).unwrap(),
            }],
            flat: Cover::parse("ab + a'b", &vars).unwrap(),
        }
    }

    #[test]
    fn totals_and_summary() {
        let r = sample_report();
        assert_eq!(r.total(), 2);
        assert!(!r.is_hazard_free());
        assert_eq!(r.summary(), "1 static-1, 1 dynamic (s.i.c.)");
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn display_names_variables() {
        let vars = VarTable::from_names(["a", "b"]);
        let h = Hazard::Static1 {
            span: Cube::parse("b", &vars).unwrap(),
        };
        assert_eq!(h.display(&vars).to_string(), "static-1 over b");
        assert_eq!(h.kind(), HazardKind::Static1);
    }

    #[test]
    fn kind_display() {
        assert_eq!(HazardKind::DynamicMic.to_string(), "dynamic (m.i.c.)");
        assert_eq!(HazardKind::Static0.to_string(), "static-0");
    }

    #[test]
    fn empty_report_is_hazard_free() {
        let r = HazardReport {
            nvars: 1,
            static1: vec![],
            static0: vec![],
            dynamic_mic: vec![],
            dynamic_sic: vec![],
            flat: Cover::zero(1),
        };
        assert!(r.is_hazard_free());
        assert_eq!(r.summary(), "hazard-free");
    }
}
