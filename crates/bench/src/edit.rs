//! Seeded deterministic ECO edits over generated designs.
//!
//! An *edit* replaces one equation's cover with a minimally mutated
//! version — flip one literal's phase, add one literal, or drop one
//! literal from a single cube. After hazard-preserving decomposition each
//! such edit perturbs one cone (a single-gate-scale change), which is the
//! workload an incremental remapper is built for.
//!
//! Edits are cumulative: `generate_edits` mutates a working copy, so edit
//! *i+1* applies on top of edit *i* and the same equation may be edited
//! repeatedly. Like the design generator, the whole sequence is a pure
//! function of `(base design, count, seed)`.
//!
//! The interchange format is one `set <name> = <tokens>` line per edit,
//! using the same restricted token-SOP syntax as
//! [`crate::gen::emit_design`]; it round-trips through [`parse_edits`].

use crate::gen::cover_tokens;
use asyncmap_cube::{Cover, Cube, Phase, VarId, VarTable};
use asyncmap_network::EquationSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `count` cumulative single-equation edits of `base`, each a
/// one-literal mutation of one cube. Mutations that would be no-ops or
/// produce a tautological cover are re-rolled, so every edit really
/// changes the design.
///
/// # Panics
///
/// Panics if `base` has no equations.
pub fn generate_edits(base: &EquationSet, count: usize, seed: u64) -> Vec<(String, Cover)> {
    assert!(!base.equations.is_empty(), "cannot edit an empty design");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut working: Vec<Cover> = base.equations.iter().map(|(_, c)| c.clone()).collect();
    let mut edits = Vec::with_capacity(count);
    for _ in 0..count {
        loop {
            let ei = rng.random_range(0..working.len());
            let nvars = working[ei].nvars();
            let mut cubes: Vec<Cube> = working[ei].cubes().to_vec();
            let ci = rng.random_range(0..cubes.len());
            let lits: Vec<(VarId, Phase)> = cubes[ci].literals().collect();
            let mutated: Vec<(VarId, Phase)> = match rng.random_range(0..3usize) {
                0 => {
                    // Flip one literal's phase.
                    let li = rng.random_range(0..lits.len());
                    lits.iter()
                        .enumerate()
                        .map(|(i, &(v, p))| (v, if i == li { p.flipped() } else { p }))
                        .collect()
                }
                1 => {
                    // Add one literal on a variable the cube doesn't use.
                    let unused: Vec<usize> = (0..nvars)
                        .filter(|&v| !lits.iter().any(|(w, _)| w.index() == v))
                        .collect();
                    if unused.is_empty() {
                        continue;
                    }
                    let v = unused[rng.random_range(0..unused.len())];
                    let phase = if rng.random::<bool>() {
                        Phase::Pos
                    } else {
                        Phase::Neg
                    };
                    let mut l = lits.clone();
                    l.push((VarId(v), phase));
                    l
                }
                _ => {
                    // Drop one literal, keeping the cube non-universal.
                    if lits.len() <= 1 {
                        continue;
                    }
                    let li = rng.random_range(0..lits.len());
                    lits.iter()
                        .enumerate()
                        .filter(|&(i, _)| i != li)
                        .map(|(_, &l)| l)
                        .collect()
                }
            };
            cubes[ci] = Cube::from_literals(nvars, mutated);
            let candidate = Cover::from_cubes(nvars, cubes);
            if candidate.is_tautology() || candidate.cubes() == working[ei].cubes() {
                continue;
            }
            edits.push((base.equations[ei].0.clone(), candidate.clone()));
            working[ei] = candidate;
            break;
        }
    }
    edits
}

/// Serializes an edit sequence as `set <name> = <tokens>` lines.
pub fn emit_edits(eqs: &EquationSet, edits: &[(String, Cover)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (name, cover) in edits {
        let _ = writeln!(out, "set {name} = {}", cover_tokens(cover, &eqs.inputs));
    }
    out
}

/// Parses text produced by [`emit_edits`] against the design's variable
/// table.
///
/// # Panics
///
/// Panics on malformed input — like the design dump, this is an internal
/// interchange format.
pub fn parse_edits(text: &str, vars: &VarTable) -> Vec<(String, Cover)> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let rest = line
                .strip_prefix("set ")
                .expect("edit line must start with `set `");
            let (name, expr) = rest.split_once('=').expect("edit line without `=`");
            let cover = Cover::parse_tokens(expr.trim(), vars).expect("bad cube tokens");
            (name.trim().to_string(), cover)
        })
        .collect()
}

/// Applies an edit sequence to `base`, in order (later edits of the same
/// equation win), returning the edited design.
///
/// # Panics
///
/// Panics if an edit names an equation `base` does not have.
pub fn apply_edits(base: &EquationSet, edits: &[(String, Cover)]) -> EquationSet {
    let mut equations = base.equations.clone();
    for (name, cover) in edits {
        let slot = equations
            .iter_mut()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("edit names unknown equation {name}"));
        slot.1 = cover.clone();
    }
    EquationSet::new(base.inputs.clone(), equations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenSpec};

    fn base() -> EquationSet {
        generate(&GenSpec {
            target_gates: 400,
            inputs: 10,
            seed: 7,
        })
    }

    #[test]
    fn edits_are_deterministic() {
        let eqs = base();
        let a = generate_edits(&eqs, 8, 42);
        let b = generate_edits(&eqs, 8, 42);
        assert_eq!(a.len(), 8);
        for ((na, ca), (nb, cb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(ca.cubes(), cb.cubes());
        }
    }

    #[test]
    fn every_edit_changes_the_design() {
        let eqs = base();
        let edits = generate_edits(&eqs, 12, 3);
        let mut current = eqs;
        for (i, _) in edits.iter().enumerate() {
            let next = apply_edits(&current, &edits[i..i + 1]);
            let same = current
                .equations
                .iter()
                .zip(&next.equations)
                .all(|((_, ca), (_, cb))| ca.cubes() == cb.cubes());
            assert!(!same, "edit {i} was a no-op");
            current = next;
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let eqs = base();
        let edits = generate_edits(&eqs, 10, 11);
        let back = parse_edits(&emit_edits(&eqs, &edits), &eqs.inputs);
        assert_eq!(edits.len(), back.len());
        for ((na, ca), (nb, cb)) in edits.iter().zip(&back) {
            assert_eq!(na, nb);
            assert_eq!(ca.cubes(), cb.cubes());
        }
    }

    #[test]
    fn apply_edits_round_trips_through_design_dump() {
        let eqs = base();
        let edits = generate_edits(&eqs, 5, 19);
        let edited = apply_edits(&eqs, &edits);
        let back = crate::gen::parse_design(&crate::gen::emit_design(&edited));
        assert_eq!(edited.equations.len(), back.equations.len());
        for ((na, ca), (nb, cb)) in edited.equations.iter().zip(&back.equations) {
            assert_eq!(na, nb);
            assert_eq!(ca.cubes(), cb.cubes());
        }
    }
}
