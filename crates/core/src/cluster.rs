//! Cluster (cut) enumeration: the candidate subnetworks of a cone that the
//! matcher compares against library cells.
//!
//! A cluster rooted at gate `g` is the tree of base gates from `g` down to
//! a chosen *cut* of leaf signals. Because a cone is a tree of gates, a
//! cluster is uniquely identified by its leaf set, and enumeration is a
//! bounded product of the fanin cut sets. Bounds follow CERES: a maximum
//! gate depth (the paper's tables use "depth of 5") and a maximum leaf
//! count (the widest library cell).
//!
//! Two enumerators live here:
//!
//! * [`enumerate_clusters`] (default) — a bottom-up dynamic program in the
//!   k-feasible-cut style: sorted leaf sets are interned in a per-cone
//!   [`LeafArena`] (set equality is id equality, subset tests are a
//!   one-word bloom filter plus a merge scan), each gate's cut list is
//!   computed once from its fanins' interned lists (over-wide unions —
//!   the bulk of the cross product in wide cones — are rejected by a
//!   bloom popcount bound or an early-aborting merge before anything is
//!   hashed), dominated cuts (superset leaf set — which in a tree cone
//!   implies strictly fewer covered gates) are pruned from the
//!   match-candidate list, and the surviving cuts are materialized by a
//!   single walk that produces the packed truth table directly (one word
//!   up to 6 leaves, four words up to 8) — the cluster `Expr` is only
//!   built lazily, on first use (hazard-check interning or the >8-leaf
//!   fallback).
//! * [`enumerate_clusters_legacy`] — the original per-root recursive
//!   enumerator, kept verbatim as the reference semantics for the
//!   equivalence proptests and the CI fingerprint gate.
//!
//! The new enumerator reproduces the legacy pipeline order exactly
//! (cross-product → lexicographic sort → dedup → trivial cut first →
//! `max_cuts_per_gate` truncation → depth filter), and downstream gates
//! consume the *unpruned* truncated lists, so dominance pruning only
//! removes match candidates whose leaf sets are supersets of another
//! candidate at the same root — the mapped designs stay bit-identical on
//! the evaluation benchmarks.

use crate::truth::{self, MASKS};
use asyncmap_bff::Expr;
use asyncmap_cube::{VarId, VarTable};
use asyncmap_network::{Cone, GateOp, Network, NodeKind, SignalId};
use std::cell::OnceCell;
use std::collections::{HashMap, HashSet};

/// A candidate subnetwork for matching.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The gate whose output the cluster computes.
    pub root: SignalId,
    /// Leaf signals, deduplicated in first-visit order.
    pub leaves: Vec<SignalId>,
    /// The cluster's structure over local variables (`leaves[i]` =
    /// variable `i`).
    pub expr: Expr,
    /// Number of gates the cluster covers.
    pub num_gates: usize,
}

/// Enumeration limits.
#[derive(Debug, Clone, Copy)]
pub struct ClusterLimits {
    /// Maximum gate depth of a cluster (paper: 5).
    pub max_depth: usize,
    /// Maximum number of distinct leaves (the widest library cell).
    pub max_leaves: usize,
    /// Cap on cuts kept per gate (guards pathological cones).
    pub max_cuts_per_gate: usize,
    /// Prune match-equivalent dominated cuts from each gate's candidate
    /// list: a cut whose leaf set strictly contains another cut's, with
    /// the same support-signal sequence and the same support-projected
    /// truth table, covers strictly fewer gates at no smaller cost and is
    /// dropped before matching. Selection-safe by construction, so mapped
    /// designs are unchanged. On by default; the covering layer ignores
    /// the flag while the matcher's hazard filter is live (the dominated
    /// pair's cluster expressions differ, so hazard verdicts could too).
    pub prune_dominated: bool,
    /// Route enumeration through the legacy per-root recursive enumerator
    /// (reference semantics, slower). Off by default.
    pub legacy_enum: bool,
}

impl Default for ClusterLimits {
    fn default() -> Self {
        ClusterLimits {
            max_depth: 5,
            max_leaves: 8,
            max_cuts_per_gate: 200,
            prune_dominated: true,
            legacy_enum: false,
        }
    }
}

/// Enumerates the clusters rooted at every gate of `cone`, keyed by root
/// signal.
///
/// Uses the dominance-pruned interned-cut enumerator unless
/// [`ClusterLimits::legacy_enum`] asks for the reference path; both yield
/// clusters in the same deterministic order (trivial cut first, then
/// lexicographic by sorted leaf set).
pub fn enumerate_clusters(
    net: &Network,
    cone: &Cone,
    limits: &ClusterLimits,
) -> HashMap<SignalId, Vec<Cluster>> {
    if limits.legacy_enum {
        return enumerate_clusters_legacy(net, cone, limits);
    }
    let cuts = enumerate_cuts(net, cone, limits);
    cone.gates
        .iter()
        .map(|&g| {
            let list = cuts.clusters(g).iter().map(|c| c.to_cluster(net)).collect();
            (g, list)
        })
        .collect()
}

/// The original recursive enumerator, kept as the reference semantics for
/// equivalence tests and the CI fingerprint gate. Ignores
/// [`ClusterLimits::prune_dominated`].
#[doc(hidden)]
pub fn enumerate_clusters_legacy(
    net: &Network,
    cone: &Cone,
    limits: &ClusterLimits,
) -> HashMap<SignalId, Vec<Cluster>> {
    let cone_gates: HashSet<SignalId> = cone.gates.iter().copied().collect();
    // cuts[g] = leaf sets of clusters rooted at g, each sorted.
    let mut cuts: HashMap<SignalId, Vec<Vec<SignalId>>> = HashMap::new();
    for &g in &cone.gates {
        // cone.gates is in topological (ascending id) order.
        let NodeKind::Gate { fanin, .. } = net.node(g) else {
            unreachable!("cone gate is not a gate")
        };
        let mut gate_cuts: Vec<Vec<SignalId>> = Vec::new();
        let fanin_options: Vec<Vec<Vec<SignalId>>> = fanin
            .iter()
            .map(|&f| {
                let mut options = vec![vec![f]]; // stop at the fanin signal
                if cone_gates.contains(&f) {
                    if let Some(sub) = cuts.get(&f) {
                        options.extend(sub.iter().cloned());
                    }
                }
                options
            })
            .collect();
        cross_product(&fanin_options, &mut gate_cuts, limits.max_leaves);
        // The trivial cut (the gate's own fanin) must always survive the
        // cap: it guarantees every gate is coverable by a base cell.
        let mut trivial: Vec<SignalId> = fanin.to_vec();
        trivial.sort();
        trivial.dedup();
        gate_cuts.sort();
        gate_cuts.dedup();
        gate_cuts.retain(|c| *c != trivial);
        gate_cuts.truncate(limits.max_cuts_per_gate.saturating_sub(1));
        gate_cuts.insert(0, trivial);
        cuts.insert(g, gate_cuts);
    }
    // Materialize clusters and apply the depth bound.
    let mut out: HashMap<SignalId, Vec<Cluster>> = HashMap::new();
    for &g in &cone.gates {
        let mut clusters = Vec::new();
        for cut in &cuts[&g] {
            // Cuts are sorted and deduplicated, so membership is a binary
            // search — no per-cluster hash set.
            if let Some(cluster) = build_cluster(net, g, cut, limits) {
                clusters.push(cluster);
            }
        }
        out.insert(g, clusters);
    }
    out
}

fn cross_product(options: &[Vec<Vec<SignalId>>], out: &mut Vec<Vec<SignalId>>, max_leaves: usize) {
    fn rec(
        options: &[Vec<Vec<SignalId>>],
        idx: usize,
        acc: &mut Vec<SignalId>,
        out: &mut Vec<Vec<SignalId>>,
        max_leaves: usize,
    ) {
        if idx == options.len() {
            let mut cut = acc.clone();
            cut.sort();
            cut.dedup();
            if cut.len() <= max_leaves {
                out.push(cut);
            }
            return;
        }
        for choice in &options[idx] {
            let mark = acc.len();
            acc.extend(choice.iter().copied());
            rec(options, idx + 1, acc, out, max_leaves);
            acc.truncate(mark);
        }
    }
    let mut acc = Vec::new();
    rec(options, 0, &mut acc, out, max_leaves);
}

/// Builds the cluster for a given cut (sorted ascending), returning `None`
/// when the depth bound is exceeded.
fn build_cluster(
    net: &Network,
    root: SignalId,
    cut: &[SignalId],
    limits: &ClusterLimits,
) -> Option<Cluster> {
    let mut leaves: Vec<SignalId> = Vec::new();
    let mut num_gates = 0usize;
    let expr = walk(
        net,
        root,
        cut,
        0,
        limits.max_depth,
        &mut leaves,
        &mut num_gates,
    )?;
    Some(Cluster {
        root,
        leaves,
        expr,
        num_gates,
    })
}

#[allow(clippy::too_many_arguments)]
fn walk(
    net: &Network,
    signal: SignalId,
    cut: &[SignalId],
    depth: usize,
    max_depth: usize,
    leaves: &mut Vec<SignalId>,
    num_gates: &mut usize,
) -> Option<Expr> {
    if depth > 0 && cut.binary_search(&signal).is_ok() {
        // Leaves are few (bounded by max_leaves), so a linear scan beats
        // a hash map for variable lookup.
        let v = match leaves.iter().position(|&s| s == signal) {
            Some(i) => VarId(i),
            None => {
                leaves.push(signal);
                VarId(leaves.len() - 1)
            }
        };
        return Some(Expr::Var(v));
    }
    if depth >= max_depth {
        return None;
    }
    let NodeKind::Gate { op, fanin } = net.node(signal) else {
        // Reached a primary input that is not in the cut: the cut is
        // malformed for this walk.
        unreachable!("walk hit a non-cut input signal");
    };
    *num_gates += 1;
    let mut args = Vec::with_capacity(fanin.len());
    for &f in fanin {
        args.push(walk(net, f, cut, depth + 1, max_depth, leaves, num_gates)?);
    }
    Some(match op {
        GateOp::And => Expr::and(args),
        GateOp::Or => Expr::or(args),
        GateOp::Inv => args.into_iter().next().expect("inverter fanin").not(),
        GateOp::Buf => args.into_iter().next().expect("buffer fanin"),
    })
}

impl Cluster {
    /// A local variable table naming the cluster leaves after their network
    /// signals.
    pub fn local_vars(&self, net: &Network) -> VarTable {
        VarTable::from_names(self.leaves.iter().map(|&s| net.name(s).to_owned()))
    }
}

// ---------------------------------------------------------------------------
// Interned-cut dynamic program (the default enumerator).
// ---------------------------------------------------------------------------

/// Sentinel for an empty slot of the open-addressed intern table.
const EMPTY_SLOT: u32 = u32::MAX;

/// Per-cone interner of sorted leaf sets. Sets live concatenated in one
/// backing vector; an id is an index into the span table, so set equality
/// is id equality and every set is stored once per cone no matter how many
/// cross-product combinations produce it.
///
/// The arena is designed for reuse across cones (see [`EnumScratch`]):
/// [`LeafArena::reset`] clears the logical contents but keeps every
/// backing allocation, so in steady state interning allocates nothing.
/// The content-hash index is a flat open-addressed table (linear probing,
/// power-of-two capacity) rather than a `HashMap<u64, Vec<u32>>` — no
/// per-bucket `Vec`s to allocate, and resetting it is a single `fill`.
#[derive(Debug, Default)]
struct LeafArena {
    /// Concatenated sorted sets.
    data: Vec<SignalId>,
    /// id → (start, len) into `data`.
    spans: Vec<(u32, u32)>,
    /// id → one-word bloom signature (bit `s.index() & 63` per member):
    /// `sig(a) & !sig(b) != 0` proves `a ⊄ b` without touching the slices.
    sigs: Vec<u64>,
    /// Open-addressed intern table: set id per slot, [`EMPTY_SLOT`] when
    /// free. Capacity is a power of two.
    slots: Vec<u32>,
    /// Content hash of the set in the same slot (valid where `slots` is
    /// occupied); lets probes skip slice compares on hash mismatch.
    hashes: Vec<u64>,
    /// Number of occupied slots.
    live: usize,
}

impl LeafArena {
    /// Clears the arena for the next cone without releasing any capacity.
    fn reset(&mut self) {
        self.data.clear();
        self.spans.clear();
        self.sigs.clear();
        self.slots.fill(EMPTY_SLOT);
        self.live = 0;
    }

    fn hash_set(set: &[SignalId]) -> u64 {
        // Same multiply-rotate fold as the memo hasher; the table probes
        // from the low bits, which the xor-fold finisher keeps mixed.
        let mut h = set.len() as u64;
        for &s in set {
            h = crate::fxhash::mix(h, s.0 as u64);
        }
        crate::fxhash::finish(h)
    }

    /// Doubles (or initializes) the intern table and reinserts the live
    /// ids by their stored hashes.
    fn grow_table(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        let old: Vec<(u32, u64)> = self
            .slots
            .iter()
            .zip(&self.hashes)
            .filter(|&(&id, _)| id != EMPTY_SLOT)
            .map(|(&id, &h)| (id, h))
            .collect();
        self.slots.clear();
        self.slots.resize(new_cap, EMPTY_SLOT);
        self.hashes.clear();
        self.hashes.resize(new_cap, 0);
        let mask = new_cap - 1;
        for (id, h) in old {
            let mut i = h as usize & mask;
            while self.slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            self.slots[i] = id;
            self.hashes[i] = h;
        }
    }

    /// Interns a sorted, deduplicated set, returning its id (existing or
    /// new).
    fn intern(&mut self, set: &[SignalId]) -> u32 {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "set must be sorted");
        let h = Self::hash_set(set);
        if self.slots.is_empty() {
            self.grow_table(256);
        }
        let mask = self.slots.len() - 1;
        let mut i = h as usize & mask;
        loop {
            let id = self.slots[i];
            if id == EMPTY_SLOT {
                break;
            }
            if self.hashes[i] == h && self.slice(id) == set {
                return id;
            }
            i = (i + 1) & mask;
        }
        let id = u32::try_from(self.spans.len()).expect("leaf-set arena overflow");
        let start = u32::try_from(self.data.len()).expect("leaf-set arena overflow");
        self.data.extend_from_slice(set);
        self.spans.push((start, set.len() as u32));
        self.sigs
            .push(set.iter().fold(0u64, |a, s| a | 1 << (s.index() & 63)));
        self.slots[i] = id;
        self.hashes[i] = h;
        self.live += 1;
        // Rehash at ~3/4 load to keep probe chains short.
        if (self.live + 1) * 4 > self.slots.len() * 3 {
            self.grow_table(self.slots.len() * 2);
        }
        id
    }

    fn slice(&self, id: u32) -> &[SignalId] {
        let (start, len) = self.spans[id as usize];
        &self.data[start as usize..(start + len) as usize]
    }

    fn len_of(&self, id: u32) -> usize {
        self.spans[id as usize].1 as usize
    }

    /// Sorted-merge union of two interned sets into `out` (cleared first),
    /// aborting with `false` as soon as the union exceeds `cap` elements.
    ///
    /// Callers prefilter with the bloom signatures first:
    /// `popcount(sig(a) | sig(b))` is a lower bound on the union size
    /// (collisions only shrink it), so most over-wide pairs are rejected
    /// in three word ops without touching the slices. This matters: in the
    /// benchmark cones ~98% of cross-product pairs blow the leaf bound,
    /// and hashing them into the arena first made the enumerator slower
    /// than the legacy one.
    fn merge_bounded(&self, a: u32, b: u32, cap: usize, out: &mut Vec<SignalId>) -> bool {
        let (xs, ys) = (self.slice(a), self.slice(b));
        if xs.len().max(ys.len()) > cap {
            return false;
        }
        out.clear();
        let (mut i, mut j) = (0, 0);
        while i < xs.len() && j < ys.len() {
            if out.len() >= cap {
                return false;
            }
            match xs[i].cmp(&ys[j]) {
                std::cmp::Ordering::Less => {
                    out.push(xs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(ys[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(xs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        if out.len() + (xs.len() - i) + (ys.len() - j) > cap {
            return false;
        }
        out.extend_from_slice(&xs[i..]);
        out.extend_from_slice(&ys[j..]);
        true
    }

    /// `true` iff set `a` ⊆ set `b` (bloom prefilter, then a merge scan).
    fn is_subset(&self, a: u32, b: u32) -> bool {
        if a == b {
            return true;
        }
        if self.len_of(a) > self.len_of(b) || self.sigs[a as usize] & !self.sigs[b as usize] != 0 {
            return false;
        }
        let (xs, ys) = (self.slice(a), self.slice(b));
        let mut j = 0;
        'outer: for &x in xs {
            while j < ys.len() {
                match ys[j].cmp(&x) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }
}

/// A materialized cut: the matcher-facing view of one cluster, carrying
/// the packed truth table computed during the walk instead of an `Expr`.
/// The expression is built lazily — only hazard-check interning and the
/// wide (>6-leaf) fallback ever need it.
#[derive(Debug)]
pub(crate) struct CutCluster {
    /// The gate whose output the cluster computes.
    pub(crate) root: SignalId,
    /// Leaf signals, deduplicated in first-visit order (identical to the
    /// legacy [`Cluster::leaves`] ordering, so pin bindings and instance
    /// inputs come out bit-identical).
    pub(crate) leaves: Vec<SignalId>,
    /// Number of gates the cluster covers.
    pub(crate) num_gates: usize,
    /// Packed truth table over `leaves` (`leaves[i]` = variable `i`);
    /// `None` when the cut has more than 6 leaves.
    pub(crate) truth6: Option<u64>,
    /// The 4-word packed table for wide cuts (7–8 leaves, the bits beyond
    /// `2^nleaves` replicate the valid block); `None` past 8 leaves.
    /// Always `Some` when [`CutCluster::truth6`] is.
    pub(crate) twords: Option<[u64; 4]>,
    max_depth: usize,
    expr: OnceCell<Expr>,
}

impl CutCluster {
    /// The cluster expression, built on first use by re-walking the cone
    /// (the walk revisits leaves in the same first-visit order).
    pub(crate) fn expr(&self, net: &Network) -> &Expr {
        self.expr.get_or_init(|| {
            let mut cut = self.leaves.clone();
            cut.sort();
            let mut leaves = Vec::new();
            let mut num_gates = 0usize;
            let expr = walk(
                net,
                self.root,
                &cut,
                0,
                self.max_depth,
                &mut leaves,
                &mut num_gates,
            )
            .expect("materialized cut re-walks within the depth bound");
            debug_assert_eq!(leaves, self.leaves);
            debug_assert_eq!(num_gates, self.num_gates);
            expr
        })
    }

    /// Materializes the legacy [`Cluster`] view (eager expression).
    pub(crate) fn to_cluster(&self, net: &Network) -> Cluster {
        Cluster {
            root: self.root,
            leaves: self.leaves.clone(),
            expr: self.expr(net).clone(),
            num_gates: self.num_gates,
        }
    }
}

/// The cut sets of one cone, enumerated bottom-up with interned leaf sets
/// and dominance pruning. Storage is dense: one cluster list per cone
/// gate, aligned with the cone's (ascending) gate order — no per-cone hash
/// map.
#[derive(Debug)]
pub(crate) struct ConeCuts {
    /// The cone's gates, ascending (copied from [`Cone::gates`]).
    gates: Vec<SignalId>,
    /// Match-candidate clusters per gate, aligned with `gates`.
    lists: Vec<Vec<CutCluster>>,
    /// Number of gates whose cut list hit [`ClusterLimits::max_cuts_per_gate`]
    /// and lost cuts to truncation.
    pub(crate) truncations: usize,
}

impl ConeCuts {
    /// The match-candidate clusters rooted at `g`, trivial cut first.
    pub(crate) fn clusters(&self, g: SignalId) -> &[CutCluster] {
        let i = self
            .gates
            .binary_search(&g)
            .expect("signal is a gate of the enumerated cone");
        &self.lists[i]
    }
}

/// Reusable per-thread working state of the cut enumerator. Every buffer
/// the per-cone dynamic program needs lives here and survives across
/// cones, so after the first few cones have sized them, enumeration runs
/// allocation-free — only the returned [`ConeCuts`] (the per-cone output)
/// is freshly allocated. Capacity-growth events are counted per cone and
/// surfaced through [`crate::profile`] / [`crate::MapStats`].
#[derive(Debug, Default)]
struct EnumScratch {
    arena: LeafArena,
    /// Cone-membership stamps, indexed by signal id: `stamp[s] == generation`
    /// iff `s` is a gate of the current cone.
    stamp: Vec<u32>,
    /// Dense gate index (position in the cone's gate list) per signal id,
    /// valid where `stamp` matches the current generation.
    dense: Vec<u32>,
    generation: u32,
    /// CSR storage of the per-gate post-truncation cut-id lists consumed
    /// by downstream cross-products: `cut_spans[k]` is the `(start, len)`
    /// of gate `k`'s ids in `cut_data`.
    cut_data: Vec<u32>,
    cut_spans: Vec<(u32, u32)>,
    /// The current gate's cut ids while being built, sorted and truncated.
    gate_buf: Vec<u32>,
    /// Output buffer of [`LeafArena::merge_bounded`].
    merge: Vec<SignalId>,
    /// Sorted/deduped trivial-cut buffer.
    trivial_buf: Vec<SignalId>,
    /// Interned ids of the current gate's materialized clusters (parallel
    /// to the list under construction), for the dominance subset tests.
    mat_ids: Vec<u32>,
    /// Dominance-key support signals, concatenated; keys hold spans.
    key_sigs: Vec<SignalId>,
    /// Dominance keys: `(start, len)` into `key_sigs` plus the projected
    /// truth table; `None` for wide (>6-leaf) cuts.
    keys: Vec<Option<(u32, u32, u64)>>,
    keep: Vec<bool>,
}

/// Capacity snapshot of every [`EnumScratch`] buffer, for counting
/// allocation (capacity-growth) events per cone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ScratchCaps {
    caps: [usize; 12],
}

impl EnumScratch {
    fn capacities(&self) -> ScratchCaps {
        ScratchCaps {
            caps: [
                self.arena.data.capacity(),
                self.arena.spans.capacity(),
                self.arena.sigs.capacity(),
                self.arena.slots.len(),
                self.stamp.capacity(),
                self.cut_data.capacity(),
                self.cut_spans.capacity(),
                self.gate_buf.capacity(),
                self.merge.capacity(),
                self.trivial_buf.capacity(),
                self.key_sigs.capacity(),
                self.keys.capacity(),
            ],
        }
    }

    /// Number of buffers that grew since `before` — each one is at least
    /// one heap (re)allocation.
    fn growth_events(&self, before: &ScratchCaps) -> usize {
        let now = self.capacities();
        now.caps
            .iter()
            .zip(&before.caps)
            .filter(|(a, b)| a != b)
            .count()
    }
}

thread_local! {
    /// One [`EnumScratch`] per mapping thread: `enumerate_cuts` is called
    /// once per cone from the covering loop, and the scratch keeps its
    /// capacity across cones (and across designs within a process).
    static SCRATCH: std::cell::RefCell<EnumScratch> =
        std::cell::RefCell::new(EnumScratch::default());
}

/// Bottom-up cut enumeration over `cone`: one pass over the gates in
/// topological order, each gate's cut list built from its fanins' interned
/// lists. Downstream gates consume the truncated-but-unpruned lists (the
/// exact legacy sets); dominance pruning applies to the materialized
/// match-candidate lists only.
///
/// All working storage comes from the thread-local [`EnumScratch`], so in
/// steady state the dynamic program allocates only its output.
pub(crate) fn enumerate_cuts(net: &Network, cone: &Cone, limits: &ClusterLimits) -> ConeCuts {
    SCRATCH.with(|s| enumerate_cuts_in(&mut s.borrow_mut(), net, cone, limits))
}

fn enumerate_cuts_in(
    scr: &mut EnumScratch,
    net: &Network,
    cone: &Cone,
    limits: &ClusterLimits,
) -> ConeCuts {
    let caps_before = scr.capacities();
    scr.arena.reset();
    scr.cut_data.clear();
    scr.cut_spans.clear();
    // Stamp the cone's gates with a fresh generation; on (u32) wraparound
    // clear the stamps once.
    scr.generation = scr.generation.wrapping_add(1);
    if scr.generation == 0 {
        scr.stamp.fill(0);
        scr.generation = 1;
    }
    let max_id = cone.gates.last().map_or(0, |g| g.0 + 1);
    if scr.stamp.len() < max_id {
        scr.stamp.resize(max_id, 0);
        scr.dense.resize(max_id, 0);
    }
    for (k, &g) in cone.gates.iter().enumerate() {
        scr.stamp[g.0] = scr.generation;
        scr.dense[g.0] = k as u32;
    }
    // Disjoint field borrows for the main loop.
    let EnumScratch {
        arena,
        stamp,
        dense,
        generation,
        cut_data,
        cut_spans,
        gate_buf,
        merge,
        trivial_buf,
        mat_ids,
        key_sigs,
        keys,
        keep,
    } = scr;
    let generation = *generation;
    // Sub-cut span of fanin `f`: its CSR range when `f` is a cone gate
    // (always already processed — `cone.gates` is topological), else empty.
    let sub_span = |f: SignalId, cut_spans: &[(u32, u32)], k: usize| -> (u32, u32) {
        if f.0 < stamp.len() && stamp[f.0] == generation {
            let d = dense[f.0] as usize;
            debug_assert!(d < k, "fanin gate follows its user in cone order");
            cut_spans[d]
        } else {
            (0, 0)
        }
    };
    let mut lists: Vec<Vec<CutCluster>> = Vec::with_capacity(cone.gates.len());
    let mut truncations = 0usize;
    for (k, &g) in cone.gates.iter().enumerate() {
        let NodeKind::Gate { fanin, .. } = net.node(g) else {
            unreachable!("cone gate is not a gate")
        };
        // Cross product of the fanin option lists (trivial leaf first,
        // then the fanin's own cuts), merging interned sets pairwise.
        // Arity is at most 2, so the product is two nested loops — no
        // recursion, no per-gate option vectors. Over-wide unions — the
        // bulk of the product in wide cones — are rejected by a bloom
        // popcount bound or an early-aborting merge before anything is
        // hashed or interned.
        gate_buf.clear();
        let f0 = fanin[0];
        let s0 = arena.intern(&[f0]);
        let (r0_start, r0_len) = sub_span(f0, cut_spans, k);
        match fanin.len() {
            1 => {
                for i in 0..=r0_len as usize {
                    let choice = if i == 0 {
                        s0
                    } else {
                        cut_data[r0_start as usize + i - 1]
                    };
                    if arena.len_of(choice) > limits.max_leaves {
                        continue;
                    }
                    gate_buf.push(choice);
                }
            }
            2 => {
                let f1 = fanin[1];
                let s1 = arena.intern(&[f1]);
                let (r1_start, r1_len) = sub_span(f1, cut_spans, k);
                for i in 0..=r0_len as usize {
                    let a = if i == 0 {
                        s0
                    } else {
                        cut_data[r0_start as usize + i - 1]
                    };
                    if arena.len_of(a) > limits.max_leaves {
                        continue;
                    }
                    cross_pairs(
                        arena,
                        a,
                        s1,
                        (r1_start, r1_len),
                        cut_data,
                        limits.max_leaves,
                        gate_buf,
                        merge,
                    );
                }
            }
            n => unreachable!("base-gate arity {n}"),
        }
        // Legacy pipeline order: sort lexicographically by set content,
        // dedup (same content ⇒ same id), pull the trivial cut to the
        // front, truncate.
        trivial_buf.clear();
        trivial_buf.extend_from_slice(fanin);
        trivial_buf.sort();
        trivial_buf.dedup();
        let trivial = arena.intern(trivial_buf);
        gate_buf.sort_by(|&a, &b| arena.slice(a).cmp(arena.slice(b)));
        gate_buf.dedup();
        gate_buf.retain(|&c| c != trivial);
        let cap = limits.max_cuts_per_gate.saturating_sub(1);
        if gate_buf.len() > cap {
            truncations += 1;
        }
        gate_buf.truncate(cap);
        gate_buf.insert(0, trivial);
        // Publish the post-truncation ids for downstream cross-products.
        let start = u32::try_from(cut_data.len()).expect("cut CSR overflow");
        cut_data.extend_from_slice(gate_buf);
        cut_spans.push((start, gate_buf.len() as u32));
        // Materialize (depth filter happens in the walk), then prune
        // dominated candidates: a cut whose leaf set strictly contains a
        // surviving cut's covers strictly fewer gates — drop it. The
        // trivial cut (index 0) is never pruned: it guarantees every gate
        // stays coverable by a base cell.
        let mut list: Vec<CutCluster> = Vec::with_capacity(gate_buf.len());
        mat_ids.clear();
        for &id in gate_buf.iter() {
            let mut leaves = Vec::with_capacity(arena.len_of(id));
            let mut num_gates = 0usize;
            let Some(twords) = walk_truth(
                net,
                g,
                arena.slice(id),
                0,
                limits.max_depth,
                &mut leaves,
                &mut num_gates,
            ) else {
                continue;
            };
            let truth6 = if leaves.len() <= 6 {
                let w = twords.expect("≤6 leaves always packs");
                Some(w[0] & truth::full_mask(leaves.len()))
            } else {
                None
            };
            mat_ids.push(id);
            list.push(CutCluster {
                root: g,
                leaves,
                num_gates,
                truth6,
                twords,
                max_depth: limits.max_depth,
                expr: OnceCell::new(),
            });
        }
        if limits.prune_dominated && list.len() > 1 {
            // Match-equivalent dominance: cut B is dominated by cut A when
            // leaves(A) ⊊ leaves(B) and both present the matcher with the
            // very same candidate — identical support-signal sequence and
            // identical support-projected truth table. The two then yield
            // identical match lists and pin bindings, and B's candidates
            // carry a superset of A's gate leaves, so B can never win the
            // covering DP (extra gate leaves cost strictly positive area;
            // an exact tie means the candidates are interchangeable).
            // Naive leaf-set dominance is NOT selection-safe: the smaller
            // cut's function may have no library match while the larger
            // one's does, which the equal-truth condition rules out. The
            // trivial cut (index 0) is never pruned.
            key_sigs.clear();
            keys.clear();
            for c in &list {
                keys.push((|| {
                    let t = c.truth6?;
                    let n = c.leaves.len();
                    let mut sup = [0usize; 6];
                    let mut ns = 0usize;
                    for v in 0..n {
                        if truth::depends6(t, n, v) {
                            sup[ns] = v;
                            ns += 1;
                        }
                    }
                    let start = key_sigs.len() as u32;
                    for &v in &sup[..ns] {
                        key_sigs.push(c.leaves[v]);
                    }
                    let proj = truth::project6(t, &sup[..ns]);
                    Some((start, ns as u32, proj))
                })());
            }
            keep.clear();
            keep.resize(list.len(), true);
            let key_eq = |x: &(u32, u32, u64), y: &(u32, u32, u64)| {
                x.2 == y.2
                    && key_sigs[x.0 as usize..(x.0 + x.1) as usize]
                        == key_sigs[y.0 as usize..(y.0 + y.1) as usize]
            };
            for j in 1..list.len() {
                let Some(kj) = &keys[j] else { continue };
                for i in 0..list.len() {
                    if i == j || !keep[i] {
                        continue;
                    }
                    let Some(ki) = &keys[i] else { continue };
                    if key_eq(ki, kj) && arena.is_subset(mat_ids[i], mat_ids[j]) {
                        debug_assert!(
                            list[i].num_gates > list[j].num_gates,
                            "a sub-cut covers strictly more gates"
                        );
                        keep[j] = false;
                        break;
                    }
                }
            }
            let mut it = keep.iter();
            list.retain(|_| *it.next().expect("keep mask aligned"));
        }
        lists.push(list);
    }
    let grown = scr.growth_events(&caps_before);
    crate::profile::record_enum_cone(grown as u64);
    ConeCuts {
        gates: cone.gates.clone(),
        lists,
        truncations,
    }
}

/// Inner cross-product loop: pairs the accumulated set `a` with every
/// option of the second fanin (trivial leaf `s1` first, then the CSR span
/// `r1` of its own cuts), pushing each in-bound union's interned id.
///
/// The bloom popcount lower bound on the union size (distinct signals can
/// only collide in the bloom word, never split) rejects most over-wide
/// pairs before the merge; the sub-cut spans are screened four lanes at a
/// time with [`U64x4`] so the filter runs word-parallel.
#[allow(clippy::too_many_arguments)]
fn cross_pairs(
    arena: &mut LeafArena,
    a: u32,
    s1: u32,
    r1: (u32, u32),
    cut_data: &[u32],
    max_leaves: usize,
    out: &mut Vec<u32>,
    merge: &mut Vec<SignalId>,
) {
    let sa = arena.sigs[a as usize];
    // The trivial second option first (legacy option order).
    let lb = (sa | arena.sigs[s1 as usize]).count_ones();
    if lb as usize <= max_leaves && arena.merge_bounded(a, s1, max_leaves, merge) {
        out.push(arena.intern(merge));
    }
    let subs = &cut_data[r1.0 as usize..(r1.0 + r1.1) as usize];
    #[cfg(not(feature = "scalar-kernels"))]
    {
        use asyncmap_cube::simd::{U64x4, LANES};
        let sa4 = U64x4::splat(sa);
        for chunk in subs.chunks(LANES) {
            // Gather the candidates' bloom words; padding lanes get all
            // ones (popcount 64, never under any real leaf bound).
            let sg = U64x4(std::array::from_fn(|i| {
                chunk.get(i).map_or(!0u64, |&c| arena.sigs[c as usize])
            }));
            let counts = (sa4 | sg).count_ones_per_lane();
            for (i, &c) in chunk.iter().enumerate() {
                if counts[i] as usize > max_leaves {
                    continue;
                }
                if !arena.merge_bounded(a, c, max_leaves, merge) {
                    continue;
                }
                out.push(arena.intern(merge));
            }
        }
    }
    #[cfg(feature = "scalar-kernels")]
    {
        for &c in subs {
            let lb = (sa | arena.sigs[c as usize]).count_ones();
            if lb as usize > max_leaves {
                continue;
            }
            if !arena.merge_bounded(a, c, max_leaves, merge) {
                continue;
            }
            out.push(arena.intern(merge));
        }
    }
}

/// Leaf masks for the wide 4-word (256-minterm, ≤ 8-variable) packed
/// tables: variable `v` is true exactly on the minterms whose bit `v` is
/// set. The first six rows replicate the one-word [`MASKS`] patterns;
/// variables 6 and 7 toggle at word granularity.
const WMASKS: [[u64; 4]; 8] = [
    [MASKS[0]; 4],
    [MASKS[1]; 4],
    [MASKS[2]; 4],
    [MASKS[3]; 4],
    [MASKS[4]; 4],
    [MASKS[5]; 4],
    [0, !0, 0, !0],
    [0, 0, !0, !0],
];

/// The materialization walk: identical traversal to [`walk`] (first-visit
/// leaf order, stop at the first cut member, depth bound), but computes
/// the packed truth table words directly instead of building an `Expr`.
///
/// Returns `None` when the depth bound is exceeded. The inner option is
/// the 4-word table accumulator (good for up to 8 variables): it poisons
/// to `None` once a leaf index reaches 8 (the final table is only
/// meaningful when the finished leaf list has ≤ 8 entries). For a 7-leaf
/// cut the upper two words duplicate the lower two, so the full array is
/// still a deterministic function of the cluster — usable as a memo key.
#[allow(clippy::too_many_arguments)]
fn walk_truth(
    net: &Network,
    signal: SignalId,
    cut: &[SignalId],
    depth: usize,
    max_depth: usize,
    leaves: &mut Vec<SignalId>,
    num_gates: &mut usize,
) -> Option<Option<[u64; 4]>> {
    if depth > 0 && cut.binary_search(&signal).is_ok() {
        let v = match leaves.iter().position(|&s| s == signal) {
            Some(i) => i,
            None => {
                leaves.push(signal);
                leaves.len() - 1
            }
        };
        return Some((v < 8).then(|| WMASKS[v]));
    }
    if depth >= max_depth {
        return None;
    }
    let NodeKind::Gate { op, fanin } = net.node(signal) else {
        unreachable!("walk hit a non-cut input signal");
    };
    *num_gates += 1;
    let words = match op {
        GateOp::And => {
            let mut acc = Some([!0u64; 4]);
            for &f in fanin {
                let w = walk_truth(net, f, cut, depth + 1, max_depth, leaves, num_gates)?;
                acc = acc.zip(w).map(|(a, b)| and4(a, b));
            }
            acc
        }
        GateOp::Or => {
            let mut acc = Some([0u64; 4]);
            for &f in fanin {
                let w = walk_truth(net, f, cut, depth + 1, max_depth, leaves, num_gates)?;
                acc = acc.zip(w).map(|(a, b)| or4(a, b));
            }
            acc
        }
        GateOp::Inv => {
            let f = *fanin.first().expect("inverter fanin");
            walk_truth(net, f, cut, depth + 1, max_depth, leaves, num_gates)?.map(not4)
        }
        GateOp::Buf => {
            let f = *fanin.first().expect("buffer fanin");
            walk_truth(net, f, cut, depth + 1, max_depth, leaves, num_gates)?
        }
    };
    Some(words)
}

// 4-word table combiners for the walk: one `U64x4` op per fold step on the
// lane-widened build, a plain per-word loop on the scalar fallback.

#[inline]
fn and4(a: [u64; 4], b: [u64; 4]) -> [u64; 4] {
    #[cfg(not(feature = "scalar-kernels"))]
    {
        (asyncmap_cube::U64x4(a) & asyncmap_cube::U64x4(b)).to_array()
    }
    #[cfg(feature = "scalar-kernels")]
    {
        std::array::from_fn(|i| a[i] & b[i])
    }
}

#[inline]
fn or4(a: [u64; 4], b: [u64; 4]) -> [u64; 4] {
    #[cfg(not(feature = "scalar-kernels"))]
    {
        (asyncmap_cube::U64x4(a) | asyncmap_cube::U64x4(b)).to_array()
    }
    #[cfg(feature = "scalar-kernels")]
    {
        std::array::from_fn(|i| a[i] | b[i])
    }
}

#[inline]
fn not4(a: [u64; 4]) -> [u64; 4] {
    #[cfg(not(feature = "scalar-kernels"))]
    {
        (!asyncmap_cube::U64x4(a)).to_array()
    }
    #[cfg(feature = "scalar-kernels")]
    {
        a.map(|x| !x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::Cover;
    use asyncmap_network::{async_tech_decomp, partition, EquationSet};

    fn cone_of(text: &str, names: &[&str]) -> (Network, Cone) {
        let vars = VarTable::from_names(names.iter().copied());
        let f = Cover::parse(text, &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        assert_eq!(cones.len(), 1);
        let cone = cones[0].clone();
        (net, cone)
    }

    #[test]
    fn every_gate_has_its_trivial_cluster() {
        let (net, cone) = cone_of("ab + a'c", &["a", "b", "c"]);
        let clusters = enumerate_clusters(&net, &cone, &ClusterLimits::default());
        for g in &cone.gates {
            let list = &clusters[g];
            assert!(
                list.iter().any(|c| c.num_gates == 1),
                "gate {g} lacks its single-gate cluster"
            );
        }
    }

    #[test]
    fn root_cluster_can_cover_whole_cone() {
        let (net, cone) = cone_of("ab + a'c", &["a", "b", "c"]);
        let clusters = enumerate_clusters(&net, &cone, &ClusterLimits::default());
        let at_root = &clusters[&cone.root];
        let full = at_root
            .iter()
            .find(|c| c.num_gates == cone.num_gates())
            .expect("whole-cone cluster missing");
        // Function check: full cluster computes ab + a'c over its leaves.
        let local = full.local_vars(&net);
        let want = Cover::parse_tokens("a*b + a'*c", &local).unwrap();
        for m in 0..8usize {
            let mut bits = asyncmap_cube::Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(full.expr.eval(&bits), want.eval(&bits));
        }
    }

    #[test]
    fn depth_bound_limits_clusters() {
        let (net, cone) = cone_of("abcd + a'b'c'd'", &["a", "b", "c", "d"]);
        let tight = ClusterLimits {
            max_depth: 1,
            ..ClusterLimits::default()
        };
        let clusters = enumerate_clusters(&net, &cone, &tight);
        for list in clusters.values() {
            for c in list {
                assert_eq!(c.num_gates, 1, "depth-1 cluster covers one gate");
            }
        }
    }

    #[test]
    fn leaf_limit_enforced() {
        let (net, cone) = cone_of("abcd + a'b'c'd'", &["a", "b", "c", "d"]);
        let limits = ClusterLimits {
            max_leaves: 3,
            ..ClusterLimits::default()
        };
        let clusters = enumerate_clusters(&net, &cone, &limits);
        for list in clusters.values() {
            for c in list {
                assert!(c.leaves.len() <= 3);
            }
        }
    }

    #[test]
    fn repeated_input_is_one_leaf() {
        // f = ab + ab': input a feeds two AND gates inside the cone.
        let (net, cone) = cone_of("ab + ab'", &["a", "b"]);
        let clusters = enumerate_clusters(&net, &cone, &ClusterLimits::default());
        let at_root = &clusters[&cone.root];
        let full = at_root.iter().max_by_key(|c| c.num_gates).unwrap();
        // Leaves are a and b only (a deduplicated).
        assert!(full.leaves.len() <= 3); // a, b, and possibly the INV output
    }

    #[test]
    fn arena_interns_once_and_tests_subsets() {
        let mut arena = LeafArena::default();
        let s = |i: usize| SignalId(i);
        let a = arena.intern(&[s(1), s(3)]);
        let b = arena.intern(&[s(1), s(2), s(3)]);
        assert_eq!(arena.intern(&[s(1), s(3)]), a, "re-intern returns the id");
        assert!(arena.is_subset(a, b));
        assert!(!arena.is_subset(b, a));
        assert!(arena.is_subset(a, a));
        // Bloom collisions (64 apart) still answer correctly.
        let c = arena.intern(&[s(65)]);
        let d = arena.intern(&[s(1)]);
        assert!(!arena.is_subset(c, d));
        let mut merged = Vec::new();
        assert!(arena.merge_bounded(a, c, 8, &mut merged));
        assert_eq!(merged, vec![s(1), s(3), s(65)]);
        // The bounded merge aborts as soon as the union exceeds the cap.
        assert!(!arena.merge_bounded(a, c, 2, &mut merged));
        assert!(
            arena.merge_bounded(a, b, 3, &mut merged),
            "union is a,b's 3"
        );
    }

    /// The pruned enumerator yields a subset of the legacy clusters: every
    /// surviving cluster exists verbatim in the legacy list, every legacy
    /// cluster that was dropped is dominated by a surviving one, and with
    /// pruning disabled the two lists are identical.
    #[test]
    fn pruned_enumeration_is_a_dominance_subset_of_legacy() {
        for (text, names) in [
            ("ab + a'c + bc", vec!["a", "b", "c"]),
            ("ab' + cd + a'd'", vec!["a", "b", "c", "d"]),
            ("ab + ab'", vec!["a", "b"]),
        ] {
            let (net, cone) = cone_of(text, &names);
            let limits = ClusterLimits::default();
            let new = enumerate_clusters(&net, &cone, &limits);
            let legacy = enumerate_clusters_legacy(&net, &cone, &limits);
            let unpruned = enumerate_clusters(
                &net,
                &cone,
                &ClusterLimits {
                    prune_dominated: false,
                    ..limits
                },
            );
            for g in &cone.gates {
                let key = |c: &Cluster| (c.leaves.clone(), c.num_gates, format!("{:?}", c.expr));
                let new_keys: Vec<_> = new[g].iter().map(key).collect();
                let legacy_keys: Vec<_> = legacy[g].iter().map(key).collect();
                let unpruned_keys: Vec<_> = unpruned[g].iter().map(key).collect();
                assert_eq!(unpruned_keys, legacy_keys, "{text}: unpruned != legacy");
                // Pruned list is an ordered subset…
                let mut it = legacy_keys.iter();
                for k in &new_keys {
                    assert!(
                        it.any(|l| l == k),
                        "{text}: pruned cluster not in legacy order"
                    );
                }
                // …and everything dropped is match-equivalent dominated by
                // a survivor: subset leaves, same support-signal sequence,
                // same support-projected truth.
                let match_key = |c: &Cluster| {
                    let n = c.leaves.len();
                    let t = truth::truth6_of(&c.expr, n);
                    let support: Vec<usize> =
                        (0..n).filter(|&v| truth::depends6(t, n, v)).collect();
                    let sigs: Vec<SignalId> = support.iter().map(|&v| c.leaves[v]).collect();
                    (sigs, truth::project6(t, &support))
                };
                for dropped in legacy[g].iter().filter(|c| {
                    let k = key(c);
                    !new_keys.contains(&k)
                }) {
                    let mut d_set = dropped.leaves.clone();
                    d_set.sort();
                    let dominated = new[g].iter().any(|kept| {
                        let mut k_set = kept.leaves.clone();
                        k_set.sort();
                        kept.num_gates > dropped.num_gates
                            && k_set.iter().all(|s| d_set.binary_search(s).is_ok())
                            && match_key(kept) == match_key(dropped)
                    });
                    assert!(dominated, "{text}: dropped cluster is not dominated");
                }
            }
        }
    }

    #[test]
    fn truncation_events_are_counted() {
        let (net, cone) = cone_of("ab' + cd + a'd'", &["a", "b", "c", "d"]);
        let roomy = enumerate_cuts(&net, &cone, &ClusterLimits::default());
        assert_eq!(roomy.truncations, 0, "default cap is not hit here");
        let tight = ClusterLimits {
            max_cuts_per_gate: 2,
            ..ClusterLimits::default()
        };
        let truncated = enumerate_cuts(&net, &cone, &tight);
        assert!(truncated.truncations > 0, "cap 2 must truncate some gate");
        for &g in &cone.gates {
            assert!(!truncated.clusters(g).is_empty(), "trivial cut survives");
        }
    }

    #[test]
    fn cut_cluster_truth_matches_lazy_expr() {
        let (net, cone) = cone_of("ab + a'c + bc", &["a", "b", "c"]);
        let cuts = enumerate_cuts(&net, &cone, &ClusterLimits::default());
        let mut checked = 0;
        for &g in &cone.gates {
            for c in cuts.clusters(g) {
                let t = c.truth6.expect("≤6 leaves on this cone");
                assert_eq!(
                    t,
                    truth::truth6_of(c.expr(&net), c.leaves.len()),
                    "walk truth diverges from expression truth"
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    /// The 4-word wide tables from the walk agree with the `Expr`-derived
    /// word-blocked tables on 7–8 leaf cuts (the wide matcher path keys
    /// its memo on these words, so any divergence would corrupt matching).
    #[test]
    fn wide_cut_words_match_lazy_expr() {
        let (net, cone) = cone_of(
            "ab + cd + ef + gh",
            &["a", "b", "c", "d", "e", "f", "g", "h"],
        );
        let cuts = enumerate_cuts(&net, &cone, &ClusterLimits::default());
        let mut wide_checked = 0;
        for &g in &cone.gates {
            for c in cuts.clusters(g) {
                let n = c.leaves.len();
                let words = c.twords.expect("≤8 leaves on this cone");
                let want = truth::truth_table_words(c.expr(&net), n);
                if n > 6 {
                    assert_eq!(
                        &words[..1 << (n - 6)],
                        want.words(),
                        "wide walk words diverge from expression truth at {n} leaves"
                    );
                    wide_checked += 1;
                } else {
                    assert_eq!(words[0] & truth::full_mask(n), c.truth6.unwrap());
                }
            }
        }
        assert!(wide_checked > 0, "cone produced no wide cuts");
    }
}
