//! Audit findings and reports: the shared `asyncmap-report` machinery
//! (machine-readable `family.kind` codes, severity levels, info notes
//! that never make a report unclean) specialized with the audit's work
//! counters.

pub use asyncmap_report::{Finding, Severity};
use asyncmap_report::{Report, Totals};

/// What the audit examined, for report context.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuditCounters {
    /// Decomposition rewrite steps replayed.
    pub rewrite_steps: usize,
    /// End-to-end equation certificates replayed.
    pub equations: usize,
    /// Partition cut certificates replayed.
    pub cut_points: usize,
    /// Cones re-walked against the partition trace.
    pub cones: usize,
    /// Flatten collapse traces replayed.
    pub flatten_traces: usize,
    /// Cones whose flatten replay was skipped (product count over the
    /// replay cap).
    pub flatten_skipped: usize,
    /// Hazard-monotonicity re-checks run through the full
    /// `reverify_containment` / exhaustive-sweep ladder.
    pub hazard_rechecks: usize,
    /// Hazard re-checks on supports too wide for the exact sweep, where
    /// only the flatten-equality / static-1 necessary condition ran.
    pub hazard_partial: usize,
    /// Functional-equivalence proofs discharged with packed truth tables.
    pub truth_proofs: usize,
    /// Functional-equivalence proofs discharged with the BDD fallback.
    pub bdd_proofs: usize,
    /// Burst-mode spec states checked.
    pub spec_states: usize,
    /// Burst-mode spec edges checked.
    pub spec_edges: usize,
    /// Rewrite steps whose equivalence/monotonicity obligations were
    /// discharged by an identical prior clean replay (cached audit only;
    /// counted inside [`AuditCounters::rewrite_steps`]).
    pub reused_steps: usize,
    /// Equation certificates likewise discharged by reuse (counted inside
    /// [`AuditCounters::equations`]).
    pub reused_equations: usize,
    /// Flatten collapses likewise discharged by reuse (counted inside
    /// [`AuditCounters::flatten_traces`]).
    pub reused_flattens: usize,
}

impl AuditCounters {
    /// Total certificates replayed (rewrite steps, equation certificates,
    /// cut points and flatten traces).
    pub fn num_certificates(&self) -> usize {
        self.rewrite_steps + self.equations + self.cut_points + self.flatten_traces
    }
}

impl asyncmap_report::Counters for AuditCounters {
    fn summarize(&self, totals: &Totals, out: &mut String) {
        out.push_str(&format!(
            "audit: {} finding(s) ({} error(s)), {} note(s) over {} rewrite step(s), \
             {} equation(s), {} cut point(s), {} flatten trace(s); \
             {} hazard re-check(s) ({} partial), {} truth / {} BDD equivalence proof(s)\n",
            totals.findings,
            totals.errors,
            totals.notes,
            self.rewrite_steps,
            self.equations,
            self.cut_points,
            self.flatten_traces,
            self.hazard_rechecks,
            self.hazard_partial,
            self.truth_proofs,
            self.bdd_proofs,
        ));
        let reused = self.reused_steps + self.reused_equations + self.reused_flattens;
        if reused > 0 {
            out.push_str(&format!(
                "audit: {} step(s), {} equation(s), {} flatten(s) reused from a prior clean replay\n",
                self.reused_steps, self.reused_equations, self.reused_flattens,
            ));
        }
    }

    fn absorb(&mut self, other: &Self) {
        self.rewrite_steps += other.rewrite_steps;
        self.equations += other.equations;
        self.cut_points += other.cut_points;
        self.cones += other.cones;
        self.flatten_traces += other.flatten_traces;
        self.flatten_skipped += other.flatten_skipped;
        self.hazard_rechecks += other.hazard_rechecks;
        self.hazard_partial += other.hazard_partial;
        self.truth_proofs += other.truth_proofs;
        self.bdd_proofs += other.bdd_proofs;
        self.spec_states += other.spec_states;
        self.spec_edges += other.spec_edges;
        self.reused_steps += other.reused_steps;
        self.reused_equations += other.reused_equations;
        self.reused_flattens += other.reused_flattens;
    }
}

/// The result of one audit run: the shared [`Report`] over
/// [`AuditCounters`].
pub type AuditReport = Report<AuditCounters>;
