//! Cubes (product terms) in the `USED`/`PHASE` bit-vector encoding of the
//! paper (§4.1.1, Figure 5).
//!
//! A cube over `n` variables is a pair of `n`-bit vectors:
//!
//! * `USED[i]` — variable `i` appears as a literal in the product;
//! * `PHASE[i]` — when used, `1` means the positive literal `xᵢ`, `0` the
//!   complemented literal `xᵢ'`.
//!
//! The invariant `PHASE ⊆ USED` (phase bits of unused variables are zero) is
//! maintained by every constructor; it is what makes the paper's one-line
//! consensus construction (`OR` the vectors, mask the conflict bit) correct.

use crate::{Bits, VarId};
use std::fmt;

/// The phase of a literal inside a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The positive literal `x`.
    Pos,
    /// The complemented literal `x'`.
    Neg,
}

impl Phase {
    /// `true` for [`Phase::Pos`].
    pub fn is_pos(self) -> bool {
        matches!(self, Phase::Pos)
    }

    /// The opposite phase.
    pub fn flipped(self) -> Phase {
        match self {
            Phase::Pos => Phase::Neg,
            Phase::Neg => Phase::Pos,
        }
    }
}

/// A product term over a fixed variable space, stored as `USED`/`PHASE`
/// bit vectors (paper, Figure 5).
///
/// A `Cube` denotes the set of minterms consistent with its literals; the
/// cube with no literals is the universe. Contradictory products (containing
/// `x·x'`) are *not representable*: operations that would produce one return
/// `None` (see [`Cube::intersect`]). Contradictory products that arise from
/// flattening multi-level logic are handled at the path-expression layer in
/// `asyncmap-bff`, not here.
///
/// # Examples
///
/// ```
/// use asyncmap_cube::{Cube, VarTable};
/// let vars = VarTable::from_names(["w", "x", "y", "z"]);
/// let wxy = Cube::parse("w'xy", &vars).unwrap();
/// let all = Cube::universe(vars.len());
/// assert!(all.contains(&wxy));
/// assert_eq!(wxy.num_literals(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    used: Bits,
    phase: Bits,
}

impl Cube {
    /// The universe cube (no literals) over `nvars` variables.
    pub fn universe(nvars: usize) -> Self {
        Cube {
            used: Bits::new(nvars),
            phase: Bits::new(nvars),
        }
    }

    /// Builds a cube from `(variable, phase)` literal pairs.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range, or if the same variable
    /// appears with both phases (a contradictory product).
    pub fn from_literals<I>(nvars: usize, literals: I) -> Self
    where
        I: IntoIterator<Item = (VarId, Phase)>,
    {
        let mut c = Cube::universe(nvars);
        for (v, p) in literals {
            if c.used.get(v.index()) {
                assert_eq!(
                    c.phase.get(v.index()),
                    p.is_pos(),
                    "contradictory literal for {v} in Cube::from_literals"
                );
            }
            c.used.set(v.index(), true);
            c.phase.set(v.index(), p.is_pos());
        }
        c
    }

    /// Builds the minterm cube for an assignment over all `bits.len()`
    /// variables (every variable used, phase taken from `bits`).
    pub fn minterm(bits: &Bits) -> Self {
        Cube {
            used: Bits::ones(bits.len()),
            phase: bits.clone(),
        }
    }

    /// Builds a cube from raw `USED`/`PHASE` vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or a phase bit is set for an
    /// unused variable (violating the representation invariant).
    pub fn from_bits(used: Bits, phase: Bits) -> Self {
        assert_eq!(used.len(), phase.len(), "USED/PHASE length mismatch");
        assert!(
            phase.is_subset(&used),
            "PHASE bit set for unused variable in Cube::from_bits"
        );
        Cube { used, phase }
    }

    /// Parses a product of single-letter literals such as `"w'xy z"`.
    ///
    /// Each alphabetic character names a variable of `vars`; a following `'`
    /// complements it. Whitespace and `*` are ignored. `"1"` denotes the
    /// universe cube.
    ///
    /// # Errors
    ///
    /// Returns an error if a character is not a known variable, or if a
    /// variable appears with both phases.
    pub fn parse(text: &str, vars: &crate::VarTable) -> Result<Self, crate::ParseSopError> {
        crate::parse::parse_cube_letters(text, vars)
    }

    /// The `USED` bit vector.
    pub fn used(&self) -> &Bits {
        &self.used
    }

    /// The `PHASE` bit vector.
    pub fn phase(&self) -> &Bits {
        &self.phase
    }

    /// Number of variables in the cube's space.
    pub fn nvars(&self) -> usize {
        self.used.len()
    }

    /// Number of literals in the product.
    pub fn num_literals(&self) -> u32 {
        self.used.count_ones()
    }

    /// `true` if the cube has no literals (denotes the whole space).
    pub fn is_universe(&self) -> bool {
        self.used.is_zero()
    }

    /// `true` if every variable is used (the cube is a single minterm).
    pub fn is_minterm(&self) -> bool {
        self.used.count_ones() as usize == self.nvars()
    }

    /// The phase of `v` in this cube, or `None` if `v` is unused.
    pub fn literal(&self, v: VarId) -> Option<Phase> {
        if self.used.get(v.index()) {
            Some(if self.phase.get(v.index()) {
                Phase::Pos
            } else {
                Phase::Neg
            })
        } else {
            None
        }
    }

    /// Iterator over the cube's literals as `(VarId, Phase)` pairs.
    pub fn literals(&self) -> impl Iterator<Item = (VarId, Phase)> + '_ {
        self.used.iter_ones().map(move |i| {
            (
                VarId(i),
                if self.phase.get(i) {
                    Phase::Pos
                } else {
                    Phase::Neg
                },
            )
        })
    }

    /// Set containment: `true` iff every minterm of `other` is in `self`
    /// (i.e. `self`'s literals are a subset of `other`'s, with equal phases).
    pub fn contains(&self, other: &Cube) -> bool {
        // Fused word walk: USED₁ ⊆ USED₂ and phases agree wherever USED₁.
        let (u1, p1) = (self.used.words(), self.phase.words());
        let (u2, p2) = (other.used.words(), other.phase.words());
        debug_assert_eq!(u1.len(), u2.len());
        crate::simd::contains_words(u1, p1, u2, p2)
    }

    /// Number of conflicting variables: used in both cubes with opposite
    /// phases. This is the population count of the paper's `CONFLICTS`
    /// vector.
    pub fn distance(&self, other: &Cube) -> u32 {
        let (u1, p1) = (self.used.words(), self.phase.words());
        let (u2, p2) = (other.used.words(), other.phase.words());
        debug_assert_eq!(u1.len(), u2.len());
        crate::simd::distance_words(u1, p1, u2, p2)
    }

    /// The paper's `CONFLICTS` vector:
    /// `(USED₁ & USED₂) & (PHASE₁ ⊕ PHASE₂)`.
    pub fn conflicts(&self, other: &Cube) -> Bits {
        let (u1, p1) = (self.used.words(), self.phase.words());
        let (u2, p2) = (other.used.words(), other.phase.words());
        debug_assert_eq!(u1.len(), u2.len());
        Bits::from_words_fn(self.nvars(), |i| (u1[i] & u2[i]) & (p1[i] ^ p2[i]))
    }

    /// `true` if the cubes conflict in at least one variable (their
    /// intersection is empty). Equivalent to `distance(other) > 0` without
    /// building the `CONFLICTS` vector.
    pub fn conflicts_with(&self, other: &Cube) -> bool {
        let (u1, p1) = (self.used.words(), self.phase.words());
        let (u2, p2) = (other.used.words(), other.phase.words());
        debug_assert_eq!(u1.len(), u2.len());
        crate::simd::conflicts_any_words(u1, p1, u2, p2)
    }

    /// Intersection of two cubes, or `None` if they conflict (the
    /// intersection is empty).
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        if self.conflicts_with(other) {
            return None;
        }
        Some(Cube {
            used: self.used.or(&other.used),
            phase: self.phase.or(&other.phase),
        })
    }

    /// The supercube (smallest cube containing both operands). For cube
    /// endpoints `α`, `β` this is the *transition space* `T[α, β]` of
    /// Definition 4.2.
    pub fn supercube(&self, other: &Cube) -> Cube {
        let (u1, p1) = (self.used.words(), self.phase.words());
        let (u2, p2) = (other.used.words(), other.phase.words());
        debug_assert_eq!(u1.len(), u2.len());
        let used = Bits::from_words_fn(self.nvars(), |i| (u1[i] & u2[i]) & !(p1[i] ^ p2[i]));
        let uw = used.words();
        let phase = Bits::from_words_fn(self.nvars(), |i| p1[i] & uw[i]);
        Cube { used, phase }
    }

    /// The consensus of two *adjacent* cubes (distance exactly 1): the OR of
    /// the two cubes with the conflicting literal masked out (paper,
    /// Figure 5). Returns `None` when the distance is not 1.
    ///
    /// For adjacent implicants the result is itself an implicant spanning the
    /// transition between them; uncovered consensus cubes identify static
    /// logic 1-hazards (§4.1.1).
    /// # Examples
    ///
    /// ```
    /// use asyncmap_cube::{Cube, VarTable};
    /// let vars = VarTable::from_names(["w", "x", "y", "z"]);
    /// let a = Cube::parse("w'xyz", &vars)?;
    /// let b = Cube::parse("wxyz", &vars)?;
    /// assert_eq!(a.adjacency(&b), Some(Cube::parse("xyz", &vars)?));
    /// # Ok::<(), asyncmap_cube::ParseSopError>(())
    /// ```
    pub fn adjacency(&self, other: &Cube) -> Option<Cube> {
        if self.distance(other) != 1 {
            return None;
        }
        let conflicts = self.conflicts(other);
        let (u1, p1) = (self.used.words(), self.phase.words());
        let (u2, p2) = (other.used.words(), other.phase.words());
        let cw = conflicts.words();
        Some(Cube {
            used: Bits::from_words_fn(self.nvars(), |i| (u1[i] | u2[i]) & !cw[i]),
            phase: Bits::from_words_fn(self.nvars(), |i| (p1[i] | p2[i]) & !cw[i]),
        })
    }

    /// The general consensus on variable `v`: the product of all literals of
    /// both cubes except `v`. Returns `None` when the cubes conflict in a
    /// variable other than `v`, or do not conflict in `v` at all.
    pub fn consensus(&self, other: &Cube, v: VarId) -> Option<Cube> {
        let conflicts = self.conflicts(other);
        if conflicts.count_ones() == 0 || !conflicts.get(v.index()) {
            return None;
        }
        let mut mask = Bits::new(self.nvars());
        mask.set(v.index(), true);
        if !conflicts.and_not(&mask).is_zero() {
            return None;
        }
        Some(Cube {
            used: self.used.or(&other.used).and_not(&mask),
            phase: self.phase.or(&other.phase).and_not(&mask),
        })
    }

    /// Removes variable `v` from the cube (widening it), returning the new
    /// cube. If `v` was unused, the cube is returned unchanged.
    pub fn without_var(&self, v: VarId) -> Cube {
        let mut c = self.clone();
        c.clear_var(v);
        c
    }

    /// Removes variable `v` from the cube in place (widening it). No-op if
    /// `v` was unused.
    pub fn clear_var(&mut self, v: VarId) {
        self.used.set(v.index(), false);
        self.phase.set(v.index(), false);
    }

    /// Cofactor with respect to every literal of `other` in one word-level
    /// pass: `None` if the cubes conflict (the cofactor is empty), otherwise
    /// `self` with all of `other`'s variables dropped. Equivalent to folding
    /// [`Cube::cofactor`] over `other.literals()`.
    pub fn cofactor_cube(&self, other: &Cube) -> Option<Cube> {
        if self.conflicts_with(other) {
            return None;
        }
        let (u1, p1) = (self.used.words(), self.phase.words());
        let u2 = other.used.words();
        Some(Cube {
            used: Bits::from_words_fn(self.nvars(), |i| u1[i] & !u2[i]),
            phase: Bits::from_words_fn(self.nvars(), |i| p1[i] & !u2[i]),
        })
    }

    /// Returns the cube with the phase of literal `v` complemented.
    ///
    /// Used by `findMicDynHaz2level` (§4.2.1) to walk to the subcubes
    /// adjacent to a cube intersection.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not used in the cube.
    pub fn with_var_flipped(&self, v: VarId) -> Cube {
        assert!(
            self.used.get(v.index()),
            "cannot flip unused variable {v} in cube"
        );
        let mut c = self.clone();
        c.phase.flip(v.index());
        c
    }

    /// Cofactor with respect to the literal `(v, phase)`. Returns `None` if
    /// the cube contains the opposite literal (the cofactor is empty);
    /// otherwise the cube with `v` dropped.
    pub fn cofactor(&self, v: VarId, phase: Phase) -> Option<Cube> {
        match self.literal(v) {
            Some(p) if p != phase => None,
            _ => Some(self.without_var(v)),
        }
    }

    /// Evaluates the cube at a full assignment (bit `i` of `assignment` is
    /// the value of variable `i`).
    pub fn eval(&self, assignment: &Bits) -> bool {
        debug_assert_eq!(assignment.len(), self.nvars());
        let (u, p, a) = (self.used.words(), self.phase.words(), assignment.words());
        crate::simd::eval_words(u, p, a)
    }

    /// Number of minterms the cube contains.
    pub fn num_minterms(&self) -> u64 {
        let free = self.nvars() as u32 - self.num_literals();
        1u64 << free.min(63)
    }

    /// Iterator over all minterm assignments contained in the cube.
    ///
    /// Intended for small cubes (exponential in the number of free
    /// variables); used by test oracles and transition-space enumeration.
    pub fn minterms(&self) -> Minterms {
        let free: Vec<usize> = (0..self.nvars()).filter(|&i| !self.used.get(i)).collect();
        Minterms {
            base: self.phase.clone(),
            free,
            next: 0,
            count: 1u64 << (self.nvars() as u32 - self.num_literals()).min(63),
        }
    }

    /// Renders the cube with variable names from `vars`, e.g. `"w'xy"`.
    /// The universe cube renders as `"1"`.
    pub fn display<'a>(&'a self, vars: &'a crate::VarTable) -> DisplayCube<'a> {
        DisplayCube { cube: self, vars }
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_universe() {
            return write!(f, "Cube(1)");
        }
        write!(f, "Cube(")?;
        for (v, p) in self.literals() {
            write!(f, "x{}{}", v.0, if p.is_pos() { "" } else { "'" })?;
        }
        write!(f, ")")
    }
}

/// Iterator over minterm assignments of a cube, produced by
/// [`Cube::minterms`].
#[derive(Debug)]
pub struct Minterms {
    base: Bits,
    free: Vec<usize>,
    next: u64,
    count: u64,
}

impl Iterator for Minterms {
    type Item = Bits;

    fn next(&mut self) -> Option<Bits> {
        if self.next >= self.count {
            return None;
        }
        let mut m = self.base.clone();
        for (bit, &var) in self.free.iter().enumerate() {
            m.set(var, (self.next >> bit) & 1 == 1);
        }
        self.next += 1;
        Some(m)
    }
}

/// Helper returned by [`Cube::display`].
#[derive(Debug)]
pub struct DisplayCube<'a> {
    cube: &'a Cube,
    vars: &'a crate::VarTable,
}

impl fmt::Display for DisplayCube<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cube.is_universe() {
            return write!(f, "1");
        }
        // Single-letter variables render in the paper's juxtaposition
        // style (`w'xz`); multi-character names need a separator.
        let juxtapose = self
            .cube
            .literals()
            .all(|(v, _)| self.vars.name(v).chars().count() == 1);
        for (i, (v, p)) in self.cube.literals().enumerate() {
            if i > 0 && !juxtapose {
                write!(f, "*")?;
            }
            write!(
                f,
                "{}{}",
                self.vars.name(v),
                if p.is_pos() { "" } else { "'" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarTable;

    fn wxyz() -> VarTable {
        VarTable::from_names(["w", "x", "y", "z"])
    }

    fn c(text: &str, vars: &VarTable) -> Cube {
        Cube::parse(text, vars).unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let vars = wxyz();
        let cube = c("w'xz", &vars);
        assert_eq!(cube.display(&vars).to_string(), "w'xz");
        assert_eq!(cube.num_literals(), 3);
        assert_eq!(cube.literal(vars.lookup("w").unwrap()), Some(Phase::Neg));
        assert_eq!(cube.literal(vars.lookup("y").unwrap()), None);
    }

    #[test]
    fn universe_contains_everything() {
        let vars = wxyz();
        let u = Cube::universe(4);
        assert!(u.is_universe());
        assert!(u.contains(&c("wxyz", &vars)));
        assert!(!c("w", &vars).contains(&u));
        assert_eq!(u.display(&vars).to_string(), "1");
    }

    #[test]
    fn containment_is_literal_subset() {
        let vars = wxyz();
        assert!(c("wx", &vars).contains(&c("wxy", &vars)));
        assert!(!c("wxy", &vars).contains(&c("wx", &vars)));
        assert!(!c("wx", &vars).contains(&c("w'xy", &vars)));
        assert!(c("wx", &vars).contains(&c("wx", &vars)));
    }

    #[test]
    fn conflicts_vector_matches_paper_formula() {
        // Paper Figure 5: cubes w'xyz and wxyz conflict exactly in w.
        let vars = wxyz();
        let a = c("w'xyz", &vars);
        let b = c("wxyz", &vars);
        let conf = a.conflicts(&b);
        assert_eq!(conf.iter_ones().collect::<Vec<_>>(), vec![0]);
        assert_eq!(a.distance(&b), 1);
    }

    #[test]
    fn adjacency_generates_consensus() {
        // Paper Figure 5: adjacency of w'xyz and wxyz is xyz.
        let vars = wxyz();
        let a = c("w'xyz", &vars);
        let b = c("wxyz", &vars);
        assert_eq!(a.adjacency(&b).unwrap(), c("xyz", &vars));
    }

    #[test]
    fn adjacency_requires_distance_one() {
        let vars = wxyz();
        assert!(c("wx", &vars).adjacency(&c("w'x'", &vars)).is_none());
        // Distance zero (overlapping cubes) also yields no adjacency.
        assert!(c("wx", &vars).adjacency(&c("xy", &vars)).is_none());
    }

    #[test]
    fn adjacency_keeps_unshared_literals() {
        // ab + a'c -> consensus bc.
        let vars = VarTable::from_names(["a", "b", "c"]);
        let ab = c("ab", &vars);
        let a_c = c("a'c", &vars);
        assert_eq!(ab.adjacency(&a_c).unwrap(), c("bc", &vars));
    }

    #[test]
    fn consensus_on_explicit_variable() {
        let vars = wxyz();
        let a = c("wx", &vars);
        let b = c("w'y", &vars);
        let w = vars.lookup("w").unwrap();
        assert_eq!(a.consensus(&b, w).unwrap(), c("xy", &vars));
        // Wrong variable: no consensus.
        assert!(a.consensus(&b, vars.lookup("x").unwrap()).is_none());
        // Two conflicts: no consensus.
        let d = c("w'x'", &vars);
        assert!(a.consensus(&d, w).is_none());
    }

    #[test]
    fn intersect_joins_literals() {
        let vars = wxyz();
        assert_eq!(
            c("wx", &vars).intersect(&c("yz'", &vars)).unwrap(),
            c("wxyz'", &vars)
        );
        assert!(c("wx", &vars).intersect(&c("w'y", &vars)).is_none());
    }

    #[test]
    fn supercube_is_transition_space() {
        let vars = wxyz();
        // T[w'x'yz, wxyz] spans w and x.
        let t = c("w'x'yz", &vars).supercube(&c("wxyz", &vars));
        assert_eq!(t, c("yz", &vars));
        assert!(t.contains(&c("w'xyz", &vars)));
    }

    #[test]
    fn supercube_of_equal_cubes_is_identity() {
        let vars = wxyz();
        let a = c("w'xz", &vars);
        assert_eq!(a.supercube(&a), a);
    }

    #[test]
    fn eval_checks_phase_agreement() {
        let vars = wxyz();
        let cube = c("w'xz", &vars);
        let mut a = Bits::new(4);
        a.set(1, true); // x = 1
        a.set(3, true); // z = 1
        assert!(cube.eval(&a)); // w=0 x=1 y=0 z=1
        a.set(0, true); // w = 1 violates w'
        assert!(!cube.eval(&a));
    }

    #[test]
    fn minterms_enumerates_cube() {
        let vars = wxyz();
        let cube = c("wx", &vars);
        let ms: Vec<Bits> = cube.minterms().collect();
        assert_eq!(ms.len(), 4);
        for m in &ms {
            assert!(cube.eval(m));
        }
        assert_eq!(cube.num_minterms(), 4);
    }

    #[test]
    fn flip_and_without_var() {
        let vars = wxyz();
        let cube = c("w'xz", &vars);
        let w = vars.lookup("w").unwrap();
        assert_eq!(cube.with_var_flipped(w), c("wxz", &vars));
        assert_eq!(cube.without_var(w), c("xz", &vars));
        let y = vars.lookup("y").unwrap();
        assert_eq!(cube.without_var(y), cube);
    }

    #[test]
    #[should_panic(expected = "cannot flip unused variable")]
    fn flip_unused_panics() {
        let vars = wxyz();
        c("xz", &vars).with_var_flipped(vars.lookup("w").unwrap());
    }

    #[test]
    fn cofactor_drops_or_empties() {
        let vars = wxyz();
        let cube = c("w'xz", &vars);
        let w = vars.lookup("w").unwrap();
        assert_eq!(cube.cofactor(w, Phase::Neg).unwrap(), c("xz", &vars));
        assert!(cube.cofactor(w, Phase::Pos).is_none());
        let y = vars.lookup("y").unwrap();
        assert_eq!(cube.cofactor(y, Phase::Pos).unwrap(), cube);
    }

    #[test]
    fn cofactor_cube_matches_literal_fold() {
        let vars = wxyz();
        let cube = c("w'xz", &vars);
        // Non-conflicting: drops the shared variables in one pass.
        assert_eq!(
            cube.cofactor_cube(&c("w'y", &vars)).unwrap(),
            c("xz", &vars)
        );
        // Conflicting: empty cofactor.
        assert!(cube.cofactor_cube(&c("w", &vars)).is_none());
        assert!(cube.conflicts_with(&c("w", &vars)));
        assert!(!cube.conflicts_with(&c("w'y", &vars)));
        // Universe cofactor is the identity.
        assert_eq!(cube.cofactor_cube(&Cube::universe(4)).unwrap(), cube);
    }

    #[test]
    fn minterm_constructor_uses_all_vars() {
        let mut bits = Bits::new(4);
        bits.set(2, true);
        let m = Cube::minterm(&bits);
        assert!(m.is_minterm());
        assert!(m.eval(&bits));
    }

    #[test]
    #[should_panic(expected = "PHASE bit set for unused variable")]
    fn from_bits_enforces_invariant() {
        let used = Bits::new(4);
        let mut phase = Bits::new(4);
        phase.set(1, true);
        Cube::from_bits(used, phase);
    }
}
