//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build container has no network access and no vendored registry, so
//! the real `proptest` cannot be fetched. This crate re-implements the
//! surface the workspace's property tests use — the `proptest!`,
//! `prop_compose!`, `prop_oneof!` and `prop_assert*!` macros, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, range/tuple/`Vec` strategies, `Just`, `any`,
//! `prop::collection::vec` and `ProptestConfig::with_cases` — as a plain
//! deterministic random-case runner.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * no shrinking: a failing case panics with the generated-case index and
//!   the assertion message (the deterministic per-test-name RNG makes every
//!   failure reproducible by rerunning the test);
//! * no persistence: `*.proptest-regressions` files are ignored;
//! * value distribution differs from upstream, so case streams are not
//!   comparable with historical runs.

#![forbid(unsafe_code)]

/// Deterministic case runner plumbing: RNG, config and failure type.
pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name),
        /// so every test gets its own reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }
    }

    /// Runner configuration; only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each `proptest!` test executes.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property assertion (carried by `prop_assert*!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of random values, mirroring proptest's `Strategy`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy::from_fn(move |rng| s.generate(rng))
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let s = self;
            BoxedStrategy::from_fn(move |rng| f(s.generate(rng)))
        }

        /// Chains into a value-dependent follow-up strategy.
        fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
        where
            Self: Sized + 'static,
            S2: Strategy,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            let s = self;
            BoxedStrategy::from_fn(move |rng| f(s.generate(rng)).generate(rng))
        }

        /// Recursive strategy: `recurse` receives the current level and
        /// returns the next-deeper one; each level falls back to the base
        /// with probability 1/3, bounding expected tree depth by `depth`.
        /// The `_desired_size` / `_expected_branch` hints are ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                current = one_of(vec![base.clone(), deeper.clone(), deeper]);
            }
            current
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        generate: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                generate: Rc::clone(&self.generate),
            }
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generation closure.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy {
                generate: Rc::new(f),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generate)(rng)
        }

        fn boxed(self) -> BoxedStrategy<T>
        where
            Self: Sized + 'static,
        {
            self
        }
    }

    /// Builds a strategy from a generation closure (used by
    /// `prop_compose!`).
    pub fn from_fn<T>(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy::from_fn(f)
    }

    /// Uniform choice among type-erased alternatives (used by
    /// `prop_oneof!`).
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn one_of<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy::from_fn(move |rng| {
            let pick = rng.below(arms.len() as u64) as usize;
            arms[pick].generate(rng)
        })
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty as $wide:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide - self.start as $wide) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    signed_range_strategy!(i32 as i64, i64 as i128);

    /// Every element strategy of the `Vec` draws one value.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 S0)
        (0 S0, 1 S1)
        (0 S0, 1 S1, 2 S2)
        (0 S0, 1 S1, 2 S2, 3 S3)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
    }
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The full-range strategy for the type.
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    struct FromRng<T>(fn(&mut TestRng) -> T);

    impl<T> Strategy for FromRng<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    FromRng(|rng: &mut TestRng| rng.next_u64() as $t).boxed()
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            FromRng(|rng: &mut TestRng| rng.next_u64() & 1 == 1).boxed()
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `sizes` and whose elements are
    /// drawn from `element`.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `sizes` is empty.
    pub fn vec<S>(element: S, sizes: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy::from_fn(move |rng| {
            assert!(sizes.start < sizes.end, "empty vec size range");
            let span = (sizes.end - sizes.start) as u64;
            let len = sizes.start + rng.below(span) as usize;
            (0..len).map(|_| element.generate(rng)).collect()
        })
    }
}

/// Module-style access (`prop::collection::vec`), mirroring the upstream
/// prelude.
pub mod prop {
    pub use crate::collection;
}

/// The common import set: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Declares property tests. Each test draws its bindings `cases` times
/// (from `proptest_config`, default 256) and panics on the first failing
/// case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $crate::__proptest_bind!(rng, $($params)*);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Expands the binding list of a `proptest!` test function: either
/// `pat in strategy` draws or `name: Type` draws (the latter via
/// `any::<Type>()`, mirroring real proptest), in any mix.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $var:ident: $ty:ty) => {
        let $var = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
    };
    ($rng:ident, $var:ident: $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_bind!($rng, $var: $ty);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_bind!($rng, $pat in $strat);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Declares a named strategy-returning function from bindings and a body.
#[macro_export]
macro_rules! prop_compose {
    ( $(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
      ($($var:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |rng| {
                $(let $var = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Property assertion; fails the current case (with message) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u8..10, b in 0u8..10) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, pair in arb_pair()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(pair.0 < 10 && pair.1 < 10);
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1u8), (5u8..7).prop_map(|v| v)]) {
            prop_assert!(x == 1 || x == 5 || x == 6);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::from_name("recursive");
        for _ in 0..100 {
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf => 0,
                    Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
                }
            }
            let t = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 3);
        }
    }
}
