//! Preflight qualification end to end: builtin (benchmark, library)
//! pairs qualify with zero errors, the deliberately broken fixtures are
//! rejected with their expected finding codes, and the good BLIF +
//! genlib fixture pair round-trips through map → lint → audit → analyze
//! with a stable design fingerprint.

use asyncmap::blif::{parse_blif, CollapseLimits};
use asyncmap::genlib::parse_genlib;
use asyncmap::preflight::{preflight, preflight_blif, preflight_genlib, preflight_pair};
use asyncmap::prelude::*;

fn fixture(name: &str) -> String {
    std::fs::read_to_string(format!("tests/fixtures/{name}")).unwrap()
}

#[test]
fn builtin_pairs_qualify_with_zero_errors() {
    for bench in ["vanbek-opt", "dme-fast", "pe-send-ifc", "scsi"] {
        let eqs = asyncmap::burst::benchmark(bench);
        for lib in builtin::all_libraries() {
            let report = preflight(&eqs, &lib);
            assert_eq!(
                report.num_errors(),
                0,
                "{bench} x {}:\n{}",
                lib.name(),
                report.render()
            );
        }
    }
}

#[test]
fn bad_phase_genlib_is_rejected_with_function_mismatch() {
    let parsed = parse_genlib(&fixture("bad_phase.genlib"), "bad_phase").unwrap();
    let (report, _) = preflight_genlib(&parsed);
    assert!(report.num_errors() > 0);
    let mismatches: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.code == "library.function-mismatch")
        .collect();
    assert!(!mismatches.is_empty(), "{}", report.render());
    assert!(
        mismatches.iter().all(|f| f.path.contains("NAND2X")),
        "only the broken cell is flagged: {}",
        report.render()
    );
}

#[test]
fn bad_cycle_blif_is_rejected_with_design_cycle() {
    let net = parse_blif(&fixture("bad_cycle.blif"), "bad_cycle").unwrap();
    let (report, eqs) = preflight_blif(&net);
    assert!(eqs.is_none(), "a cyclic netlist cannot collapse");
    assert!(report.num_errors() > 0);
    assert!(
        report.findings.iter().any(|f| f.code == "design.cycle"),
        "{}",
        report.render()
    );
}

#[test]
fn fixture_pair_round_trips_map_lint_audit_analyze() {
    // Preflight qualifies the pair.
    let parsed = parse_genlib(&fixture("mcnc_like.genlib"), "mcnc_like").unwrap();
    let (lib_report, mut lib) = preflight_genlib(&parsed);
    assert_eq!(lib_report.num_errors(), 0, "{}", lib_report.render());

    let net = parse_blif(&fixture("ctrl_like.blif"), "ctrl_like").unwrap();
    let (design_report, eqs) = preflight_blif(&net);
    assert_eq!(design_report.num_errors(), 0, "{}", design_report.render());
    let eqs = eqs.expect("ctrl_like collapses");
    let pair_report = preflight_pair(&eqs, &lib);
    assert_eq!(pair_report.num_errors(), 0, "{}", pair_report.render());

    // Map the qualified pair and verify it from every angle.
    lib.annotate_hazards();
    let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
    assert!(design.verify_function(&lib));
    assert!(design.verify_hazards(&lib));

    let lint = lint_mapped_design(&design, &lib);
    assert!(lint.is_clean(), "{}", lint.render());

    let audit = asyncmap::audit::audit_equations(&eqs);
    assert!(audit.is_clean(), "{}", audit.render());

    let fma = analyze_design(&design, &lib);
    assert_eq!(fma.num_errors(), 0, "{}", fma.render());

    // The fingerprint is stable: a second cold map reproduces it.
    let again = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
    assert_eq!(
        asyncmap::bench::design_fingerprint(&design),
        asyncmap::bench::design_fingerprint(&again)
    );
}

#[test]
fn loaders_resolve_fixture_paths_and_reject_unknown_names() {
    let lib = asyncmap::load_library_auto("tests/fixtures/mcnc_like.genlib").unwrap();
    assert_eq!(lib.len(), 19);
    let eqs = asyncmap::load_design_auto("tests/fixtures/ctrl_like.blif").unwrap();
    assert_eq!(eqs.equations.len(), 4);

    // Unified unknown-input diagnostics name the accepted alternatives.
    let e = asyncmap::load_library_auto("nonesuch").unwrap_err();
    assert!(e.starts_with("unknown library"), "{e}");
    assert!(e.contains("lsi9k"), "{e}");
    let e = asyncmap::load_design_auto("nonesuch").unwrap_err();
    assert!(e.starts_with("unknown design"), "{e}");
    assert!(e.contains("dme-fast"), "{e}");

    // A cyclic netlist surfaces the collapse error through the loader.
    let e = asyncmap::load_design_auto("tests/fixtures/bad_cycle.blif").unwrap_err();
    assert!(e.contains("cycle"), "{e}");
}

#[test]
fn dropping_every_inverter_is_a_coverage_gap_and_unmappable_pair() {
    // Qualification soundness, library side: a library that cannot invert
    // is flagged before any mapping is attempted.
    let text = fixture("mcnc_like.genlib");
    let stripped: String = text
        .lines()
        .filter(|l| {
            let name = l.split_whitespace().nth(1).unwrap_or("");
            !matches!(
                name,
                "INV"
                    | "NAND2"
                    | "NOR2"
                    | "NAND3"
                    | "NOR3"
                    | "AOI21"
                    | "OAI21"
                    | "AOI22"
                    | "OAI22"
                    | "XOR2"
                    | "XNOR2"
                    | "MUX2"
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    let parsed = parse_genlib(&stripped, "no_inv").unwrap();
    let (report, lib) = preflight_genlib(&parsed);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "library.coverage-gap" && f.message.contains("inverter")),
        "{}",
        report.render()
    );

    // Pair side: a design that needs inversion is guaranteed unmappable.
    let net = parse_blif(&fixture("ctrl_like.blif"), "ctrl_like").unwrap();
    let eqs = net.to_equations(&CollapseLimits::default()).unwrap();
    let pair = preflight_pair(&eqs, &lib);
    assert!(
        pair.findings
            .iter()
            .any(|f| f.code == "pair.unmappable" && f.severity == asyncmap::report::Severity::Error),
        "{}",
        pair.render()
    );
}
