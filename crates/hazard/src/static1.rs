//! Static logic 1-hazard analysis of two-level covers (paper §4.1.1).
//!
//! A static 1-hazard exists for a 1→1 transition exactly when no single
//! product term (gate) covers the whole transition span. The paper's
//! algorithm avoids full prime generation: it expands non-prime cubes,
//! then checks that every *cube adjacency* (consensus of a distance-1 pair,
//! formed with the `CONFLICTS` bit-vector trick) is contained in a single
//! cube of the cover.
//!
//! [`static_1_analysis`] is the paper's single pass; [`static_1_complete`]
//! iterates the consensus to closure, which is equivalent to requiring all
//! prime implicants to be present (Eichelberger's condition) and therefore
//! complete. The single pass can under-report hazards that need chained
//! consensus to expose; the mapper uses the complete form when certifying a
//! cover and the single pass when a fast filter is enough.

use crate::Hazard;
use asyncmap_cube::{Cover, Cube};

/// The paper's `static_1_analysis` procedure: one pass of prime expansion
/// plus adjacency checking. Returns one [`Hazard::Static1`] per uncovered
/// transition span found (deduplicated).
///
/// # Examples
///
/// ```
/// use asyncmap_cube::{Cover, VarTable};
/// use asyncmap_hazard::static_1_analysis;
///
/// // Figure 2a: the consensus xyz is missing.
/// let vars = VarTable::from_names(["w", "x", "y", "z"]);
/// let f = Cover::parse("wxy + w'xz", &vars)?;
/// assert_eq!(static_1_analysis(&f).len(), 1);
/// let fixed = Cover::parse("wxy + w'xz + xyz", &vars)?;
/// assert!(static_1_analysis(&fixed).is_empty());
/// # Ok::<(), asyncmap_cube::ParseSopError>(())
/// ```
pub fn static_1_analysis(f: &Cover) -> Vec<Hazard> {
    let mut hazards: Vec<Cube> = Vec::new();
    // Work list: the cover's cubes, with non-primes replaced by their prime
    // expansion (flagging a hazard when the prime is not already present).
    let mut work: Vec<Cube> = Vec::new();
    for cube in f.cubes() {
        if cube.is_universe() {
            return Vec::new();
        }
        if f.is_prime(cube) {
            push_unique(&mut work, cube.clone());
            continue;
        }
        let prime = f.expand_to_prime(cube);
        if !f.single_cube_contains(&prime) {
            push_unique(&mut hazards, prime.clone());
        }
        push_unique(&mut work, prime);
    }
    // Generate all cube adjacencies and test single-cube coverage.
    let mut adjacencies: Vec<Cube> = Vec::new();
    for i in 0..work.len() {
        for j in (i + 1)..work.len() {
            if let Some(adj) = work[i].adjacency(&work[j]) {
                push_unique(&mut adjacencies, adj);
            }
        }
    }
    for adj in adjacencies {
        if !f.single_cube_contains(&adj) {
            push_unique(&mut hazards, adj);
        }
    }
    hazards
        .into_iter()
        .map(|span| Hazard::Static1 { span })
        .collect()
}

/// Complete static 1-hazard characterization: every prime implicant of the
/// function that is not contained in a single cube of the cover is an
/// uncovered transition span (and every hazardous transition lies inside
/// one such prime).
pub fn static_1_complete(f: &Cover) -> Vec<Hazard> {
    f.all_primes()
        .into_iter()
        .filter(|p| !f.single_cube_contains(p))
        .map(|span| Hazard::Static1 { span })
        .collect()
}

/// `true` iff the cover is free of multi-input-change static logic
/// 1-hazards, i.e. it contains all its prime implicants
/// (Eichelberger's necessary-and-sufficient condition, paper §2.3).
pub fn is_static_1_hazard_free(f: &Cover) -> bool {
    static_1_complete(f).is_empty()
}

/// Decides whether the specific 1→1 transition spanning `space` is free of
/// static 1-hazards in cover `f`.
///
/// Returns `true` when a single cube holds the output through the
/// transition. The caller is responsible for `space` being an implicant
/// (otherwise the transition has a function hazard and logic-hazard
/// analysis does not apply).
pub fn static_1_free_on(f: &Cover, space: &Cube) -> bool {
    f.single_cube_contains(space)
}

/// Exact containment of static-1 hazard behavior between two covers of the
/// *same function* (paper Theorem 3.2 specialized to static 1-hazards):
/// every 1→1 transition that is hazard-free in `reference` is hazard-free
/// in `candidate` — equivalently `hazards(candidate) ⊆ hazards(reference)`.
///
/// A transition is hazard-free in a cover iff a single cube contains it, so
/// the containment holds iff every cube of `reference` is contained in a
/// single cube of `candidate`.
pub fn static1_subset(candidate: &Cover, reference: &Cover) -> bool {
    reference
        .cubes()
        .iter()
        .all(|s| candidate.single_cube_contains(s))
}

fn push_unique(list: &mut Vec<Cube>, cube: Cube) {
    if !list.contains(&cube) {
        list.push(cube);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    fn cover(text: &str, vars: &VarTable) -> Cover {
        Cover::parse(text, vars).unwrap()
    }

    #[test]
    fn figure2a_sic_static_1_hazard() {
        // Paper Figure 2a: f = wxy + w'xz has a hazard between w'xyz and
        // wxyz (the consensus xyz is uncovered).
        let vars = VarTable::from_names(["w", "x", "y", "z"]);
        let f = cover("wxy + w'xz", &vars);
        let hz = static_1_analysis(&f);
        assert_eq!(hz.len(), 1);
        let Hazard::Static1 { span } = &hz[0] else {
            panic!("wrong kind")
        };
        assert_eq!(span, &Cube::parse("xyz", &vars).unwrap());
        // Adding the consensus gate removes the hazard.
        let fixed = cover("wxy + w'xz + xyz", &vars);
        assert!(static_1_analysis(&fixed).is_empty());
        assert!(is_static_1_hazard_free(&fixed));
    }

    #[test]
    fn figure2b_mic_static_1_hazard() {
        // Paper Figure 2b: f = w'x' + y'z + w'y + xz, transition from
        // α = w'x'y'z to β = w'xyz crosses gates with no single cover.
        let vars = VarTable::from_names(["w", "x", "y", "z"]);
        let f = cover("w'x' + y'z + w'y + xz", &vars);
        let hz = static_1_complete(&f);
        assert!(!hz.is_empty());
        // The span w'z (containing both α and β) is an uncovered prime.
        let wz = Cube::parse("w'z", &vars).unwrap();
        assert!(f.covers_cube(&wz));
        assert!(!f.single_cube_contains(&wz));
        assert!(!static_1_free_on(&f, &wz));
    }

    #[test]
    fn all_primes_present_is_hazard_free() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("ab + a'c", &vars);
        assert!(!is_static_1_hazard_free(&f));
        let complete = cover("ab + a'c + bc", &vars);
        assert!(is_static_1_hazard_free(&complete));
    }

    #[test]
    fn nonprime_cube_flags_hazard() {
        // In f = abc + a'b the cube abc is not prime: it expands to the
        // prime bc (jointly covered by abc and a'b), which is missing from
        // the cover, so transitions inside bc are hazardous.
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("abc + a'b", &vars);
        let hz = static_1_analysis(&f);
        assert!(hz.iter().any(
            |h| matches!(h, Hazard::Static1 { span } if *span == Cube::parse("bc", &vars).unwrap())
        ));
    }

    #[test]
    fn single_pass_matches_complete_on_simple_cases() {
        let vars = VarTable::from_names(["w", "x", "y", "z"]);
        for text in ["wxy + w'xz", "wx + w'y", "wx + x'y + wy"] {
            let f = cover(text, &vars);
            let single: Vec<_> = static_1_analysis(&f);
            let complete: Vec<_> = static_1_complete(&f);
            assert_eq!(
                single.is_empty(),
                complete.is_empty(),
                "disagreement on {text}"
            );
        }
    }

    #[test]
    fn subset_check_matches_figure3() {
        // Figure 3: original = ab + a'c + bc (hazard-free),
        // candidate = ab + a'c (introduces a static-1 hazard) -> rejected.
        let vars = VarTable::from_names(["a", "b", "c"]);
        let original = cover("ab + a'c + bc", &vars);
        let candidate = cover("ab + a'c", &vars);
        assert!(!static1_subset(&candidate, &original));
        // The other direction is fine: the hazard-free cover's hazards
        // (none) are a subset of the hazardous cover's.
        assert!(static1_subset(&original, &candidate));
        // Identical structure is always accepted.
        assert!(static1_subset(&original, &original));
    }

    #[test]
    fn tautology_cover_has_no_hazards() {
        let vars = VarTable::from_names(["a"]);
        let f = cover("a + a' + 1", &vars);
        assert!(static_1_analysis(&f).is_empty());
    }

    #[test]
    fn single_cube_cover_is_hazard_free() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("abc", &vars);
        assert!(static_1_analysis(&f).is_empty());
        assert!(is_static_1_hazard_free(&f));
    }
}
