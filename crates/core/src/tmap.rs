//! Top-level mapping procedures: the paper's `tmap` (synchronous baseline)
//! and `async_tmap` (hazard-aware asynchronous mapper), plus the
//! designer-style `hand_map` baseline used by Table 3.

use crate::cluster::ClusterLimits;
use crate::cover::{cover_cone_with, hand_cover, ConeCover, CoverError};
use crate::design::{assemble, MapStats, MappedDesign};
use crate::hcache::HazardCache;
use crate::matcher::{HazardPolicy, Matcher};
use crate::profile::{self, MapPhase, PhaseTimes};
use asyncmap_library::Library;
use asyncmap_network::{
    async_tech_decomp, async_tech_decomp_traced, partition, partition_traced, sync_tech_decomp,
    Cone, DecompTrace, EquationSet, Network, PartitionTrace,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A post-map verification callback: inspects the finished design and
/// returns `Err` with a rendered report when it is unacceptable.
pub type PostMapHook = fn(&MappedDesign, &Library) -> Result<(), String>;

static POST_MAP_HOOK: OnceLock<PostMapHook> = OnceLock::new();

/// A pre-map qualification callback: statically qualifies the
/// (design, library) pair before any mapping work and returns `Err` with
/// a rendered report when the pair is disqualified (e.g. a guaranteed
/// cover failure).
pub type PreMapHook = fn(&EquationSet, &Library) -> Result<(), String>;

static PRE_MAP_HOOK: OnceLock<PreMapHook> = OnceLock::new();

/// Installs the process-wide pre-map qualification hook. The hook runs at
/// the top of every [`async_tmap`]/[`async_tmap_cached`] call when the
/// `ASYNCMAP_PREFLIGHT=1` environment variable is set; a failing hook
/// panics with the hook's report before any mapping work starts. The
/// first installation wins; later calls are ignored.
///
/// Mirrors [`set_post_map_hook`]: the core crate cannot depend on the
/// preflight crate (the qualification analyzer must be independent of the
/// mapper's code paths), so the facade installs it through this
/// indirection.
pub fn set_pre_map_hook(hook: PreMapHook) {
    let _ = PRE_MAP_HOOK.set(hook);
}

pub(crate) fn pre_map_check(eqs: &EquationSet, library: &Library) {
    if !std::env::var("ASYNCMAP_PREFLIGHT").is_ok_and(|v| v.trim() == "1") {
        return;
    }
    if let Some(hook) = PRE_MAP_HOOK.get() {
        if let Err(report) = hook(eqs, library) {
            panic!("ASYNCMAP_PREFLIGHT=1: pre-map qualification failed\n{report}");
        }
    }
}

/// A post-transform audit callback: replays the front end's certificate
/// trail (decomposition steps, partition cuts) against the subject
/// network and the source equations. Returns the number of certificates
/// checked, or `Err` with a rendered report when any certificate fails.
pub type PostTransformHook =
    fn(&EquationSet, &Network, &DecompTrace, &[Cone], &PartitionTrace) -> Result<usize, String>;

static POST_TRANSFORM_HOOK: OnceLock<PostTransformHook> = OnceLock::new();

/// Installs the process-wide transformation audit hook. The hook runs
/// after every successful [`async_tmap`]/[`async_tmap_cached`] call when
/// the `ASYNCMAP_AUDIT=1` environment variable is set; a failing hook
/// panics with the hook's report. The first installation wins; later
/// calls are ignored.
///
/// Mirrors [`set_post_map_hook`]: the core crate cannot depend on the
/// audit crate (the checker must share no code with the transformations
/// it certifies), so the facade installs the checker through this
/// indirection.
pub fn set_post_transform_hook(hook: PostTransformHook) {
    let _ = POST_TRANSFORM_HOOK.set(hook);
}

/// The audit hook to run, when `ASYNCMAP_AUDIT=1` and one is installed.
pub(crate) fn audit_hook() -> Option<PostTransformHook> {
    if !std::env::var("ASYNCMAP_AUDIT").is_ok_and(|v| v.trim() == "1") {
        return None;
    }
    POST_TRANSFORM_HOOK.get().copied()
}

/// Installs the process-wide post-map verification hook. The hook runs
/// after every successful [`async_tmap`]/[`async_tmap_cached`] call when
/// the `ASYNCMAP_LINT=1` environment variable is set; a failing hook
/// panics with the hook's report. The first installation wins; later
/// calls are ignored.
///
/// The core crate cannot depend on the lint crate (the lint pass must be
/// independent of the mapper's code paths), so the facade installs the
/// lint pass through this indirection.
pub fn set_post_map_hook(hook: PostMapHook) {
    let _ = POST_MAP_HOOK.set(hook);
}

pub(crate) fn post_map_check(design: &MappedDesign, library: &Library) {
    if !std::env::var("ASYNCMAP_LINT").is_ok_and(|v| v.trim() == "1") {
        return;
    }
    if let Some(hook) = POST_MAP_HOOK.get() {
        if let Err(report) = hook(design, library) {
            panic!("ASYNCMAP_LINT=1: post-map verification failed\n{report}");
        }
    }
}

/// A post-map fundamental-mode analysis callback: runs the whole-design
/// analyzer over the finished design and returns the number of cones it
/// analyzed, or `Err` with a rendered report when the design violates the
/// fundamental-mode operating assumption.
pub type PostAnalyzeHook = fn(&MappedDesign, &Library) -> Result<usize, String>;

static POST_ANALYZE_HOOK: OnceLock<PostAnalyzeHook> = OnceLock::new();

/// Installs the process-wide post-map fundamental-mode analysis hook. The
/// hook runs after every successful [`async_tmap`]/[`async_tmap_cached`]
/// (and ECO remap) when the `ASYNCMAP_FMA=1` environment variable is set;
/// a failing hook panics with the hook's report. The first installation
/// wins; later calls are ignored.
///
/// Mirrors [`set_post_map_hook`]: the core crate cannot depend on the
/// analyzer crate (the analysis must be independent of the mapper's code
/// paths), so the facade installs it through this indirection.
pub fn set_post_analyze_hook(hook: PostAnalyzeHook) {
    let _ = POST_ANALYZE_HOOK.set(hook);
}

pub(crate) fn post_analyze_check(design: &mut MappedDesign, library: &Library) {
    if !std::env::var("ASYNCMAP_FMA").is_ok_and(|v| v.trim() == "1") {
        return;
    }
    if let Some(hook) = POST_ANALYZE_HOOK.get() {
        let _t = profile::timer(MapPhase::Analyze);
        match hook(&*design, library) {
            Ok(cones) => design.stats.fma_cones = cones,
            Err(report) => panic!("ASYNCMAP_FMA=1: fundamental-mode analysis failed\n{report}"),
        }
    }
}

/// The covering objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize total cell area (the paper's tables).
    #[default]
    Area,
    /// Minimize critical-path cell delay, breaking ties by area.
    Delay,
}

/// Options shared by the mapping procedures.
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Cluster enumeration limits (the paper's tables use depth 5).
    pub limits: ClusterLimits,
    /// Insert fanout buffers at multi-fanout cone roots (on for automatic
    /// mapping, off for the hand-mapped baseline — Table 3's note).
    pub add_buffers: bool,
    /// Covering objective (area by default, as in the paper).
    pub objective: Objective,
    /// Worker threads for cone covering: `0` = one per available core,
    /// `1` = sequential, `n` = exactly `n`. Cones are independent
    /// single-output trees, so any thread count produces a bit-identical
    /// mapped design. [`MapOptions::default`] reads the `ASYNCMAP_THREADS`
    /// environment variable, defaulting to `1`.
    pub threads: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            limits: ClusterLimits::default(),
            add_buffers: true,
            objective: Objective::Area,
            threads: threads_from_env(),
        }
    }
}

/// Reads the `ASYNCMAP_THREADS` override (`0` = all cores); absent or
/// unparsable means sequential.
fn threads_from_env() -> usize {
    std::env::var("ASYNCMAP_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

/// Resolves the `threads` knob to a concrete worker count for `jobs` cones.
/// Workers beyond the machine's available parallelism only add scheduling
/// overhead (the covering loop never blocks), so the request is capped at
/// the core count.
fn effective_threads(threads: usize, jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let requested = if threads == 0 {
        cores
    } else {
        threads.min(cores)
    };
    requested.min(jobs).max(1)
}

/// The synchronous mapping procedure (paper §3.1 `tmap`):
/// simplifying decomposition, partitioning, Boolean matching and
/// minimum-area covering — no hazard awareness.
///
/// # Errors
///
/// Returns [`CoverError`] if some gate admits no match.
pub fn tmap(
    eqs: &EquationSet,
    library: &Library,
    options: &MapOptions,
) -> Result<MappedDesign, CoverError> {
    let phases_before = profile::snapshot();
    let subject = {
        let _t = profile::timer(MapPhase::Decompose);
        sync_tech_decomp(eqs)
    };
    run(
        subject,
        library,
        HazardPolicy::Ignore,
        options,
        false,
        phases_before,
    )
}

/// The asynchronous mapping procedure (paper §3.2 `async_tmap`):
/// hazard-preserving decomposition (`async_tech_decomp`), partitioning,
/// and matching in which a hazardous library element is accepted only when
/// its hazards are a subset of the subnetwork's.
///
/// # Errors
///
/// Returns [`CoverError`] if some gate admits no match.
///
/// # Panics
///
/// Panics if `library` has not been hazard-annotated
/// ([`Library::annotate_hazards`]).
pub fn async_tmap(
    eqs: &EquationSet,
    library: &Library,
    options: &MapOptions,
) -> Result<MappedDesign, CoverError> {
    async_tmap_cached(eqs, library, options, &Arc::new(HazardCache::new()))
}

/// [`async_tmap`] with an externally-owned hazard-verdict cache: verdicts
/// computed in one invocation are reused by every later invocation sharing
/// `cache`. The mapped design is identical to `async_tmap`'s — only the
/// [`MapStats::cache_hits`]/[`MapStats::cache_misses`] split (and the
/// running time) changes with cache warmth.
///
/// # Errors
///
/// Returns [`CoverError`] if some gate admits no match.
///
/// # Panics
///
/// Panics if `library` has not been hazard-annotated, or if `cache` was
/// previously used with a different library.
pub fn async_tmap_cached(
    eqs: &EquationSet,
    library: &Library,
    options: &MapOptions,
    cache: &Arc<HazardCache>,
) -> Result<MappedDesign, CoverError> {
    let phases_before = profile::snapshot();
    pre_map_check(eqs, library);
    let audit = audit_hook();
    let (subject, dtrace) = {
        let _t = profile::timer(MapPhase::Decompose);
        if audit.is_some() {
            let (net, trace) = async_tech_decomp_traced(eqs);
            (net, Some(trace))
        } else {
            (async_tech_decomp(eqs), None)
        }
    };
    let mut design = run_with_cache(
        subject,
        library,
        HazardPolicy::SubsetCheck,
        options,
        false,
        cache,
        phases_before,
    )?;
    if let (Some(hook), Some(dtrace)) = (audit, dtrace) {
        // Re-partitioning is deterministic and cheap relative to covering;
        // running it traced here keeps the mapping fast path untouched.
        let (cones, ptrace) = partition_traced(&design.subject);
        match hook(eqs, &design.subject, &dtrace, &cones, &ptrace) {
            Ok(certificates) => design.stats.audit_certificates = certificates,
            Err(report) => panic!("ASYNCMAP_AUDIT=1: transformation audit failed\n{report}"),
        }
    }
    Ok(design)
}

/// A "designer-style" structural mapping without hazard filtering: the
/// hand-mapped baseline of Table 3 (greedy biggest-cell-first cover on the
/// hazard-preserving decomposition, no fanout buffers).
///
/// # Errors
///
/// Returns [`CoverError`] if some gate admits no match.
pub fn hand_map(
    eqs: &EquationSet,
    library: &Library,
    options: &MapOptions,
) -> Result<MappedDesign, CoverError> {
    let phases_before = profile::snapshot();
    let subject = {
        let _t = profile::timer(MapPhase::Decompose);
        async_tech_decomp(eqs)
    };
    run(
        subject,
        library,
        HazardPolicy::Ignore,
        options,
        true,
        phases_before,
    )
}

fn run(
    subject: asyncmap_network::Network,
    library: &Library,
    policy: HazardPolicy,
    options: &MapOptions,
    greedy: bool,
    phases_before: PhaseTimes,
) -> Result<MappedDesign, CoverError> {
    run_with_cache(
        subject,
        library,
        policy,
        options,
        greedy,
        &Arc::new(HazardCache::new()),
        phases_before,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_with_cache(
    subject: asyncmap_network::Network,
    library: &Library,
    policy: HazardPolicy,
    options: &MapOptions,
    greedy: bool,
    cache: &Arc<HazardCache>,
    phases_before: PhaseTimes,
) -> Result<MappedDesign, CoverError> {
    let cones = {
        let _t = profile::timer(MapPhase::Partition);
        partition(&subject)
    };
    let matcher = Matcher::with_cache(library, policy, Arc::clone(cache));
    // Every counter in MapStats is per-run: matcher counters and process
    // phase timers are snapshot-deltas around this run, and the shared
    // cache's totals are differenced the same way.
    let matcher_before = matcher.counters();
    let hits_before = cache.hits();
    let misses_before = cache.misses();
    let alloc_before = profile::enum_alloc_snapshot();
    let threads = effective_threads(options.threads, cones.len());
    let cover_one = |cone| {
        if greedy {
            hand_cover(&subject, cone, &matcher, &options.limits)
        } else {
            cover_cone_with(&subject, cone, &matcher, &options.limits, options.objective)
        }
    };
    let covers = if threads <= 1 {
        let mut covers: Vec<ConeCover> = Vec::with_capacity(cones.len());
        for cone in &cones {
            covers.push(cover_one(cone)?);
        }
        covers
    } else {
        cover_parallel(&cones, threads, &cover_one)?
    };
    let phases = profile::snapshot().delta(&phases_before);
    profile::maybe_dump(&phases);
    let cut_truncations = covers.iter().map(|c| c.cut_truncations).sum();
    let counters = matcher.counters().delta(&matcher_before);
    let alloc = profile::enum_alloc_snapshot().delta(&alloc_before);
    profile::maybe_dump_counters(
        cut_truncations,
        counters.npn_hits,
        counters.npn_misses,
        &alloc,
    );
    let stats = MapStats {
        hazard_checks: counters.hazard_checks,
        hazard_rejects: counters.hazard_rejects,
        cache_hits: cache.hits() - hits_before,
        cache_misses: cache.misses() - misses_before,
        npn_hits: counters.npn_hits,
        npn_misses: counters.npn_misses,
        cut_truncations,
        enum_warm_cones: alloc.warm_cones as usize,
        enum_alloc_events: alloc.alloc_events as usize,
        phases,
        ..MapStats::default()
    };
    let add_buffers = options.add_buffers && !greedy;
    let mut design = assemble(library, subject, cones, covers, stats, add_buffers);
    // Opt-in post-map verification, only for the hazard-filtered flow: a
    // synchronous or hand-mapped design legitimately fails the Theorem 3.2
    // re-check (and the fundamental-mode analysis assumes it).
    if matches!(policy, HazardPolicy::SubsetCheck) && !greedy {
        post_map_check(&design, library);
        post_analyze_check(&mut design, library);
    }
    Ok(design)
}

/// Covers every cone on `threads` scoped workers pulling cone indices from
/// a shared atomic counter, then reassembles the results **in partition
/// order** — cones are disjoint single-output trees, so the assembled
/// design is bit-identical to the sequential one regardless of scheduling.
/// If any cone fails, the error reported is the one the sequential loop
/// would have hit first.
///
/// The only shared state is the lock-free work counter; each worker keeps
/// its `(index, result)` pairs locally and hands them back through its
/// join handle, so no thread ever blocks on another.
fn cover_parallel<'a>(
    cones: &'a [asyncmap_network::Cone],
    threads: usize,
    cover_one: &(dyn Fn(&'a asyncmap_network::Cone) -> Result<ConeCover, CoverError> + Sync),
) -> Result<Vec<ConeCover>, CoverError> {
    let next = AtomicUsize::new(0);
    let mut results: Vec<(usize, Result<ConeCover, CoverError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Result<ConeCover, CoverError>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cone) = cones.get(i) else { break };
                        local.push((i, cover_one(cone)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("cone worker panicked"))
            .collect()
    });
    debug_assert_eq!(results.len(), cones.len());
    results.sort_by_key(|&(i, _)| i);
    // First error in partition order, exactly as the sequential loop.
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::{Cover, VarTable};
    use asyncmap_library::builtin;

    fn figure3_eqs() -> EquationSet {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        EquationSet::new(vars, vec![("f".to_owned(), f)])
    }

    #[test]
    fn sync_vs_async_on_figure3() {
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let eqs = figure3_eqs();
        let sync = tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        let asy = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        // The sync mapper simplifies away bc and can use the hazardous mux:
        // smaller area, but it loses the hazard freedom.
        assert!(sync.area <= asy.area);
        assert!(asy.verify_function(&lib));
        assert!(asy.verify_hazards(&lib));
        // The async mapper performed (and possibly rejected) hazard checks.
        assert!(asy.stats.hazard_checks > 0);
        assert_eq!(sync.stats.hazard_checks, 0);
    }

    #[test]
    fn hand_map_no_smaller_than_async() {
        let mut lib = builtin::gdt();
        lib.annotate_hazards();
        let eqs = figure3_eqs();
        let hand = hand_map(&eqs, &lib, &MapOptions::default()).unwrap();
        let auto = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        assert!(hand.area + 1e-9 >= auto.area - auto.stats.buffers as f64 * 100.0);
        assert!(hand.verify_function(&lib));
    }

    #[test]
    fn multi_output_design_maps() {
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        let f = Cover::parse("ab + c'd", &vars).unwrap();
        let g = Cover::parse("a'b' + cd'", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f), ("g".to_owned(), g)]);
        let mut lib = builtin::lsi9k();
        lib.annotate_hazards();
        let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        assert!(design.verify_function(&lib));
        assert!(design.verify_hazards(&lib));
        assert_eq!(design.subject.outputs().len(), 2);
    }

    #[test]
    fn delay_objective_trades_area_for_speed() {
        let mut lib = builtin::lsi9k();
        lib.annotate_hazards();
        let eqs = asyncmap_burst::benchmark("dme");
        let area_opts = MapOptions::default();
        let delay_opts = MapOptions {
            objective: Objective::Delay,
            ..MapOptions::default()
        };
        let by_area = async_tmap(&eqs, &lib, &area_opts).unwrap();
        let by_delay = async_tmap(&eqs, &lib, &delay_opts).unwrap();
        assert!(by_delay.delay <= by_area.delay + 1e-9);
        assert!(by_delay.area + 1e-9 >= by_area.area);
        assert!(by_delay.verify_function(&lib));
        assert!(by_delay.verify_hazards(&lib));
    }

    #[test]
    fn actel_mapping_rejects_unsafe_modules() {
        let mut lib = builtin::actel();
        lib.annotate_hazards();
        let eqs = figure3_eqs();
        let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        assert!(design.verify_function(&lib));
        assert!(design.verify_hazards(&lib));
    }
}
