//! The decomposition certificate: each instance's cell function,
//! instantiated on its pin bindings, must be truth-table equal to the
//! covered subnetwork's function over the full reached cut space.
//!
//! Checking over the *reached* cut signals — not just the bound pins —
//! matters: a binding whose cell ignores a cut variable the subnetwork
//! depends on computes a different function, and projecting onto the
//! bound pins alone would hide that.

use crate::{
    path_of, subnetwork_expr, substitute, truth_equal, InstanceView, LintReport, Severity,
};
use asyncmap_bff::Expr;
use asyncmap_core::MappedDesign;
use asyncmap_library::Library;
use asyncmap_network::{Cone, SignalId};
use std::collections::{HashMap, HashSet};

/// Widest cut space the packed truth tables handle comfortably.
const SUPPORT_LIMIT: usize = 20;

pub(crate) fn check_cover(
    design: &MappedDesign,
    library: &Library,
    cone: &Cone,
    views: &[InstanceView<'_>],
    report: &mut LintReport,
) {
    let net = &design.subject;
    // An instance is live if its output is the cover root or feeds some
    // other instance of the cover; anything else contributes area without
    // function.
    let mut live: HashSet<SignalId> = HashSet::new();
    for view in views {
        live.extend(view.inst.inputs.iter().copied());
    }
    for view in views {
        let inst = view.inst;
        if inst.output != design.covers[view.cone_idx].root && !live.contains(&inst.output) {
            report.push(
                Severity::Info,
                "function.dead-instance",
                path_of(net, cone, Some(inst)),
                "instance drives no load in its cover".to_owned(),
            );
        }
        if !view.structurally_sound {
            continue;
        }
        report.counters.function_checks += 1;
        let var_of: HashMap<SignalId, usize> = view
            .cut_signals
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        let mut args_ok = true;
        let args: Vec<Expr> = inst
            .inputs
            .iter()
            .map(|s| match var_of.get(s) {
                Some(&v) => Expr::Var(asyncmap_cube::VarId(v)),
                None => {
                    report.push(
                        Severity::Error,
                        "function.unbound-pin",
                        path_of(net, cone, Some(inst)),
                        format!(
                            "pin bound to signal {} which the covered subnetwork never reaches",
                            net.name(*s)
                        ),
                    );
                    args_ok = false;
                    Expr::Const(false)
                }
            })
            .collect();
        if !args_ok {
            continue;
        }
        let n = view.cut_signals.len();
        if n > SUPPORT_LIMIT {
            report.push(
                Severity::Warning,
                "function.support-too-wide",
                path_of(net, cone, Some(inst)),
                format!("cut space of {n} signals exceeds the truth-table limit ({SUPPORT_LIMIT})"),
            );
            continue;
        }
        let subnet = subnetwork_expr(net, inst.output, &var_of);
        let cell = &library.cells()[inst.cell_index];
        let mapped = substitute(cell.bff(), &args);
        if !truth_equal(&mapped, &subnet, n) {
            report.push(
                Severity::Error,
                "function.mismatch",
                path_of(net, cone, Some(inst)),
                format!(
                    "cell {} on this binding does not compute the covered subnetwork's function \
                     over its {n}-signal cut space",
                    cell.name()
                ),
            );
        }
    }
}
