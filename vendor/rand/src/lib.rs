//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry, so
//! the real `rand` cannot be fetched. This crate implements the small API
//! surface the workspace actually uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random`, `Rng::random_range`) on top of a SplitMix64 generator.
//! It is deterministic per seed, which is all the benchmark generator and
//! the delay-simulation tests require; it makes no cryptographic or
//! statistical-quality claims.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Random number generator core: a 64-bit output stream.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait Random: Sized {
    /// Draws a uniform value from `rng`.
    fn random_from(rng: &mut dyn RngCore) -> Self;
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value in the range from `rng`.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

impl Random for bool {
    fn random_from(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random_from(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u8 {
    fn random_from(rng: &mut dyn RngCore) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for f64 {
    fn random_from(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange<i32> for Range<i32> {
    fn sample_from(self, rng: &mut dyn RngCore) -> i32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i32)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::random_from(rng)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Not the same stream as the real `StdRng` (ChaCha12):
    /// anything seeded here produces *a* reproducible sequence, not the
    /// upstream one.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Pre-mix so small seeds diverge immediately.
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn bools_take_both_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let draws: Vec<bool> = (0..64).map(|_| rng.random::<bool>()).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
