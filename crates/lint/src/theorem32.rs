//! Theorem 3.2 re-verification: every binding of a hazardous cell must
//! satisfy `hazards(cell) ⊆ hazards(covered subnetwork)`, re-derived here
//! through the hazard crate's full battery
//! ([`asyncmap_hazard::reverify_containment`]) rather than through the
//! mapper's cached fast path. Where the cone is narrow enough, the
//! composed cone structure is additionally swept against the original
//! cone — the composition the paper's Lemma 4.5 licenses, checked rather
//! than assumed.

use crate::{
    composed_cover_expr, path_of, subnetwork_expr, substitute, InstanceView, LintReport, Severity,
};
use asyncmap_bff::Expr;
use asyncmap_core::{ConeCover, MappedDesign};
use asyncmap_hazard::{hazards_subset_exhaustive, reverify_containment, EXHAUSTIVE_VAR_LIMIT};
use asyncmap_library::Library;
use asyncmap_network::{Cone, SignalId};
use std::collections::HashMap;

pub(crate) fn check_cover(
    design: &MappedDesign,
    library: &Library,
    cone: &Cone,
    cover: &ConeCover,
    views: &[InstanceView<'_>],
    cell_hazardous: &[bool],
    report: &mut LintReport,
) {
    let net = &design.subject;
    let mut all_sound = true;
    for view in views {
        if !view.structurally_sound {
            all_sound = false;
            continue;
        }
        let inst = view.inst;
        if !cell_hazardous
            .get(inst.cell_index)
            .copied()
            .unwrap_or(false)
        {
            // A hazard-free cell can never glitch, so containment holds
            // trivially on any binding.
            continue;
        }
        let var_of: HashMap<SignalId, usize> = view
            .cut_signals
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        if !inst.inputs.iter().all(|s| var_of.contains_key(s)) {
            continue; // unbound pin, already an error from the function pass
        }
        let n = view.cut_signals.len();
        let cell = &library.cells()[inst.cell_index];
        let args: Vec<Expr> = inst
            .inputs
            .iter()
            .map(|s| Expr::Var(asyncmap_cube::VarId(var_of[s])))
            .collect();
        let candidate = substitute(cell.bff(), &args);
        let reference = subnetwork_expr(net, inst.output, &var_of);
        report.counters.theorem32_checks += 1;
        let r = reverify_containment(&candidate, &reference, n);
        if !r.accepted() {
            let severity = if r.exhaustive.is_some() {
                // The exhaustive sweep is exact: this is a real violation.
                Severity::Error
            } else {
                // Guided-only verdict on a wide support; may be
                // conservative.
                Severity::Warning
            };
            report.push(
                severity,
                "theorem32.containment-violation",
                path_of(net, cone, Some(inst)),
                format!(
                    "hazardous cell {} on this binding has hazards the covered subnetwork lacks \
                     (exhaustive: {:?}, analytic: {}, static-1 adjacency: {})",
                    cell.name(),
                    r.exhaustive,
                    r.analytic,
                    r.static1_adjacency
                ),
            );
        } else if !r.methods_agree() {
            report.push(
                Severity::Info,
                "theorem32.method-disagreement",
                path_of(net, cone, Some(inst)),
                format!(
                    "hazard analyses disagree on cell {} (exhaustive: {:?}, analytic: {}, \
                     static-1 adjacency: {}, oracle static-1: {:?}) — possible analysis bug",
                    cell.name(),
                    r.exhaustive,
                    r.analytic,
                    r.static1_adjacency,
                    r.oracle_static1
                ),
            );
        }
    }

    // Whole-cone sweep: the composed mapped structure against the original
    // cone, over the cone's leaf space.
    let n = cone.leaves.len();
    if n > EXHAUSTIVE_VAR_LIMIT {
        report.counters.cone_sweeps_skipped += 1;
        return;
    }
    if !all_sound {
        return; // composition is meaningless on a structurally broken cover
    }
    let Some(composed) = composed_cover_expr(cone, cover, library) else {
        return; // missing driver, already a structure finding
    };
    report.counters.cone_sweeps += 1;
    let (orig, _) = cone.to_expr(net);
    if !hazards_subset_exhaustive(&composed, &orig, n) {
        report.push(
            Severity::Error,
            "theorem32.cone-containment",
            path_of(net, cone, None),
            "the composed mapped cone has hazards the original cone lacks".to_owned(),
        );
    }
}
