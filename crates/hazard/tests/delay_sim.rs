//! Empirical validation of the eight-valued waveform algebra against an
//! event-driven pure-delay simulator: each leaf occurrence (wire) and each
//! gate gets an arbitrary positive delay, inputs switch at t = 0, and the
//! output waveform is computed exactly.
//!
//! * When `wave_eval` says *clean*, no sampled delay assignment may
//!   produce extra output transitions (soundness of the clean verdict —
//!   universally quantified, sampled here).
//! * When `wave_eval` says *hazard* on the curated figure examples, some
//!   sampled assignment must witness the glitch.

use asyncmap_bff::Expr;
use asyncmap_cube::{Bits, VarTable};
use asyncmap_hazard::wave_eval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A step waveform: the value before the first event, then `(time, value)`
/// change events in strictly increasing time order.
#[derive(Debug, Clone)]
struct Waveform {
    initial: bool,
    events: Vec<(f64, bool)>,
}

impl Waveform {
    fn constant(v: bool) -> Self {
        Waveform {
            initial: v,
            events: Vec::new(),
        }
    }

    fn transitions(&self) -> usize {
        self.events.len()
    }

    fn value_at(&self, t: f64) -> bool {
        let mut v = self.initial;
        for &(et, ev) in &self.events {
            if et <= t {
                v = ev;
            } else {
                break;
            }
        }
        v
    }

    fn delayed(mut self, d: f64) -> Self {
        for e in &mut self.events {
            e.0 += d;
        }
        self
    }
}

/// Combines child waveforms through a boolean function of their values.
fn combine(children: &[Waveform], f: impl Fn(&[bool]) -> bool) -> Waveform {
    let mut times: Vec<f64> = children
        .iter()
        .flat_map(|w| w.events.iter().map(|e| e.0))
        .collect();
    times.sort_by(f64::total_cmp);
    times.dedup();
    let initial_vals: Vec<bool> = children.iter().map(|w| w.initial).collect();
    let mut out = Waveform::constant(f(&initial_vals));
    let mut current = out.initial;
    for &t in &times {
        let vals: Vec<bool> = children.iter().map(|w| w.value_at(t)).collect();
        let v = f(&vals);
        if v != current {
            out.events.push((t, v));
            current = v;
        }
    }
    out
}

/// Simulates `expr` for the burst `from → to` under the given delay
/// sampler; returns the output waveform.
fn simulate(expr: &Expr, from: &Bits, to: &Bits, rng: &mut StdRng) -> Waveform {
    match expr {
        Expr::Const(b) => Waveform::constant(*b),
        Expr::Var(v) => {
            let (a, b) = (from.get(v.index()), to.get(v.index()));
            if a == b {
                Waveform::constant(a)
            } else {
                Waveform {
                    initial: a,
                    events: vec![(rng.random_range(0.01..1.0), b)],
                }
            }
        }
        Expr::Not(e) => {
            let w = simulate(e, from, to, rng);
            let inverted = Waveform {
                initial: !w.initial,
                events: w.events.iter().map(|&(t, v)| (t, !v)).collect(),
            };
            inverted.delayed(rng.random_range(0.001..0.05))
        }
        Expr::And(es) => {
            let children: Vec<Waveform> = es.iter().map(|e| simulate(e, from, to, rng)).collect();
            combine(&children, |vals| vals.iter().all(|&v| v))
                .delayed(rng.random_range(0.001..0.05))
        }
        Expr::Or(es) => {
            let children: Vec<Waveform> = es.iter().map(|e| simulate(e, from, to, rng)).collect();
            combine(&children, |vals| vals.iter().any(|&v| v))
                .delayed(rng.random_range(0.001..0.05))
        }
    }
}

fn minimal_transitions(expr: &Expr, from: &Bits, to: &Bits) -> usize {
    usize::from(expr.eval(from) != expr.eval(to))
}

fn index_bits(n: usize, m: usize) -> Bits {
    let mut b = Bits::new(n);
    for v in 0..n {
        b.set(v, (m >> v) & 1 == 1);
    }
    b
}

#[test]
fn clean_wave_verdicts_are_sound_under_simulation() {
    // Random small expressions; for every transition the algebra calls
    // clean, 200 random delay assignments must produce the minimal number
    // of output transitions.
    let mut rng = StdRng::seed_from_u64(7);
    let exprs = curated_expressions();
    for (expr, n) in &exprs {
        for a in 0..(1usize << n) {
            for b in 0..(1usize << n) {
                if a == b {
                    continue;
                }
                let (from, to) = (index_bits(*n, a), index_bits(*n, b));
                let w = wave_eval(expr, &from, &to);
                if w.hazard {
                    continue;
                }
                let want = minimal_transitions(expr, &from, &to);
                for _ in 0..200 {
                    let sim = simulate(expr, &from, &to, &mut rng);
                    assert_eq!(
                        sim.transitions(),
                        want,
                        "clean verdict violated: {a:#b}→{b:#b}"
                    );
                }
            }
        }
    }
}

#[test]
fn hazard_wave_verdicts_have_witnesses_on_figures() {
    // The curated figure hazards must be witnessable by some sampled
    // delay assignment.
    let mut rng = StdRng::seed_from_u64(11);
    let mut vars = VarTable::new();
    let cases: Vec<(Expr, usize, usize)> = vec![
        // Figure 4a: wx + x'y, burst w↓x↑ with y=1 (dynamic).
        (Expr::parse("w*x + x'*y", &mut vars).unwrap(), 0b101, 0b110),
        // Static-1: ab + a'b with b=1, a rising. (Fresh table per case.)
        (
            {
                let mut v2 = VarTable::new();
                Expr::parse("a*b + a'*b", &mut v2).unwrap()
            },
            0b10,
            0b11,
        ),
        // Vacuous pulse: (w + x)(x' + z) at w=z=0, x rising.
        (
            {
                let mut v3 = VarTable::new();
                Expr::parse("(w + x)*(x' + z)", &mut v3).unwrap()
            },
            0b000,
            0b010,
        ),
    ];
    for (expr, a, b) in cases {
        let n = expr.support().last().map_or(0, |v| v.index() + 1);
        let (from, to) = (index_bits(n, a), index_bits(n, b));
        let w = wave_eval(&expr, &from, &to);
        assert!(w.hazard, "expected a hazardous verdict");
        let want = minimal_transitions(&expr, &from, &to);
        let witnessed =
            (0..2000).any(|_| simulate(&expr, &from, &to, &mut rng).transitions() > want);
        assert!(witnessed, "no delay assignment witnessed the hazard");
    }
}

fn curated_expressions() -> Vec<(Expr, usize)> {
    let texts = [
        "a*b + a'*c",
        "a*b + a'*c + b*c",
        "(a + b')*(b + c)",
        "(a*b + c)'",
        "w*x + x'*y",
        "(w + x')*(x + y)",
        "a*(b + c) + a'*c",
    ];
    texts
        .iter()
        .map(|t| {
            let mut vars = VarTable::new();
            let e = Expr::parse(t, &mut vars).unwrap();
            (e, vars.len())
        })
        .collect()
}
