//! Technology libraries for hazard-aware mapping: cells carrying a
//! structural Boolean factored form, a text format, and the four built-in
//! libraries modeled on the paper's evaluation (LSI9K, CMOS3, GDT,
//! Actel — Table 1).
//!
//! The asynchronous flow annotates every cell with its full hazard
//! characterization when the library is read ([`Library::annotate_hazards`],
//! the extra initialization cost the paper measures in Table 2); the
//! matcher then consults the annotation to decide whether the
//! hazard-containment check is needed at all.
//!
//! # Examples
//!
//! ```
//! use asyncmap_library::builtin;
//!
//! let mut lib = builtin::cmos3();
//! lib.annotate_hazards();
//! let hazardous = lib.hazardous_cells();
//! assert_eq!(hazardous.len(), 1);
//! assert_eq!(hazardous[0].name(), "MUX2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
mod cell;
#[allow(clippy::module_inception)]
mod library;

pub use cell::Cell;
pub use library::{Library, ParseLibraryError};
