//! Prints a stable fingerprint of the mapped design for each evaluation
//! benchmark: exact area/delay bit patterns, instance count and hazard
//! rejects. Used to verify that performance work leaves the mapped output
//! bit-identical (`cargo run --release -p asyncmap-bench --bin fingerprint`).
//!
//! Each benchmark is additionally run through two independent verifiers,
//! and any finding fails the run:
//!
//! * the translation-validation audit (`asyncmap-audit`): the burst-mode
//!   spec is statically checked (maximal set, distinguishability, unique
//!   entry point) and the hazard-preserving front end's certificate trail
//!   is replayed;
//! * the static lint (`asyncmap-lint`) over the mapped design.
//!
//! CI uses this as its verify-the-mapped-outputs gate.

use asyncmap_audit::{audit_equations, check_spec};
use asyncmap_bench::design_fingerprint;
use asyncmap_core::{async_tmap, MapOptions};
use asyncmap_library::builtin;
use asyncmap_lint::lint_mapped_design;

fn main() {
    let mut lsi9k = builtin::lsi9k();
    lsi9k.annotate_hazards();
    let mut actel = builtin::actel();
    actel.annotate_hazards();
    let opts = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };
    let mut findings = 0;
    for (design, lib) in [
        ("scsi", &lsi9k),
        ("abcs", &lsi9k),
        ("pe-send-ifc", &actel),
        ("dme", &actel),
    ] {
        let mut audit = check_spec(&asyncmap_burst::benchmark_spec(design));
        let eqs = asyncmap_burst::benchmark(design);
        audit.merge(audit_equations(&eqs));
        let d = async_tmap(&eqs, lib, &opts).expect("mappable");
        let (area, delay, instances, rejects) = design_fingerprint(&d);
        let report = lint_mapped_design(&d, lib);
        println!(
            "{design:12} area={area:016x} delay={delay:016x} instances={instances} \
             rejects={rejects} audit={} ({} certs) lint={}",
            if audit.is_clean() { "clean" } else { "DIRTY" },
            audit.counters.num_certificates(),
            if report.is_clean() { "clean" } else { "DIRTY" }
        );
        if !audit.is_clean() {
            findings += audit.findings.len();
            eprint!("{}", audit.render());
        }
        if !report.is_clean() {
            findings += report.findings.len();
            eprint!("{}", report.render());
        }
    }
    if findings > 0 {
        eprintln!("fingerprint: {findings} audit/lint finding(s) on benchmark outputs");
        std::process::exit(1);
    }
}
