//! Eichelberger-style ternary transition simulation (paper §4.2, ref. [9]).
//!
//! For a combinational structure and a single input burst, set the changing
//! inputs to `X` and evaluate: if the output resolves to a definite value,
//! no combination of delays can glitch it. For *static* transitions this
//! detection is exact (it flags both function and logic hazards); for
//! dynamic transitions the output is necessarily `X` during the burst, so
//! ternary simulation alone cannot classify them — that is what the
//! eight-valued waveform algebra in [`crate::wave_eval`] is for.

use asyncmap_bff::{burst_assignment, eval_ternary, Expr, Tern};
use asyncmap_cube::Bits;

/// Result of simulating one burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TernaryOutcome {
    /// Settled output before the burst.
    pub before: bool,
    /// Output during the burst (`X` = may glitch).
    pub during: Tern,
    /// Settled output after the burst.
    pub after: bool,
}

impl TernaryOutcome {
    /// `true` when the transition is static (equal endpoints) and the
    /// output can glitch.
    pub fn is_static_hazard(&self) -> bool {
        self.before == self.after && self.during == Tern::X
    }
}

/// Simulates the burst `from → to` on `expr`.
pub fn ternary_transition(expr: &Expr, from: &Bits, to: &Bits) -> TernaryOutcome {
    let changing = from.xor(to);
    let mid = burst_assignment(from, &changing);
    TernaryOutcome {
        before: expr.eval(from),
        during: eval_ternary(expr, &mid),
        after: expr.eval(to),
    }
}

/// `true` iff the static transition `from → to` (equal settled output
/// values) can glitch on the given structure. Exact for static transitions
/// under the arbitrary gate/wire delay model.
pub fn has_static_hazard(expr: &Expr, from: &Bits, to: &Bits) -> bool {
    ternary_transition(expr, from, to).is_static_hazard()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    fn bits(n: usize, m: usize) -> Bits {
        let mut b = Bits::new(n);
        for v in 0..n {
            b.set(v, (m >> v) & 1 == 1);
        }
        b
    }

    #[test]
    fn static_1_hazard_detected() {
        let mut vars = VarTable::new();
        let e = Expr::parse("a*b + a'*b", &mut vars).unwrap();
        assert!(has_static_hazard(&e, &bits(2, 0b10), &bits(2, 0b11)));
        let fixed = Expr::parse("a*b + a'*b + b", &mut vars).unwrap();
        assert!(!has_static_hazard(&fixed, &bits(2, 0b10), &bits(2, 0b11)));
    }

    #[test]
    fn outcome_fields() {
        let mut vars = VarTable::new();
        let e = Expr::parse("a + b", &mut vars).unwrap();
        let o = ternary_transition(&e, &bits(2, 0b00), &bits(2, 0b01));
        assert!(!o.before);
        assert!(o.after);
        assert_eq!(o.during, Tern::X);
        assert!(!o.is_static_hazard());
    }

    #[test]
    fn held_input_keeps_output_definite() {
        let mut vars = VarTable::new();
        let e = Expr::parse("a + b", &mut vars).unwrap();
        // b stays 1 while a changes: OR output held at 1.
        let o = ternary_transition(&e, &bits(2, 0b10), &bits(2, 0b11));
        assert_eq!(o.during, Tern::One);
        assert!(!o.is_static_hazard());
    }

    #[test]
    fn agrees_with_wave_on_static_transitions() {
        // Cross-check the two oracles on a mix of structures.
        let mut vars = VarTable::new();
        let exprs = [
            Expr::parse("a*b + a'*c", &mut vars).unwrap(),
            Expr::parse_in("a*b + a'*c + b*c", &vars).unwrap(),
            Expr::parse_in("(a + b)*(b' + c)", &vars).unwrap(),
        ];
        for e in &exprs {
            for a in 0..8usize {
                for b in 0..8usize {
                    let (from, to) = (bits(3, a), bits(3, b));
                    if e.eval(&from) != e.eval(&to) {
                        continue;
                    }
                    let ternary = has_static_hazard(e, &from, &to);
                    let wave = crate::wave_eval(e, &from, &to).is_static_hazard();
                    assert_eq!(ternary, wave, "disagree on {a:#b}->{b:#b}");
                }
            }
        }
    }
}
