//! Static preflight qualification of a (library, design) pair *before*
//! technology mapping.
//!
//! The mapper's own verification passes (`asyncmap-lint`,
//! `asyncmap-audit`, `asyncmap-fma`) check an implementation *after* it
//! exists. Real-world workloads arriving through the BLIF/genlib
//! frontends fail earlier and less legibly: a genlib file whose declared
//! pin phases contradict its SOP, a library with no cell in the inverter
//! class, a netlist with a combinational cycle. This crate qualifies the
//! inputs statically and reports severity-coded findings on the shared
//! [`asyncmap_report`] machinery, so a doomed mapping run is refused with
//! a diagnosis instead of a panic or a mid-flight cover error.
//!
//! Three check families, composable or run together via [`preflight`]:
//!
//! * **library** ([`preflight_library`], [`preflight_genlib`]) —
//!   declared-function cross-checks, pin-phase-vs-unateness
//!   contradictions (`library.function-mismatch`), vacuous pins that can
//!   never match a support-projected cluster, P-class duplicate and
//!   area/delay-dominated cells, per-cell hazard characterization, and
//!   P-class mapability coverage over all ≤4-input full-support classes
//!   including the four base-gate classes the hazard-preserving
//!   decomposition emits (`library.coverage-gap`);
//! * **design** ([`preflight_design`], [`preflight_blif`]) — undriven and
//!   multiply-driven nets, combinational cycles, unsupported latches,
//!   unused logic, support widths past the cluster leaf cap;
//! * **pair** ([`preflight_pair`]) — the design is decomposed and
//!   partitioned exactly as the mapper would, clusters are enumerated at
//!   every cone root, and each root's sampled cut functions are matched
//!   against the library: a root none of whose clusters match any cell is
//!   a *guaranteed* cover failure (`pair.unmappable`, error); a root that
//!   matches functionally but loses every match to the hazard filter is
//!   flagged `pair.hazard-limited` (warning).
//!
//! Exit policy mirrors the other passes: gate on [`Report::num_errors`],
//! tolerate warnings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
mod library;
mod pair;

pub use design::{preflight_blif, preflight_design};
pub use library::{preflight_genlib, preflight_library};
pub use pair::preflight_pair;

use asyncmap_library::Library;
use asyncmap_network::EquationSet;
use asyncmap_report::{Counters, Report, Totals};

/// Work counters of a preflight run.
#[derive(Debug, Default, Clone, Copy)]
pub struct PreflightCounters {
    /// Library cells examined.
    pub cells: usize,
    /// Cells whose structure has logic hazards.
    pub hazardous_cells: usize,
    /// Design equations examined.
    pub equations: usize,
    /// Cones the pair check partitioned the design into.
    pub cones: usize,
    /// Clusters sampled at cone roots by the pair check.
    pub clusters: usize,
    /// Cone roots with no realizable cluster (guaranteed cover failures).
    pub unmappable_roots: usize,
}

impl Counters for PreflightCounters {
    fn summarize(&self, totals: &Totals, out: &mut String) {
        out.push_str(&format!(
            "preflight: {} finding(s) ({} error(s)), {} note(s); \
             {} cell(s) ({} hazardous), {} equation(s), {} cone(s), \
             {} root cluster(s) sampled, {} unmappable root(s)\n",
            totals.findings,
            totals.errors,
            totals.notes,
            self.cells,
            self.hazardous_cells,
            self.equations,
            self.cones,
            self.clusters,
            self.unmappable_roots,
        ));
    }

    fn absorb(&mut self, other: &Self) {
        self.cells += other.cells;
        self.hazardous_cells += other.hazardous_cells;
        self.equations += other.equations;
        self.cones += other.cones;
        self.clusters += other.clusters;
        self.unmappable_roots += other.unmappable_roots;
    }
}

/// A preflight report.
pub type PreflightReport = Report<PreflightCounters>;

/// Runs the full qualification: library checks, design checks and the
/// pair-wise mapability check, merged into one report.
pub fn preflight(design: &EquationSet, library: &Library) -> PreflightReport {
    let mut report = preflight_library(library);
    report.merge(preflight_design(design));
    report.merge(preflight_pair(design, library));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_library::builtin;

    #[test]
    fn builtin_pairs_are_error_free() {
        // Acceptance gate: every built-in benchmark × library pair must
        // qualify with zero errors (warnings tolerated). The exhaustive
        // sweep lives in tests/; here one representative pair.
        let eqs = asyncmap_burst::benchmark("scsi");
        let report = preflight(&eqs, &builtin::lsi9k());
        assert_eq!(report.num_errors(), 0, "{}", report.render());
    }

    #[test]
    fn render_mentions_the_pass() {
        let report: PreflightReport = Report::default();
        assert!(report.render().starts_with("preflight:"));
    }
}
