//! Fast non-cryptographic hasher for the mapper's internal memo tables.
//!
//! The match memo, verdict cache, and signature index are hit hundreds of
//! thousands of times per large design, always with small fixed-size keys
//! (packed truth tables, interned ids, pin bindings) that the process
//! builds itself — there is no untrusted input to defend against, so the
//! SipHash DoS resistance of `std`'s default hasher is pure overhead.
//! This is the classic multiply-rotate fold used by rustc's FxHash: one
//! rotate, one xor, one multiply per 8 bytes of key.
//!
//! Not for anything order- or security-sensitive: none of the tables
//! keyed with this hasher are ever iterated, so bucket order can never
//! leak into mapped output.

use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier (derived from the golden ratio) spreading each folded
/// word across the upper bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fold one word into the running state.
#[inline]
pub(crate) fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Finalizer: xor-fold the well-mixed upper bits into the lower ones so
/// masked/bucketed uses (open-addressed tables, shard selection) see
/// mixed entropy even in the low bits.
#[inline]
pub(crate) fn finish(hash: u64) -> u64 {
    hash ^ (hash >> 32)
}

/// A `Hasher` over [`mix`]/[`finish`] for use in `HashMap`s via
/// [`FxBuildHasher`].
#[derive(Debug, Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

/// Deterministic `BuildHasher`: no per-map random state, so hash codes —
/// though never observable in output — are stable run to run.
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.hash = mix(self.hash, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold the length in with the tail so "ab" and "ab\0" differ.
            self.hash = mix(
                self.hash,
                u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56,
            );
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.hash = mix(self.hash, n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.hash = mix(self.hash, n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.hash = mix(self.hash, n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = mix(self.hash, n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.hash = mix(mix(self.hash, n as u64), (n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.hash = mix(self.hash, n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        finish(self.hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let key = (3u8, 0xDEAD_BEEF_u64);
        assert_eq!(hash_of(&key), hash_of(&key));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a collision-resistance claim, just a smoke test that every
        // write_* path stirs the state.
        let a = hash_of(&(1u8, 2u64));
        let b = hash_of(&(2u8, 1u64));
        let c = hash_of(&(1u8, 3u64));
        assert!(a != b && a != c && b != c);
    }

    #[test]
    fn byte_tail_length_matters() {
        let mut h1 = FxHasher::default();
        h1.write(b"ab");
        let mut h2 = FxHasher::default();
        h2.write(b"ab\0");
        assert_ne!(h1.finish(), h2.finish());
    }
}
