//! Maps one of the Table 5 benchmark controllers against all four built-in
//! libraries, comparing the synchronous baseline, the asynchronous mapper
//! and the designer-style hand mapping.
//!
//! Run with `cargo run --release --example map_controller [-- <benchmark>]`
//! (default `dme`; see `asyncmap::burst::BENCHMARKS` for names).

use asyncmap::prelude::*;
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "dme".to_owned());
    let eqs = asyncmap::burst::benchmark(&name);
    println!(
        "benchmark {name}: {} signals over {} variables, {} cubes / {} literals",
        eqs.equations.len(),
        eqs.inputs.len(),
        eqs.num_cubes(),
        eqs.num_literals()
    );
    println!(
        "{:8} {:>10} {:>8} {:>9} | {:>10} {:>8} {:>9} {:>7} | {:>10}",
        "library",
        "sync area",
        "delay",
        "time",
        "async area",
        "delay",
        "time",
        "checks",
        "hand area"
    );
    for mut lib in asyncmap::library::builtin::all_libraries() {
        lib.annotate_hazards();
        let opts = MapOptions::default();

        let t = Instant::now();
        let sync = tmap(&eqs, &lib, &opts).expect("sync mappable");
        let t_sync = t.elapsed();

        let t = Instant::now();
        let asy = async_tmap(&eqs, &lib, &opts).expect("async mappable");
        let t_async = t.elapsed();

        let hand = hand_map(&eqs, &lib, &opts).expect("hand mappable");

        assert!(asy.verify_function(&lib), "{}: function broken", lib.name());
        assert!(
            asy.verify_hazards(&lib),
            "{}: hazards introduced",
            lib.name()
        );

        println!(
            "{:8} {:>10.0} {:>7.2}n {:>8.1?} | {:>10.0} {:>7.2}n {:>8.1?} {:>7} | {:>10.0}",
            lib.name(),
            sync.area,
            sync.delay,
            t_sync,
            asy.area,
            asy.delay,
            t_async,
            asy.stats.hazard_checks,
            hand.area
        );
    }
}
