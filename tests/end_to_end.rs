//! End-to-end pipeline tests: burst-mode spec → hazard-free synthesis →
//! decomposition → hazard-aware mapping → verification, across libraries.

use asyncmap::prelude::*;

fn annotated(mut lib: Library) -> Library {
    lib.annotate_hazards();
    lib
}

#[test]
fn small_benchmarks_map_on_all_libraries() {
    let libs: Vec<Library> = asyncmap::library::builtin::all_libraries()
        .into_iter()
        .map(annotated)
        .collect();
    for name in ["vanbek-opt", "dme-fast", "chu-ad-opt", "dme-opt"] {
        let eqs = asyncmap::burst::benchmark(name);
        for lib in &libs {
            let design = async_tmap(&eqs, lib, &MapOptions::default())
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", lib.name()));
            assert!(
                design.verify_function(lib),
                "{name} on {}: function broken",
                lib.name()
            );
            assert!(
                design.verify_hazards(lib),
                "{name} on {}: hazards introduced",
                lib.name()
            );
            assert!(design.area > 0.0);
            assert!(design.delay > 0.0);
        }
    }
}

#[test]
fn sync_mapping_is_never_larger() {
    // The synchronous mapper has strictly more freedom (simplification +
    // unconstrained matching), so its area is a lower bound.
    let lib = annotated(asyncmap::library::builtin::lsi9k());
    for name in ["dme-fast", "dme", "dme-fast-opt"] {
        let eqs = asyncmap::burst::benchmark(name);
        let sync = tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        let asy = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        assert!(
            sync.area <= asy.area + 1e-9,
            "{name}: sync {} > async {}",
            sync.area,
            asy.area
        );
    }
}

#[test]
fn hand_map_matches_or_exceeds_auto_area() {
    let lib = annotated(asyncmap::library::builtin::gdt());
    for name in ["dme-fast", "dme"] {
        let eqs = asyncmap::burst::benchmark(name);
        let hand = hand_map(&eqs, &lib, &MapOptions::default()).unwrap();
        let auto = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        assert!(hand.verify_function(&lib));
        // Compare without the buffer cost the hand flow omits (Table 3).
        let auto_cells: f64 = auto.covers.iter().map(|c| c.area).sum();
        assert!(
            hand.area + 1e-9 >= auto_cells,
            "{name}: hand {} < auto {}",
            hand.area,
            auto_cells
        );
    }
}

#[test]
fn async_subject_network_keeps_redundant_cubes() {
    // Figure 3's scenario at the network level: the async decomposition
    // preserves the consensus cube, the sync one deletes it.
    let vars = VarTable::from_names(["a", "b", "c"]);
    let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
    let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
    let async_net = asyncmap::network::async_tech_decomp(&eqs);
    let sync_net = asyncmap::network::sync_tech_decomp(&eqs);
    assert!(async_net.num_gates() > sync_net.num_gates());
}

#[test]
fn mapped_netlists_evaluate_correctly() {
    // Exhaustive functional check through the subject network evaluator.
    let lib = annotated(asyncmap::library::builtin::cmos3());
    let eqs = asyncmap::burst::benchmark("dme-fast");
    let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
    let ni = design.subject.inputs().len();
    assert!(ni <= 12);
    for m in 0..(1usize << ni) {
        let mut bits = asyncmap_cube::Bits::new(ni);
        for v in 0..ni {
            bits.set(v, (m >> v) & 1 == 1);
        }
        for (name, cover) in &eqs.equations {
            assert_eq!(
                design.subject.eval_output(name, &bits),
                cover.eval(&bits),
                "output {name} differs at {m:#b}"
            );
        }
    }
}

#[test]
fn stats_reflect_hazard_activity() {
    let lib = annotated(asyncmap::library::builtin::actel());
    let eqs = asyncmap::burst::benchmark("dme");
    let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
    // The Actel library is mux-rich: the filter must have been consulted.
    assert!(design.stats.hazard_checks > 0);
    assert!(design.stats.hazard_rejects <= design.stats.hazard_checks);
    assert_eq!(design.stats.cones, design.cones.len());
}

#[test]
fn figure1_spec_maps_after_synthesis() {
    use asyncmap::burst::{expand, figure1_example, hazard_free_cover};
    let spec = figure1_example();
    let flow = expand(&spec).unwrap();
    let mut vars = VarTable::new();
    for n in &flow.var_names {
        vars.intern(n);
    }
    let equations: Vec<(String, Cover)> = flow
        .functions
        .iter()
        .map(|f| (f.name.clone(), hazard_free_cover(f).unwrap()))
        .collect();
    let eqs = EquationSet::new(vars, equations);
    for lib in asyncmap::library::builtin::all_libraries() {
        let lib = annotated(lib);
        let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        assert!(design.verify_function(&lib), "{}", lib.name());
        assert!(design.verify_hazards(&lib), "{}", lib.name());
    }
}
