//! Translation-validation audit trail for the asyncmap front end.
//!
//! The paper's soundness story rests on every pre-mapping transformation
//! using only hazard-preserving laws: decomposition restricted to
//! associativity and DeMorgan (Unger), partitioning cut only at
//! multi-fanout points (§3.1.2), flattening by distribution without
//! absorption or idempotence (Theorem 4.3). The instrumented entry points
//! in `asyncmap-network`, `asyncmap-bff` and `asyncmap-hazard` emit one
//! structured certificate per rewrite step, cut point and collapse; this
//! crate replays those certificates **without calling the transformation
//! code**:
//!
//! * rule applicability is re-checked syntactically
//!   ([`check_decomp_trace`]);
//! * functional equivalence is re-proved with this crate's own packed
//!   truth tables (supports of ≤ 8 variables) or BDDs from
//!   `asyncmap-bdd` ([`equiv`]);
//! * hazard-set monotonicity per step is re-proved through
//!   `asyncmap-hazard`'s [`reverification ladder`](asyncmap_hazard::reverify_containment)
//!   ([`monotone`]);
//! * partition cut evidence is re-derived from the raw network
//!   ([`check_partition`]);
//! * flatten collapses are replayed by independent product-count
//!   arithmetic and transition sweeps ([`check_flatten`]);
//! * burst-mode specs are checked against the unique-entry-point, maximal
//!   set and distinguishability properties, collecting every violation
//!   ([`check_spec`]).
//!
//! Deliberately **not** a dependency of `asyncmap-core`: the mapper can
//! be pointed at this checker through a hook (see the `ASYNCMAP_AUDIT`
//! environment variable on the CLI), but nothing here is consulted on the
//! mapping fast path, and nothing in the crates being audited depends on
//! the auditor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomp_check;
pub mod equiv;
pub mod flatten_check;
pub mod monotone;
pub mod partition_check;
pub mod report;
pub mod spec_check;

pub use decomp_check::{check_decomp, check_decomp_trace};
pub use equiv::{prove_equal, EquivProof, TRUTH_VAR_LIMIT};
pub use flatten_check::check_flatten;
pub use monotone::{product_estimate, recheck_monotone, MonotoneOutcome, FLATTEN_REPLAY_CAP};
pub use partition_check::check_partition;
pub use report::{AuditCounters, AuditReport, Finding, Severity};
pub use spec_check::check_spec;

use asyncmap_hazard::multilevel_flatten_traced;
use asyncmap_network::{
    async_tech_decomp_traced, partition_traced, Cone, DecompTrace, EquationSet, Network,
    PartitionTrace,
};

/// Audits the flatten collapse of every cone: replays
/// [`multilevel_flatten_traced`] per cone and checks the resulting
/// certificate, skipping (with an info note) cones whose independent
/// product estimate exceeds [`FLATTEN_REPLAY_CAP`].
pub fn audit_cone_flattens(net: &Network, cones: &[Cone]) -> AuditReport {
    let mut report = AuditReport::default();
    for cone in cones {
        let (expr, vars) = cone.to_expr(net);
        let path = format!("cone:{}", net.name(cone.root));
        if product_estimate(&expr) > FLATTEN_REPLAY_CAP {
            report.counters.flatten_skipped += 1;
            report.push(
                Severity::Info,
                "flatten.replay-skipped",
                path,
                "product estimate over the replay cap".to_owned(),
            );
            continue;
        }
        let (flat, trace) = multilevel_flatten_traced(&expr, vars.len());
        if trace.source != expr {
            report.push(
                Severity::Error,
                "flatten.source-mismatch",
                path,
                "collapse trace does not start from the cone's expression".to_owned(),
            );
            continue;
        }
        report.merge(check_flatten(&flat, &trace, vars.len()));
    }
    report
}

/// Checks a full front-end run — decomposition, partition and per-cone
/// flatten certificates — against the equations it claims to implement.
pub fn check_pipeline(
    eqs: &EquationSet,
    net: &Network,
    dtrace: &DecompTrace,
    cones: &[Cone],
    ptrace: &PartitionTrace,
) -> AuditReport {
    let mut report = check_decomp(eqs, net, dtrace);
    report.merge(check_partition(net, cones, ptrace));
    report.merge(audit_cone_flattens(net, cones));
    report
}

/// Runs the instrumented front end on `eqs` and audits every certificate
/// it emits. This is the one place the audit *invokes* transformation
/// code — to obtain the traces; every check then replays them
/// independently.
pub fn audit_equations(eqs: &EquationSet) -> AuditReport {
    let (net, dtrace) = async_tech_decomp_traced(eqs);
    let (cones, ptrace) = partition_traced(&net);
    check_pipeline(eqs, &net, &dtrace, &cones, &ptrace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::{Cover, VarTable};

    #[test]
    fn figure3_pipeline_audits_clean() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let report = audit_equations(&eqs);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.num_certificates() > 0);
        assert!(report.counters.cones >= 1);
    }

    #[test]
    fn multi_output_pipeline_audits_clean() {
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        let f = Cover::parse("ab + a'c", &vars).unwrap();
        let g = Cover::parse("a'd + bc'd", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f), ("g".to_owned(), g)]);
        let report = audit_equations(&eqs);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.counters.equations, 2);
    }
}
