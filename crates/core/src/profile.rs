//! Lightweight per-phase wall-clock profiler for the mapping pipeline.
//!
//! Each phase of a mapping run (decomposition, partitioning, cluster
//! enumeration, Boolean matching, hazard checking, cover selection)
//! accumulates elapsed nanoseconds and an invocation count into global
//! relaxed atomics. [`crate::MapStats::phases`] reports the delta across
//! one run; `ASYNCMAP_PROFILE=1` additionally dumps the breakdown to
//! stderr when the run finishes.
//!
//! The profiler is compiled in under the `profile` cargo feature (on by
//! default); without it every call here is a no-op and the timers are
//! zero-sized. Phases nest — a matching call happens inside cover
//! selection — so outer timers [`PhaseTimer::pause`] around inner phases,
//! keeping the per-phase totals disjoint and summable.
//!
//! Totals are process-global: if several mapping runs execute
//! concurrently on different threads, each run's delta includes the
//! others' work during its window. Per-run attribution is only exact for
//! the (default) one-run-at-a-time usage.

use std::fmt;

/// A pipeline phase, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapPhase {
    /// Technology decomposition (`sync_tech_decomp` / `async_tech_decomp`).
    Decompose,
    /// Partitioning the subject network into single-output cones.
    Partition,
    /// Cluster enumeration per cone.
    ClusterEnum,
    /// Boolean matching (signatures + permutation search).
    Match,
    /// Hazard-containment checks of candidate matches.
    HazardCheck,
    /// Dynamic-programming cover selection (excluding matching time).
    CoverSelect,
    /// ECO remap: shape-keying every cone and classifying it reused/dirty
    /// (includes building the partition DAG and the blast-radius sweep).
    DirtyMark,
    /// ECO remap: translating stored covers onto the new network's
    /// signals.
    ReuseStitch,
    /// Whole-design fundamental-mode analysis (the `asyncmap-fma` pass,
    /// run standalone or through the `ASYNCMAP_FMA=1` hook).
    Analyze,
}

/// Number of phases in [`MapPhase`].
pub const NUM_PHASES: usize = 9;

/// Short stable names, indexed by `MapPhase as usize` (used in reports and
/// the benchmark JSON).
pub const PHASE_NAMES: [&str; NUM_PHASES] = [
    "decompose",
    "partition",
    "cluster_enum",
    "match",
    "hazard_check",
    "cover_select",
    "dirty_mark",
    "reuse_stitch",
    "analyze",
];

/// Accumulated per-phase wall-clock time and invocation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    nanos: [u64; NUM_PHASES],
    counts: [u64; NUM_PHASES],
}

impl PhaseTimes {
    /// Phase-wise difference `self - earlier` (saturating), for the
    /// snapshot-before / snapshot-after accounting of one run.
    pub fn delta(&self, earlier: &PhaseTimes) -> PhaseTimes {
        let mut out = PhaseTimes::default();
        for i in 0..NUM_PHASES {
            out.nanos[i] = self.nanos[i].saturating_sub(earlier.nanos[i]);
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }

    /// Seconds spent in `phase`.
    pub fn secs(&self, phase: MapPhase) -> f64 {
        self.nanos[phase as usize] as f64 * 1e-9
    }

    /// Number of timed invocations of `phase`.
    pub fn count(&self, phase: MapPhase) -> u64 {
        self.counts[phase as usize]
    }

    /// Sum of all phase times, in seconds. Phases are disjoint, so this is
    /// the profiled fraction of the run.
    pub fn total_secs(&self) -> f64 {
        self.nanos.iter().sum::<u64>() as f64 * 1e-9
    }

    /// `true` when nothing was recorded (profiler compiled out, or an
    /// unprofiled code path).
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0) && self.nanos.iter().all(|&n| n == 0)
    }

    /// Iterates `(name, seconds, count)` per phase, in pipeline order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, f64, u64)> + '_ {
        (0..NUM_PHASES).map(|i| (PHASE_NAMES[i], self.nanos[i] as f64 * 1e-9, self.counts[i]))
    }
}

/// Allocation accounting of the cut enumerator's reusable scratch (see
/// `cluster::EnumScratch`): how many cones were enumerated, how many of
/// them ran entirely out of pre-sized buffers, and how many buffer-growth
/// (heap allocation) events occurred in total. In steady state
/// `warm_cones` tracks `cones` and `alloc_events` stays flat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumAllocStats {
    /// Cones enumerated.
    pub cones: u64,
    /// Cones whose enumeration grew no scratch buffer (zero allocations
    /// beyond the returned cut lists).
    pub warm_cones: u64,
    /// Scratch-buffer capacity-growth events (each at least one heap
    /// allocation).
    pub alloc_events: u64,
}

impl EnumAllocStats {
    /// Component-wise difference `self - earlier` (saturating), for
    /// per-run accounting.
    pub fn delta(&self, earlier: &EnumAllocStats) -> EnumAllocStats {
        EnumAllocStats {
            cones: self.cones.saturating_sub(earlier.cones),
            warm_cones: self.warm_cones.saturating_sub(earlier.warm_cones),
            alloc_events: self.alloc_events.saturating_sub(earlier.alloc_events),
        }
    }
}

impl fmt::Display for PhaseTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, secs, count)) in self.entries().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "  {name:<13} {:>9.2} ms  ({count} calls)", secs * 1e3)?;
        }
        Ok(())
    }
}

#[cfg(feature = "profile")]
mod imp {
    use super::{MapPhase, PhaseTimes, NUM_PHASES};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    // `[const { ... }; N]` array-repeat initialization of the atomics.
    static NANOS: [AtomicU64; NUM_PHASES] = [const { AtomicU64::new(0) }; NUM_PHASES];
    static COUNTS: [AtomicU64; NUM_PHASES] = [const { AtomicU64::new(0) }; NUM_PHASES];

    /// Times one phase from construction to drop; [`PhaseTimer::pause`]
    /// excludes nested phases from the lap.
    #[derive(Debug)]
    pub struct PhaseTimer {
        idx: usize,
        acc: u64,
        start: Option<Instant>,
    }

    impl PhaseTimer {
        /// Stops the clock (e.g. before handing off to an inner phase).
        pub fn pause(&mut self) {
            if let Some(s) = self.start.take() {
                self.acc += s.elapsed().as_nanos() as u64;
            }
        }

        /// Restarts the clock after a [`PhaseTimer::pause`].
        pub fn resume(&mut self) {
            if self.start.is_none() {
                self.start = Some(Instant::now());
            }
        }
    }

    impl Drop for PhaseTimer {
        fn drop(&mut self) {
            self.pause();
            NANOS[self.idx].fetch_add(self.acc, Ordering::Relaxed);
            COUNTS[self.idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn timer(phase: MapPhase) -> PhaseTimer {
        PhaseTimer {
            idx: phase as usize,
            acc: 0,
            start: Some(Instant::now()),
        }
    }

    pub fn snapshot() -> PhaseTimes {
        let mut out = PhaseTimes::default();
        for i in 0..NUM_PHASES {
            out.nanos[i] = NANOS[i].load(Ordering::Relaxed);
            out.counts[i] = COUNTS[i].load(Ordering::Relaxed);
        }
        out
    }

    static ENUM_CONES: AtomicU64 = AtomicU64::new(0);
    static ENUM_WARM: AtomicU64 = AtomicU64::new(0);
    static ENUM_ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub fn record_enum_cone(alloc_events: u64) {
        ENUM_CONES.fetch_add(1, Ordering::Relaxed);
        if alloc_events == 0 {
            ENUM_WARM.fetch_add(1, Ordering::Relaxed);
        } else {
            ENUM_ALLOCS.fetch_add(alloc_events, Ordering::Relaxed);
        }
    }

    pub fn enum_alloc_snapshot() -> super::EnumAllocStats {
        super::EnumAllocStats {
            cones: ENUM_CONES.load(Ordering::Relaxed),
            warm_cones: ENUM_WARM.load(Ordering::Relaxed),
            alloc_events: ENUM_ALLOCS.load(Ordering::Relaxed),
        }
    }
}

#[cfg(not(feature = "profile"))]
mod imp {
    use super::{MapPhase, PhaseTimes};

    /// No-op stand-in when the `profile` feature is disabled.
    #[derive(Debug)]
    pub struct PhaseTimer;

    impl PhaseTimer {
        /// No-op.
        pub fn pause(&mut self) {}
        /// No-op.
        pub fn resume(&mut self) {}
    }

    pub fn timer(_phase: MapPhase) -> PhaseTimer {
        PhaseTimer
    }

    pub fn snapshot() -> PhaseTimes {
        PhaseTimes::default()
    }

    pub fn record_enum_cone(_alloc_events: u64) {}

    pub fn enum_alloc_snapshot() -> super::EnumAllocStats {
        super::EnumAllocStats::default()
    }
}

pub use imp::PhaseTimer;

/// Starts timing `phase`; the lap is committed to the global totals when
/// the returned timer drops. With the `profile` feature disabled this is a
/// no-op.
pub fn timer(phase: MapPhase) -> PhaseTimer {
    imp::timer(phase)
}

/// Current global per-phase totals (all runs since process start).
pub fn snapshot() -> PhaseTimes {
    imp::snapshot()
}

/// Records one enumerated cone and the number of scratch-buffer growth
/// events it incurred. No-op with the `profile` feature disabled.
pub fn record_enum_cone(alloc_events: u64) {
    imp::record_enum_cone(alloc_events)
}

/// Current global enumeration-allocation totals (all runs since process
/// start); difference two snapshots for per-run numbers.
pub fn enum_alloc_snapshot() -> EnumAllocStats {
    imp::enum_alloc_snapshot()
}

/// `true` when the `ASYNCMAP_PROFILE` environment switch asks for
/// phase-time output (any nonempty value other than `0`).
pub fn dump_enabled() -> bool {
    std::env::var("ASYNCMAP_PROFILE").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

/// Dumps `times` to stderr when `ASYNCMAP_PROFILE=1` is set.
pub fn maybe_dump(times: &PhaseTimes) {
    if dump_enabled() && !times.is_zero() {
        eprintln!(
            "asyncmap phase profile ({:.2} ms total):\n{times}",
            times.total_secs() * 1e3
        );
    }
}

/// Dumps the run's enumeration/matching counters to stderr when
/// `ASYNCMAP_PROFILE=1` is set: cut-list truncation events (silent pruning
/// that can cost cover quality), the NPN match-memo hit/miss split, and
/// the enumeration-scratch allocation accounting (warm cones allocate
/// nothing beyond their output).
pub fn maybe_dump_counters(
    cut_truncations: usize,
    npn_hits: usize,
    npn_misses: usize,
    alloc: &EnumAllocStats,
) {
    if !dump_enabled() {
        return;
    }
    let lookups = npn_hits + npn_misses;
    if lookups > 0 {
        eprintln!(
            "asyncmap npn memo: {npn_hits} hits / {lookups} lookups ({:.1}%)",
            npn_hits as f64 / lookups as f64 * 100.0
        );
    }
    if cut_truncations > 0 {
        eprintln!("asyncmap cut enumeration: {cut_truncations} gates hit max_cuts_per_gate");
    }
    if alloc.cones > 0 {
        eprintln!(
            "asyncmap enum scratch: {}/{} warm cones ({:.1}%), {} alloc events",
            alloc.warm_cones,
            alloc.cones,
            alloc.warm_cones as f64 / alloc.cones as f64 * 100.0,
            alloc.alloc_events
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_phase_wise() {
        let before = snapshot();
        {
            let mut t = timer(MapPhase::Match);
            t.pause();
            t.resume();
        }
        let d = snapshot().delta(&before);
        if cfg!(feature = "profile") {
            assert!(d.count(MapPhase::Match) >= 1);
        } else {
            assert!(d.is_zero());
        }
        // Display renders one line per phase either way.
        assert_eq!(format!("{d}").lines().count(), NUM_PHASES);
    }

    #[test]
    fn zero_times_report_zero() {
        let z = PhaseTimes::default();
        assert!(z.is_zero());
        assert_eq!(z.total_secs(), 0.0);
        assert_eq!(z.entries().count(), NUM_PHASES);
    }
}
