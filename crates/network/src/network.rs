//! The multi-level logic network: a DAG of primitive gates between primary
//! inputs and named outputs.

use asyncmap_cube::{Bits, VarId, VarTable};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a signal (primary input or gate output) in a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub usize);

impl SignalId {
    /// Numeric index of the signal.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Primitive gate operators of the decomposed (subject) network — the base
/// functions of §3.1 plus inverters and buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// Inverter.
    Inv,
    /// Buffer (used for fanout repair after mapping).
    Buf,
}

impl GateOp {
    /// Number of inputs the operator takes.
    pub fn arity(self) -> usize {
        match self {
            GateOp::And | GateOp::Or => 2,
            GateOp::Inv | GateOp::Buf => 1,
        }
    }
}

/// Inline fanin storage of a gate node.
///
/// Every primitive operator has arity ≤ 2, so the fanin list lives inline
/// in the node instead of behind a heap `Vec` — one allocation per gate
/// saved, and node storage becomes a single flat arena (`Vec<NodeKind>`)
/// with no pointer chasing during traversal. Dereferences to `[SignalId]`,
/// so existing `fanin.iter()` / `fanin[k]` / `fanin.len()` call sites work
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fanin {
    len: u8,
    sigs: [SignalId; 2],
}

impl Fanin {
    /// Builds a fanin list from a slice of at most two signals.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty or longer than two signals.
    pub fn from_slice(sigs: &[SignalId]) -> Self {
        assert!(
            (1..=2).contains(&sigs.len()),
            "fanin arity {} out of range",
            sigs.len()
        );
        let mut inline = [SignalId(0); 2];
        inline[..sigs.len()].copy_from_slice(sigs);
        Fanin {
            len: sigs.len() as u8,
            sigs: inline,
        }
    }

    /// The fanin signals as a slice.
    pub fn as_slice(&self) -> &[SignalId] {
        &self.sigs[..self.len as usize]
    }
}

impl std::ops::Deref for Fanin {
    type Target = [SignalId];
    fn deref(&self) -> &[SignalId] {
        self.as_slice()
    }
}

impl From<Vec<SignalId>> for Fanin {
    fn from(v: Vec<SignalId>) -> Self {
        Fanin::from_slice(&v)
    }
}

impl From<[SignalId; 1]> for Fanin {
    fn from(v: [SignalId; 1]) -> Self {
        Fanin::from_slice(&v)
    }
}

impl From<[SignalId; 2]> for Fanin {
    fn from(v: [SignalId; 2]) -> Self {
        Fanin::from_slice(&v)
    }
}

impl<'a> IntoIterator for &'a Fanin {
    type Item = &'a SignalId;
    type IntoIter = std::slice::Iter<'a, SignalId>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A node of the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A primary input.
    Input,
    /// A primitive gate over previously defined signals.
    Gate {
        /// The operator.
        op: GateOp,
        /// Input signals (length = `op.arity()`), stored inline.
        fanin: Fanin,
    },
}

/// A combinational logic network of primitive gates.
///
/// Nodes are append-only and topologically ordered by construction (a gate
/// may only reference earlier signals), which keeps evaluation and
/// traversal linear.
///
/// # Examples
///
/// ```
/// use asyncmap_network::{GateOp, Network};
/// let mut net = Network::new();
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let g = net.add_gate(GateOp::And, vec![a, b]);
/// net.mark_output("f", g);
/// assert_eq!(net.num_gates(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Network {
    names: VarTable,
    nodes: Vec<NodeKind>,
    inputs: Vec<SignalId>,
    outputs: Vec<(String, SignalId)>,
    /// Scratch for generated gate names; reused so `add_gate` does not
    /// allocate a fresh `String` per gate.
    name_buf: String,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a primary input named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used.
    pub fn add_input(&mut self, name: &str) -> SignalId {
        assert!(
            self.names.lookup(name).is_none(),
            "duplicate signal name {name:?}"
        );
        let id = SignalId(self.nodes.len());
        let interned = self.names.intern(name);
        debug_assert_eq!(interned.index(), id.0);
        self.nodes.push(NodeKind::Input);
        self.inputs.push(id);
        id
    }

    /// Adds a primitive gate; the output signal gets a generated name.
    ///
    /// # Panics
    ///
    /// Panics if the fanin arity does not match the operator or references
    /// an undefined signal.
    pub fn add_gate(&mut self, op: GateOp, fanin: impl Into<Fanin>) -> SignalId {
        let fanin = fanin.into();
        assert_eq!(fanin.len(), op.arity(), "wrong fanin count for {op:?}");
        for f in &fanin {
            assert!(f.0 < self.nodes.len(), "undefined fanin signal {f}");
        }
        let id = SignalId(self.nodes.len());
        use std::fmt::Write;
        self.name_buf.clear();
        write!(self.name_buf, "_g{}", id.0).expect("write to String");
        let interned = self.names.intern(&self.name_buf);
        debug_assert_eq!(interned.index(), id.0);
        self.nodes.push(NodeKind::Gate { op, fanin });
        id
    }

    /// Declares `signal` to be the primary output `name`.
    pub fn mark_output(&mut self, name: &str, signal: SignalId) {
        self.outputs.push((name.to_owned(), signal));
    }

    /// The primary inputs, in creation order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// The `(name, signal)` primary outputs, in declaration order.
    pub fn outputs(&self) -> &[(String, SignalId)] {
        &self.outputs
    }

    /// The node backing `signal`.
    pub fn node(&self, signal: SignalId) -> &NodeKind {
        &self.nodes[signal.0]
    }

    /// The name of `signal`.
    pub fn name(&self, signal: SignalId) -> &str {
        self.names.name(VarId(signal.0))
    }

    /// Total number of signals (inputs + gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the network has no signals.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of gate nodes.
    pub fn num_gates(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, NodeKind::Gate { .. }))
            .count()
    }

    /// All signals in topological (creation) order.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> {
        (0..self.nodes.len()).map(SignalId)
    }

    /// Number of gate nodes that read each signal (primary-output uses not
    /// included).
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            if let NodeKind::Gate { fanin, .. } = node {
                for f in fanin {
                    counts[f.0] += 1;
                }
            }
        }
        counts
    }

    /// Evaluates every signal for the given primary-input assignment
    /// (`inputs[i]` is the value of the `i`-th primary input in creation
    /// order). Returns one value per signal.
    pub fn eval(&self, inputs: &Bits) -> Vec<bool> {
        debug_assert_eq!(inputs.len(), self.inputs.len());
        let mut values = vec![false; self.nodes.len()];
        let mut input_index = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                NodeKind::Input => {
                    let v = inputs.get(input_index);
                    input_index += 1;
                    v
                }
                NodeKind::Gate { op, fanin } => {
                    let f = |k: usize| values[fanin[k].0];
                    match op {
                        GateOp::And => f(0) && f(1),
                        GateOp::Or => f(0) || f(1),
                        GateOp::Inv => !f(0),
                        GateOp::Buf => f(0),
                    }
                }
            };
        }
        values
    }

    /// Evaluates the named output for a primary-input assignment.
    ///
    /// # Panics
    ///
    /// Panics if no output has that name.
    pub fn eval_output(&self, name: &str, inputs: &Bits) -> bool {
        let (_, sig) = self
            .outputs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no output named {name:?}"));
        self.eval(inputs)[sig.0]
    }

    /// Renames primary input positions: maps each primary input signal to
    /// its index in the input list.
    pub fn input_positions(&self) -> HashMap<SignalId, usize> {
        self.inputs
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gate_net() -> Network {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let nb = net.add_gate(GateOp::Inv, vec![b]);
        let and1 = net.add_gate(GateOp::And, vec![a, nb]);
        let or1 = net.add_gate(GateOp::Or, vec![and1, c]);
        net.mark_output("f", or1);
        net
    }

    #[test]
    fn construction_and_counts() {
        let net = two_gate_net();
        assert_eq!(net.len(), 6);
        assert_eq!(net.num_gates(), 3);
        assert_eq!(net.inputs().len(), 3);
        assert_eq!(net.outputs().len(), 1);
    }

    #[test]
    fn eval_computes_function() {
        let net = two_gate_net();
        // f = a·b' + c
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            let (a, b, c) = (bits.get(0), bits.get(1), bits.get(2));
            assert_eq!(net.eval_output("f", &bits), (a && !b) || c);
        }
    }

    #[test]
    fn fanout_counts_gates_only() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let inv = net.add_gate(GateOp::Inv, vec![a]);
        let and1 = net.add_gate(GateOp::And, vec![a, inv]);
        let and2 = net.add_gate(GateOp::And, vec![inv, and1]);
        net.mark_output("f", and2);
        let counts = net.fanout_counts();
        assert_eq!(counts[a.0], 2);
        assert_eq!(counts[inv.0], 2);
        assert_eq!(counts[and1.0], 1);
        assert_eq!(counts[and2.0], 0);
    }

    #[test]
    #[should_panic(expected = "wrong fanin count")]
    fn arity_checked() {
        let mut net = Network::new();
        let a = net.add_input("a");
        net.add_gate(GateOp::And, vec![a]);
    }

    #[test]
    #[should_panic(expected = "duplicate signal name")]
    fn duplicate_input_rejected() {
        let mut net = Network::new();
        net.add_input("a");
        net.add_input("a");
    }
}
