//! Replay of partition cut certificates ([`PartitionTrace`]) against the
//! network and the cones they claim to describe.
//!
//! Each cut must carry honest fanout evidence (the consuming gates are
//! re-derived by an independent scan of the network's fanin lists), must
//! be *legal* (a gate that drives a primary output or is consumed at
//! least twice — paper §3.1.2), and the set of cuts must be complete:
//! every legal boundary point is cut, no signal is cut twice, and the
//! cones re-derived from the cut set alone are exactly the certified
//! cones, with every gate in exactly one cone.

use std::collections::{HashMap, HashSet};

use asyncmap_network::{Cone, Network, NodeKind, PartitionTrace, SignalId};

use crate::report::{AuditReport, Severity};

/// Independent re-derivation of one cone from the cut set: depth-first
/// from `root`, stopping at inputs and at other cut signals, collecting
/// leaves in first-visit order (deduplicated) and gates sorted.
fn rewalk_cone(
    net: &Network,
    root: SignalId,
    cut_set: &HashSet<SignalId>,
) -> (Vec<SignalId>, Vec<SignalId>) {
    let mut leaves = Vec::new();
    let mut seen = HashSet::new();
    let mut gates = Vec::new();
    fn go(
        net: &Network,
        signal: SignalId,
        root: SignalId,
        cut_set: &HashSet<SignalId>,
        leaves: &mut Vec<SignalId>,
        seen: &mut HashSet<SignalId>,
        gates: &mut Vec<SignalId>,
    ) {
        if matches!(net.node(signal), NodeKind::Input)
            || (signal != root && cut_set.contains(&signal))
        {
            if seen.insert(signal) {
                leaves.push(signal);
            }
            return;
        }
        gates.push(signal);
        if let NodeKind::Gate { fanin, .. } = net.node(signal) {
            for &f in fanin {
                go(net, f, root, cut_set, leaves, seen, gates);
            }
        }
    }
    go(net, root, root, cut_set, &mut leaves, &mut seen, &mut gates);
    gates.sort();
    (leaves, gates)
}

/// Replays a [`PartitionTrace`] against `net` and the cones it certifies.
pub fn check_partition(net: &Network, cones: &[Cone], trace: &PartitionTrace) -> AuditReport {
    let mut report = AuditReport::default();
    report.counters.cut_points = trace.cuts.len();
    report.counters.cones = cones.len();

    // Independent fanout evidence: which gates consume each signal, in
    // topological order, with multiplicity.
    let mut consumers: Vec<Vec<SignalId>> = vec![Vec::new(); net.len()];
    for s in net.signals() {
        if let NodeKind::Gate { fanin, .. } = net.node(s) {
            for f in fanin {
                consumers[f.index()].push(s);
            }
        }
    }
    let output_names: HashMap<SignalId, Vec<String>> = {
        let mut m: HashMap<SignalId, Vec<String>> = HashMap::new();
        for (name, s) in net.outputs() {
            m.entry(*s).or_default().push(name.clone());
        }
        m
    };

    if trace.cuts.len() != cones.len() {
        report.push(
            Severity::Error,
            "partition.cut-mismatch",
            "trace".to_owned(),
            format!("{} cut(s) for {} cone(s)", trace.cuts.len(), cones.len()),
        );
    }

    let mut cut_set: HashSet<SignalId> = HashSet::new();
    for cut in &trace.cuts {
        let path = format!("cut:{}", net.name(cut.signal));
        if !cut_set.insert(cut.signal) {
            report.push(
                Severity::Error,
                "partition.duplicate-cut",
                path.clone(),
                "signal is cut more than once".to_owned(),
            );
        }
        if matches!(net.node(cut.signal), NodeKind::Input) {
            report.push(
                Severity::Error,
                "partition.illegal-cut",
                path.clone(),
                "primary inputs are implicit cone leaves, never cut points".to_owned(),
            );
            continue;
        }
        let actual = &consumers[cut.signal.index()];
        if cut.consumers != *actual || cut.fanout != actual.len() {
            report.push(
                Severity::Error,
                "partition.fanout-evidence",
                path.clone(),
                format!(
                    "certificate claims fanout {} {:?}, network has {} {:?}",
                    cut.fanout,
                    cut.consumers,
                    actual.len(),
                    actual
                ),
            );
            continue;
        }
        let actual_outputs = output_names.get(&cut.signal).cloned().unwrap_or_default();
        if cut.outputs != actual_outputs {
            report.push(
                Severity::Error,
                "partition.output-evidence",
                path.clone(),
                format!(
                    "certificate claims outputs {:?}, network drives {:?}",
                    cut.outputs, actual_outputs
                ),
            );
            continue;
        }
        if cut.outputs.is_empty() && cut.fanout < 2 {
            report.push(
                Severity::Error,
                "partition.illegal-cut",
                path,
                "cut drives no primary output and fans out to fewer than two gate inputs"
                    .to_owned(),
            );
        }
    }

    // Completeness: every legal boundary point must be in the cut set.
    for s in net.signals() {
        if matches!(net.node(s), NodeKind::Input) {
            continue;
        }
        let legal = output_names.contains_key(&s) || consumers[s.index()].len() >= 2;
        if legal && !cut_set.contains(&s) {
            report.push(
                Severity::Error,
                "partition.missing-cut",
                format!("cut:{}", net.name(s)),
                "legal boundary point (output or multi-fanout gate) is not cut".to_owned(),
            );
        }
    }

    // Cone fidelity: re-derive each cone from the cut set alone.
    let mut covered: HashMap<SignalId, usize> = HashMap::new();
    for (i, cone) in cones.iter().enumerate() {
        let path = format!("cone:{}", net.name(cone.root));
        if let Some(cut) = trace.cuts.get(i) {
            if cut.signal != cone.root {
                report.push(
                    Severity::Error,
                    "partition.cut-mismatch",
                    path.clone(),
                    format!(
                        "cut {} certifies {:?}, cone {} is rooted at {:?}",
                        i, cut.signal, i, cone.root
                    ),
                );
            }
        }
        let (leaves, gates) = rewalk_cone(net, cone.root, &cut_set);
        if leaves != cone.leaves || gates != cone.gates {
            report.push(
                Severity::Error,
                "partition.cone-mismatch",
                path,
                "cone does not match the independent re-walk from the cut set".to_owned(),
            );
        }
        for &g in &cone.gates {
            *covered.entry(g).or_insert(0) += 1;
        }
    }

    // Every gate in exactly one cone.
    for s in net.signals() {
        if !matches!(net.node(s), NodeKind::Gate { .. }) {
            continue;
        }
        match covered.get(&s).copied().unwrap_or(0) {
            1 => {}
            n => report.push(
                Severity::Error,
                "partition.gate-coverage",
                format!("gate:{}", net.name(s)),
                format!("gate appears in {n} cone(s), expected exactly 1"),
            ),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::{Cover, VarTable};
    use asyncmap_network::{async_tech_decomp, partition_traced, EquationSet};

    fn shared_inverter_net() -> Network {
        let vars = VarTable::from_names(["a", "b"]);
        let f = Cover::parse("a'b", &vars).unwrap();
        let g = Cover::parse("a'b'", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f), ("g".to_owned(), g)]);
        async_tech_decomp(&eqs)
    }

    #[test]
    fn honest_partition_is_clean() {
        let net = shared_inverter_net();
        let (cones, trace) = partition_traced(&net);
        let report = check_partition(&net, &cones, &trace);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.counters.cut_points, 3);
    }

    #[test]
    fn forged_fanout_evidence_is_rejected() {
        let net = shared_inverter_net();
        let (cones, mut trace) = partition_traced(&net);
        let cut = trace
            .cuts
            .iter_mut()
            .find(|c| c.outputs.is_empty())
            .expect("internal multi-fanout cut");
        // Duplicate a consumer: inflated evidence must not pass.
        let extra = cut.consumers[0];
        cut.consumers.push(extra);
        cut.fanout = cut.consumers.len();
        let report = check_partition(&net, &cones, &trace);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "partition.fanout-evidence"));
    }

    #[test]
    fn dropped_cut_is_rejected() {
        let net = shared_inverter_net();
        let (mut cones, mut trace) = partition_traced(&net);
        let i = trace
            .cuts
            .iter()
            .position(|c| c.outputs.is_empty())
            .expect("internal multi-fanout cut");
        trace.cuts.remove(i);
        cones.remove(i);
        let report = check_partition(&net, &cones, &trace);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "partition.missing-cut"));
    }

    #[test]
    fn single_fanout_cut_is_illegal() {
        // Hand-build a chain a → INV → AND(inv, b) → out and cut the
        // inverter: single fanout, no output, must be flagged.
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let inv = net.add_gate(asyncmap_network::GateOp::Inv, vec![a]);
        let and = net.add_gate(asyncmap_network::GateOp::And, vec![inv, b]);
        net.mark_output("f", and);
        let (mut cones, mut trace) = partition_traced(&net);
        trace.cuts.push(asyncmap_network::CutCertificate {
            signal: inv,
            fanout: 1,
            consumers: vec![and],
            outputs: Vec::new(),
        });
        cones.push(Cone {
            root: inv,
            leaves: vec![a],
            gates: vec![inv],
        });
        let report = check_partition(&net, &cones, &trace);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "partition.illegal-cut"));
    }
}
