//! Reproduces the paper's worked figures as executable analyses:
//! Figure 2 (hazard taxonomy), Figure 3 (why Boolean matching needs the
//! hazard filter), Figure 4 (structure determines hazards) and Figure 10
//! (the `findMicDynHaz2level` trace).
//!
//! Run with `cargo run --example figures`.

use asyncmap::hazard::{
    analyze_expr, find_mic_dyn_haz_2level, hazards_subset, static_1_analysis, wave_eval,
};
use asyncmap::prelude::*;
use asyncmap_cube::{Bits, VarTable};

fn bits(vars: &VarTable, assignments: &[(&str, bool)]) -> Bits {
    let mut b = Bits::new(vars.len());
    for (name, v) in assignments {
        b.set(vars.lookup(name).unwrap().index(), *v);
    }
    b
}

fn main() {
    figure2();
    figure3();
    figure4();
    figure10();
}

fn figure2() {
    println!("── Figure 2: hazard taxonomy ──");
    let vars = VarTable::from_names(["w", "x", "y", "z"]);
    // 2a: s.i.c. static-1 hazard — wxy + w'xz, w changing with x=y=z=1.
    let f = Cover::parse("wxy + w'xz", &vars).unwrap();
    for h in static_1_analysis(&f) {
        println!("  2a: {}", h.display(&vars));
    }
    // 2b: m.i.c. static-1 hazard — w'x' + y'z + w'y + xz.
    let g = Cover::parse("w'x' + y'z + w'y + xz", &vars).unwrap();
    let hz = asyncmap::hazard::static_1_complete(&g);
    println!("  2b: {} m.i.c. static-1 hazard span(s)", hz.len());
    // 2c: m.i.c. dynamic hazard in a two-level cover.
    let d = Cover::parse("w'xz + w'xy + xyz", &vars).unwrap();
    let dyn_hz = find_mic_dyn_haz_2level(&d);
    println!("  2c: {} m.i.c. dynamic hazard(s)", dyn_hz.len());
}

fn figure3() {
    println!("── Figure 3: Boolean matching can lose the redundant cube ──");
    let mut vars = VarTable::new();
    let original = Expr::parse("a*b + a'*c + b*c", &mut vars).unwrap();
    let mux_match = Expr::parse_in("a*b + a'*c", &vars).unwrap();
    println!(
        "  original (with consensus bc): {}",
        analyze_expr(&original, vars.len()).summary()
    );
    println!(
        "  two-cube match:               {}",
        analyze_expr(&mux_match, vars.len()).summary()
    );
    let ok = hazards_subset(&mux_match, &original, vars.len());
    println!("  hazards(match) ⊆ hazards(original)? {ok} → match rejected");
}

fn figure4() {
    println!("── Figure 4: same function, different structures ──");
    let mut vars = VarTable::new();
    let two_level = Expr::parse("w*x + x'*y", &mut vars).unwrap();
    let factored = Expr::parse_in("(w + x')*(x + y)", &vars).unwrap();
    // The burst of the figure: w falls, x rises, y (held high) masks.
    let alpha = bits(&vars, &[("w", true), ("y", true)]);
    let beta = bits(&vars, &[("x", true), ("y", true)]);
    println!(
        "  burst w↓x↑ (y=1): two-level → {}, factored → {}",
        wave_eval(&two_level, &alpha, &beta),
        wave_eval(&factored, &alpha, &beta)
    );
    println!(
        "  full reports: two-level [{}], factored [{}]",
        analyze_expr(&two_level, vars.len()).summary(),
        analyze_expr(&factored, vars.len()).summary()
    );
}

fn figure10() {
    println!("── Figure 10: findMicDynHaz2level worked example ──");
    let vars = VarTable::from_names(["w", "x", "y", "z"]);
    let f = Cover::parse("w'xz + w'xy + xyz", &vars).unwrap();
    for c in asyncmap::hazard::irredundant_intersections(&f) {
        println!("  irredundant cube intersection: {}", c.display(&vars));
    }
    for h in find_mic_dyn_haz_2level(&f) {
        println!("  {}", h.display(&vars));
    }
}
