//! Human-readable mapping reports: cell usage, per-family area breakdown
//! and the hazard-filter activity of a run — the summary a user reads
//! after `async_tmap`.

use crate::design::MappedDesign;
use asyncmap_library::Library;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Usage of one cell type in a mapped design.
#[derive(Debug, Clone, PartialEq)]
pub struct CellUsage {
    /// Cell name.
    pub name: String,
    /// Number of instances.
    pub count: usize,
    /// Total area contributed.
    pub area: f64,
}

/// Aggregates instance counts and area per cell type, sorted by descending
/// area contribution.
pub fn cell_usage(design: &MappedDesign, library: &Library) -> Vec<CellUsage> {
    let mut by_cell: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    for cover in &design.covers {
        for inst in &cover.instances {
            let cell = &library.cells()[inst.cell_index];
            let entry = by_cell.entry(cell.name()).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += cell.area();
        }
    }
    let mut out: Vec<CellUsage> = by_cell
        .into_iter()
        .map(|(name, (count, area))| CellUsage {
            name: name.to_owned(),
            count,
            area,
        })
        .collect();
    out.sort_by(|a, b| b.area.total_cmp(&a.area).then(a.name.cmp(&b.name)));
    out
}

/// Formats a full report: totals, statistics, and the cell-usage table.
pub fn render_report(design: &MappedDesign, library: &Library) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mapped to {}: {} instances over {} cones ({} subject gates)",
        design.library_name,
        design.num_instances(),
        design.stats.cones,
        design.stats.subject_gates
    );
    let _ = writeln!(
        out,
        "area {:.1} (incl. {} fanout buffer(s)), critical-path delay {:.2}",
        design.area, design.stats.buffers, design.delay
    );
    if design.stats.hazard_checks > 0 {
        let _ = writeln!(
            out,
            "hazard filter: {} containment checks, {} matches rejected",
            design.stats.hazard_checks, design.stats.hazard_rejects
        );
    }
    let cache_total = design.stats.cache_hits + design.stats.cache_misses;
    if cache_total > 0 {
        let _ = writeln!(
            out,
            "verdict cache: {} hits, {} misses ({:.0}% hit rate)",
            design.stats.cache_hits,
            design.stats.cache_misses,
            100.0 * design.stats.cache_hits as f64 / cache_total as f64
        );
    }
    let npn_total = design.stats.npn_hits + design.stats.npn_misses;
    if npn_total > 0 {
        let _ = writeln!(
            out,
            "npn match memo: {} hits, {} misses ({:.0}% hit rate)",
            design.stats.npn_hits,
            design.stats.npn_misses,
            100.0 * design.stats.npn_hits as f64 / npn_total as f64
        );
    }
    if design.stats.cones_reused + design.stats.cones_remapped > 0 {
        let _ = writeln!(
            out,
            "eco remap: {} cone(s) reused, {} re-covered",
            design.stats.cones_reused, design.stats.cones_remapped
        );
    }
    if design.stats.cut_truncations > 0 {
        let _ = writeln!(
            out,
            "cut enumeration: {} gate(s) truncated at max_cuts_per_gate",
            design.stats.cut_truncations
        );
    }
    if design.stats.audit_certificates > 0 {
        let _ = writeln!(
            out,
            "transformation audit: {} certificate(s) replayed clean",
            design.stats.audit_certificates
        );
    }
    if design.stats.fma_cones > 0 {
        let _ = writeln!(
            out,
            "fundamental-mode analysis: {} cone(s) analyzed clean",
            design.stats.fma_cones
        );
    }
    // Wall-clock phase times vary run to run, so they are opt-in via the
    // same switch as the stderr dump — default report output stays
    // byte-reproducible across runs and thread counts.
    if crate::profile::dump_enabled() && !design.stats.phases.is_zero() {
        let _ = writeln!(
            out,
            "phase breakdown ({:.1} ms profiled):",
            design.stats.phases.total_secs() * 1e3
        );
        let _ = writeln!(out, "{}", design.stats.phases);
    }
    let _ = writeln!(out, "{:12} {:>6} {:>10}", "cell", "count", "area");
    for u in cell_usage(design, library) {
        let _ = writeln!(out, "{:12} {:>6} {:>10.1}", u.name, u.count, u.area);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{async_tmap, MapOptions};
    use asyncmap_cube::{Cover, VarTable};
    use asyncmap_library::builtin;
    use asyncmap_network::EquationSet;

    fn mapped() -> (MappedDesign, asyncmap_library::Library) {
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        (design, lib)
    }

    #[test]
    fn usage_sums_to_instance_counts_and_cell_area() {
        let (design, lib) = mapped();
        let usage = cell_usage(&design, &lib);
        let count: usize = usage.iter().map(|u| u.count).sum();
        assert_eq!(count, design.num_instances());
        let area: f64 = usage.iter().map(|u| u.area).sum();
        let cover_area: f64 = design.covers.iter().map(|c| c.area).sum();
        assert!((area - cover_area).abs() < 1e-9);
        // Sorted by descending area.
        for pair in usage.windows(2) {
            assert!(pair[0].area >= pair[1].area);
        }
    }

    #[test]
    fn report_mentions_totals() {
        let (design, lib) = mapped();
        let text = render_report(&design, &lib);
        assert!(text.contains("mapped to CMOS3"));
        assert!(text.contains("critical-path delay"));
        assert!(text.contains("cell"));
    }
}
