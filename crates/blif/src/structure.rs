//! Structural qualification facts: drivers, dangling references,
//! combinational cycles, unused logic.

use crate::BlifNetlist;
use std::collections::{BTreeSet, HashMap, HashSet};

/// What drives a net, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetRef {
    /// A primary input.
    Input,
    /// The node at this index in [`BlifNetlist::nodes`].
    Node(usize),
    /// The latch at this index in [`BlifNetlist::latches`].
    Latch(usize),
}

/// Structural facts about a [`BlifNetlist`], computed without touching any
/// logic function. The preflight analyzer turns these into findings; the
/// collapse pass refuses to run until they are clean.
#[derive(Debug, Clone)]
pub struct Structure {
    /// Every net to everything driving it (primary inputs and latch
    /// outputs count as drivers).
    pub drivers: HashMap<String, Vec<NetRef>>,
    /// Nets read by a node, latch or `.outputs` but never driven. Sorted.
    pub undriven: Vec<String>,
    /// Nets with more than one driver. Sorted.
    pub multi_driven: Vec<String>,
    /// Outputs of nodes on a combinational cycle. Sorted.
    pub on_cycle: Vec<String>,
    /// Node outputs never read by any node, latch or primary output.
    /// Sorted.
    pub unused: Vec<String>,
    /// Indices into [`BlifNetlist::nodes`] in topological order (fanins
    /// before fanouts). Nodes on a cycle are excluded.
    pub topo: Vec<usize>,
}

impl Structure {
    /// True when the netlist has no structural defects (unused logic is
    /// tolerated — it is a warning, not a defect).
    pub fn is_sound(&self) -> bool {
        self.undriven.is_empty() && self.multi_driven.is_empty() && self.on_cycle.is_empty()
    }
}

impl BlifNetlist {
    /// Computes structural facts: who drives each net, which references
    /// dangle, which nodes sit on combinational cycles, and which node
    /// outputs nothing reads.
    pub fn structure(&self) -> Structure {
        let mut drivers: HashMap<String, Vec<NetRef>> = HashMap::new();
        for name in &self.inputs {
            drivers.entry(name.clone()).or_default().push(NetRef::Input);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            drivers
                .entry(node.output.clone())
                .or_default()
                .push(NetRef::Node(i));
        }
        for (i, latch) in self.latches.iter().enumerate() {
            drivers
                .entry(latch.output.clone())
                .or_default()
                .push(NetRef::Latch(i));
        }

        let mut read: HashSet<&str> = HashSet::new();
        let mut undriven: BTreeSet<String> = BTreeSet::new();
        {
            let mut use_net = |net: &str| {
                if !drivers.contains_key(net) {
                    undriven.insert(net.to_string());
                }
            };
            for node in &self.nodes {
                for f in &node.inputs {
                    use_net(f);
                }
            }
            for latch in &self.latches {
                use_net(&latch.input);
            }
            for out in &self.outputs {
                use_net(out);
            }
        }
        for node in &self.nodes {
            for f in &node.inputs {
                read.insert(f);
            }
        }
        for latch in &self.latches {
            read.insert(&latch.input);
        }
        for out in &self.outputs {
            read.insert(out);
        }

        let multi_driven: Vec<String> = {
            let mut m: Vec<String> = drivers
                .iter()
                .filter(|(_, d)| d.len() > 1)
                .map(|(net, _)| net.clone())
                .collect();
            m.sort();
            m
        };

        let unused: Vec<String> = {
            let mut u: BTreeSet<String> = BTreeSet::new();
            for node in &self.nodes {
                if !read.contains(node.output.as_str()) {
                    u.insert(node.output.clone());
                }
            }
            u.into_iter().collect()
        };

        // Kahn's algorithm over node-to-node dependencies. Latch outputs
        // break combinational paths, so only Node drivers create edges.
        let n = self.nodes.len();
        let node_of_output: HashMap<&str, Vec<usize>> = {
            let mut m: HashMap<&str, Vec<usize>> = HashMap::new();
            for (i, node) in self.nodes.iter().enumerate() {
                m.entry(node.output.as_str()).or_default().push(i);
            }
            m
        };
        let mut indeg = vec![0usize; n];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for f in &node.inputs {
                for &j in node_of_output.get(f.as_str()).map_or(&[][..], |v| v) {
                    fanout[j].push(i);
                    indeg[i] += 1;
                }
            }
        }
        let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(&i) = ready.iter().next() {
            ready.remove(&i);
            topo.push(i);
            for &j in &fanout[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    ready.insert(j);
                }
            }
        }
        let on_cycle: Vec<String> = {
            let mut c: BTreeSet<String> = BTreeSet::new();
            for (i, d) in indeg.iter().enumerate() {
                if *d > 0 {
                    c.insert(self.nodes[i].output.clone());
                }
            }
            c.into_iter().collect()
        };

        Structure {
            drivers,
            undriven: undriven.into_iter().collect(),
            multi_driven,
            on_cycle,
            unused,
            topo,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_blif;

    #[test]
    fn clean_netlist_is_sound() {
        let net = parse_blif(
            ".inputs a b\n.outputs f\n.names a b t\n11 1\n.names t a f\n01 1\n",
            "t",
        )
        .unwrap();
        let s = net.structure();
        assert!(s.is_sound());
        assert!(s.unused.is_empty());
        assert_eq!(s.topo, vec![0, 1]);
    }

    #[test]
    fn detects_undriven_and_multi_driven() {
        let net = parse_blif(
            ".inputs a\n.outputs f\n.names ghost f\n1 1\n.names a f\n0 1\n",
            "t",
        )
        .unwrap();
        let s = net.structure();
        assert_eq!(s.undriven, vec!["ghost"]);
        assert_eq!(s.multi_driven, vec!["f"]);
        assert!(!s.is_sound());
    }

    #[test]
    fn node_redriving_a_primary_input_is_multi_driven() {
        let net = parse_blif(".inputs a b\n.outputs a\n.names b a\n1 1\n", "t").unwrap();
        assert_eq!(net.structure().multi_driven, vec!["a"]);
    }

    #[test]
    fn detects_cycles_and_excludes_them_from_topo() {
        let net = parse_blif(
            ".inputs a\n.outputs f\n.names a x u\n11 1\n.names u x\n1 1\n.names a f\n1 1\n",
            "t",
        )
        .unwrap();
        let s = net.structure();
        assert_eq!(s.on_cycle, vec!["u", "x"]);
        assert_eq!(s.topo, vec![2]);
        assert!(!s.is_sound());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let net = parse_blif(".inputs a\n.outputs f\n.names f f\n0 1\n", "t").unwrap();
        assert_eq!(net.structure().on_cycle, vec!["f"]);
    }

    #[test]
    fn latch_breaks_combinational_path_but_flags_unused() {
        let net = parse_blif(
            ".inputs a\n.outputs q\n.names a d\n1 1\n.latch d q re clk 0\n.names a dead\n0 1\n",
            "t",
        )
        .unwrap();
        let s = net.structure();
        assert!(s.on_cycle.is_empty());
        assert_eq!(s.unused, vec!["dead"]);
        // d is read by the latch, q driven by it: neither undriven nor unused.
        assert!(s.undriven.is_empty());
    }
}
