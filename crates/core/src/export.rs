//! Structural netlist export: writes a mapped design as a gate-level
//! Verilog module (instances of library cells with named pin connections),
//! the hand-off artifact a downstream place-and-route flow would consume.

use crate::design::MappedDesign;
use asyncmap_library::Library;
use asyncmap_network::SignalId;
use std::fmt::Write as _;

/// Renders `design` as a structural Verilog module named `module_name`.
///
/// Cell pins are connected positionally by their library pin names; every
/// internal signal uses the subject network's generated name. Fanout
/// buffers counted in the design's area are an electrical annotation, not
/// logic, and are emitted as comments.
pub fn to_verilog(design: &MappedDesign, library: &Library, module_name: &str) -> String {
    let net = &design.subject;
    let mut out = String::new();
    let inputs: Vec<&str> = net.inputs().iter().map(|&s| net.name(s)).collect();
    let outputs: Vec<&str> = net.outputs().iter().map(|(n, _)| n.as_str()).collect();
    let _ = writeln!(
        out,
        "// mapped by asyncmap (library {}, area {:.0}, delay {:.2})",
        design.library_name, design.area, design.delay
    );
    let _ = writeln!(out, "module {module_name} (");
    let mut ports: Vec<String> = inputs.iter().map(|n| format!("  input  {n}")).collect();
    ports.extend(outputs.iter().map(|n| format!("  output {n}")));
    let _ = writeln!(out, "{}", ports.join(",\n"));
    let _ = writeln!(out, ");");

    // Wire declarations for every instance output that is not a primary
    // output alias.
    let mut declared: Vec<SignalId> = Vec::new();
    for cover in &design.covers {
        for inst in &cover.instances {
            if !declared.contains(&inst.output) {
                declared.push(inst.output);
            }
        }
    }
    for s in &declared {
        let _ = writeln!(out, "  wire {};", net.name(*s));
    }

    let mut counter = 0usize;
    for cover in &design.covers {
        for inst in &cover.instances {
            let cell = &library.cells()[inst.cell_index];
            let pins: Vec<String> = cell
                .pins()
                .iter()
                .zip(&inst.inputs)
                .map(|((_, pin_name), sig)| format!(".{pin_name}({})", net.name(*sig)))
                .collect();
            let _ = writeln!(
                out,
                "  {} u{counter} ({}, .out({}));",
                cell.name(),
                pins.join(", "),
                net.name(inst.output)
            );
            counter += 1;
        }
    }
    if design.stats.buffers > 0 {
        let _ = writeln!(
            out,
            "  // {} fanout buffer(s) accounted in area at multi-fanout cone roots",
            design.stats.buffers
        );
    }
    // Output aliases.
    for (name, sig) in net.outputs() {
        let _ = writeln!(out, "  assign {name} = {};", net.name(*sig));
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{async_tmap, MapOptions};
    use asyncmap_cube::{Cover, VarTable};
    use asyncmap_library::builtin;
    use asyncmap_network::EquationSet;

    fn mapped() -> (MappedDesign, asyncmap_library::Library) {
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        (design, lib)
    }

    #[test]
    fn verilog_has_module_ports_and_instances() {
        let (design, lib) = mapped();
        let v = to_verilog(&design, &lib, "demo");
        assert!(v.contains("module demo ("));
        assert!(v.contains("input  a"));
        assert!(v.contains("output f"));
        assert!(v.contains("endmodule"));
        let instances = v.lines().filter(|l| l.contains(" u")).count();
        assert_eq!(instances, design.num_instances());
        assert!(v.contains("assign f ="));
    }

    #[test]
    fn every_instance_connects_all_pins() {
        let (design, lib) = mapped();
        let v = to_verilog(&design, &lib, "demo");
        for cover in &design.covers {
            for inst in &cover.instances {
                let cell = &lib.cells()[inst.cell_index];
                assert_eq!(inst.inputs.len(), cell.num_inputs());
            }
        }
        assert!(v.contains(".out("));
    }
}
