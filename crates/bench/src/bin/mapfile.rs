//! Times end-to-end sequential mapping of a design dumped by
//! `asyncmap gen --emit`. The dump format and this binary's APIs are
//! restricted to what the mapper exposed from the first release, so the
//! same file (and an identical copy of this source) can be built against
//! an older checkout for a fair old-vs-new comparison on one machine.
//!
//! Usage: `mapfile <design.sop> [runs]`

use asyncmap_core::{async_tmap, MapOptions};
use asyncmap_cube::{Cover, VarTable};
use asyncmap_library::builtin;
use asyncmap_network::EquationSet;
use std::time::Instant;

fn parse_design(text: &str) -> EquationSet {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().expect("empty design dump");
    let mut words = header.split_whitespace();
    assert_eq!(
        words.next(),
        Some("inputs"),
        "dump must start with `inputs`"
    );
    let mut vars = VarTable::new();
    for name in words {
        vars.intern(name);
    }
    let equations = lines
        .map(|line| {
            let (name, expr) = line.split_once('=').expect("equation line without `=`");
            let cover = Cover::parse_tokens(expr.trim(), &vars).expect("bad cube tokens");
            (name.trim().to_string(), cover)
        })
        .collect();
    EquationSet::new(vars, equations)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().expect("usage: mapfile <design.sop> [runs]");
    let runs: usize = args.next().map_or(7, |r| r.parse().expect("bad run count"));
    let text = std::fs::read_to_string(&path).expect("readable design dump");
    let eqs = parse_design(&text);
    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    let opts = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };
    // One untimed warm-up run populates caches and the allocator.
    let warm = async_tmap(&eqs, &lib, &opts).expect("mappable");
    println!(
        "{path}: {} equations -> {} instances, area {:.1}, delay {:.1}",
        eqs.equations.len(),
        warm.num_instances(),
        warm.area,
        warm.delay
    );
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(async_tmap(&eqs, &lib, &opts).expect("mappable"));
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    println!(
        "median {:.1} ms over {runs} runs (min {:.1}, max {:.1})",
        samples[runs / 2] * 1e3,
        samples[0] * 1e3,
        samples[runs - 1] * 1e3
    );
}
