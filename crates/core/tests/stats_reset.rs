//! Accumulate-vs-reset semantics of the mapping counters.
//!
//! [`MapStats`] must be per-run: repeated mapping calls on a shared
//! verdict cache (the reused-engine pattern) each report only their own
//! run's hazard checks, memo traffic and phase times. A directly-held
//! [`Matcher`], by contrast, accumulates — explicitly, with a snapshot /
//! delta / reset API.

use asyncmap_core::{
    async_tmap_cached, enumerate_clusters, ClusterLimits, HazardCache, HazardPolicy, MapOptions,
    Matcher,
};
use asyncmap_cube::{Cover, VarTable};
use asyncmap_library::builtin;
use asyncmap_network::{async_tech_decomp, partition, EquationSet};
use std::sync::Arc;

fn figure3_eqs() -> EquationSet {
    let vars = VarTable::from_names(["a", "b", "c"]);
    let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
    EquationSet::new(vars, vec![("f".to_owned(), f)])
}

#[test]
fn repeated_runs_on_shared_cache_report_per_run_stats() {
    let mut lib = builtin::cmos3();
    lib.annotate_hazards();
    let eqs = figure3_eqs();
    let options = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };
    let cache = Arc::new(HazardCache::new());
    let first = async_tmap_cached(&eqs, &lib, &options, &cache).unwrap();
    let second = async_tmap_cached(&eqs, &lib, &options, &cache).unwrap();
    let third = async_tmap_cached(&eqs, &lib, &options, &cache).unwrap();

    // The same work happens each run (cache warmth changes only the
    // hit/miss split), so identical — not doubled or tripled — counters
    // prove per-run semantics.
    assert!(first.stats.hazard_checks > 0);
    assert_eq!(second.stats.hazard_checks, first.stats.hazard_checks);
    assert_eq!(third.stats.hazard_checks, first.stats.hazard_checks);
    assert_eq!(second.stats.hazard_rejects, first.stats.hazard_rejects);
    assert_eq!(second.stats.npn_hits, first.stats.npn_hits);
    assert_eq!(second.stats.npn_misses, first.stats.npn_misses);
    assert_eq!(third.stats.npn_misses, first.stats.npn_misses);
    assert_eq!(
        second.stats.cache_hits + second.stats.cache_misses,
        second.stats.hazard_checks
    );

    // Phase timers are process-global atomics; MapStats must carry the
    // run's delta, not the running total. Counts are deterministic
    // per-run, so equality (not growth) is the proof.
    for ((phase1, _, count1), (phase3, _, count3)) in first
        .stats
        .phases
        .entries()
        .zip(third.stats.phases.entries())
    {
        assert_eq!(phase1, phase3);
        assert_eq!(
            count1, count3,
            "phase {phase1} count accumulated across runs"
        );
    }
}

#[test]
fn reused_matcher_accumulates_until_reset() {
    let mut lib = builtin::cmos3();
    lib.annotate_hazards();
    let net = async_tech_decomp(&figure3_eqs());
    let cones = partition(&net);
    let clusters = enumerate_clusters(&net, &cones[0], &ClusterLimits::default());

    let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
    assert_eq!(matcher.counters(), Default::default());

    let run = |m: &Matcher<'_>| {
        for cluster_list in clusters.values() {
            for cluster in cluster_list {
                let _ = m.find_matches(cluster);
            }
        }
    };

    run(&matcher);
    let after_one = matcher.counters();
    assert!(after_one.hazard_checks > 0);

    // Second identical pass: counters accumulate on a held matcher...
    run(&matcher);
    let after_two = matcher.counters();
    assert_eq!(after_two.hazard_checks, 2 * after_one.hazard_checks);
    assert_eq!(after_two.hazard_rejects, 2 * after_one.hazard_rejects);
    // ...and the delta isolates the second run exactly.
    let second_run = after_two.delta(&after_one);
    assert_eq!(second_run.hazard_checks, after_one.hazard_checks);
    assert_eq!(
        second_run.npn_hits + second_run.npn_misses,
        after_one.npn_hits + after_one.npn_misses
    );

    // Reset zeroes the accounting without changing matching behavior.
    matcher.reset_counters();
    assert_eq!(matcher.counters(), Default::default());
    run(&matcher);
    let after_reset = matcher.counters();
    assert_eq!(after_reset.hazard_checks, after_one.hazard_checks);
    assert_eq!(after_reset.hazard_rejects, after_one.hazard_rejects);
}
