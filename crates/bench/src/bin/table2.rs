//! Regenerates **Table 2** — "Hazard analysis run times for various
//! libraries": library initialization time for the synchronous mapper
//! (build cells + matcher signatures) versus the asynchronous mapper
//! (the same plus per-cell hazard characterization).
//!
//! Paper values (DEC 5000): LSI .6s→1.2s, Actel .6s→1.1s, CMOS3 .2s→.4s,
//! GDT .6s→16.7s — the shape to reproduce is async ≥ sync everywhere, and
//! GDT (large complex AOI cells) by far the slowest to analyze.

use asyncmap_bench::{header, libraries, secs, time_median};
use asyncmap_core::{HazardPolicy, Matcher};

fn main() {
    // Model "reading the library in": both flows parse the text format,
    // the asynchronous flow additionally runs the hazard analysis.
    header(
        "Table 2: library initialization, sync vs async",
        &format!(
            "{:8} {:>12} {:>12} {:>8} {:>10}",
            "Library", "Sync", "Async", "#Elems", "Async/Sync"
        ),
    );
    for lib in libraries() {
        let text = rebuild(lib.name()).to_text();
        let sync = time_median(5, || {
            let fresh = asyncmap_library::Library::parse(&text).expect("round-trip");
            let matcher = Matcher::new(&fresh, HazardPolicy::Ignore);
            matcher.library().len()
        });
        let asynchronous = time_median(3, || {
            let mut fresh = asyncmap_library::Library::parse(&text).expect("round-trip");
            fresh.annotate_hazards();
            let matcher = Matcher::new(&fresh, HazardPolicy::SubsetCheck);
            matcher.library().len()
        });
        println!(
            "{:8} {:>12} {:>12} {:>8} {:>9.1}x",
            lib.name(),
            secs(sync),
            secs(asynchronous),
            lib.len(),
            asynchronous.as_secs_f64() / sync.as_secs_f64().max(1e-9)
        );
    }
    println!("\npaper: LSI .6→1.2s | Actel .6→1.1s | CMOS3 .2→.4s | GDT .6→16.7s (DEC 5000)");
}

fn rebuild(name: &str) -> asyncmap_library::Library {
    match name {
        "LSI9K" => asyncmap_library::builtin::lsi9k(),
        "CMOS3" => asyncmap_library::builtin::cmos3(),
        "GDT" => asyncmap_library::builtin::gdt(),
        "Actel" => asyncmap_library::builtin::actel(),
        other => panic!("unknown library {other}"),
    }
}
