//! Times the whole-design fundamental-mode analyzer cold against an
//! ECO-warmed re-analysis, emitting a machine-readable `BENCH_fma.json`.
//!
//! The harness base-maps the generated design, analyzes it cold, applies
//! one single-cube edit, remaps incrementally, and times
//!
//! * **cold** — `analyze_design` of the remapped design with no cache, and
//! * **warm** — `analyze_design_cached` with an [`FmaCache`] already
//!   holding the base design's per-cone verdicts.
//!
//! Each warm sample runs on a fresh *clone* of the base-warmed cache
//! (cloned outside the timed region), so no sample sees verdicts that a
//! previous sample of the same edit added. Before any timing, both
//! analyses must report zero errors, and the warm run must reuse at least
//! 90% of the per-cone results — the acceptance bar for the ECO loop.
//! The per-cone reuse rate lands in the record's `cache_hit_rate`.
//!
//! Usage: `fma [--runs N] [--out PATH]` (defaults: 9 runs,
//! `BENCH_fma.json`).

use asyncmap_bench::{
    apply_edits, generate, generate_edits, header, host_cpus, secs, time_median, write_json,
    BenchRecord, GenSpec, WARMUP_RUNS,
};
use asyncmap_core::{EcoSession, MapOptions};
use asyncmap_fma::{analyze_design, analyze_design_cached, FmaCache};
use asyncmap_library::builtin;
use std::time::{Duration, Instant};

/// Median over `runs` timed executions of `f`, each on a fresh value from
/// `setup` built *outside* the timed region (cloning the warmed cache
/// inside the timer would bill the warm path for work the ECO loop does
/// once, not per analysis).
fn time_median_prepared<S, T>(
    runs: usize,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> T,
) -> Duration {
    assert!(runs > 0);
    for _ in 0..WARMUP_RUNS {
        std::hint::black_box(f(setup()));
    }
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let s = setup();
            let t = Instant::now();
            let out = std::hint::black_box(f(s));
            let dt = t.elapsed();
            drop(out);
            dt
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let mut runs = 9usize;
    let mut out = "BENCH_fma.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--runs" => runs = value("--runs").parse().expect("bad --runs"),
            "--out" => out = value("--out"),
            other => panic!("unknown argument {other:?} (try --runs/--out)"),
        }
    }

    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    let opts = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };
    let cpus = host_cpus();
    let spec = GenSpec {
        target_gates: 50_000,
        inputs: 16,
        seed: 7,
    };

    let eqs = generate(&spec);
    let mut session = EcoSession::new(&lib, opts);
    let base = session.map(&eqs).expect("base map");

    // Warm one cache on the base design; every warm sample clones it.
    let mut base_cache = FmaCache::new();
    let base_report = analyze_design_cached(&base.design, &lib, &mut base_cache);
    assert_eq!(
        base_report.num_errors(),
        0,
        "{}: base design must analyze clean\n{}",
        spec.name(),
        base_report.render()
    );

    let edits = generate_edits(&eqs, 1, 0xF3A);
    let edited = apply_edits(&eqs, &edits);
    let eco = session.map(&edited).expect("eco remap");

    let cold = analyze_design(&eco.design, &lib);
    assert_eq!(cold.num_errors(), 0, "{}", cold.render());
    let warm = analyze_design_cached(&eco.design, &lib, &mut base_cache.clone());
    assert_eq!(warm.num_errors(), 0, "{}", warm.render());
    let (reused, total) = (warm.counters.cones_reused, warm.counters.cones);
    assert!(
        reused * 10 >= total * 9,
        "{}: warm analysis reused {reused} of {total} cone(s) (< 90%)",
        spec.name()
    );
    let reuse_rate = reused as f64 / total.max(1) as f64;

    let cold_t = time_median(runs, || analyze_design(&eco.design, &lib));
    let warm_t = time_median_prepared(
        runs,
        || base_cache.clone(),
        |mut cache| analyze_design_cached(&eco.design, &lib, &mut cache),
    );
    let fraction = warm_t.as_secs_f64() / cold_t.as_secs_f64().max(1e-9);

    header(
        "Fundamental-mode analysis, cold vs ECO-warm (LSI9K)",
        &format!(
            "{:16} {:>12} {:>12} {:>10} {:>12}",
            "Design", "Cold", "Warm", "Warm/Cold", "Reused"
        ),
    );
    println!(
        "{:16} {:>12} {:>12} {:>9.1}% {:>7}/{:<4}",
        spec.name(),
        secs(cold_t),
        secs(warm_t),
        fraction * 100.0,
        reused,
        total
    );

    let records = vec![
        BenchRecord {
            name: format!("{}/analyze-cold", spec.name()),
            median: cold_t,
            threads: 1,
            host_cpus: cpus,
            cache_hit_rate: None,
            npn_hit_rate: None,
            phases: Default::default(),
            speedup_vs_seq: None,
        },
        BenchRecord {
            name: format!("{}/analyze-warm-edit1", spec.name()),
            median: warm_t,
            threads: 1,
            host_cpus: cpus,
            cache_hit_rate: Some(reuse_rate),
            npn_hit_rate: None,
            phases: Default::default(),
            speedup_vs_seq: Some(1.0 / fraction.max(1e-9)),
        },
    ];
    write_json(&out, &records).expect("write JSON report");
    println!("\nwrote {} record(s) to {out}", records.len());
}
