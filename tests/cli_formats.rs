//! End-to-end file-format flow exercised the way the CLI drives it:
//! a `.bms` machine and a `.lib` library from disk-shaped text, through
//! synthesis, mapping and Verilog export.

use asyncmap::burst::{expand, hazard_free_cover, parse_bms, to_bms, to_dot};
use asyncmap::mapper::to_verilog;
use asyncmap::prelude::*;

const MACHINE: &str = "
machine demo-ctrl
inputs req ack
outputs done
states 2
edge 0 1  req+ ack+ / done+
edge 1 0  req- ack- / done-
";

fn synthesize(spec: &asyncmap::burst::BurstSpec) -> EquationSet {
    let flow = expand(spec).unwrap();
    let mut vars = VarTable::new();
    for n in &flow.var_names {
        vars.intern(n);
    }
    let equations = flow
        .functions
        .iter()
        .map(|f| (f.name.clone(), hazard_free_cover(f).unwrap()))
        .collect();
    EquationSet::new(vars, equations)
}

#[test]
fn bms_to_verilog_pipeline() {
    let spec = parse_bms(MACHINE).unwrap();
    assert_eq!(spec.name, "demo-ctrl");
    let eqs = synthesize(&spec);

    let lib_text = asyncmap::library::builtin::cmos3().to_text();
    let mut lib = Library::parse(&lib_text).unwrap();
    lib.annotate_hazards();

    let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
    assert!(design.verify_function(&lib));
    assert!(design.verify_hazards(&lib));

    let verilog = to_verilog(&design, &lib, "demo_ctrl");
    assert!(verilog.contains("module demo_ctrl ("));
    assert!(verilog.contains("input  req"));
    assert!(verilog.contains("output done"));
    // One instance line per mapped cell.
    let instances = verilog.lines().filter(|l| l.contains(".out(")).count();
    assert_eq!(instances, design.num_instances());
}

#[test]
fn bms_writer_and_dot_render_the_same_machine() {
    let spec = parse_bms(MACHINE).unwrap();
    let round = parse_bms(&to_bms(&spec).unwrap()).unwrap();
    assert_eq!(round.edges.len(), spec.edges.len());
    let dot = to_dot(&spec).unwrap();
    assert!(dot.contains("req+ ack+ / done+"));
    assert!(dot.contains("s1 -> s0"));
}

#[test]
fn delay_objective_available_through_options() {
    let spec = parse_bms(MACHINE).unwrap();
    let eqs = synthesize(&spec);
    let mut lib = asyncmap::library::builtin::lsi9k();
    lib.annotate_hazards();
    let fast = async_tmap(
        &eqs,
        &lib,
        &MapOptions {
            objective: Objective::Delay,
            ..MapOptions::default()
        },
    )
    .unwrap();
    let small = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
    assert!(fast.delay <= small.delay + 1e-9);
}
