//! Line-oriented BLIF parser.

use crate::{BlifError, BlifErrorKind, BlifLatch, BlifNetlist, BlifNode, BlifRow};
use std::collections::HashSet;

fn err(line: usize, kind: BlifErrorKind, message: impl Into<String>) -> BlifError {
    BlifError {
        line,
        kind,
        message: message.into(),
    }
}

/// Parses BLIF text into a [`BlifNetlist`]. `default_model` names the
/// netlist when the file has no `.model` (or a bare one).
///
/// Syntax problems — malformed covers, don't-care constructs, duplicate
/// declarations, unsupported directives — return a typed [`BlifError`].
/// Structural problems (dangling references, multiple drivers, cycles)
/// parse fine and are left to [`BlifNetlist::structure`].
pub fn parse_blif(text: &str, default_model: &str) -> Result<BlifNetlist, BlifError> {
    let mut net = BlifNetlist {
        model: default_model.to_string(),
        inputs: Vec::new(),
        outputs: Vec::new(),
        nodes: Vec::new(),
        latches: Vec::new(),
    };
    let mut seen_model = false;
    let mut seen_end = false;
    let mut input_set: HashSet<String> = HashSet::new();
    let mut output_set: HashSet<String> = HashSet::new();
    // Index into net.nodes of the .names whose rows we are reading.
    let mut cur: Option<usize> = None;

    for (line_no, raw) in logical_lines(text) {
        let tokens: Vec<&str> = raw.split_whitespace().collect();
        let Some(&first) = tokens.first() else {
            continue;
        };
        if seen_end {
            let kind = if first == ".model" {
                BlifErrorKind::DuplicateModel
            } else {
                BlifErrorKind::UnsupportedConstruct
            };
            return Err(err(
                line_no,
                kind,
                format!("`{first}` after .end (multi-model files are not supported)"),
            ));
        }
        if !first.starts_with('.') {
            // A cover row for the current .names.
            let Some(node_idx) = cur else {
                return Err(err(
                    line_no,
                    BlifErrorKind::BadCover,
                    format!("cover row `{raw}` outside any .names"),
                ));
            };
            let row = parse_row(&tokens, line_no, &net.nodes[node_idx])?;
            net.nodes[node_idx].rows.push(row);
            continue;
        }
        // Any directive ends the current cover.
        cur = None;
        match first {
            ".model" => {
                if seen_model {
                    return Err(err(
                        line_no,
                        BlifErrorKind::DuplicateModel,
                        "second .model (multi-model files are not supported)",
                    ));
                }
                seen_model = true;
                if let Some(name) = tokens.get(1) {
                    net.model = (*name).to_string();
                }
            }
            ".inputs" => {
                for t in &tokens[1..] {
                    if !input_set.insert((*t).to_string()) {
                        return Err(err(
                            line_no,
                            BlifErrorKind::DuplicateInput,
                            format!("input `{t}` declared twice"),
                        ));
                    }
                    net.inputs.push((*t).to_string());
                }
            }
            ".outputs" => {
                for t in &tokens[1..] {
                    if !output_set.insert((*t).to_string()) {
                        return Err(err(
                            line_no,
                            BlifErrorKind::DuplicateOutput,
                            format!("output `{t}` declared twice"),
                        ));
                    }
                    net.outputs.push((*t).to_string());
                }
            }
            ".names" => {
                let signals = &tokens[1..];
                let Some((&output, fanins)) = signals.split_last() else {
                    return Err(err(
                        line_no,
                        BlifErrorKind::BadNames,
                        ".names with no signals",
                    ));
                };
                let mut seen_fanin = HashSet::new();
                for f in fanins {
                    if !seen_fanin.insert(*f) {
                        return Err(err(
                            line_no,
                            BlifErrorKind::BadNames,
                            format!("fanin `{f}` repeated in .names {output}"),
                        ));
                    }
                }
                net.nodes.push(BlifNode {
                    line: line_no,
                    inputs: fanins.iter().map(|s| (*s).to_string()).collect(),
                    output: output.to_string(),
                    rows: Vec::new(),
                });
                cur = Some(net.nodes.len() - 1);
            }
            ".latch" => {
                if tokens.len() < 3 {
                    return Err(err(
                        line_no,
                        BlifErrorKind::BadLatch,
                        ".latch needs at least an input and an output",
                    ));
                }
                net.latches.push(BlifLatch {
                    line: line_no,
                    input: tokens[1].to_string(),
                    output: tokens[2].to_string(),
                });
            }
            ".end" => seen_end = true,
            ".exdc" => {
                return Err(err(
                    line_no,
                    BlifErrorKind::DontCare,
                    ".exdc external don't-cares are not supported: \
                     the mapper requires fully specified functions",
                ));
            }
            other => {
                return Err(err(
                    line_no,
                    BlifErrorKind::UnsupportedConstruct,
                    format!("directive `{other}` is outside the supported BLIF subset"),
                ));
            }
        }
    }

    if net.inputs.is_empty() && net.outputs.is_empty() && net.nodes.is_empty() {
        return Err(err(
            0,
            BlifErrorKind::EmptyModel,
            "no .inputs, .outputs or .names in file",
        ));
    }
    Ok(net)
}

/// Yields `(1-based first line number, logical line)` with `#` comments
/// stripped and `\` continuations joined.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let mut content = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut continued = false;
        let trimmed = content.trim_end();
        if let Some(stripped) = trimmed.strip_suffix('\\') {
            content = stripped;
            continued = true;
        }
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(content);
                if continued {
                    pending = Some((start, acc));
                } else {
                    out.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((line_no, content.to_string()));
                } else if !content.trim().is_empty() {
                    out.push((line_no, content.to_string()));
                }
            }
        }
    }
    if let Some(p) = pending {
        out.push(p);
    }
    out
}

fn parse_row(tokens: &[&str], line_no: usize, node: &BlifNode) -> Result<BlifRow, BlifError> {
    let (plane, value_tok) = if node.inputs.is_empty() {
        // Constant node: the row is just the output value.
        if tokens.len() != 1 {
            return Err(err(
                line_no,
                BlifErrorKind::BadCover,
                format!(
                    "constant .names {} expects a bare output value",
                    node.output
                ),
            ));
        }
        ("", tokens[0])
    } else {
        if tokens.len() != 2 {
            return Err(err(
                line_no,
                BlifErrorKind::BadCover,
                format!(
                    "cover row for {} needs an input plane and an output value",
                    node.output
                ),
            ));
        }
        (tokens[0], tokens[1])
    };
    if plane.len() != node.inputs.len() {
        return Err(err(
            line_no,
            BlifErrorKind::BadCover,
            format!(
                "plane `{plane}` has {} columns but .names {} has {} fanins",
                plane.len(),
                node.output,
                node.inputs.len()
            ),
        ));
    }
    if let Some(bad) = plane.chars().find(|c| !matches!(c, '0' | '1' | '-')) {
        return Err(err(
            line_no,
            BlifErrorKind::BadCover,
            format!("plane character `{bad}` (expected 0, 1 or -)"),
        ));
    }
    let value = match value_tok {
        "1" => true,
        "0" => false,
        "-" | "2" => {
            return Err(err(
                line_no,
                BlifErrorKind::DontCare,
                format!(
                    "don't-care output value `{value_tok}` on .names {}: \
                     the mapper requires fully specified functions",
                    node.output
                ),
            ));
        }
        other => {
            return Err(err(
                line_no,
                BlifErrorKind::BadCover,
                format!("output value `{other}` (expected 0 or 1)"),
            ));
        }
    };
    if let Some(prev) = node.rows.first() {
        if prev.value != value {
            return Err(err(
                line_no,
                BlifErrorKind::MixedCover,
                format!(".names {} mixes ON-set and OFF-set rows", node.output),
            ));
        }
    }
    Ok(BlifRow {
        plane: plane.to_string(),
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny controller
.model sample
.inputs a b c
.outputs f g
.names a b t
11 1
.names t c f
1- 1
-1 1
.names a \\
  c g
10 1
.names k
1
.end
";

    #[test]
    fn parses_sample() {
        let net = parse_blif(SAMPLE, "fallback").unwrap();
        assert_eq!(net.model, "sample");
        assert_eq!(net.inputs, vec!["a", "b", "c"]);
        assert_eq!(net.outputs, vec!["f", "g"]);
        assert_eq!(net.nodes.len(), 4);
        assert_eq!(net.num_rows(), 5);
        // Continuation joined `.names a \ c g` into one directive.
        let g = &net.nodes[2];
        assert_eq!(g.inputs, vec!["a", "c"]);
        assert_eq!(g.output, "g");
        // Constant-1 node has an empty plane.
        let k = &net.nodes[3];
        assert!(k.inputs.is_empty());
        assert!(k.rows[0].plane.is_empty() && k.rows[0].value);
    }

    #[test]
    fn default_model_name_used_when_missing() {
        let net = parse_blif(".inputs a\n.outputs f\n.names a f\n1 1\n", "fallback").unwrap();
        assert_eq!(net.model, "fallback");
    }

    fn kind_of(text: &str) -> BlifErrorKind {
        parse_blif(text, "t").unwrap_err().kind
    }

    #[test]
    fn typed_errors() {
        assert_eq!(
            kind_of(".model a\n.model b\n"),
            BlifErrorKind::DuplicateModel
        );
        assert_eq!(
            kind_of(".inputs a a\n.outputs f\n"),
            BlifErrorKind::DuplicateInput
        );
        assert_eq!(
            kind_of(".inputs a\n.outputs f f\n"),
            BlifErrorKind::DuplicateOutput
        );
        assert_eq!(kind_of(".inputs a\n.names\n"), BlifErrorKind::BadNames);
        assert_eq!(
            kind_of(".inputs a\n.names a a f\n11 1\n"),
            BlifErrorKind::BadNames
        );
        assert_eq!(kind_of(".inputs a b\n11 1\n"), BlifErrorKind::BadCover);
        assert_eq!(
            kind_of(".inputs a b\n.names a b f\n1 1\n"),
            BlifErrorKind::BadCover
        );
        assert_eq!(
            kind_of(".inputs a b\n.names a b f\n12 1\n"),
            BlifErrorKind::BadCover
        );
        assert_eq!(
            kind_of(".inputs a b\n.names a b f\n11 1\n10 0\n"),
            BlifErrorKind::MixedCover
        );
        assert_eq!(
            kind_of(".inputs a b\n.names a b f\n11 -\n"),
            BlifErrorKind::DontCare
        );
        assert_eq!(kind_of(".inputs a\n.exdc\n"), BlifErrorKind::DontCare);
        assert_eq!(kind_of(".inputs a\n.latch a\n"), BlifErrorKind::BadLatch);
        assert_eq!(
            kind_of(".inputs a\n.subckt sub x=a\n"),
            BlifErrorKind::UnsupportedConstruct
        );
        assert_eq!(
            kind_of(".inputs a\n.end\n.names a f\n1 1\n"),
            BlifErrorKind::UnsupportedConstruct
        );
        assert_eq!(kind_of("# only comments\n\n"), BlifErrorKind::EmptyModel);
    }

    #[test]
    fn line_numbers_point_at_the_problem() {
        let e = parse_blif(".inputs a b\n.names a b f\n11 1\n1 1\n", "t").unwrap_err();
        assert_eq!(e.line, 4);
        assert_eq!(e.kind, BlifErrorKind::BadCover);
    }

    #[test]
    fn latches_are_recorded_not_rejected() {
        let net = parse_blif(
            ".model l\n.inputs d\n.outputs q\n.latch d q re clk 0\n.end\n",
            "t",
        )
        .unwrap();
        assert_eq!(net.latches.len(), 1);
        assert_eq!(net.latches[0].input, "d");
        assert_eq!(net.latches[0].output, "q");
    }

    #[test]
    fn structural_problems_parse_fine() {
        // Dangling ref, double driver, and a cycle — all fine at parse time.
        let net = parse_blif(
            ".inputs a\n.outputs f\n.names ghost f\n1 1\n.names a f\n0 1\n\
             .names f x\n1 1\n.names x f2\n1 1\n",
            "t",
        )
        .unwrap();
        assert_eq!(net.nodes.len(), 4);
    }
}
