//! Closed-loop system test: take a burst-mode controller, synthesize it,
//! technology-map it with the asynchronous mapper, close the feedback loop
//! around the *mapped netlist*, and drive every specified burst of the
//! original machine — the full Figure-1 architecture, end to end.

use asyncmap::burst::{benchmark, benchmark_spec, simulate_machine};
use asyncmap::prelude::*;
use asyncmap_cube::Bits;

struct MappedBlock<'a> {
    design: &'a MappedDesign,
    library: &'a Library,
    num_outputs: usize,
}

impl asyncmap::burst::CombinationalBlock for MappedBlock<'_> {
    fn eval(&self, total: &Bits) -> (Bits, Bits) {
        let values = self.design.eval_mapped(self.library, total);
        let ns = values.len() - self.num_outputs;
        let mut outs = Bits::new(self.num_outputs);
        for (i, &v) in values.iter().take(self.num_outputs).enumerate() {
            outs.set(i, v);
        }
        let mut code = Bits::new(ns);
        for s in 0..ns {
            code.set(s, values[self.num_outputs + s]);
        }
        (outs, code)
    }
}

fn run(name: &str, lib: &Library) {
    let spec = benchmark_spec(name);
    let eqs = benchmark(name);
    // Equation order must be outputs then state bits (the flow-table
    // contract the simulator relies on).
    for (i, (eq_name, _)) in eqs.equations.iter().enumerate() {
        if i < spec.num_outputs() {
            assert_eq!(eq_name, &spec.output_names[i]);
        }
    }
    let design = async_tmap(&eqs, lib, &MapOptions::default())
        .unwrap_or_else(|e| panic!("{name} on {}: {e}", lib.name()));
    let block = MappedBlock {
        design: &design,
        library: lib,
        num_outputs: spec.num_outputs(),
    };
    simulate_machine(&spec, &block, 4)
        .unwrap_or_else(|e| panic!("{name} mapped to {}: {e}", lib.name()));
}

#[test]
fn mapped_controllers_execute_their_specifications() {
    let mut lsi = asyncmap::library::builtin::lsi9k();
    lsi.annotate_hazards();
    let mut actel = asyncmap::library::builtin::actel();
    actel.annotate_hazards();
    for name in ["vanbek-opt", "dme-fast", "chu-ad-opt", "dme", "dme-opt"] {
        run(name, &lsi);
        run(name, &actel);
    }
}

#[test]
fn hand_mapped_controller_also_executes() {
    // The greedy baseline is functionally correct too (it just is not
    // hazard-certified).
    let mut lib = asyncmap::library::builtin::gdt();
    lib.annotate_hazards();
    let name = "dme-fast";
    let spec = benchmark_spec(name);
    let eqs = benchmark(name);
    let design = hand_map(&eqs, &lib, &MapOptions::default()).unwrap();
    let block = MappedBlock {
        design: &design,
        library: &lib,
        num_outputs: spec.num_outputs(),
    };
    simulate_machine(&spec, &block, 2).unwrap();
}
