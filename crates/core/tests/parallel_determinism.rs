//! The parallel cone-mapping engine must be invisible: any thread count
//! (and any verdict-cache warmth) produces exactly the mapped design the
//! sequential mapper produces — same covers, same area, same hazard-filter
//! counters. Cones are disjoint trees and verdicts are deterministic, so
//! the only scheduling-dependent quantity is the cache hit/miss split.

use asyncmap_core::{async_tmap, async_tmap_cached, HazardCache, MapOptions, MappedDesign};
use asyncmap_cube::{Cover, VarTable};
use asyncmap_library::{builtin, Library};
use asyncmap_network::EquationSet;
use proptest::prelude::*;
use std::sync::Arc;

const VAR_NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

/// Everything about a mapped design except the cache hit/miss split, which
/// is legitimately scheduling-dependent.
fn fingerprint(d: &MappedDesign) -> (String, u64, u64, usize, usize, usize, usize) {
    (
        format!("{:?}", d.covers),
        d.area.to_bits(),
        d.delay.to_bits(),
        d.stats.hazard_checks,
        d.stats.hazard_rejects,
        d.stats.cones,
        d.stats.buffers,
    )
}

/// Builds an equation set from drawn cube phases: `outputs[k][j][v]` is
/// variable `v`'s phase in cube `j` of output `k` (0 absent, 1 positive,
/// 2 negative). Cubes with no literals are padded to `a`.
fn build_eqs(nvars: usize, outputs: Vec<Vec<Vec<u8>>>) -> EquationSet {
    let vars = VarTable::from_names(VAR_NAMES[..nvars].iter().copied());
    let equations = outputs
        .into_iter()
        .enumerate()
        .map(|(k, cubes)| {
            let sop: Vec<String> = cubes
                .into_iter()
                .map(|phases| {
                    let cube: String = phases
                        .iter()
                        .enumerate()
                        .map(|(v, &p)| match p {
                            1 => VAR_NAMES[v].to_owned(),
                            2 => format!("{}'", VAR_NAMES[v]),
                            _ => String::new(),
                        })
                        .collect();
                    if cube.is_empty() {
                        VAR_NAMES[0].to_owned()
                    } else {
                        cube
                    }
                })
                .collect();
            let text = sop.join(" + ");
            let mut cover = Cover::parse(&text, &vars).expect("generated SOP parses");
            // EquationSet rejects constant outputs; tautologies (e.g.
            // a + a') degrade to a single positive literal.
            if cover.is_tautology() {
                cover = Cover::parse(VAR_NAMES[0], &vars).expect("literal parses");
            }
            (format!("o{k}"), cover)
        })
        .collect();
    EquationSet::new(vars, equations)
}

fn arb_eqs() -> BoxedStrategy<EquationSet> {
    (3usize..6)
        .prop_flat_map(|nvars| {
            let cube = prop::collection::vec(0u8..3u8, nvars..(nvars + 1));
            let output = prop::collection::vec(cube, 1..5);
            prop::collection::vec(output, 1..4).prop_map(move |outputs| build_eqs(nvars, outputs))
        })
        .boxed()
}

fn annotated(lib: Library) -> Library {
    let mut lib = lib;
    lib.annotate_hazards();
    lib
}

fn map_with(eqs: &EquationSet, lib: &Library, threads: usize) -> MappedDesign {
    let options = MapOptions {
        threads,
        ..MapOptions::default()
    };
    async_tmap(eqs, lib, &options).expect("mappable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn thread_count_never_changes_the_mapping(eqs in arb_eqs()) {
        let lib = annotated(builtin::cmos3());
        let sequential = map_with(&eqs, &lib, 1);
        for threads in [2usize, 4, 8] {
            let parallel = map_with(&eqs, &lib, threads);
            prop_assert_eq!(
                fingerprint(&sequential),
                fingerprint(&parallel),
                "{} threads diverged from sequential",
                threads
            );
        }
        // threads = 0 (auto) must also agree.
        let auto = map_with(&eqs, &lib, 0);
        prop_assert_eq!(fingerprint(&sequential), fingerprint(&auto));
    }

    #[test]
    fn shared_cache_never_changes_the_mapping(eqs in arb_eqs()) {
        let lib = annotated(builtin::cmos3());
        let fresh = map_with(&eqs, &lib, 1);
        let cache = Arc::new(HazardCache::new());
        let options = MapOptions { threads: 1, ..MapOptions::default() };
        // Two runs on one cache: the second sees only warm verdicts.
        let cold = async_tmap_cached(&eqs, &lib, &options, &cache).expect("mappable");
        let warm = async_tmap_cached(&eqs, &lib, &options, &cache).expect("mappable");
        prop_assert_eq!(fingerprint(&fresh), fingerprint(&cold));
        prop_assert_eq!(fingerprint(&fresh), fingerprint(&warm));
        prop_assert_eq!(warm.stats.cache_misses, 0);
    }
}

#[test]
fn warm_cache_changes_counters_but_not_verdicts() {
    // Actel on dme-fast performs hazard checks that all reject (the
    // library's combinational modules are hazard-rich), so the cache has
    // real verdicts to serve.
    let lib = annotated(builtin::actel());
    let eqs = asyncmap_burst::benchmark("dme-fast");
    let options = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };
    let cache = Arc::new(HazardCache::new());
    let first = async_tmap_cached(&eqs, &lib, &options, &cache).unwrap();
    let second = async_tmap_cached(&eqs, &lib, &options, &cache).unwrap();

    // Identical designs and identical hazard accounting...
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert!(first.stats.hazard_checks > 0);

    // ...but the warm run answered everything from the cache: strictly
    // fewer hazards_subset evaluations (misses), none at all in fact.
    assert!(first.stats.cache_misses > 0);
    assert_eq!(second.stats.cache_misses, 0);
    assert!(second.stats.cache_misses < first.stats.cache_misses);
    assert_eq!(second.stats.cache_hits, second.stats.hazard_checks);
}

#[test]
fn parallel_mapping_verifies_on_a_real_benchmark() {
    let lib = annotated(builtin::lsi9k());
    let eqs = asyncmap_burst::benchmark("dme");
    let sequential = map_with(&eqs, &lib, 1);
    let parallel = map_with(&eqs, &lib, 4);
    assert_eq!(fingerprint(&sequential), fingerprint(&parallel));
    assert!(parallel.verify_function(&lib));
    assert!(parallel.verify_hazards(&lib));
}
