//! Multi-input-change dynamic hazard analysis of multi-level networks
//! (paper §4.2.2, procedure `findMicDynHazMultiLevel`).
//!
//! 1. Transform the network into two-level SOP form with static
//!    hazard-preserving laws ([`asyncmap_bff::flatten`]).
//! 2. Run the two-level procedure as a *filter* producing candidate
//!    transitions.
//! 3. Re-examine the original multi-level structure on those transitions
//!    and discard false hazards — here with the exact eight-valued waveform
//!    algebra ([`crate::wave_eval`]), the role the paper assigns to path
//!    labeling / ternary simulation.

use crate::dynamic2l::find_mic_dyn_haz_2level;
use crate::wave::wave_eval;
use crate::Hazard;
use asyncmap_bff::{flatten, flatten_traced, Expr, FlatSop, FlattenTrace};
use asyncmap_cube::{Bits, Cube};

/// Maximum number of `(α, β)` minterm pairs examined per candidate
/// transition-space descriptor before giving up and keeping the candidate
/// conservatively.
const PAIR_CAP: usize = 4096;

/// All m.i.c. dynamic logic hazards of the multi-level expression `expr`
/// (over `nvars` variables) that are not consequences of static 1-hazards.
///
/// The returned descriptors are the two-level candidates whose hazard is
/// *confirmed* on the actual multi-level structure for at least one
/// endpoint pair.
pub fn find_mic_dyn_haz_multilevel(expr: &Expr, nvars: usize) -> Vec<Hazard> {
    let flat = flatten(expr, nvars);
    confirm_candidates(expr, &flat)
}

/// [`find_mic_dyn_haz_multilevel`], additionally returning the flattened
/// form and its collapse certificate ([`FlattenTrace`]) so an independent
/// checker can replay step 1 of the procedure without re-running it.
pub fn find_mic_dyn_haz_multilevel_traced(
    expr: &Expr,
    nvars: usize,
) -> (Vec<Hazard>, FlatSop, FlattenTrace) {
    let (flat, trace) = flatten_traced(expr, nvars);
    let hazards = confirm_candidates(expr, &flat);
    (hazards, flat, trace)
}

/// Step 1 of the procedure alone: the hazard-preserving collapse of `expr`
/// to two-level form, with its certificate. This is the flattening entry
/// point the audit layer replays; the full analysis entry points above are
/// built on the same call.
pub fn multilevel_flatten_traced(expr: &Expr, nvars: usize) -> (FlatSop, FlattenTrace) {
    flatten_traced(expr, nvars)
}

fn confirm_candidates(expr: &Expr, flat: &FlatSop) -> Vec<Hazard> {
    let candidates = find_mic_dyn_haz_2level(&flat.cover);
    candidates
        .into_iter()
        .filter(|h| {
            let Hazard::DynamicMic {
                zero_end, one_end, ..
            } = h
            else {
                return true;
            };
            confirm_on_structure(expr, &flat.cover, zero_end, one_end)
        })
        .collect()
}

/// `true` if some *function-hazard-free* minterm pair
/// `(α ∈ zero_end, β ∈ one_end)` exhibits a dynamic hazard on the given
/// structure (both conditions of Theorem 4.1). Falls back to `true`
/// (conservative: the hazard is assumed present) when the pair enumeration
/// exceeds the internal pair cap (4096).
pub fn confirm_on_structure(
    expr: &Expr,
    function: &asyncmap_cube::Cover,
    zero_end: &Cube,
    one_end: &Cube,
) -> bool {
    if zero_end
        .num_minterms()
        .saturating_mul(one_end.num_minterms())
        > PAIR_CAP as u64
    {
        return true;
    }
    for alpha in zero_end.minterms() {
        for beta in one_end.minterms() {
            if dynamic_hazard_on_structure(expr, &alpha, &beta)
                && crate::function::dynamic_function_hazard_free(function, &alpha, &beta)
            {
                return true;
            }
        }
    }
    false
}

/// Per-transition check: `true` iff the structure of `expr` has a dynamic
/// hazard for the burst `from → to` (the endpoints must have different
/// function values for the result to be meaningful).
pub fn dynamic_hazard_on_structure(expr: &Expr, from: &Bits, to: &Bits) -> bool {
    wave_eval(expr, from, to).is_dynamic_hazard()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    #[test]
    fn two_level_expression_keeps_its_hazards() {
        // Figure 10 function as a two-level expression: the multi-level
        // procedure must agree with the two-level one.
        let mut vars = VarTable::new();
        let e = asyncmap_bff::parse_letters("w'xz + w'xy + xyz", &mut vars).unwrap();
        let ml = find_mic_dyn_haz_multilevel(&e, vars.len());
        let flat = flatten(&e, vars.len());
        let tl = find_mic_dyn_haz_2level(&flat.cover);
        assert_eq!(ml.len(), tl.len());
        assert_eq!(ml.len(), 3);
    }

    #[test]
    fn factored_structure_discards_false_hazards() {
        // f = wx + x'y has a real dynamic hazard (Figure 4a). The factored
        // structure (w + x')(x + y) computes the same function; its
        // flattened form wx + wy + x'y (+ vacuous x'x) still trips the
        // two-level filter, but the waveform check on the real structure
        // discards the false candidates.
        let mut vars = VarTable::new();
        let two_level = Expr::parse("w*x + x'*y", &mut vars).unwrap();
        let factored = Expr::parse_in("(w + x')*(x + y)", &vars).unwrap();
        let h2 = find_mic_dyn_haz_multilevel(&two_level, vars.len());
        let hf = find_mic_dyn_haz_multilevel(&factored, vars.len());
        assert!(
            hf.len() <= h2.len(),
            "factored structure cannot have more confirmed m.i.c. hazards"
        );
        // And the specific Figure 4 burst (w↓ x↑, y=1) is hazardous only in
        // the two-level structure.
        let mut alpha = Bits::new(3);
        alpha.set(0, true); // w
        alpha.set(2, true); // y
        let mut beta = Bits::new(3);
        beta.set(1, true); // x
        beta.set(2, true); // y
        assert!(dynamic_hazard_on_structure(&two_level, &alpha, &beta));
        assert!(!dynamic_hazard_on_structure(&factored, &alpha, &beta));
    }

    #[test]
    fn single_cube_tree_has_no_dynamic_hazards() {
        let mut vars = VarTable::new();
        let e = Expr::parse("a*b*c*d", &mut vars).unwrap();
        assert!(find_mic_dyn_haz_multilevel(&e, vars.len()).is_empty());
    }
}
