//! Criterion benchmark behind Tables 4 and 5: end-to-end mapping time,
//! synchronous vs asynchronous, on representative benchmark controllers
//! and libraries. (The table binaries cover the full design × library
//! matrix with single-shot timing; here criterion tracks the small and
//! medium designs precisely.)

use asyncmap_core::{async_tmap, tmap, MapOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapping");
    let mut lsi = asyncmap_library::builtin::lsi9k();
    lsi.annotate_hazards();
    let mut actel = asyncmap_library::builtin::actel();
    actel.annotate_hazards();
    let opts = MapOptions::default();
    for name in ["dme-fast", "dme", "pe-send-ifc"] {
        let eqs = asyncmap_burst::benchmark(name);
        for (libname, lib) in [("LSI9K", &lsi), ("Actel", &actel)] {
            g.bench_function(format!("sync/{name}/{libname}"), |b| {
                b.iter(|| black_box(tmap(&eqs, lib, &opts).expect("mappable").area))
            });
            g.bench_function(format!("async/{name}/{libname}"), |b| {
                b.iter(|| black_box(async_tmap(&eqs, lib, &opts).expect("mappable").area))
            });
        }
    }
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("burst_synthesis");
    for name in ["dme", "pe-send-ifc"] {
        g.bench_function(format!("generate/{name}"), |b| {
            b.iter(|| black_box(asyncmap_burst::benchmark(name).num_literals()))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_mapping, bench_synthesis
}
criterion_main!(benches);
