//! # asyncmap-fma
//!
//! Whole-design **f**undamental-**m**ode **a**nalysis: a static analyzer
//! that runs over any finished [`MappedDesign`] — and, when available,
//! its burst-mode spec — and emits a machine-readable report with
//! severity codes, in the same [`asyncmap_report`] shape the lint and
//! audit passes use.
//!
//! Where the per-cone lint pass re-proves each cone against its *own*
//! subject function, this crate checks the properties that only exist at
//! whole-network scope:
//!
//! * **structure** — combinational cycles, multiply-driven and undriven
//!   signals (`cycle.*`): the fundamental-mode assumption needs the block
//!   to settle combinationally, with feedback closed only through the
//!   declared state variables;
//! * **cone boundaries** — every cone's input bursts must be covered by
//!   upstream cones' verified-monotonic output transitions
//!   (`boundary.containment`, `boundary.static1-escape`), with the
//!   exhaustive waveform sweep below
//!   [`asyncmap_hazard::EXHAUSTIVE_VAR_LIMIT`] leaves and a bounded
//!   flattening ladder above it;
//! * **spec conformance** — 8-valued waveform propagation of every
//!   specified burst through the whole netlist
//!   (`boundary.burst-glitch`, `boundary.burst-mismatch`), interior-point
//!   race sweeps (`race.premature-transition`, `race.state-burst`),
//!   feedback pairing (`feedback.unpaired`) and essential-hazard
//!   candidates (`race.essential-candidate`).
//!
//! The analyzer is read-only and assumes nothing about how the design
//! was produced; a deliberately corrupted netlist is diagnosed the same
//! way a mapper-produced one is. Re-analysis after an ECO edit reuses
//! clean per-cone results through [`FmaCache`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boundary;
mod interfere;
pub mod kernel;
mod structure;

pub use asyncmap_report::{Finding, Severity};

use asyncmap_burst::{expand, BurstSpec};
use asyncmap_core::{HazardCache, MappedDesign};
use asyncmap_library::Library;
use asyncmap_report::{Report, Totals};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Counter block of a fundamental-mode analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FmaCounters {
    /// Cones in the design.
    pub cones: usize,
    /// Cell instances in the design.
    pub instances: usize,
    /// Cones verified by the exhaustive boundary sweep.
    pub containment_exact: usize,
    /// Cones that took the wide-support fallback ladder.
    pub containment_wide: usize,
    /// Wide cones whose ladder ended without a full verdict.
    pub containment_partial: usize,
    /// Cones skipped because their (shape, cover) already analyzed clean.
    pub cones_reused: usize,
    /// Specified transitions checked (0 without a spec).
    pub spec_transitions: usize,
    /// Interior burst points swept by the packed evaluator.
    pub race_points: usize,
    /// Transitions whose interior sweep was capped to single-variable
    /// sub-bursts.
    pub race_capped: usize,
    /// Complete `st{k}` / `y{k}` feedback pairs.
    pub feedback_pairs: usize,
    /// Consecutive-edge essential-hazard candidates.
    pub essential_candidates: usize,
}

impl asyncmap_report::Counters for FmaCounters {
    fn summarize(&self, totals: &Totals, out: &mut String) {
        let _ = writeln!(
            out,
            "{} finding(s) ({} error(s)), {} note(s)",
            totals.findings, totals.errors, totals.notes
        );
        let _ = writeln!(
            out,
            "analyzed {} cone(s), {} instance(s): {} exact boundary sweep(s), \
             {} wide ladder run(s) ({} partial)",
            self.cones,
            self.instances,
            self.containment_exact,
            self.containment_wide,
            self.containment_partial
        );
        if self.spec_transitions > 0 {
            let _ = writeln!(
                out,
                "spec: {} transition(s) propagated, {} interior point(s) swept \
                 ({} capped), {} feedback pair(s), {} essential-hazard candidate(s)",
                self.spec_transitions,
                self.race_points,
                self.race_capped,
                self.feedback_pairs,
                self.essential_candidates
            );
        }
        if self.cones_reused > 0 {
            let _ = writeln!(
                out,
                "reused: {} cone(s) skipped via prior clean analysis",
                self.cones_reused
            );
        }
    }

    fn absorb(&mut self, other: &Self) {
        self.cones += other.cones;
        self.instances += other.instances;
        self.containment_exact += other.containment_exact;
        self.containment_wide += other.containment_wide;
        self.containment_partial += other.containment_partial;
        self.cones_reused += other.cones_reused;
        self.spec_transitions += other.spec_transitions;
        self.race_points += other.race_points;
        self.race_capped += other.race_capped;
        self.feedback_pairs += other.feedback_pairs;
        self.essential_candidates += other.essential_candidates;
    }
}

/// Report of one fundamental-mode analysis run.
pub type FmaReport = Report<FmaCounters>;

/// Reuse state for incremental (ECO) re-analysis.
///
/// Keyed the same way the mapper's cover store and the lint cache are: a
/// cone is skipped when its localized (shape, chosen cover) words — via
/// [`asyncmap_core::cone_cover_words`] — already analyzed clean under the
/// same library. Only the per-cone boundary results are cached; the
/// whole-network phases (structure, spec conformance) always rerun, and
/// only cones with *no* findings enter the cache. The embedded
/// [`HazardCache`] additionally keeps interned containment verdicts warm
/// across analyses, so even a cone whose key changed often pays a lookup
/// instead of a sweep. Clones share that verdict memo (it is monotone
/// and sound to share, like [`asyncmap_core::EcoSession`]'s) but get
/// their own clean-cone set.
#[derive(Clone, Default)]
pub struct FmaCache {
    library: Option<String>,
    clean: HashSet<Vec<u32>>,
    hcache: std::sync::Arc<HazardCache>,
}

impl FmaCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct clean (shape, cover) pairs remembered.
    pub fn entries(&self) -> usize {
        self.clean.len()
    }

    fn bind_library(&mut self, library: &Library) {
        if self.library.as_deref() != Some(library.name()) {
            self.library = Some(library.name().to_owned());
            self.clean.clear();
            self.hcache = std::sync::Arc::new(HazardCache::new());
        }
    }
}

/// Analyzes `design` without a spec: structure and per-cone boundary
/// containment.
pub fn analyze_design(design: &MappedDesign, library: &Library) -> FmaReport {
    analyze_inner(design, library, None, None)
}

/// Analyzes `design` against its burst-mode `spec`: everything
/// [`analyze_design`] checks, plus whole-network waveform propagation of
/// every specified transition, interior race sweeps, feedback pairing
/// and essential-hazard candidates.
pub fn analyze_design_with_spec(
    design: &MappedDesign,
    library: &Library,
    spec: &BurstSpec,
) -> FmaReport {
    analyze_inner(design, library, Some(spec), None)
}

/// [`analyze_design`] with reuse: per-cone boundary checks are skipped
/// for cones already known clean under the same library.
pub fn analyze_design_cached(
    design: &MappedDesign,
    library: &Library,
    cache: &mut FmaCache,
) -> FmaReport {
    analyze_inner(design, library, None, Some(cache))
}

/// [`analyze_design_with_spec`] with reuse, see [`analyze_design_cached`].
pub fn analyze_design_with_spec_cached(
    design: &MappedDesign,
    library: &Library,
    spec: &BurstSpec,
    cache: &mut FmaCache,
) -> FmaReport {
    analyze_inner(design, library, Some(spec), Some(cache))
}

fn threads_from_env() -> usize {
    let requested = std::env::var("ASYNCMAP_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if requested == 0 {
        cores
    } else {
        requested.min(cores).max(1)
    }
}

fn analyze_inner(
    design: &MappedDesign,
    library: &Library,
    spec: Option<&BurstSpec>,
    cache: Option<&mut FmaCache>,
) -> FmaReport {
    let threads = threads_from_env();
    let mut report = FmaReport::default();
    report.counters.cones = design.cones.len();
    report.counters.instances = design.num_instances();

    // Structure first: every later phase walks the instance graph and
    // needs it acyclic and fully driven.
    if !structure::check_structure(design, &mut report) {
        return report;
    }

    let (known_clean, hcache) = match cache {
        Some(cache) => {
            cache.bind_library(library);
            (Some(&mut cache.clean), Some(&cache.hcache))
        }
        None => (None, None),
    };
    let local_hcache;
    let hcache: &HazardCache = match hcache {
        Some(h) => h,
        None => {
            local_hcache = HazardCache::new();
            &local_hcache
        }
    };

    let empty = HashSet::new();
    let skip: &HashSet<Vec<u32>> = known_clean.as_deref().unwrap_or(&empty);
    let outcomes = boundary::check_boundaries(design, library, hcache, skip, threads);
    let mut fresh_clean: Vec<Vec<u32>> = Vec::new();
    for outcome in outcomes {
        report.counters.containment_exact += usize::from(outcome.exact);
        report.counters.containment_wide += usize::from(outcome.wide);
        report.counters.containment_partial += usize::from(outcome.partial);
        report.counters.cones_reused += usize::from(outcome.reused);
        let quiet = outcome.findings.is_empty();
        for (sev, code, path, msg) in outcome.findings {
            report.push(sev, code, path, msg);
        }
        if quiet && !outcome.reused {
            if let Some(key) = outcome.key {
                fresh_clean.push(key);
            }
        }
    }
    if let Some(clean) = known_clean {
        clean.extend(fresh_clean);
    }

    if let Some(spec) = spec {
        match expand(spec) {
            Ok(flow) => {
                let spec_out =
                    interfere::check_spec(design, library, spec, &flow, threads, &mut report);
                report.counters.spec_transitions = spec_out.transitions;
                report.counters.race_points = spec_out.race_points;
                report.counters.race_capped = spec_out.race_capped;
                report.counters.feedback_pairs = spec_out.feedback_pairs;
                report.counters.essential_candidates = spec_out.essential_candidates;
            }
            Err(e) => report.push(
                Severity::Error,
                "spec.invalid",
                spec.name.clone(),
                format!("spec does not expand to a flow table: {e}"),
            ),
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_core::{async_tmap, MapOptions};
    use asyncmap_cube::{Cover, VarTable};
    use asyncmap_library::builtin;
    use asyncmap_network::EquationSet;

    fn figure3() -> (MappedDesign, Library) {
        let mut lib = builtin::lsi9k();
        lib.annotate_hazards();
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        (design, lib)
    }

    #[test]
    fn figure3_analyzes_clean() {
        let (design, lib) = figure3();
        let report = analyze_design(&design, &lib);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.counters.cones, design.cones.len());
        assert!(report.counters.containment_exact > 0);
    }

    #[test]
    fn cache_reuses_unchanged_cones() {
        let (design, lib) = figure3();
        let mut cache = FmaCache::new();
        let cold = analyze_design_cached(&design, &lib, &mut cache);
        assert!(cold.is_clean(), "{}", cold.render());
        assert_eq!(cold.counters.cones_reused, 0);
        assert!(cache.entries() > 0);
        let warm = analyze_design_cached(&design, &lib, &mut cache);
        assert!(warm.is_clean());
        assert_eq!(warm.counters.cones_reused, warm.counters.cones);
        assert_eq!(warm.counters.containment_exact, 0);
    }

    #[test]
    fn cache_rebinds_on_library_change() {
        let (design, lib) = figure3();
        let mut cache = FmaCache::new();
        analyze_design_cached(&design, &lib, &mut cache);
        assert!(cache.entries() > 0);
        let mut other = builtin::cmos3();
        other.annotate_hazards();
        cache.bind_library(&other);
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn injected_cycle_is_classified() {
        let (mut design, lib) = figure3();
        // Rewire some instance's first input to its own output.
        let cover = design
            .covers
            .iter_mut()
            .find(|c| !c.instances.is_empty())
            .unwrap();
        let out = cover.instances[0].output;
        cover.instances[0].inputs[0] = out;
        let report = analyze_design(&design, &lib);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "cycle.combinational"));
    }

    #[test]
    fn report_renders_summary() {
        let (design, lib) = figure3();
        let text = analyze_design(&design, &lib).render();
        assert!(text.contains("analyzed"), "{text}");
        assert!(text.contains("boundary sweep"), "{text}");
    }
}
