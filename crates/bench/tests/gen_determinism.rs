//! Determinism of the workload generator through the full mapping
//! pipeline: the same spec must produce the same design fingerprint on
//! every run and under every mapper thread count, because benchmarks and
//! the CI divergence gate reference generated designs purely by
//! `(gates, inputs, seed)`.

use asyncmap_bench::{design_fingerprint, emit_design, generate, GenSpec};
use asyncmap_core::{async_tmap, MapOptions};
use asyncmap_library::builtin;

const SPEC: GenSpec = GenSpec {
    target_gates: 3_000,
    inputs: 14,
    seed: 42,
};

fn map_with_threads(threads: usize) -> (u64, u64, usize, usize) {
    let eqs = generate(&SPEC);
    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    let opts = MapOptions {
        threads,
        ..MapOptions::default()
    };
    design_fingerprint(&async_tmap(&eqs, &lib, &opts).expect("mappable"))
}

#[test]
fn same_seed_same_fingerprint() {
    assert_eq!(map_with_threads(1), map_with_threads(1));
}

#[test]
fn fingerprint_invariant_across_thread_counts() {
    let seq = map_with_threads(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            seq,
            map_with_threads(threads),
            "{threads}-thread mapping diverged from sequential"
        );
    }
}

#[test]
fn emitted_text_is_stable() {
    // The dump is the cross-version interchange format; its bytes must be
    // a pure function of the spec too.
    assert_eq!(emit_design(&generate(&SPEC)), emit_design(&generate(&SPEC)));
}

#[test]
fn different_seed_changes_fingerprint() {
    let other = GenSpec { seed: 43, ..SPEC };
    let eqs = generate(&other);
    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    let opts = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };
    let fp = design_fingerprint(&async_tmap(&eqs, &lib, &opts).expect("mappable"));
    assert_ne!(fp, map_with_threads(1), "seed 42 vs 43 mapped identically");
}
