//! The `asyncmap` command-line tool: hazard-aware technology mapping for
//! burst-mode controllers, end to end from files.
//!
//! ```text
//! asyncmap audit <library>                    hazard audit (Table 1 style)
//! asyncmap audit <design> <library>           spec check + certificate replay + lint
//! asyncmap synth <machine.bms>                hazard-free equations + dot
//! asyncmap map   <design> <library>           load + map + report
//!                [--objective area|delay] [--hand] [--sync] [--verilog out.v]
//!                [--lint] [--audit]
//! asyncmap lint  <design> <library>           map, then independently verify
//! asyncmap analyze <design> <library>         map, then whole-design
//!                                             fundamental-mode analysis
//! asyncmap preflight <design> <library>       static (library, design)
//!                                             qualification, no mapping
//! asyncmap gen   <gates>                      seeded large-design generator
//!                [--seed N] [--inputs N] [--lib NAME] [--map] [--lint] [--audit]
//!                [--emit out.eqn] [--edit K] [--edit-out out.edits]
//! asyncmap eco   <base> <edits> <library>     incremental (ECO) remap
//!                [--objective area|delay] [--verify]
//! ```
//!
//! Every `<design>` is resolved the same way: a `.blif` netlist (parsed
//! and collapsed to two-level equations), a `.bms` burst-mode
//! specification (synthesized to hazard-free equations), an equation dump
//! from `gen --emit` (sniffed by its `inputs` header), or a builtin
//! Table 5 benchmark name (e.g. `scsi`). Every `<library>` is a
//! `.genlib` file (SIS/MIS cell-library format), a native `.lib` file,
//! or a builtin library name (`lsi9k`, `cmos3`, `gdt`, `actel`). Only
//! `.bms` and benchmark sources carry a burst-mode spec; the others are
//! processed structurally.
//!
//! Setting `ASYNCMAP_LINT=1` makes every `map`
//! run lint its own output as well, panicking on findings;
//! `ASYNCMAP_AUDIT=1` makes every hazard-aware map replay the front end's
//! translation-validation certificates the same way; `ASYNCMAP_FMA=1`
//! runs the whole-design fundamental-mode analyzer after every
//! hazard-aware map and ECO remap, panicking on error findings;
//! `ASYNCMAP_PREFLIGHT=1` statically qualifies every (design, library)
//! pair before mapping, panicking on error-severity findings.
//!
//! `gen --edit K` derives K cumulative single-cube edits from the
//! generator seed and prints them as `set <name> = <cubes>` lines (or
//! writes them with `--edit-out`). `eco` base-maps `<base>` (an equation
//! dump from `gen --emit`, a `.bms` file, or a builtin benchmark name),
//! applies such an edit script, remaps incrementally, and with `--verify`
//! cross-checks the stitched design against a cold map plus the
//! cache-warmed lint and audit passes.

use asyncmap::burst::{expand, hazard_free_cover, parse_bms, to_dot};
use asyncmap::mapper::{render_report, to_verilog, Objective};
use asyncmap::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    asyncmap::install_lint_hook();
    asyncmap::install_audit_hook();
    asyncmap::install_fma_hook();
    asyncmap::install_preflight_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("audit") => return cmd_audit(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("map") => cmd_map(&args[1..]),
        Some("lint") => return cmd_lint(&args[1..]),
        Some("analyze") => return cmd_analyze(&args[1..]),
        Some("preflight") => return cmd_preflight(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("eco") => cmd_eco(&args[1..]),
        _ => {
            eprintln!(
                "usage: asyncmap <audit|synth|map|lint|analyze|preflight|gen|eco> \
                 <design> <library> ... (see crate docs)"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn load_spec(path: &str) -> Result<asyncmap::burst::BurstSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_bms(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_audit(args: &[String]) -> ExitCode {
    if args.len() >= 2 {
        return cmd_audit_pipeline(&args[0], &args[1]);
    }
    let inner = || -> Result<(), String> {
        let path = args.first().ok_or("audit: missing library path or name")?;
        let mut lib = asyncmap::load_library_auto(path)?;
        lib.annotate_hazards();
        let hazardous = lib.hazardous_cells();
        println!(
            "{}: {} elements, {} hazardous ({:.0}%)",
            lib.name(),
            lib.len(),
            hazardous.len(),
            100.0 * hazardous.len() as f64 / lib.len().max(1) as f64
        );
        for cell in hazardous {
            println!(
                "  {:12} {}",
                cell.name(),
                cell.hazards().expect("annotated").summary()
            );
        }
        Ok(())
    };
    match inner() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The translation-validation audit: statically checks the burst-mode
/// spec (when the design source carries one), replays the certificate
/// trail of the hazard-preserving front end on its equations, then maps
/// against the library and lints the result. Exit code is nonzero on any
/// finding.
fn cmd_audit_pipeline(spec_arg: &str, lib_arg: &str) -> ExitCode {
    let inner = || -> Result<(asyncmap::audit::AuditReport, asyncmap::lint::LintReport), String> {
        let (eqs, spec) = asyncmap::load_design_with_spec(spec_arg)?;
        let mut report = match &spec {
            Some(spec) => asyncmap::audit::check_spec(spec),
            None => asyncmap::audit::AuditReport::default(),
        };
        report.merge(asyncmap::audit::audit_equations(&eqs));
        let mut lib = asyncmap::load_library_auto(lib_arg)?;
        lib.annotate_hazards();
        let design = async_tmap(&eqs, &lib, &MapOptions::default()).map_err(|e| e.to_string())?;
        Ok((report, lint_mapped_design(&design, &lib)))
    };
    match inner() {
        Ok((audit, lint)) => {
            print!("{}", audit.render());
            print!("{}", lint.render());
            if audit.is_clean() && lint.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn synthesize(spec: &asyncmap::burst::BurstSpec) -> Result<EquationSet, String> {
    let flow = expand(spec).map_err(|e| e.to_string())?;
    let mut vars = VarTable::new();
    for n in &flow.var_names {
        vars.intern(n);
    }
    let mut equations = Vec::new();
    for f in &flow.functions {
        let cover = hazard_free_cover(f).map_err(|e| e.to_string())?;
        equations.push((f.name.clone(), cover));
    }
    Ok(EquationSet::new(vars, equations))
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("synth: missing .bms path")?;
    let spec = load_spec(path)?;
    let eqs = synthesize(&spec)?;
    println!("# hazard-free equations for machine {}", spec.name);
    for (name, cover) in &eqs.equations {
        println!("{name} = {}", cover.display(&eqs.inputs));
    }
    println!("\n# graphviz");
    print!("{}", to_dot(&spec).map_err(|e| e.to_string())?);
    Ok(())
}

fn cmd_map(args: &[String]) -> Result<(), String> {
    let design_arg = args
        .first()
        .ok_or("map: missing design (.blif, .bms, dump path, or benchmark)")?;
    let lib_arg = args
        .get(1)
        .ok_or("map: missing library (.genlib, .lib path, or builtin name)")?;
    let mut objective = Objective::Area;
    let mut flow = "async";
    let mut verilog_out: Option<String> = None;
    let (mut do_lint, mut do_audit) = (false, false);
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--objective" => {
                i += 1;
                objective = match args.get(i).map(String::as_str) {
                    Some("area") => Objective::Area,
                    Some("delay") => Objective::Delay,
                    other => return Err(format!("map: bad --objective {other:?}")),
                };
            }
            "--hand" => flow = "hand",
            "--sync" => flow = "sync",
            "--verilog" => {
                i += 1;
                verilog_out = Some(args.get(i).ok_or("map: --verilog needs a path")?.clone());
            }
            "--lint" => do_lint = true,
            "--audit" => do_audit = true,
            other => return Err(format!("map: unknown flag {other:?}")),
        }
        i += 1;
    }

    let (eqs, spec) = asyncmap::load_design_with_spec(design_arg)?;
    let mut lib = asyncmap::load_library_auto(lib_arg)?;
    lib.annotate_hazards();
    let options = MapOptions {
        objective,
        ..MapOptions::default()
    };
    let design = match flow {
        "hand" => hand_map(&eqs, &lib, &options),
        "sync" => tmap(&eqs, &lib, &options),
        _ => async_tmap(&eqs, &lib, &options),
    }
    .map_err(|e| e.to_string())?;
    if !design.verify_function(&lib) {
        return Err("internal error: mapped design is not equivalent".into());
    }
    if flow == "async" && !design.verify_hazards(&lib) {
        return Err("internal error: mapped design gained hazards".into());
    }
    print!("{}", render_report(&design, &lib));
    let (fp_area, fp_delay, fp_inst, fp_cones) = asyncmap::bench::design_fingerprint(&design);
    println!("fingerprint: {fp_area:016x}-{fp_delay:016x}-{fp_inst}-{fp_cones}");
    if do_audit {
        let mut report = match &spec {
            Some(spec) => asyncmap::audit::check_spec(spec),
            None => asyncmap::audit::AuditReport::default(),
        };
        report.merge(asyncmap::audit::audit_equations(&eqs));
        print!("{}", report.render());
        if !report.is_clean() {
            return Err("map: audit findings on the synthesis pipeline".into());
        }
    }
    if do_lint {
        let report = lint_mapped_design(&design, &lib);
        print!("{}", report.render());
        if !report.is_clean() {
            return Err("map: lint findings on the mapped design".into());
        }
    }
    if let Some(path) = verilog_out {
        let module = match &spec {
            Some(spec) => spec.name.replace('-', "_"),
            None => std::path::Path::new(design_arg.as_str())
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("design")
                .replace(['-', '.'], "_"),
        };
        std::fs::write(&path, to_verilog(&design, &lib, &module))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// The seeded large-design generator: builds a deterministic multi-cone
/// equation set (`asyncmap::bench::generate`), reports its decomposed
/// size, and optionally maps / lints / audits it. A single `gen --map
/// --lint --audit` run is the CI large-design smoke test: it exits
/// nonzero on any mapping error, lint finding, or audit finding.
fn cmd_gen(args: &[String]) -> Result<(), String> {
    let gates: usize = args
        .first()
        .ok_or("gen: missing target gate count")?
        .parse()
        .map_err(|e| format!("gen: bad gate count: {e}"))?;
    let mut spec = asyncmap::bench::GenSpec::new(gates);
    let mut lib_arg = "lsi9k".to_owned();
    let (mut do_map, mut do_lint, mut do_audit) = (false, false, false);
    let mut emit_path: Option<String> = None;
    let mut edit_count = 0usize;
    let mut edit_out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                spec.seed = args
                    .get(i)
                    .ok_or("gen: --seed needs a value")?
                    .parse()
                    .map_err(|e| format!("gen: bad --seed: {e}"))?;
            }
            "--inputs" => {
                i += 1;
                spec.inputs = args
                    .get(i)
                    .ok_or("gen: --inputs needs a value")?
                    .parse()
                    .map_err(|e| format!("gen: bad --inputs: {e}"))?;
            }
            "--lib" => {
                i += 1;
                lib_arg = args.get(i).ok_or("gen: --lib needs a value")?.clone();
            }
            "--emit" => {
                i += 1;
                emit_path = Some(args.get(i).ok_or("gen: --emit needs a path")?.clone());
            }
            "--edit" => {
                i += 1;
                edit_count = args
                    .get(i)
                    .ok_or("gen: --edit needs a count")?
                    .parse()
                    .map_err(|e| format!("gen: bad --edit: {e}"))?;
            }
            "--edit-out" => {
                i += 1;
                edit_out = Some(args.get(i).ok_or("gen: --edit-out needs a path")?.clone());
            }
            "--map" => do_map = true,
            "--lint" => do_lint = true,
            "--audit" => do_audit = true,
            other => return Err(format!("gen: unknown flag {other:?}")),
        }
        i += 1;
    }
    let eqs = asyncmap::bench::generate(&spec);
    if let Some(path) = &emit_path {
        std::fs::write(path, asyncmap::bench::emit_design(&eqs))
            .map_err(|e| format!("gen: writing {path}: {e}"))?;
        println!("wrote {} equations to {path}", eqs.equations.len());
    }
    if edit_count > 0 {
        // Edit seed derived from the generator seed: the same `gen`
        // invocation always yields the same edit script.
        let edits = asyncmap::bench::generate_edits(&eqs, edit_count, spec.seed ^ 0xEC0);
        let text = asyncmap::bench::emit_edits(&eqs, &edits);
        match &edit_out {
            Some(path) => {
                std::fs::write(path, &text).map_err(|e| format!("gen: writing {path}: {e}"))?;
                println!("wrote {} edit(s) to {path}", edits.len());
            }
            None => print!("{text}"),
        }
    } else if edit_out.is_some() {
        return Err("gen: --edit-out needs --edit K".into());
    }
    let net = asyncmap::network::async_tech_decomp(&eqs);
    println!(
        "{}: {} equations, {} cubes, {} literals over {} inputs -> {} base gates",
        spec.name(),
        eqs.equations.len(),
        eqs.num_cubes(),
        eqs.num_literals(),
        spec.inputs,
        net.num_gates()
    );
    if do_audit {
        let report = asyncmap::audit::audit_equations(&eqs);
        print!("{}", report.render());
        if !report.is_clean() {
            return Err("gen: audit findings on generated equations".into());
        }
    }
    if !(do_map || do_lint) {
        return Ok(());
    }
    let mut lib = asyncmap::load_library_auto(&lib_arg)?;
    lib.annotate_hazards();
    let design = async_tmap(&eqs, &lib, &MapOptions::default()).map_err(|e| e.to_string())?;
    println!(
        "mapped to {}: {} instances, area {:.1}, delay {:.1}, {} cones",
        lib.name(),
        design.num_instances(),
        design.area,
        design.delay,
        design.stats.cones
    );
    if do_lint {
        let report = lint_mapped_design(&design, &lib);
        print!("{}", report.render());
        if !report.is_clean() {
            return Err("gen: lint findings on mapped generated design".into());
        }
    }
    Ok(())
}

/// Incremental (ECO) remap: base-maps the design once, applies an edit
/// script (`set <name> = <cubes>` lines, as emitted by `gen --edit`),
/// then remaps reusing every cover whose cone shape survived the edit.
/// `--verify` additionally cold-maps the edited design and requires a
/// fingerprint-identical result, then runs the reuse-aware lint and audit
/// passes (caches warmed on the base design) on the stitched output,
/// failing on any finding.
fn cmd_eco(args: &[String]) -> Result<(), String> {
    let base_arg = args.first().ok_or("eco: missing base design")?;
    let edits_arg = args.get(1).ok_or("eco: missing edits file")?;
    let lib_arg = args.get(2).ok_or("eco: missing library path or name")?;
    let mut objective = Objective::Area;
    let mut verify = false;
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--objective" => {
                i += 1;
                objective = match args.get(i).map(String::as_str) {
                    Some("area") => Objective::Area,
                    Some("delay") => Objective::Delay,
                    other => return Err(format!("eco: bad --objective {other:?}")),
                };
            }
            "--verify" => verify = true,
            other => return Err(format!("eco: unknown flag {other:?}")),
        }
        i += 1;
    }

    let eqs = asyncmap::load_design_auto(base_arg)?;
    let edits_text = std::fs::read_to_string(edits_arg).map_err(|e| format!("{edits_arg}: {e}"))?;
    let edits = asyncmap::bench::parse_edits(&edits_text, &eqs.inputs);
    let edited = asyncmap::bench::apply_edits(&eqs, &edits);
    let mut lib = asyncmap::load_library_auto(lib_arg)?;
    lib.annotate_hazards();
    let options = MapOptions {
        objective,
        ..MapOptions::default()
    };

    let mut session = EcoSession::new(&lib, options.clone());
    let base = session.map(&eqs).map_err(|e| e.to_string())?;
    let out = session.map(&edited).map_err(|e| e.to_string())?;
    let eco = out.eco;
    println!(
        "eco: {} edit(s), {} of {} cone(s) reused, {} re-covered, \
         {} downstream of an edit, {} cover(s) in the session store",
        edits.len(),
        eco.cones_reused,
        eco.cones_total,
        eco.cones_remapped,
        eco.cones_downstream_dirty,
        eco.store_entries
    );
    print!("{}", render_report(&out.design, &lib));

    if verify {
        let cold = async_tmap(&edited, &lib, &options).map_err(|e| e.to_string())?;
        if asyncmap::bench::design_fingerprint(&cold)
            != asyncmap::bench::design_fingerprint(&out.design)
        {
            return Err("eco: stitched design diverges from a cold map of the edit".into());
        }
        let mut lint_cache = asyncmap::lint::LintCache::new();
        asyncmap::lint::lint_mapped_design_cached(&base.design, &lib, &mut lint_cache);
        let lint = asyncmap::lint::lint_mapped_design_cached(&out.design, &lib, &mut lint_cache);
        if !lint.is_clean() {
            print!("{}", lint.render());
            return Err("eco: lint findings on the stitched design".into());
        }
        let mut audit_cache = asyncmap::audit::AuditCache::new();
        asyncmap::audit::audit_equations_cached(&eqs, &mut audit_cache);
        let audit = asyncmap::audit::audit_equations_cached(&edited, &mut audit_cache);
        if !audit.is_clean() {
            print!("{}", audit.render());
            return Err("eco: audit findings on the edited pipeline".into());
        }
        let ac = &audit.counters;
        println!(
            "verify: fingerprint identical to cold map; lint clean ({} of {} cone(s) reused); \
             audit clean ({} of {} certificate(s) reused)",
            lint.counters.cones_reused,
            lint.counters.cones,
            ac.reused_steps + ac.reused_equations + ac.reused_flattens,
            audit.counters.num_certificates(),
        );
    }
    Ok(())
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let inner = || -> Result<asyncmap::lint::LintReport, String> {
        let spec_arg = args
            .first()
            .ok_or("lint: missing design (.blif, .bms, dump path, or benchmark)")?;
        let lib_arg = args
            .get(1)
            .ok_or("lint: missing library (.genlib, .lib path, or builtin name)")?;
        let eqs = asyncmap::load_design_auto(spec_arg)?;
        let mut lib = asyncmap::load_library_auto(lib_arg)?;
        lib.annotate_hazards();
        let design = async_tmap(&eqs, &lib, &MapOptions::default()).map_err(|e| e.to_string())?;
        Ok(lint_mapped_design(&design, &lib))
    };
    match inner() {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The whole-design fundamental-mode analyzer gate: maps the design, then
/// statically checks instance-graph structure, cross-cone hazard
/// containment and (when a burst-mode spec is available) spec-level race
/// and feedback discipline. Notes are informational; the exit code is
/// nonzero only on error-severity findings.
fn cmd_analyze(args: &[String]) -> ExitCode {
    let inner = || -> Result<FmaReport, String> {
        let src_arg = args
            .first()
            .ok_or("analyze: missing design (.blif, .bms, dump path, or benchmark)")?;
        let lib_arg = args
            .get(1)
            .ok_or("analyze: missing library (.genlib, .lib path, or builtin name)")?;
        let mut lib = asyncmap::load_library_auto(lib_arg)?;
        lib.annotate_hazards();

        // A `.bms` file or builtin benchmark carries a burst-mode spec
        // (full analysis); `.blif` netlists and equation dumps are
        // analyzed structurally, without a spec.
        let (eqs, spec) = asyncmap::load_design_with_spec(src_arg)?;
        let design = async_tmap(&eqs, &lib, &MapOptions::default()).map_err(|e| e.to_string())?;
        Ok(match &spec {
            Some(spec) => analyze_design_with_spec(&design, &lib, spec),
            None => analyze_design(&design, &lib),
        })
    };
    match inner() {
        Ok(report) => {
            print!("{}", report.render());
            if report.num_errors() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The static qualification gate: analyzes the (library, design) pair
/// before any mapping is attempted. Library-side checks run on the parsed
/// library (for `.genlib` sources this includes declared-function and
/// pin-phase cross-checks), design-side checks on the netlist or equation
/// set (for `.blif` sources structural problems — cycles, undriven or
/// multiply-driven nets, latches — are reported as findings even when the
/// netlist cannot be collapsed), and pair-wise checks look for cone roots
/// whose sampled cut functions no library cell can realize. Notes and
/// warnings are informational; the exit code is nonzero only on
/// error-severity findings.
fn cmd_preflight(args: &[String]) -> ExitCode {
    let inner = || -> Result<PreflightReport, String> {
        let design_arg = args
            .first()
            .ok_or("preflight: missing design (.blif, .bms, dump path, or benchmark)")?;
        let lib_arg = args
            .get(1)
            .ok_or("preflight: missing library (.genlib, .lib path, or builtin name)")?;

        let (mut report, library) = if lib_arg.ends_with(".genlib") {
            let text = std::fs::read_to_string(lib_arg).map_err(|e| format!("{lib_arg}: {e}"))?;
            let name = std::path::Path::new(lib_arg.as_str())
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("genlib");
            let parsed = asyncmap::genlib::parse_genlib(&text, name)
                .map_err(|e| format!("{lib_arg}: {e}"))?;
            asyncmap::preflight::preflight_genlib(&parsed)
        } else {
            let library = asyncmap::load_library_auto(lib_arg)?;
            (asyncmap::preflight::preflight_library(&library), library)
        };

        let eqs = if design_arg.ends_with(".blif") {
            let text =
                std::fs::read_to_string(design_arg).map_err(|e| format!("{design_arg}: {e}"))?;
            let name = std::path::Path::new(design_arg.as_str())
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("blif");
            let net = asyncmap::blif::parse_blif(&text, name)
                .map_err(|e| format!("{design_arg}: {e}"))?;
            let (design_report, eqs) = asyncmap::preflight::preflight_blif(&net);
            report.merge(design_report);
            eqs
        } else {
            let eqs = asyncmap::load_design_auto(design_arg)?;
            report.merge(asyncmap::preflight::preflight_design(&eqs));
            Some(eqs)
        };

        if let Some(eqs) = &eqs {
            report.merge(asyncmap::preflight::preflight_pair(eqs, &library));
        }
        Ok(report)
    };
    match inner() {
        Ok(report) => {
            print!("{}", report.render());
            if report.num_errors() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
