//! Library cells: named logic functions with a structural Boolean factored
//! form, area/delay parameters and an optional hazard annotation.

use asyncmap_bff::Expr;
use asyncmap_cube::{Bits, VarTable};
use asyncmap_hazard::HazardReport;
use std::fmt;

/// One library element (paper §3.2.1).
///
/// The BFF is the cell's *structure*: for complementary CMOS it abstracts
/// the series-parallel transistor networks, for mux-based FPGA modules the
/// pass-transistor tree. The same function with different BFFs has
/// different hazard behavior (Figure 4), so two such cells are distinct
/// library elements.
#[derive(Debug, Clone)]
pub struct Cell {
    name: String,
    pins: VarTable,
    bff: Expr,
    area: f64,
    delay: f64,
    hazards: Option<HazardReport>,
}

impl Cell {
    /// Creates a cell. `pins` orders the input pins; `bff` is the
    /// structure over those pins.
    ///
    /// # Panics
    ///
    /// Panics if the BFF references a pin outside the table, if the cell
    /// has no pins, or if `area`/`delay` are not positive and finite.
    pub fn new(name: &str, pins: VarTable, bff: Expr, area: f64, delay: f64) -> Self {
        assert!(!pins.is_empty(), "cell {name:?} has no pins");
        assert!(
            area.is_finite() && area > 0.0 && delay.is_finite() && delay > 0.0,
            "cell {name:?} has invalid area/delay"
        );
        if let Some(max) = bff.support().into_iter().max() {
            assert!(
                max.index() < pins.len(),
                "cell {name:?} BFF references undefined pin"
            );
        }
        Cell {
            name: name.to_owned(),
            pins,
            bff,
            area,
            delay,
            hazards: None,
        }
    }

    /// Convenience constructor: parses the BFF and derives the pin order
    /// from first occurrence, with area = literal count (the pulldown
    /// transistor count of a complementary CMOS realization — the paper's
    /// Table 3 area unit).
    ///
    /// # Panics
    ///
    /// Panics if the expression does not parse.
    pub fn from_bff(name: &str, bff_text: &str, delay: f64) -> Self {
        let mut pins = VarTable::new();
        let bff = Expr::parse(bff_text, &mut pins).unwrap_or_else(|e| panic!("cell {name:?}: {e}"));
        let area = f64::from(bff.num_literals());
        Cell::new(name, pins, bff, area, delay)
    }

    /// The cell's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input pin table (pin `i` is BFF variable `i`).
    pub fn pins(&self) -> &VarTable {
        &self.pins
    }

    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        self.pins.len()
    }

    /// The structural Boolean factored form.
    pub fn bff(&self) -> &Expr {
        &self.bff
    }

    /// Area cost.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Intrinsic delay.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// The hazard annotation, if [`Cell::annotate`] has run.
    pub fn hazards(&self) -> Option<&HazardReport> {
        self.hazards.as_ref()
    }

    /// `true` if the cell is known to contain logic hazards.
    ///
    /// # Panics
    ///
    /// Panics if the cell has not been annotated — the asynchronous flow
    /// must never guess.
    pub fn is_hazardous(&self) -> bool {
        !self
            .hazards
            .as_ref()
            .expect("cell not annotated with hazard information")
            .is_hazard_free()
    }

    /// Runs the full hazard characterization of the cell's structure and
    /// stores it (the asynchronous library-initialization step measured in
    /// Table 2).
    pub fn annotate(&mut self) {
        if self.hazards.is_none() {
            self.hazards = Some(self.compute_hazards());
        }
    }

    /// The hazard characterization of the cell's structure, computed
    /// without storing it — lets annotation workers analyze cells through
    /// shared references and commit the results afterwards.
    pub fn compute_hazards(&self) -> HazardReport {
        asyncmap_hazard::analyze_expr(&self.bff, self.pins.len())
    }

    /// Stores a hazard report computed by [`Cell::compute_hazards`].
    pub(crate) fn set_hazards(&mut self, report: HazardReport) {
        if self.hazards.is_none() {
            self.hazards = Some(report);
        }
    }

    /// The cell's truth table over its pins (pin `i` = bit `i` of the
    /// row index).
    pub fn truth_table(&self) -> Bits {
        let n = self.pins.len();
        let size = 1usize << n;
        let mut out = Bits::new(size);
        let mut assignment = Bits::new(n);
        for m in 0..size {
            for v in 0..n {
                assignment.set(v, (m >> v) & 1 == 1);
            }
            if self.bff.eval(&assignment) {
                out.set(m, true);
            }
        }
        out
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (area {}, delay {}): {}",
            self.name,
            self.area,
            self.delay,
            self.bff.display(&self.pins)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bff_derives_pins_and_area() {
        let c = Cell::from_bff("AOI21", "(a*b + c)'", 0.5);
        assert_eq!(c.num_inputs(), 3);
        assert_eq!(c.area(), 3.0);
        assert_eq!(c.name(), "AOI21");
        assert!(c.to_string().contains("AOI21"));
    }

    #[test]
    fn truth_table_of_nand2() {
        let c = Cell::from_bff("ND2", "(a*b)'", 0.3);
        let tt = c.truth_table();
        assert!(tt.get(0) && tt.get(1) && tt.get(2) && !tt.get(3));
    }

    #[test]
    fn mux_cell_is_hazardous_after_annotation() {
        let mut mux = Cell::from_bff("MUX2", "s*a + s'*b", 0.6);
        mux.annotate();
        assert!(mux.is_hazardous());
        let mut aoi = Cell::from_bff("AOI21", "(a*b + c)'", 0.4);
        aoi.annotate();
        assert!(!aoi.is_hazardous(), "read-once AOI must be hazard-free");
    }

    #[test]
    #[should_panic(expected = "not annotated")]
    fn unannotated_query_panics() {
        let c = Cell::from_bff("ND2", "(a*b)'", 0.3);
        c.is_hazardous();
    }

    #[test]
    #[should_panic(expected = "invalid area/delay")]
    fn invalid_delay_rejected() {
        let mut pins = VarTable::new();
        let bff = Expr::parse("a", &mut pins).unwrap();
        Cell::new("BUF", pins, bff, 1.0, 0.0);
    }
}
