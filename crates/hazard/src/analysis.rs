//! Top-level hazard characterization of a structure (library cell BFF or
//! mapped subnetwork), combining the four per-class algorithms.
//!
//! [`analyze_expr`] layers two passes:
//!
//! 1. the paper's fast algorithms (§4.1–§4.2) produce the descriptor lists;
//! 2. for small variable counts, an exhaustive waveform sweep certifies the
//!    result and appends any residual hazards the published procedures
//!    miss (see `dynamic2l::tests::published_procedure_gap` for a concrete
//!    case) — so a report of "hazard-free" is *exact* for every structure
//!    of at most [`crate::EXHAUSTIVE_VAR_LIMIT`] inputs, which covers all
//!    realistic library cells.

use crate::compare::EXHAUSTIVE_VAR_LIMIT;
use crate::dynamic2l::find_mic_dyn_haz_2level;
use crate::function::{disjoint, dynamic_function_hazard_free};
use crate::multilevel::find_mic_dyn_haz_multilevel;
use crate::sic::find_sic_hazards;
use crate::static1::{static_1_analysis, static_1_complete};
use crate::wave::wave_eval;
use crate::{Hazard, HazardReport};
use asyncmap_bff::{flatten, Expr};
use asyncmap_cube::{Bits, Cover, Cube, VarId};

/// Fully characterizes the logic-hazard behavior of the structure `expr`
/// over `nvars` variables (paper §3.2.1: run once per library element at
/// load time; §3.2.2: run on a subnetwork when a hazardous element matches
/// it).
///
/// * static 1-hazards from the hazard-preserving flattening (Unger's
///   Theorem 4.3 makes the flattened cover's static behavior equal to the
///   structure's), using the complete (all-primes) form;
/// * static 0-hazards and s.i.c. dynamic hazards from path labeling,
///   confirmed on the structure;
/// * m.i.c. dynamic hazards from the two-level filter plus waveform
///   confirmation on the multi-level structure;
/// * a certifying waveform sweep appending residual hazards
///   (`nvars ≤ 8` only).
pub fn analyze_expr(expr: &Expr, nvars: usize) -> HazardReport {
    let mut report = analyze_expr_fast(expr, nvars);
    if nvars <= EXHAUSTIVE_VAR_LIMIT {
        sweep_residual(expr, nvars, &mut report);
    }
    report
}

/// The paper's algorithms only, without the certifying sweep. Used by the
/// ablation benchmarks; may under-report exotic m.i.c. hazards.
pub fn analyze_expr_fast(expr: &Expr, nvars: usize) -> HazardReport {
    let flat = flatten(expr, nvars);
    let static1 = static_1_complete(&flat.cover);
    let dynamic_mic = find_mic_dyn_haz_multilevel(expr, nvars);
    let sic = find_sic_hazards(expr, nvars);
    HazardReport {
        nvars,
        static1,
        static0: sic.static0,
        dynamic_mic,
        dynamic_sic: sic.dynamic_sic,
        flat: flat.cover,
    }
}

/// Characterizes a two-level AND–OR structure given directly as a cover
/// (including the certifying sweep on small spaces).
pub fn analyze_cover(f: &Cover) -> HazardReport {
    analyze_expr(&Expr::from_cover(f), f.nvars())
}

/// Like [`analyze_cover`] but using only the paper's single-pass static-1
/// procedure and the two-level dynamic procedure — the fast filter used in
/// the ablation benchmarks.
pub fn analyze_cover_fast(f: &Cover) -> HazardReport {
    HazardReport {
        nvars: f.nvars(),
        static1: static_1_analysis(f),
        static0: Vec::new(),
        dynamic_mic: find_mic_dyn_haz_2level(f),
        dynamic_sic: Vec::new(),
        flat: f.clone(),
    }
}

/// Sweeps every transition pair and appends hazards not represented by an
/// existing descriptor. Function-hazardous transitions are skipped: they
/// are implementation-independent and never logic hazards.
fn sweep_residual(expr: &Expr, nvars: usize, report: &mut HazardReport) {
    let size = 1usize << nvars;
    for a in 0..size {
        let ba = index_bits(nvars, a);
        let fa = report.flat.eval(&ba);
        for b in (a + 1)..size {
            let bb = index_bits(nvars, b);
            let w = wave_eval(expr, &ba, &bb);
            if !w.hazard {
                continue;
            }
            let fb = report.flat.eval(&bb);
            let span = Cube::minterm(&ba).supercube(&Cube::minterm(&bb));
            if fa == fb {
                // Static transition: function-hazard-free iff f is constant
                // on the span.
                if fa {
                    if !report.flat.covers_cube(&span) {
                        continue;
                    }
                    // Static-1 hazards are complete by construction (the
                    // uncovered span lies in an uncovered prime), so the
                    // span is already captured; nothing to add.
                } else {
                    if !disjoint(&report.flat, &span) {
                        continue;
                    }
                    add_static0_residual(report, &ba, &bb, nvars);
                }
            } else {
                if !dynamic_function_hazard_free(&report.flat, &ba, &bb) {
                    continue;
                }
                let (zero, one) = if fa { (&bb, &ba) } else { (&ba, &bb) };
                add_dynamic_residual(report, zero, one, nvars);
            }
        }
    }
}

fn add_static0_residual(report: &mut HazardReport, ba: &Bits, bb: &Bits, nvars: usize) {
    let changing = ba.xor(bb);
    let context = Cube::from_bits(changing.not(), ba.and(&changing.not()));
    let var = VarId(changing.first_one().expect("distinct assignments"));
    let captured = report.static0.iter().any(|h| {
        let Hazard::Static0 { var: hv, condition } = h else {
            return false;
        };
        changing.get(hv.index())
            && condition
                .cubes()
                .iter()
                .any(|c| c.intersect(&context).is_some())
    });
    if captured {
        return;
    }
    // Merge into an existing descriptor on the same variable if present.
    if let Some(Hazard::Static0 { condition, .. }) = report
        .static0
        .iter_mut()
        .find(|h| matches!(h, Hazard::Static0 { var: hv, .. } if *hv == var))
    {
        if !condition.cubes().contains(&context) {
            condition.push(context);
        }
        return;
    }
    report.static0.push(Hazard::Static0 {
        var,
        condition: Cover::from_cubes(nvars, vec![context]),
    });
}

fn add_dynamic_residual(report: &mut HazardReport, zero: &Bits, one: &Bits, _nvars: usize) {
    let zero_cube = Cube::minterm(zero);
    let one_cube = Cube::minterm(one);
    let captured = report.dynamic_mic.iter().any(|h| {
        let Hazard::DynamicMic {
            zero_end, one_end, ..
        } = h
        else {
            return false;
        };
        zero_end.contains(&zero_cube) && one_end.contains(&one_cube)
    });
    if captured {
        return;
    }
    report.dynamic_mic.push(Hazard::DynamicMic {
        space: zero_cube.supercube(&one_cube),
        zero_end: zero_cube,
        one_end: one_cube,
    });
}

fn index_bits(nvars: usize, m: usize) -> Bits {
    let mut b = Bits::new(nvars);
    for v in 0..nvars {
        b.set(v, (m >> v) & 1 == 1);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    #[test]
    fn hazard_free_two_level_cell() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        let r = analyze_cover(&f);
        assert!(r.static1.is_empty());
        assert_eq!(r.nvars, 3);
    }

    #[test]
    fn figure4a_cell_report() {
        let mut vars = VarTable::new();
        let e = Expr::parse("w*x + x'*y", &mut vars).unwrap();
        let r = analyze_expr(&e, vars.len());
        // Missing prime wy → static-1 hazard.
        assert_eq!(r.static1.len(), 1);
        assert!(!r.is_hazard_free());
    }

    #[test]
    fn figure4b_cell_report_has_no_static1() {
        let mut vars = VarTable::new();
        let e = Expr::parse("(w + x')*(x + y)", &mut vars).unwrap();
        let r = analyze_expr(&e, vars.len());
        assert!(r.static1.is_empty(), "{:?}", r.static1);
        // But the vacuous product x'x gives a static-0 hazard.
        assert!(!r.static0.is_empty());
    }

    #[test]
    fn single_gate_is_hazard_free() {
        let mut vars = VarTable::new();
        let e = Expr::parse("a*b*c'", &mut vars).unwrap();
        let r = analyze_expr(&e, vars.len());
        assert!(r.is_hazard_free());
        let inv = Expr::parse("a'", &mut vars).unwrap();
        assert!(analyze_expr(&inv, vars.len()).is_hazard_free());
    }

    #[test]
    fn sweep_catches_published_procedure_gap() {
        // f = b + a' + a'bc: the published two-level procedure misses the
        // pulse of the redundant gate a'bc on wide bursts; the certifying
        // sweep appends it.
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        let f = Cover::parse("b + a' + a'bc", &vars).unwrap();
        let fast = analyze_cover_fast(&f);
        assert!(fast.dynamic_mic.is_empty());
        let full = analyze_cover(&f);
        assert!(!full.dynamic_mic.is_empty());
    }

    #[test]
    fn fast_and_complete_agree_on_emptiness_for_simple_cells() {
        let vars = VarTable::from_names(["s", "a", "b"]);
        let mux = Cover::parse("sa + s'b", &vars).unwrap();
        let fast = analyze_cover_fast(&mux);
        let full = analyze_cover(&mux);
        assert_eq!(fast.is_hazard_free(), full.is_hazard_free());
        // The two-cube mux misses the consensus ab: one static-1 hazard.
        assert_eq!(full.static1.len(), 1);
    }
}
