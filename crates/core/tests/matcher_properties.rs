//! Property tests for the matcher and coverer on randomly generated
//! designs: every reported match binding is functionally exact, every
//! async-accepted hazardous match independently passes the exhaustive
//! hazard-containment check, and every DP cover verifies.

use asyncmap_core::{
    cover_cone, enumerate_clusters, instantiate, truth_table_of, ClusterLimits, HazardPolicy,
    Matcher,
};
use asyncmap_cube::{Cover, Cube, Phase, VarId, VarTable};
use asyncmap_library::builtin;
use asyncmap_network::{async_tech_decomp, partition, EquationSet};
use proptest::prelude::*;

const NVARS: usize = 4;

prop_compose! {
    fn arb_cube()(used in 1u8..16, phase in 0u8..16) -> Cube {
        let mut lits = Vec::new();
        for v in 0..NVARS {
            if (used >> v) & 1 == 1 {
                let p = if (phase >> v) & 1 == 1 { Phase::Pos } else { Phase::Neg };
                lits.push((VarId(v), p));
            }
        }
        Cube::from_literals(NVARS, lits)
    }
}

prop_compose! {
    fn arb_cover()(cubes in prop::collection::vec(arb_cube(), 1..5)) -> Cover {
        Cover::from_cubes(NVARS, cubes)
    }
}

fn design_of(cover: &Cover) -> Option<(asyncmap_network::Network, Vec<asyncmap_network::Cone>)> {
    if cover.is_tautology() {
        return None;
    }
    let vars = VarTable::from_names(["a", "b", "c", "d"]);
    let eqs = EquationSet::new(vars, vec![("f".to_owned(), cover.clone())]);
    let net = async_tech_decomp(&eqs);
    let cones = partition(&net);
    Some((net, cones))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_match_binding_is_functionally_exact(cover in arb_cover()) {
        let Some((net, cones)) = design_of(&cover) else { return Ok(()) };
        let mut lib = builtin::lsi9k();
        lib.annotate_hazards();
        let matcher = Matcher::new(&lib, HazardPolicy::Ignore);
        for cone in &cones {
            let clusters = enumerate_clusters(&net, cone, &ClusterLimits::default());
            for list in clusters.values() {
                for cluster in list {
                    let n = cluster.leaves.len();
                    let want = truth_table_of(&cluster.expr, n);
                    for m in matcher.find_matches(cluster) {
                        let cell = &lib.cells()[m.cell_index];
                        let inst = instantiate(cell.bff(), &m.pin_to_leaf);
                        prop_assert_eq!(
                            truth_table_of(&inst, n),
                            want.clone(),
                            "bad binding for {}",
                            cell.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn async_accepted_hazardous_matches_pass_independent_check(cover in arb_cover()) {
        let Some((net, cones)) = design_of(&cover) else { return Ok(()) };
        let mut lib = builtin::actel();
        lib.annotate_hazards();
        let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        for cone in &cones {
            let clusters = enumerate_clusters(&net, cone, &ClusterLimits::default());
            for list in clusters.values() {
                for cluster in list {
                    for m in matcher.find_matches(cluster) {
                        let cell = &lib.cells()[m.cell_index];
                        if !cell.is_hazardous() {
                            continue;
                        }
                        let candidate = instantiate(cell.bff(), &m.pin_to_leaf);
                        prop_assert!(
                            asyncmap_hazard::hazards_subset_exhaustive(
                                &candidate,
                                &cluster.expr,
                                cluster.leaves.len()
                            ),
                            "accepted match fails the independent check: {}",
                            cell.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dp_covers_verify_on_random_designs(cover in arb_cover()) {
        let Some((net, cones)) = design_of(&cover) else { return Ok(()) };
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let matcher = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        for cone in &cones {
            let c = cover_cone(&net, cone, &matcher, &ClusterLimits::default()).unwrap();
            prop_assert!(asyncmap_core::verify_cone_function(&net, cone, &c, &lib));
            let sum: f64 = c
                .instances
                .iter()
                .map(|i| lib.cells()[i.cell_index].area())
                .sum();
            prop_assert!((c.area - sum).abs() < 1e-9);
        }
    }
}
