//! Property test over the whole pipeline: for random small designs, the
//! asynchronous mapper never introduces hazards and always preserves the
//! function — the end-to-end statement of the paper's Theorem 3.2.

use asyncmap::prelude::*;
use asyncmap_cube::{Cube, Phase, VarId};
use proptest::prelude::*;

const NVARS: usize = 4;

prop_compose! {
    fn arb_cube()(used in 1u8..16, phase in 0u8..16) -> Cube {
        let mut lits = Vec::new();
        for v in 0..NVARS {
            if (used >> v) & 1 == 1 {
                let p = if (phase >> v) & 1 == 1 { Phase::Pos } else { Phase::Neg };
                lits.push((VarId(v), p));
            }
        }
        Cube::from_literals(NVARS, lits)
    }
}

prop_compose! {
    fn arb_equations()(covers in prop::collection::vec(
        prop::collection::vec(arb_cube(), 1..5), 1..3)) -> Option<EquationSet> {
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        let mut eqs = Vec::new();
        for (i, cubes) in covers.into_iter().enumerate() {
            let cover = Cover::from_cubes(NVARS, cubes);
            if cover.is_tautology() {
                return None;
            }
            eqs.push((format!("f{i}"), cover));
        }
        Some(EquationSet::new(vars, eqs))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn async_tmap_preserves_function_and_hazards(eqs in arb_equations()) {
        let Some(eqs) = eqs else { return Ok(()) };
        let mut lib = asyncmap::library::builtin::lsi9k();
        lib.annotate_hazards();
        let design = async_tmap(&eqs, &lib, &MapOptions::default())
            .expect("LSI9K covers all base gates");
        prop_assert!(design.verify_function(&lib));
        prop_assert!(design.verify_hazards(&lib));
    }

    #[test]
    fn sync_tmap_preserves_function_but_may_add_hazards(eqs in arb_equations()) {
        let Some(eqs) = eqs else { return Ok(()) };
        let mut lib = asyncmap::library::builtin::cmos3();
        lib.annotate_hazards();
        let design = tmap(&eqs, &lib, &MapOptions::default())
            .expect("CMOS3 covers all base gates");
        // Function always preserved; hazard containment is NOT asserted —
        // that is exactly the paper's point.
        prop_assert!(design.verify_function(&lib));
    }
}
