//! Regenerates **Table 1** — "Libraries and their hazardous elements":
//! for each library, the hazardous element families, their count and the
//! hazardous fraction.
//!
//! Paper values: LSI9K muxes 12/86 (14%), CMOS3 muxes 1/30 (3%),
//! GDT none 0/72 (0%), Actel AOI/OAI/muxes 24/84 (29%).

use asyncmap_bench::{header, libraries};
use std::collections::BTreeSet;

fn family(name: &str) -> &str {
    if name.starts_with("MUX") || name.starts_with("MX") {
        "Muxes"
    } else if name.starts_with("AOI") || name.starts_with("AO") {
        "AOI's"
    } else if name.starts_with("OAI") || name.starts_with("OA") {
        "OAI's"
    } else {
        name.split('_').next().unwrap_or(name)
    }
}

fn main() {
    header(
        "Table 1: Libraries and their hazardous elements",
        &format!(
            "{:8} {:24} {:>4} {:>6} {:>10}",
            "Library", "Hazardous Elements", "#", "Total", "% Hazardous"
        ),
    );
    for mut lib in libraries() {
        lib.annotate_hazards();
        let hazardous = lib.hazardous_cells();
        let families: BTreeSet<&str> = hazardous.iter().map(|c| family(c.name())).collect();
        let families = if families.is_empty() {
            "None".to_owned()
        } else {
            families.into_iter().collect::<Vec<_>>().join(",")
        };
        println!(
            "{:8} {:24} {:>4} {:>6} {:>9.0}%",
            lib.name(),
            families,
            hazardous.len(),
            lib.len(),
            100.0 * hazardous.len() as f64 / lib.len() as f64
        );
    }
    println!("\npaper: LSI9K Muxes 12/86 14% | CMOS3 Muxes 1/30 3% | GDT None 0/72 0% | Actel AOI's,OAI's,Muxes 24/84 29%");
}
