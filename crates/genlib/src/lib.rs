//! The genlib cell-library frontend: parses the SIS/mockturtle `genlib`
//! format (`GATE`/`PIN`/`LATCH` statements) into an annotated
//! [`GenlibLibrary`] and converts it to the mapper's [`Library`].
//!
//! The parser keeps everything the file *declared* — the verbatim SOP
//! text, the per-pin phase/load/delay attributes, skipped sequential and
//! constant cells — alongside the *derived* structural expression, so the
//! preflight qualification analyzer can re-derive each cell's truth table
//! from the declaration and cross-check it against the converted
//! [`Cell`](asyncmap_library::Cell) and against the declared pin phases
//! (both `library.function-mismatch`).
//!
//! Supported subset:
//!
//! * `GATE <name> <area> <output>=<sop-expression>;` — expression grammar
//!   with `+`/`|` (OR), `*`/`&`/juxtaposition (AND), `!`-prefix and
//!   `'`-postfix complement, parentheses, and `CONST0`/`CONST1`;
//! * `PIN <name|*> <INV|NONINV|UNKNOWN> <input-load> <max-load>
//!   <rise-block> <rise-fanout> <fall-block> <fall-fanout>`;
//! * `LATCH` statements (and their `SEQ`/`CONTROL`/`CONSTRAINT` trailers)
//!   and constant-function gates are *skipped*, not errors: they are
//!   recorded in [`GenlibLibrary::skipped`] for the preflight pass to
//!   report, because the fundamental-mode mapper is purely combinational.
//!
//! Every malformed input produces a typed [`GenlibError`] with a 1-based
//! line number — never a panic.
//!
//! # Examples
//!
//! ```
//! // Two gates and an unusable latch. (Genlib `#` comments are also
//! // accepted; they collide with rustdoc's hidden-line marker here.)
//! let text = "
//! GATE INV 1 O=!a;            PIN a INV 1 999 0.9 0.2 0.9 0.2
//! GATE AND2 3 O=a*b;          PIN * NONINV 1 999 1.2 0.2 1.2 0.2
//! LATCH DFF 6 Q=D;            PIN D NONINV 1 999 1.0 0.1 1.0 0.1
//! ";
//! let parsed = asyncmap_genlib::parse_genlib(text, "demo").unwrap();
//! assert_eq!(parsed.cells.len(), 2);
//! assert_eq!(parsed.skipped.len(), 1);
//! let lib = parsed.to_library();
//! assert_eq!(lib.len(), 2);
//! assert_eq!(lib.cell("AND2").unwrap().area(), 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;

pub use parse::{parse_genlib, parse_sop};

use asyncmap_bff::Expr;
use asyncmap_cube::VarTable;
use asyncmap_library::{Cell, Library};
use std::error::Error;
use std::fmt;

/// Declared phase of a genlib input pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinPhase {
    /// The output falls when this pin rises (negative unate).
    Inv,
    /// The output rises when this pin rises (positive unate).
    NonInv,
    /// The pin is declared binate (or the file does not say).
    Unknown,
}

impl fmt::Display for PinPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PinPhase::Inv => "INV",
            PinPhase::NonInv => "NONINV",
            PinPhase::Unknown => "UNKNOWN",
        })
    }
}

/// The declared attributes of one input pin.
#[derive(Debug, Clone)]
pub struct GenlibPin {
    /// Declared phase.
    pub phase: PinPhase,
    /// Input load presented to the driving net.
    pub input_load: f64,
    /// Maximum load the pin tolerates.
    pub max_load: f64,
    /// Rise block delay.
    pub rise_block: f64,
    /// Rise fanout (load-proportional) delay.
    pub rise_fanout: f64,
    /// Fall block delay.
    pub fall_block: f64,
    /// Fall fanout (load-proportional) delay.
    pub fall_fanout: f64,
}

impl Default for GenlibPin {
    fn default() -> Self {
        GenlibPin {
            phase: PinPhase::Unknown,
            input_load: 1.0,
            max_load: 999.0,
            rise_block: 1.0,
            rise_fanout: 0.0,
            fall_block: 1.0,
            fall_fanout: 0.0,
        }
    }
}

/// One combinational gate, with both the declared text and the derived
/// structure.
#[derive(Debug, Clone)]
pub struct GenlibCell {
    /// Gate name.
    pub name: String,
    /// Declared area.
    pub area: f64,
    /// Output pin name (left-hand side of the `=`).
    pub output: String,
    /// The declared SOP expression, verbatim (trimmed).
    pub sop: String,
    /// Pin names in first-occurrence order; expression variable `i` is
    /// pin `i`.
    pub pins: VarTable,
    /// The structural expression derived from [`GenlibCell::sop`].
    pub expr: Expr,
    /// Per-pin declared attributes, aligned with [`GenlibCell::pins`].
    pub pin_attrs: Vec<GenlibPin>,
    /// 1-based line of the `GATE` statement.
    pub line: usize,
}

impl GenlibCell {
    /// The cell's worst-case declared block delay (the mapper's single
    /// intrinsic-delay number), over all pins and both edges.
    pub fn block_delay(&self) -> f64 {
        self.pin_attrs
            .iter()
            .flat_map(|p| [p.rise_block, p.fall_block])
            .fold(0.0_f64, f64::max)
    }
}

/// Why a statement was skipped rather than converted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// A `LATCH` statement: the fundamental-mode mapper is combinational.
    Latch,
    /// A gate whose function is constant (`CONST0`/`CONST1` or an
    /// expression that denotes a constant): constants are wired, not
    /// mapped.
    Constant,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SkipReason::Latch => "sequential (LATCH)",
            SkipReason::Constant => "constant function",
        })
    }
}

/// A statement the parser understood but cannot hand to the mapper.
#[derive(Debug, Clone)]
pub struct SkippedCell {
    /// Gate name.
    pub name: String,
    /// 1-based line of the statement.
    pub line: usize,
    /// Why it was skipped.
    pub reason: SkipReason,
}

/// A parsed genlib file: convertible cells plus everything the preflight
/// pass wants to cross-check or report.
#[derive(Debug, Clone)]
pub struct GenlibLibrary {
    /// Library name (the caller supplies it; genlib files carry none).
    pub name: String,
    /// The combinational gates, in file order.
    pub cells: Vec<GenlibCell>,
    /// Latch and constant gates, recorded for preflight notes.
    pub skipped: Vec<SkippedCell>,
}

impl GenlibLibrary {
    /// Looks up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&GenlibCell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// Converts to the mapper's [`Library`]. Areas and delays are clamped
    /// to a small positive floor (genlib files legitimately declare
    /// zero-area inverters; the mapper's cost model needs positive
    /// weights).
    pub fn to_library(&self) -> Library {
        const FLOOR: f64 = 1e-6;
        let mut lib = Library::new(&self.name);
        for c in &self.cells {
            lib.add(Cell::new(
                &c.name,
                c.pins.clone(),
                c.expr.clone(),
                c.area.max(FLOOR),
                c.block_delay().max(FLOOR),
            ));
        }
        lib
    }
}

/// What went wrong, machine-readably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenlibErrorKind {
    /// A statement ended (at `;`, a new keyword, or end of file) before
    /// its required fields — e.g. a truncated `GATE` or `PIN` line.
    Truncated,
    /// A numeric field (area, load, delay) did not parse.
    BadNumber,
    /// A `PIN` phase field was not `INV`, `NONINV` or `UNKNOWN`.
    BadPhase,
    /// The SOP expression is syntactically malformed.
    BadExpression,
    /// The `GATE` output assignment is missing its `=`.
    MissingAssign,
    /// A `GATE` expression was not terminated by `;`.
    MissingSemicolon,
    /// Two gates share a name.
    DuplicateGate,
    /// A `PIN` statement names a pin the expression never uses.
    UndeclaredPin,
    /// A `PIN` statement appeared before any `GATE`.
    PinBeforeGate,
    /// A token where `GATE`, `PIN` or `LATCH` was expected.
    UnknownStatement,
    /// The file declares no convertible combinational gate.
    EmptyLibrary,
}

impl fmt::Display for GenlibErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GenlibErrorKind::Truncated => "truncated statement",
            GenlibErrorKind::BadNumber => "bad numeric field",
            GenlibErrorKind::BadPhase => "bad pin phase",
            GenlibErrorKind::BadExpression => "bad SOP expression",
            GenlibErrorKind::MissingAssign => "missing `output=` assignment",
            GenlibErrorKind::MissingSemicolon => "missing `;` after expression",
            GenlibErrorKind::DuplicateGate => "duplicate gate",
            GenlibErrorKind::UndeclaredPin => "PIN names an unused pin",
            GenlibErrorKind::PinBeforeGate => "PIN before any GATE",
            GenlibErrorKind::UnknownStatement => "unknown statement",
            GenlibErrorKind::EmptyLibrary => "no combinational gates",
        })
    }
}

/// Error produced when genlib parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenlibError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// Machine-readable failure class.
    pub kind: GenlibErrorKind,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for GenlibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "genlib parse error at line {}: {}: {}",
            self.line, self.kind, self.message
        )
    }
}

impl Error for GenlibError {}
