//! Replay of decomposition certificates ([`DecompTrace`]) against the
//! produced network, without calling the decomposition code.
//!
//! Per [`RewriteStep`] the checker discharges three obligations:
//!
//! 1. **Rule applicability** — the `before`/`after` pair is syntactically
//!    an instance of the claimed rule (associative regrouping over the
//!    same operand sequence, a one-level DeMorgan push or its involution,
//!    or an input-inverter realization on the right input signal);
//! 2. **Functional equivalence** — re-proved by [`crate::equiv`]'s packed
//!    truth tables / BDDs;
//! 3. **Hazard monotonicity** — `hazards(after) ⊆ hazards(before)`,
//!    re-proved by the [`crate::monotone`] ladder.
//!
//! Per [`EquationCert`] it additionally re-derives, by an independent walk
//! of the network, the expression the emitted gate tree realizes and
//! requires it to be structurally identical to the certified result; and
//! it requires every gate of the network to be covered by some equation's
//! walk (no uncertified logic).

use std::collections::{HashMap, HashSet};

use asyncmap_bff::Expr;
use asyncmap_cube::VarId;
use asyncmap_network::{
    DecompTrace, EquationSet, GateOp, Network, NodeKind, RewriteRule, RewriteStep, SignalId,
};

use crate::equiv::{prove_equal, EquivProof};
use crate::monotone::recheck_monotone;
use crate::report::{AuditReport, Severity};
use crate::AuditCache;

/// Re-derives the expression the gate tree rooted at `signal` realizes:
/// inputs become variables (by input position), inverters become `Not`,
/// AND/OR gates become the raw binary `Expr` nodes the certified
/// balanced-tree regrouping claims. Every gate visited is recorded in
/// `visited`.
fn realized_expr(
    net: &Network,
    signal: SignalId,
    positions: &HashMap<SignalId, usize>,
    visited: &mut HashSet<SignalId>,
) -> Expr {
    match net.node(signal) {
        NodeKind::Input => Expr::Var(VarId(positions[&signal])),
        NodeKind::Gate { op, fanin } => {
            visited.insert(signal);
            let mut args: Vec<Expr> = fanin
                .iter()
                .map(|&f| realized_expr(net, f, positions, visited))
                .collect();
            match op {
                GateOp::Inv => args.pop().expect("inverter fanin").not(),
                GateOp::Buf => args.pop().expect("buffer fanin"),
                GateOp::And => Expr::And(args),
                GateOp::Or => Expr::Or(args),
            }
        }
    }
}

/// Greedy left-to-right fringe match: `true` iff splitting same-operator
/// binary nodes of `tree` (without any commutation) yields exactly the
/// operand sequence `operands`. Operand equality is tried before
/// splitting, so operands that themselves use the same operator are
/// matched whole.
fn fringe_matches(tree: &Expr, operands: &[Expr], is_and: bool) -> bool {
    fn go(tree: &Expr, operands: &[Expr], pos: usize, is_and: bool) -> Option<usize> {
        if pos < operands.len() && *tree == operands[pos] {
            return Some(pos + 1);
        }
        let es = match (tree, is_and) {
            (Expr::And(es), true) | (Expr::Or(es), false) => es,
            _ => return None,
        };
        let mut pos = pos;
        for e in es {
            pos = go(e, operands, pos, is_and)?;
        }
        Some(pos)
    }
    go(tree, operands, 0, is_and) == Some(operands.len())
}

/// `true` iff `step` is syntactically an instance of its claimed rule.
fn rule_applies(step: &RewriteStep) -> bool {
    match step.rule {
        RewriteRule::AssocRegroup => match &step.before {
            Expr::And(es) => es.len() >= 2 && fringe_matches(&step.after, es, true),
            Expr::Or(es) => es.len() >= 2 && fringe_matches(&step.after, es, false),
            _ => false,
        },
        RewriteRule::DeMorganPush => {
            let Expr::Not(inner) = &step.before else {
                return false;
            };
            match &**inner {
                // Involution: (e')' → e.
                Expr::Not(e) => step.after == **e,
                // One-level push: (x₁·…·xₖ)' → x₁'+…+xₖ' and the dual.
                Expr::And(es) => {
                    step.after == Expr::or(es.iter().map(|e| e.clone().not()).collect())
                }
                Expr::Or(es) => {
                    step.after == Expr::and(es.iter().map(|e| e.clone().not()).collect())
                }
                _ => false,
            }
        }
        RewriteRule::InputInverter => {
            step.before == step.after
                && matches!(&step.before, Expr::Not(v) if matches!(**v, Expr::Var(_)))
        }
    }
}

fn count_proof(report: &mut AuditReport, proof: EquivProof) {
    match proof {
        EquivProof::Truth => report.counters.truth_proofs += 1,
        EquivProof::Bdd => report.counters.bdd_proofs += 1,
    }
}

fn check_monotone(
    report: &mut AuditReport,
    candidate: &Expr,
    reference: &Expr,
    code: &'static str,
    path: &str,
) {
    let out = recheck_monotone(candidate, reference);
    if out.partial {
        report.counters.hazard_partial += 1;
        if out.skipped {
            report.push(
                Severity::Info,
                "decomp.hazard-partial",
                path.to_owned(),
                format!("hazard re-check degraded: {}", out.detail),
            );
        }
    } else {
        report.counters.hazard_rechecks += 1;
    }
    if !out.ok {
        report.push(
            Severity::Error,
            code,
            path.to_owned(),
            format!("hazards(after) ⊆ hazards(before) refuted ({})", out.detail),
        );
    }
}

/// Replays a [`DecompTrace`] against the network it claims to describe.
/// Does not consult the source equations — see [`check_decomp`] for the
/// variant that additionally checks source fidelity.
pub fn check_decomp_trace(net: &Network, trace: &DecompTrace) -> AuditReport {
    check_decomp_trace_inner(net, trace, None)
}

/// [`check_decomp_trace`] with reuse: the per-step and per-equation
/// equivalence and hazard-monotonicity obligations — pure functions of
/// the certified expressions alone — are skipped when an identical
/// obligation already replayed clean under `cache`. Everything tied to
/// *this* network (rule applicability, node realization walks, the
/// no-uncertified-logic sweep, output-root checks) always runs in full.
pub fn check_decomp_trace_cached(
    net: &Network,
    trace: &DecompTrace,
    cache: &mut AuditCache,
) -> AuditReport {
    check_decomp_trace_inner(net, trace, Some(cache))
}

fn check_decomp_trace_inner(
    net: &Network,
    trace: &DecompTrace,
    mut cache: Option<&mut AuditCache>,
) -> AuditReport {
    let mut report = AuditReport::default();
    report.counters.rewrite_steps = trace.steps.len();
    report.counters.equations = trace.equations.len();
    let positions = net.input_positions();
    let mut visited: HashSet<SignalId> = HashSet::new();

    for (i, step) in trace.steps.iter().enumerate() {
        let path = format!("{}:step{}:{}", step.equation, i, step.rule.name());
        if !rule_applies(step) {
            report.push(
                Severity::Error,
                "decomp.rule-mismatch",
                path.clone(),
                format!(
                    "before/after pair is not an instance of {}",
                    step.rule.name()
                ),
            );
            continue;
        }
        match step.rule {
            RewriteRule::InputInverter => {
                // before == after: nothing to prove functionally. The
                // obligation is the node realization: an inverter gate
                // over exactly the claimed primary input.
                let Expr::Not(v) = &step.before else {
                    unreachable!("rule_applies checked the shape");
                };
                let Expr::Var(v) = **v else {
                    unreachable!("rule_applies checked the shape");
                };
                let ok = match net.node(step.node) {
                    NodeKind::Gate {
                        op: GateOp::Inv,
                        fanin,
                    } => fanin.len() == 1 && fanin[0] == net.inputs()[v.index()],
                    _ => false,
                };
                if ok {
                    visited.insert(step.node);
                } else {
                    report.push(
                        Severity::Error,
                        "decomp.node-mismatch",
                        path,
                        format!(
                            "node {:?} is not an inverter over input {}",
                            step.node,
                            v.index()
                        ),
                    );
                }
                continue;
            }
            RewriteRule::AssocRegroup | RewriteRule::DeMorganPush => {
                // The equivalence and monotonicity obligations depend only
                // on (nvars, rule, before, after) — never on the network —
                // so an identical obligation that already replayed clean
                // discharges this one.
                let key = cache.as_ref().map(|_| {
                    format!(
                        "{}|{}|{:?}|{:?}",
                        trace.nvars,
                        step.rule.name(),
                        step.before,
                        step.after
                    )
                });
                let reused =
                    matches!((&cache, &key), (Some(c), Some(k)) if c.clean_steps.contains(k));
                if reused {
                    report.counters.reused_steps += 1;
                } else {
                    let (f0, n0) = (report.findings.len(), report.notes.len());
                    let (eq, proof) = prove_equal(&step.before, &step.after, trace.nvars);
                    count_proof(&mut report, proof);
                    if !eq {
                        report.push(
                            Severity::Error,
                            "decomp.not-equivalent",
                            path.clone(),
                            "before and after compute different functions".to_owned(),
                        );
                        continue;
                    }
                    check_monotone(
                        &mut report,
                        &step.after,
                        &step.before,
                        "decomp.hazard-containment",
                        &path,
                    );
                    // Only perfectly quiet replays are reusable: a partial
                    // hazard re-check note must re-appear on every audit.
                    if report.findings.len() == f0 && report.notes.len() == n0 {
                        if let (Some(c), Some(k)) = (cache.as_deref_mut(), key) {
                            c.clean_steps.insert(k);
                        }
                    }
                }
                // Only assoc steps certify the final shape of their node's
                // gate tree (a DeMorgan push is an intermediate rewrite;
                // its node realizes the *fully pushed* form, covered by
                // the equation certificate).
                if step.rule == RewriteRule::AssocRegroup {
                    let walked = realized_expr(net, step.node, &positions, &mut visited);
                    if walked != step.after {
                        report.push(
                            Severity::Error,
                            "decomp.node-mismatch",
                            path,
                            format!(
                                "gate tree at {:?} does not realize the certified regrouping",
                                step.node
                            ),
                        );
                    }
                }
            }
        }
    }

    let outputs: HashMap<&str, SignalId> = net
        .outputs()
        .iter()
        .map(|(n, s)| (n.as_str(), *s))
        .collect();
    for cert in &trace.equations {
        let path = format!("{}:equation", cert.name);
        match outputs.get(cert.name.as_str()) {
            Some(&root) if root == cert.root => {}
            _ => {
                report.push(
                    Severity::Error,
                    "decomp.output-mismatch",
                    path.clone(),
                    format!(
                        "network does not mark {:?} as output {:?}",
                        cert.root, cert.name
                    ),
                );
                continue;
            }
        }
        let key = cache.as_ref().map(|_| {
            format!(
                "{}|equation|{:?}|{:?}",
                trace.nvars, cert.source, cert.result
            )
        });
        let reused = matches!((&cache, &key), (Some(c), Some(k)) if c.clean_equations.contains(k));
        if reused {
            report.counters.reused_equations += 1;
        } else {
            let (f0, n0) = (report.findings.len(), report.notes.len());
            let (eq, proof) = prove_equal(&cert.source, &cert.result, trace.nvars);
            count_proof(&mut report, proof);
            if !eq {
                report.push(
                    Severity::Error,
                    "decomp.not-equivalent",
                    path.clone(),
                    "decomposed result computes a different function than the source".to_owned(),
                );
                continue;
            }
            check_monotone(
                &mut report,
                &cert.result,
                &cert.source,
                "decomp.hazard-containment",
                &path,
            );
            if report.findings.len() == f0 && report.notes.len() == n0 {
                if let (Some(c), Some(k)) = (cache.as_deref_mut(), key) {
                    c.clean_equations.insert(k);
                }
            }
        }
        let walked = realized_expr(net, cert.root, &positions, &mut visited);
        if walked != cert.result {
            report.push(
                Severity::Error,
                "decomp.node-mismatch",
                path,
                "network walk from the output root does not realize the certified expression"
                    .to_owned(),
            );
        }
    }

    // No uncertified logic: every gate must be reachable from a certified
    // walk (output roots expand through every cube tree and every shared
    // inverter).
    for s in net.signals() {
        if matches!(net.node(s), NodeKind::Gate { .. }) && !visited.contains(&s) {
            report.push(
                Severity::Error,
                "decomp.uncovered-gate",
                format!("{:?}", s),
                "gate is not covered by any certified equation walk".to_owned(),
            );
        }
    }
    report
}

/// [`check_decomp_trace`], plus source fidelity: every equation of `eqs`
/// must have a certificate whose source expression is exactly the
/// two-level form of its cover (no simplification slipped in before the
/// certified rewrites started).
pub fn check_decomp(eqs: &EquationSet, net: &Network, trace: &DecompTrace) -> AuditReport {
    check_decomp_inner(eqs, net, trace, None)
}

/// [`check_decomp`] over [`check_decomp_trace_cached`]: same reuse rules,
/// and source fidelity is always checked in full.
pub fn check_decomp_cached(
    eqs: &EquationSet,
    net: &Network,
    trace: &DecompTrace,
    cache: &mut AuditCache,
) -> AuditReport {
    check_decomp_inner(eqs, net, trace, Some(cache))
}

fn check_decomp_inner(
    eqs: &EquationSet,
    net: &Network,
    trace: &DecompTrace,
    cache: Option<&mut AuditCache>,
) -> AuditReport {
    let mut report = check_decomp_trace_inner(net, trace, cache);
    if trace.nvars != eqs.inputs.len() {
        report.push(
            Severity::Error,
            "decomp.nvars-mismatch",
            "trace".to_owned(),
            format!(
                "trace ranges over {} variables, equations over {}",
                trace.nvars,
                eqs.inputs.len()
            ),
        );
    }
    let certs: HashMap<&str, &asyncmap_network::EquationCert> = trace
        .equations
        .iter()
        .map(|c| (c.name.as_str(), c))
        .collect();
    for (name, cover) in &eqs.equations {
        match certs.get(name.as_str()) {
            None => report.push(
                Severity::Error,
                "decomp.missing-equation",
                name.clone(),
                "equation has no end-to-end certificate".to_owned(),
            ),
            Some(cert) => {
                if cert.source != Expr::from_cover(cover) {
                    report.push(
                        Severity::Error,
                        "decomp.source-mismatch",
                        name.clone(),
                        "certificate source is not the two-level form of the equation's cover"
                            .to_owned(),
                    );
                }
            }
        }
    }
    if trace.equations.len() != eqs.equations.len() {
        report.push(
            Severity::Error,
            "decomp.missing-equation",
            "trace".to_owned(),
            format!(
                "{} equation certificate(s) for {} equation(s)",
                trace.equations.len(),
                eqs.equations.len()
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::{Cover, VarTable};
    use asyncmap_network::{async_tech_decomp_traced, decompose_expr_demorgan};

    fn figure3() -> EquationSet {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        EquationSet::new(vars, vec![("f".to_owned(), f)])
    }

    #[test]
    fn honest_trace_is_clean() {
        let eqs = figure3();
        let (net, trace) = async_tech_decomp_traced(&eqs);
        let report = check_decomp(&eqs, &net, &trace);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.counters.rewrite_steps, trace.steps.len());
        assert_eq!(report.counters.equations, 1);
    }

    #[test]
    fn demorgan_trace_is_clean() {
        let inputs = VarTable::from_names(["w", "x", "y"]);
        let mut scratch = inputs.clone();
        let e = Expr::parse("(w*x + y)' + w*y", &mut scratch).unwrap();
        let (net, trace) = decompose_expr_demorgan(&inputs, &e, "f");
        let report = check_decomp_trace(&net, &trace);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn commuted_regroup_is_rejected() {
        let eqs = figure3();
        let (net, mut trace) = async_tech_decomp_traced(&eqs);
        // Swap the operand order inside the first regroup's `before`:
        // commutation is not a hazard-preserving law, so the fringe match
        // must fail even though the function is unchanged.
        let step = trace
            .steps
            .iter_mut()
            .find(|s| s.rule == RewriteRule::AssocRegroup)
            .unwrap();
        let Expr::And(es) = &mut step.before else {
            panic!("AND regroup expected")
        };
        es.reverse();
        let report = check_decomp_trace(&net, &trace);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "decomp.rule-mismatch"));
    }

    #[test]
    fn pruned_source_is_rejected() {
        // A certificate claiming the decomposition started from the
        // *simplified* cover (dropping the consensus cube bc) fails both
        // source fidelity and the node-realization obligations.
        let eqs = figure3();
        let (net, mut trace) = async_tech_decomp_traced(&eqs);
        let mut pruned_vars = VarTable::from_names(["a", "b", "c"]);
        trace.equations[0].source = Expr::parse("a*b + a'*c", &mut pruned_vars).unwrap();
        let report = check_decomp(&eqs, &net, &trace);
        assert!(!report.is_clean());
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "decomp.source-mismatch"));
    }

    #[test]
    fn forged_node_is_rejected() {
        let eqs = figure3();
        let (net, mut trace) = async_tech_decomp_traced(&eqs);
        let (a, b) = (trace.equations[0].root, trace.steps[0].node);
        trace.steps[0].node = a;
        trace.equations[0].root = b;
        let report = check_decomp_trace(&net, &trace);
        assert!(!report.is_clean());
    }
}
