//! Property test for the incremental (ECO) remapping loop: after any
//! sequence of random edit batches, a persistent [`EcoSession`] must
//! produce a design fingerprint-identical to mapping the edited equations
//! cold, and the stitched output must pass the reuse-aware lint and audit
//! passes — the two external checkers that share no code with the mapper.

use asyncmap::bench::{apply_edits, design_fingerprint, generate, generate_edits, GenSpec};
use asyncmap::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn eco_remap_matches_cold_map_across_edit_sequences(
        gates in 150usize..400,
        gen_seed in 0u64..1000,
        edit_seeds in prop::collection::vec(any::<u64>(), 1..4),
        edit_count in 1usize..6,
    ) {
        let mut spec = GenSpec::new(gates);
        spec.seed = gen_seed;
        let mut lib = builtin::lsi9k();
        lib.annotate_hazards();
        let opts = MapOptions {
            threads: 1,
            ..MapOptions::default()
        };

        let mut current = generate(&spec);
        let mut session = EcoSession::new(&lib, opts.clone());
        session.map(&current).expect("base map");
        let mut lint_cache = asyncmap::lint::LintCache::new();
        let mut audit_cache = asyncmap::audit::AuditCache::new();

        for seed in edit_seeds {
            let edits = generate_edits(&current, edit_count, seed);
            current = apply_edits(&current, &edits);

            let out = session.map(&current).expect("eco remap");
            let cold = async_tmap(&current, &lib, &opts).expect("cold map");
            prop_assert_eq!(
                design_fingerprint(&out.design),
                design_fingerprint(&cold),
                "eco remap diverged from cold map after {} edit(s)",
                edits.len()
            );
            prop_assert_eq!(
                out.eco.cones_reused + out.eco.cones_remapped,
                out.eco.cones_total
            );

            let lint =
                asyncmap::lint::lint_mapped_design_cached(&out.design, &lib, &mut lint_cache);
            prop_assert!(lint.is_clean(), "{}", lint.render());
            let audit = asyncmap::audit::audit_equations_cached(&current, &mut audit_cache);
            prop_assert!(audit.is_clean(), "{}", audit.render());
        }
    }
}
