//! Translation-validation audit trail for the asyncmap front end.
//!
//! The paper's soundness story rests on every pre-mapping transformation
//! using only hazard-preserving laws: decomposition restricted to
//! associativity and DeMorgan (Unger), partitioning cut only at
//! multi-fanout points (§3.1.2), flattening by distribution without
//! absorption or idempotence (Theorem 4.3). The instrumented entry points
//! in `asyncmap-network`, `asyncmap-bff` and `asyncmap-hazard` emit one
//! structured certificate per rewrite step, cut point and collapse; this
//! crate replays those certificates **without calling the transformation
//! code**:
//!
//! * rule applicability is re-checked syntactically
//!   ([`check_decomp_trace`]);
//! * functional equivalence is re-proved with this crate's own packed
//!   truth tables (supports of ≤ 8 variables) or BDDs from
//!   `asyncmap-bdd` ([`equiv`]);
//! * hazard-set monotonicity per step is re-proved through
//!   `asyncmap-hazard`'s [`reverification ladder`](asyncmap_hazard::reverify_containment)
//!   ([`monotone`]);
//! * partition cut evidence is re-derived from the raw network
//!   ([`check_partition`]);
//! * flatten collapses are replayed by independent product-count
//!   arithmetic and transition sweeps ([`check_flatten`]);
//! * burst-mode specs are checked against the unique-entry-point, maximal
//!   set and distinguishability properties, collecting every violation
//!   ([`check_spec`]).
//!
//! Deliberately **not** a dependency of `asyncmap-core`: the mapper can
//! be pointed at this checker through a hook (see the `ASYNCMAP_AUDIT`
//! environment variable on the CLI), but nothing here is consulted on the
//! mapping fast path, and nothing in the crates being audited depends on
//! the auditor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomp_check;
pub mod equiv;
pub mod flatten_check;
pub mod monotone;
pub mod partition_check;
pub mod report;
pub mod spec_check;

pub use decomp_check::{
    check_decomp, check_decomp_cached, check_decomp_trace, check_decomp_trace_cached,
};
pub use equiv::{prove_equal, EquivProof, TRUTH_VAR_LIMIT};
pub use flatten_check::check_flatten;
pub use monotone::{product_estimate, recheck_monotone, MonotoneOutcome, FLATTEN_REPLAY_CAP};
pub use partition_check::check_partition;
pub use report::{AuditCounters, AuditReport, Finding, Severity};
pub use spec_check::check_spec;

use asyncmap_hazard::multilevel_flatten_traced;
use asyncmap_network::{
    async_tech_decomp_traced, partition_traced, Cone, DecompTrace, EquationSet, Network,
    PartitionTrace,
};
use std::collections::HashSet;

/// Reuse cache for the `_cached` audit entry points.
///
/// The expensive audit obligations — equivalence proofs, hazard-
/// monotonicity ladders, flatten replays — are pure functions of the
/// certified *expressions*, never of the network or design they came
/// from. The cache remembers the exact obligations (rendered to canonical
/// strings of their full inputs) that already replayed with **zero
/// findings and zero notes**; an identical obligation in a later audit is
/// discharged by reference and counted in the `reused_*` counters of
/// [`AuditCounters`].
///
/// Everything that binds certificates to a *particular* network — rule
/// applicability, gate-tree realization walks, the no-uncertified-logic
/// sweep, output roots, source fidelity, the whole partition check —
/// always runs in full, so a warm cache adds no trust assumption beyond
/// "this exact obligation was discharged before". Obligations that
/// produced any diagnostic (even an info note) are never cached.
#[derive(Debug, Default)]
pub struct AuditCache {
    pub(crate) clean_steps: HashSet<String>,
    pub(crate) clean_equations: HashSet<String>,
    pub(crate) clean_flattens: HashSet<String>,
}

impl AuditCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total clean obligations remembered (steps + equations + flattens).
    pub fn entries(&self) -> usize {
        self.clean_steps.len() + self.clean_equations.len() + self.clean_flattens.len()
    }
}

/// Audits the flatten collapse of every cone: replays
/// [`multilevel_flatten_traced`] per cone and checks the resulting
/// certificate, skipping (with an info note) cones whose independent
/// product estimate exceeds [`FLATTEN_REPLAY_CAP`].
pub fn audit_cone_flattens(net: &Network, cones: &[Cone]) -> AuditReport {
    audit_cone_flattens_inner(net, cones, None)
}

/// [`audit_cone_flattens`] with reuse: a cone whose expression (over the
/// same leaf count) already replayed clean under `cache` is discharged by
/// reference — the flatten is deterministic in the expression, so the
/// replay would reproduce the prior result verbatim.
pub fn audit_cone_flattens_cached(
    net: &Network,
    cones: &[Cone],
    cache: &mut AuditCache,
) -> AuditReport {
    audit_cone_flattens_inner(net, cones, Some(cache))
}

fn audit_cone_flattens_inner(
    net: &Network,
    cones: &[Cone],
    mut cache: Option<&mut AuditCache>,
) -> AuditReport {
    let mut report = AuditReport::default();
    for cone in cones {
        let (expr, vars) = cone.to_expr(net);
        let path = format!("cone:{}", net.name(cone.root));
        let key = cache.as_ref().map(|_| format!("{}|{:?}", vars.len(), expr));
        if matches!((&cache, &key), (Some(c), Some(k)) if c.clean_flattens.contains(k)) {
            report.counters.flatten_traces += 1;
            report.counters.reused_flattens += 1;
            continue;
        }
        if product_estimate(&expr) > FLATTEN_REPLAY_CAP {
            report.counters.flatten_skipped += 1;
            report.push(
                Severity::Info,
                "flatten.replay-skipped",
                path,
                "product estimate over the replay cap".to_owned(),
            );
            continue;
        }
        let (flat, trace) = multilevel_flatten_traced(&expr, vars.len());
        if trace.source != expr {
            report.push(
                Severity::Error,
                "flatten.source-mismatch",
                path,
                "collapse trace does not start from the cone's expression".to_owned(),
            );
            continue;
        }
        let (f0, n0) = (report.findings.len(), report.notes.len());
        report.merge(check_flatten(&flat, &trace, vars.len()));
        if report.findings.len() == f0 && report.notes.len() == n0 {
            if let (Some(c), Some(k)) = (cache.as_deref_mut(), key) {
                c.clean_flattens.insert(k);
            }
        }
    }
    report
}

/// Checks a full front-end run — decomposition, partition and per-cone
/// flatten certificates — against the equations it claims to implement.
pub fn check_pipeline(
    eqs: &EquationSet,
    net: &Network,
    dtrace: &DecompTrace,
    cones: &[Cone],
    ptrace: &PartitionTrace,
) -> AuditReport {
    let mut report = check_decomp(eqs, net, dtrace);
    report.merge(check_partition(net, cones, ptrace));
    report.merge(audit_cone_flattens(net, cones));
    report
}

/// [`check_pipeline`] with reuse of expression-pure obligations under
/// `cache` (see [`AuditCache`]). The partition check and every
/// network-bound obligation run in full.
pub fn check_pipeline_cached(
    eqs: &EquationSet,
    net: &Network,
    dtrace: &DecompTrace,
    cones: &[Cone],
    ptrace: &PartitionTrace,
    cache: &mut AuditCache,
) -> AuditReport {
    let mut report = check_decomp_cached(eqs, net, dtrace, cache);
    report.merge(check_partition(net, cones, ptrace));
    report.merge(audit_cone_flattens_cached(net, cones, cache));
    report
}

/// Runs the instrumented front end on `eqs` and audits every certificate
/// it emits. This is the one place the audit *invokes* transformation
/// code — to obtain the traces; every check then replays them
/// independently.
pub fn audit_equations(eqs: &EquationSet) -> AuditReport {
    let (net, dtrace) = async_tech_decomp_traced(eqs);
    let (cones, ptrace) = partition_traced(&net);
    check_pipeline(eqs, &net, &dtrace, &cones, &ptrace)
}

/// [`audit_equations`] with reuse under `cache`: the entry point for
/// incremental (ECO) flows, where successive audits share almost every
/// certificate. On a fresh cache the verdict and diagnostics are
/// identical to [`audit_equations`]'s; only the work counters differ.
pub fn audit_equations_cached(eqs: &EquationSet, cache: &mut AuditCache) -> AuditReport {
    let (net, dtrace) = async_tech_decomp_traced(eqs);
    let (cones, ptrace) = partition_traced(&net);
    check_pipeline_cached(eqs, &net, &dtrace, &cones, &ptrace, cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::{Cover, VarTable};

    #[test]
    fn figure3_pipeline_audits_clean() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let report = audit_equations(&eqs);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.counters.num_certificates() > 0);
        assert!(report.counters.cones >= 1);
    }

    #[test]
    fn multi_output_pipeline_audits_clean() {
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        let f = Cover::parse("ab + a'c", &vars).unwrap();
        let g = Cover::parse("a'd + bc'd", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f), ("g".to_owned(), g)]);
        let report = audit_equations(&eqs);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.counters.equations, 2);
    }

    #[test]
    fn warm_cache_discharges_every_quiet_obligation() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let mut cache = AuditCache::new();
        let cold = audit_equations_cached(&eqs, &mut cache);
        assert!(cold.is_clean(), "{}", cold.render());
        assert!(cache.entries() > 0);
        let warm = audit_equations_cached(&eqs, &mut cache);
        assert!(warm.is_clean(), "{}", warm.render());
        // Identical verdict, identical certificate accounting, identical
        // diagnostics — only the discharge mechanism differs.
        assert_eq!(
            warm.counters.num_certificates(),
            cold.counters.num_certificates()
        );
        assert_eq!(warm.findings.len(), cold.findings.len());
        assert_eq!(warm.notes.len(), cold.notes.len());
        // With no noisy obligations, every cacheable step (input-inverter
        // realizations are network-bound and always re-checked), equation
        // and flatten of the second pass is discharged by reference.
        if cold.notes.is_empty() {
            let (_, dtrace) = async_tech_decomp_traced(&eqs);
            let cacheable = dtrace
                .steps
                .iter()
                .filter(|s| s.rule != asyncmap_network::RewriteRule::InputInverter)
                .count();
            assert_eq!(warm.counters.reused_steps, cacheable);
            assert_eq!(warm.counters.reused_equations, warm.counters.equations);
            assert_eq!(warm.counters.reused_flattens, warm.counters.flatten_traces);
            assert_eq!(warm.counters.truth_proofs + warm.counters.bdd_proofs, 0);
        }
        // The cached run with a fresh cache agrees with the uncached one.
        let reference = audit_equations(&eqs);
        assert_eq!(
            reference.counters.num_certificates(),
            cold.counters.num_certificates()
        );
        assert_eq!(reference.findings.len(), cold.findings.len());
    }

    #[test]
    fn warm_cache_does_not_mask_a_tampered_trace() {
        use asyncmap_network::{async_tech_decomp_traced, partition_traced, RewriteRule};
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let mut cache = AuditCache::new();
        assert!(audit_equations_cached(&eqs, &mut cache).is_clean());

        let (net, mut dtrace) = async_tech_decomp_traced(&eqs);
        let (cones, ptrace) = partition_traced(&net);
        // Commute a regroup's operands: the function is unchanged (so the
        // cached equivalence verdict would wave it through if consulted),
        // but commutation is not a hazard-preserving law — the always-run
        // syntactic rule check must reject it under any cache state.
        let step = dtrace
            .steps
            .iter_mut()
            .find(|s| s.rule == RewriteRule::AssocRegroup)
            .unwrap();
        let asyncmap_bff::Expr::And(es) = &mut step.before else {
            panic!("AND regroup expected")
        };
        es.reverse();
        let report = check_pipeline_cached(&eqs, &net, &dtrace, &cones, &ptrace, &mut cache);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "decomp.rule-mismatch"));
    }
}
