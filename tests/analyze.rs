//! End-to-end acceptance tests for the whole-design fundamental-mode
//! analyzer: generated designs analyze clean, and an ECO loop's warm
//! re-analysis reuses nearly every per-cone verdict after a single edit.

use asyncmap::bench::{apply_edits, generate, generate_edits, GenSpec};
use asyncmap::prelude::*;

/// A one-gate edit on a ~1.5k-gate design must leave the warm analysis
/// with at least 90% per-cone reuse: only the edited cone, cones whose
/// cover changed under restitching, and genuinely new shapes re-analyze.
#[test]
fn eco_warm_reanalysis_reuses_at_least_ninety_percent() {
    let mut spec = GenSpec::new(1500);
    spec.seed = 7;
    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    let opts = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };

    let base_eqs = generate(&spec);
    let mut session = EcoSession::new(&lib, opts);
    let base = session.map(&base_eqs).expect("base map");

    let mut cache = FmaCache::new();
    let cold = asyncmap::fma::analyze_design_cached(&base.design, &lib, &mut cache);
    assert_eq!(cold.num_errors(), 0, "{}", cold.render());
    assert_eq!(cold.counters.cones_reused, 0, "cold run cannot reuse");

    let edits = generate_edits(&base_eqs, 1, 0xFACADE);
    let edited = apply_edits(&base_eqs, &edits);
    let out = session.map(&edited).expect("eco remap");

    let warm = asyncmap::fma::analyze_design_cached(&out.design, &lib, &mut cache);
    assert_eq!(warm.num_errors(), 0, "{}", warm.render());
    let (reused, total) = (warm.counters.cones_reused, warm.counters.cones);
    assert!(
        reused * 10 >= total * 9,
        "warm analysis reused {reused} of {total} cone(s) (< 90%)"
    );
}

/// `ASYNCMAP_FMA=1` makes the mapper run the analyzer on its own output
/// and record the cone count in the design's stats.
#[test]
fn fma_hook_analyzes_mapped_output() {
    asyncmap::install_fma_hook();
    std::env::set_var("ASYNCMAP_FMA", "1");
    let eqs = asyncmap::burst::benchmark("dme-fast");
    let mut lib = builtin::lsi9k();
    lib.annotate_hazards();
    let design = async_tmap(&eqs, &lib, &MapOptions::default()).expect("map with analyzer hook");
    assert_eq!(design.stats.fma_cones, design.cones.len());
}
