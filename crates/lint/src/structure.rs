//! Structural well-formedness: netlist acyclicity and drivenness, pin
//! binding arity and index validity, exactly-once cover completeness,
//! partition boundaries only at legal cut points, and area re-addition.

use crate::{path_of, InstanceView, LintReport, Severity};
use asyncmap_core::{ConeCover, MappedDesign};
use asyncmap_library::Library;
use asyncmap_network::{partition_roots, Cone, NodeKind, SignalId};
use std::collections::{HashMap, HashSet};

const AREA_TOL: f64 = 1e-6;

/// Design-wide checks: cone/cover alignment, the partition boundary,
/// gate partitioning, netlist acyclicity/drivenness and total area.
pub(crate) fn check_global(design: &MappedDesign, library: &Library, report: &mut LintReport) {
    let net = &design.subject;
    if design.cones.len() != design.covers.len() {
        report.push(
            Severity::Error,
            "structure.cone-cover-mismatch",
            "design".to_owned(),
            format!(
                "{} cone(s) but {} cover(s)",
                design.cones.len(),
                design.covers.len()
            ),
        );
        return;
    }

    // Partition boundary: cover roots must be exactly the legal cut points
    // re-derived from the subject network — primary outputs and
    // multi-fanout gates, nothing else (paper §3.1.2).
    let expected: HashSet<SignalId> = partition_roots(net).into_iter().collect();
    let mut seen_roots: HashSet<SignalId> = HashSet::new();
    for (cone, cover) in design.cones.iter().zip(&design.covers) {
        if cone.root != cover.root {
            report.push(
                Severity::Error,
                "structure.root-mismatch",
                path_of(net, cone, None),
                format!(
                    "cone root {} but cover root {}",
                    net.name(cone.root),
                    net.name(cover.root)
                ),
            );
        }
        if !seen_roots.insert(cone.root) {
            report.push(
                Severity::Error,
                "partition.duplicate-root",
                path_of(net, cone, None),
                "two cones share this root signal".to_owned(),
            );
        }
        if !expected.contains(&cone.root) {
            report.push(
                Severity::Error,
                "partition.illegal-boundary",
                path_of(net, cone, None),
                format!(
                    "signal {} is not a legal cut point (neither a primary output nor a multi-fanout gate)",
                    net.name(cone.root)
                ),
            );
        }
    }
    for &missing in expected.difference(&seen_roots) {
        report.push(
            Severity::Error,
            "partition.missing-root",
            format!("signal {}", net.name(missing)),
            "legal cut point has no cone rooted at it".to_owned(),
        );
    }

    // Cone leaves must be primary inputs or other cones' roots, and the
    // cones' gate sets must partition the network's gates.
    let inputs: HashSet<SignalId> = net.inputs().iter().copied().collect();
    let mut gate_owner: HashMap<SignalId, usize> = HashMap::new();
    for (idx, cone) in design.cones.iter().enumerate() {
        for &leaf in &cone.leaves {
            if !inputs.contains(&leaf) && !expected.contains(&leaf) {
                report.push(
                    Severity::Error,
                    "partition.illegal-leaf",
                    path_of(net, cone, None),
                    format!(
                        "leaf {} is neither a primary input nor a cone root",
                        net.name(leaf)
                    ),
                );
            }
        }
        for &g in &cone.gates {
            if let Some(&other) = gate_owner.get(&g) {
                report.push(
                    Severity::Error,
                    "partition.gate-in-two-cones",
                    path_of(net, cone, None),
                    format!(
                        "gate {} also belongs to the cone rooted at {}",
                        net.name(g),
                        net.name(design.cones[other].root)
                    ),
                );
            } else {
                gate_owner.insert(g, idx);
            }
        }
    }
    let mut orphans = 0usize;
    for s in net.signals() {
        if matches!(net.node(s), NodeKind::Gate { .. }) && !gate_owner.contains_key(&s) {
            orphans += 1;
        }
    }
    if orphans > 0 {
        report.push(
            Severity::Error,
            "partition.gates-unassigned",
            "design".to_owned(),
            format!("{orphans} subject gate(s) belong to no cone"),
        );
    }

    check_netlist_graph(design, report);
    check_total_area(design, library, report);
}

/// Acyclicity and drivenness of the mapped netlist: every signal a binding
/// consumes must be a primary input or some instance's output, and the
/// instance dependency graph must be a DAG.
fn check_netlist_graph(design: &MappedDesign, report: &mut LintReport) {
    let net = &design.subject;
    let in_range = |s: SignalId| s.index() < net.len();
    let mut driver: HashMap<SignalId, (usize, usize)> = HashMap::new();
    for (ci, cover) in design.covers.iter().enumerate() {
        for (ii, inst) in cover.instances.iter().enumerate() {
            if !in_range(inst.output) {
                continue; // reported by the per-cover well-formedness pass
            }
            if driver.insert(inst.output, (ci, ii)).is_some() {
                report.push(
                    Severity::Error,
                    "structure.multiply-driven",
                    format!("signal {}", net.name(inst.output)),
                    "two instances drive the same signal".to_owned(),
                );
            }
        }
    }

    let inputs: HashSet<SignalId> = net.inputs().iter().copied().collect();
    // Tri-color DFS over signals through instance bindings, from every
    // primary output.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; net.len()];
    let mut undriven_reported: HashSet<SignalId> = HashSet::new();
    for (oname, oroot) in net.outputs() {
        let mut stack: Vec<(SignalId, bool)> = vec![(*oroot, false)];
        while let Some((s, leaving)) = stack.pop() {
            if !in_range(s) {
                continue;
            }
            if leaving {
                color[s.index()] = BLACK;
                continue;
            }
            match color[s.index()] {
                BLACK => continue,
                GRAY => {
                    report.push(
                        Severity::Error,
                        "structure.cycle",
                        format!("signal {}", net.name(s)),
                        format!(
                            "combinational cycle through the mapped netlist reaches output {oname}"
                        ),
                    );
                    continue;
                }
                _ => {}
            }
            if inputs.contains(&s) {
                color[s.index()] = BLACK;
                continue;
            }
            let Some(&(ci, ii)) = driver.get(&s) else {
                if undriven_reported.insert(s) {
                    report.push(
                        Severity::Error,
                        "structure.undriven",
                        format!("signal {}", net.name(s)),
                        format!("signal is consumed on the path to output {oname} but no instance drives it"),
                    );
                }
                color[s.index()] = BLACK;
                continue;
            };
            color[s.index()] = GRAY;
            stack.push((s, true));
            for &f in &design.covers[ci].instances[ii].inputs {
                stack.push((f, false));
            }
        }
    }
}

/// Re-adds the reported areas: per-cover area must equal the sum of its
/// instances' cell areas, and the design total must equal the cover sum
/// plus the fanout buffers the assembler says it added.
fn check_total_area(design: &MappedDesign, library: &Library, report: &mut LintReport) {
    let net = &design.subject;
    let mut cover_sum = 0.0f64;
    for (cone, cover) in design.cones.iter().zip(&design.covers) {
        let sum: f64 = cover
            .instances
            .iter()
            .filter_map(|i| library.cells().get(i.cell_index))
            .map(|c| c.area())
            .sum();
        if (sum - cover.area).abs() > AREA_TOL * cover.area.abs().max(1.0) {
            report.push(
                Severity::Error,
                "structure.cover-area",
                path_of(net, cone, None),
                format!(
                    "cover reports area {} but its instances sum to {sum}",
                    cover.area
                ),
            );
        }
        cover_sum += cover.area;
    }
    let buffer_area = library
        .cells()
        .iter()
        .filter(|c| c.name().starts_with("BUF"))
        .map(|c| c.area())
        .min_by(f64::total_cmp);
    let expected = cover_sum + design.stats.buffers as f64 * buffer_area.unwrap_or(0.0);
    if design.stats.buffers > 0 && buffer_area.is_none() {
        report.push(
            Severity::Warning,
            "structure.buffers-without-cell",
            "design".to_owned(),
            format!(
                "design reports {} fanout buffer(s) but the library has no BUF cell",
                design.stats.buffers
            ),
        );
    } else if (expected - design.area).abs() > AREA_TOL * design.area.abs().max(1.0) {
        report.push(
            Severity::Error,
            "structure.total-area",
            "design".to_owned(),
            format!(
                "design reports area {} but covers plus {} buffer(s) sum to {expected}",
                design.area, design.stats.buffers
            ),
        );
    }
}

/// Index-range and arity validity of every binding in `cover`. Returns
/// `false` when an out-of-range index or arity mismatch makes the deeper
/// walks unsafe for this cover.
pub(crate) fn check_instances_wellformed(
    design: &MappedDesign,
    library: &Library,
    cone: &Cone,
    cover: &ConeCover,
    report: &mut LintReport,
) -> bool {
    let net = &design.subject;
    let mut sound = true;
    for inst in &cover.instances {
        let mut signals_ok = true;
        for &s in std::iter::once(&inst.output).chain(&inst.inputs) {
            if s.index() >= net.len() {
                report.push(
                    Severity::Error,
                    "structure.signal-out-of-range",
                    format!("cone {} / instance {s}", net.name(cone.root)),
                    format!("binding references signal {s} outside the subject network"),
                );
                signals_ok = false;
            }
        }
        if !signals_ok {
            sound = false;
            continue;
        }
        let Some(cell) = library.cells().get(inst.cell_index) else {
            report.push(
                Severity::Error,
                "structure.cell-out-of-range",
                path_of(net, cone, Some(inst)),
                format!(
                    "cell index {} outside the {}-cell library",
                    inst.cell_index,
                    library.cells().len()
                ),
            );
            sound = false;
            continue;
        };
        if inst.inputs.len() != cell.num_inputs() {
            report.push(
                Severity::Error,
                "structure.arity-mismatch",
                path_of(net, cone, Some(inst)),
                format!(
                    "cell {} has {} pin(s) but {} signal(s) are bound",
                    cell.name(),
                    cell.num_inputs(),
                    inst.inputs.len()
                ),
            );
            sound = false;
        }
    }
    sound
}

/// Exactly-once coverage: the instances' covered-gate sets must partition
/// the cone's gates, and the cone root must be produced by some instance.
pub(crate) fn check_coverage(
    design: &MappedDesign,
    cone: &Cone,
    cover: &ConeCover,
    views: &[InstanceView<'_>],
    report: &mut LintReport,
) {
    let net = &design.subject;
    if !cover.instances.iter().any(|i| i.output == cover.root) {
        report.push(
            Severity::Error,
            "coverage.root-uncovered",
            path_of(net, cone, None),
            "no instance produces the cone root".to_owned(),
        );
    }
    let mut count: HashMap<SignalId, usize> = HashMap::new();
    for view in views {
        for &g in &view.covered_gates {
            *count.entry(g).or_insert(0) += 1;
        }
    }
    for &g in &cone.gates {
        match count.get(&g).copied().unwrap_or(0) {
            0 => report.push(
                Severity::Error,
                "coverage.gate-uncovered",
                path_of(net, cone, None),
                format!("cone gate {} is covered by no instance", net.name(g)),
            ),
            1 => {}
            n => report.push(
                Severity::Error,
                "coverage.gate-multiply-covered",
                path_of(net, cone, None),
                format!("cone gate {} is covered by {n} instances", net.name(g)),
            ),
        }
    }
}
