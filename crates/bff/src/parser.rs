//! Parser for Boolean factored form expressions.
//!
//! Grammar (whitespace insignificant):
//!
//! ```text
//! expr   := term ('+' term)*
//! term   := factor (['*'] factor)*        -- juxtaposition is AND
//! factor := atom "'"*                     -- postfix complement
//! atom   := IDENT | '0' | '1' | '(' expr ')'
//! ```
//!
//! Identifiers are maximal alphanumeric/underscore runs, so `sel0'` is the
//! complement of variable `sel0`. For the paper's single-letter style
//! (`w'xz`), use [`parse_letters`], where every alphabetic character is its
//! own variable.

use crate::Expr;
use asyncmap_cube::VarTable;
use std::error::Error;
use std::fmt;

/// Error produced when BFF parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBffError {
    message: String,
}

impl ParseBffError {
    fn new(message: impl Into<String>) -> Self {
        ParseBffError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseBffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid BFF expression: {}", self.message)
    }
}

impl Error for ParseBffError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Plus,
    Star,
    Prime,
    LParen,
    RParen,
    Zero,
    One,
}

fn tokenize(text: &str, letters: bool) -> Result<Vec<Token>, ParseBffError> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&ch) = chars.peek() {
        match ch {
            c if c.is_whitespace() => {
                chars.next();
            }
            '+' => {
                chars.next();
                out.push(Token::Plus);
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            '\'' => {
                chars.next();
                out.push(Token::Prime);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '0' => {
                chars.next();
                out.push(Token::Zero);
            }
            '1' => {
                chars.next();
                out.push(Token::One);
            }
            c if c.is_alphabetic() || c == '_' => {
                if letters {
                    chars.next();
                    out.push(Token::Ident(c.to_string()));
                } else {
                    let mut name = String::new();
                    while let Some(&c2) = chars.peek() {
                        if c2.is_alphanumeric() || c2 == '_' {
                            name.push(c2);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push(Token::Ident(name));
                }
            }
            other => {
                return Err(ParseBffError::new(format!(
                    "unexpected character {other:?}"
                )))
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    vars: &'a mut VarTable,
    intern: bool,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expr(&mut self) -> Result<Expr, ParseBffError> {
        let mut terms = vec![self.term()?];
        while self.peek() == Some(&Token::Plus) {
            self.bump();
            terms.push(self.term()?);
        }
        Ok(Expr::or(terms))
    }

    fn term(&mut self) -> Result<Expr, ParseBffError> {
        let mut factors = vec![self.factor()?];
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.bump();
                    factors.push(self.factor()?);
                }
                // Juxtaposition: a factor can start right after another.
                Some(Token::Ident(_))
                | Some(Token::LParen)
                | Some(Token::Zero)
                | Some(Token::One) => {
                    factors.push(self.factor()?);
                }
                _ => break,
            }
        }
        Ok(Expr::and(factors))
    }

    fn factor(&mut self) -> Result<Expr, ParseBffError> {
        let mut e = self.atom()?;
        while self.peek() == Some(&Token::Prime) {
            self.bump();
            e = e.not();
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, ParseBffError> {
        match self.bump() {
            Some(Token::Ident(name)) => {
                let v = if self.intern {
                    self.vars.intern(&name)
                } else {
                    self.vars
                        .lookup(&name)
                        .ok_or_else(|| ParseBffError::new(format!("unknown variable {name:?}")))?
                };
                Ok(Expr::Var(v))
            }
            Some(Token::Zero) => Ok(Expr::Const(false)),
            Some(Token::One) => Ok(Expr::Const(true)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                if self.bump() != Some(Token::RParen) {
                    return Err(ParseBffError::new("missing closing parenthesis"));
                }
                Ok(e)
            }
            other => Err(ParseBffError::new(format!(
                "expected a variable, constant or '(', found {other:?}"
            ))),
        }
    }

    fn finish(mut self) -> Result<Expr, ParseBffError> {
        let e = self.expr()?;
        if let Some(t) = self.peek() {
            return Err(ParseBffError::new(format!("trailing input at {t:?}")));
        }
        Ok(e)
    }
}

fn parse_impl(
    text: &str,
    vars: &mut VarTable,
    letters: bool,
    intern: bool,
) -> Result<Expr, ParseBffError> {
    let tokens = tokenize(text, letters)?;
    if tokens.is_empty() {
        return Err(ParseBffError::new("empty expression"));
    }
    Parser {
        tokens,
        pos: 0,
        vars,
        intern,
    }
    .finish()
}

impl Expr {
    /// Parses a BFF with multi-character identifiers, interning unseen
    /// variables into `vars`.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed syntax.
    pub fn parse(text: &str, vars: &mut VarTable) -> Result<Expr, ParseBffError> {
        parse_impl(text, vars, false, true)
    }

    /// Like [`Expr::parse`] but rejects variables not already in `vars`.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed syntax or unknown variables.
    pub fn parse_in(text: &str, vars: &VarTable) -> Result<Expr, ParseBffError> {
        let mut vars = vars.clone();
        parse_impl(text, &mut vars, false, false)
    }
}

/// Parses a BFF where each alphabetic character is a single-letter variable
/// (the paper's notation, e.g. `"(w + y')(x + y)"`). Unseen variables are
/// interned into `vars`.
///
/// # Errors
///
/// Returns an error on malformed syntax.
pub fn parse_letters(text: &str, vars: &mut VarTable) -> Result<Expr, ParseBffError> {
    parse_impl(text, vars, true, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sop() {
        let mut vars = VarTable::new();
        let e = Expr::parse("a*b + c", &mut vars).unwrap();
        assert_eq!(e.display(&vars).to_string(), "a*b + c");
    }

    #[test]
    fn juxtaposition_is_and() {
        let mut vars = VarTable::new();
        let e1 = Expr::parse("a b", &mut vars).unwrap();
        let e2 = Expr::parse_in("a*b", &vars).unwrap();
        assert_eq!(e1, e2);
        let e3 = Expr::parse_in("(a)(b)", &vars).unwrap();
        assert_eq!(e3, e2);
    }

    #[test]
    fn group_complement() {
        let mut vars = VarTable::new();
        let e = Expr::parse("(a + b)'", &mut vars).unwrap();
        assert_eq!(e.display(&vars).to_string(), "(a + b)'");
        let dbl = Expr::parse("(a)''", &mut vars).unwrap();
        assert_eq!(dbl, Expr::Var(asyncmap_cube::VarId(0)).not().not());
    }

    #[test]
    fn letters_mode_splits_chars() {
        let mut vars = VarTable::new();
        let e = parse_letters("w'xz + w'xy", &mut vars).unwrap();
        assert_eq!(vars.len(), 4);
        assert_eq!(e.num_literals(), 6);
    }

    #[test]
    fn multichar_identifiers() {
        let mut vars = VarTable::new();
        let e = Expr::parse("sel0' * din1", &mut vars).unwrap();
        assert_eq!(vars.len(), 2);
        assert_eq!(e.num_literals(), 2);
    }

    #[test]
    fn constants_parse() {
        let mut vars = VarTable::new();
        assert_eq!(Expr::parse("1", &mut vars).unwrap(), Expr::Const(true));
        assert_eq!(Expr::parse("0 + a", &mut vars).unwrap().num_literals(), 1);
    }

    #[test]
    fn errors_reported() {
        let mut vars = VarTable::new();
        assert!(Expr::parse("", &mut vars).is_err());
        assert!(Expr::parse("(a + b", &mut vars).is_err());
        assert!(Expr::parse("a + + b", &mut vars).is_err());
        assert!(Expr::parse("a ^ b", &mut vars).is_err());
        assert!(Expr::parse_in("zz", &VarTable::new()).is_err());
    }

    #[test]
    fn precedence_and_over_or() {
        let mut vars = VarTable::new();
        let e = Expr::parse("a + b*c", &mut vars).unwrap();
        match e {
            Expr::Or(terms) => {
                assert_eq!(terms.len(), 2);
                assert!(matches!(terms[1], Expr::And(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }
}
