//! Three-valued (ternary) logic and expression evaluation, after
//! Eichelberger. Used by the hazard layer to simulate input bursts: a
//! changing input takes the unknown value `X`, and a gate output that
//! resolves to `X` may glitch.

use crate::Expr;
use asyncmap_cube::Bits;
use std::fmt;

/// A ternary logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tern {
    /// Definite 0.
    Zero,
    /// Definite 1.
    One,
    /// Unknown / possibly changing.
    X,
}

impl Tern {
    /// Ternary AND (`0` dominates).
    pub fn and(self, other: Tern) -> Tern {
        use Tern::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => X,
        }
    }

    /// Ternary OR (`1` dominates).
    pub fn or(self, other: Tern) -> Tern {
        use Tern::*;
        match (self, other) {
            (One, _) | (_, One) => One,
            (Zero, Zero) => Zero,
            _ => X,
        }
    }

    /// Ternary NOT (`X` maps to `X`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Tern {
        match self {
            Tern::Zero => Tern::One,
            Tern::One => Tern::Zero,
            Tern::X => Tern::X,
        }
    }

    /// `true` for a definite value.
    pub fn is_definite(self) -> bool {
        self != Tern::X
    }
}

impl From<bool> for Tern {
    fn from(b: bool) -> Tern {
        if b {
            Tern::One
        } else {
            Tern::Zero
        }
    }
}

impl fmt::Display for Tern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tern::Zero => write!(f, "0"),
            Tern::One => write!(f, "1"),
            Tern::X => write!(f, "X"),
        }
    }
}

/// Evaluates `expr` under a ternary input assignment (`values[i]` is the
/// value of variable `i`).
///
/// # Panics
///
/// Panics if the expression mentions a variable with index
/// `>= values.len()`.
pub fn eval_ternary(expr: &Expr, values: &[Tern]) -> Tern {
    match expr {
        Expr::Const(b) => Tern::from(*b),
        Expr::Var(v) => values[v.index()],
        Expr::Not(e) => eval_ternary(e, values).not(),
        Expr::And(es) => es
            .iter()
            .fold(Tern::One, |acc, e| acc.and(eval_ternary(e, values))),
        Expr::Or(es) => es
            .iter()
            .fold(Tern::Zero, |acc, e| acc.or(eval_ternary(e, values))),
    }
}

/// Builds a ternary assignment from a start point `from`, with the
/// variables in `changing` set to `X`.
pub fn burst_assignment(from: &Bits, changing: &Bits) -> Vec<Tern> {
    (0..from.len())
        .map(|i| {
            if changing.get(i) {
                Tern::X
            } else {
                Tern::from(from.get(i))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    #[test]
    fn truth_tables() {
        use Tern::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(Zero.not(), One);
        assert!(!X.is_definite());
        assert!(One.is_definite());
    }

    #[test]
    fn eval_resolves_dominated_x() {
        let mut vars = VarTable::new();
        // a*b with a=0: output is 0 regardless of b.
        let e = Expr::parse("a*b", &mut vars).unwrap();
        assert_eq!(eval_ternary(&e, &[Tern::Zero, Tern::X]), Tern::Zero);
        assert_eq!(eval_ternary(&e, &[Tern::One, Tern::X]), Tern::X);
    }

    #[test]
    fn reconvergent_x_stays_x() {
        // a + a' is a tautology but ternary evaluation cannot see that:
        // with a = X the result is X. This pessimism is exactly what makes
        // ternary simulation a hazard detector.
        let mut vars = VarTable::new();
        let e = Expr::parse("a + a'", &mut vars).unwrap();
        assert_eq!(eval_ternary(&e, &[Tern::X]), Tern::X);
    }

    #[test]
    fn covered_transition_is_definite() {
        let mut vars = VarTable::new();
        // ab + a'b with b=1 held: output held at 1 only if a single gate
        // covers it — structurally it is X under ternary simulation.
        let e = Expr::parse("a*b + a'*b", &mut vars).unwrap();
        assert_eq!(eval_ternary(&e, &[Tern::X, Tern::One]), Tern::X);
        // With the consensus gate b present, the output is definite.
        let e2 = Expr::parse("a*b + a'*b + b", &mut vars).unwrap();
        assert_eq!(eval_ternary(&e2, &[Tern::X, Tern::One]), Tern::One);
    }

    #[test]
    fn burst_assignment_marks_changing() {
        let mut from = Bits::new(3);
        from.set(0, true);
        let mut ch = Bits::new(3);
        ch.set(2, true);
        let a = burst_assignment(&from, &ch);
        assert_eq!(a, vec![Tern::One, Tern::Zero, Tern::X]);
    }

    #[test]
    fn display_values() {
        assert_eq!(Tern::X.to_string(), "X");
        assert_eq!(Tern::Zero.to_string(), "0");
        assert_eq!(Tern::One.to_string(), "1");
    }
}
