//! Concurrency model tests for the sharded [`HazardCache`].
//!
//! Run with `cargo test -p asyncmap-core --features loom-tests`. The
//! `loom` dependency resolves to the offline stand-in in `vendor/loom`
//! (stress-scheduled real threads rather than exhaustive interleaving
//! exploration — see vendor/README.md); the tests are written against the
//! real loom API so they also compile against the genuine crate.
//!
//! What must hold under every interleaving:
//!
//! * interning is agreement-free: concurrent `intern` calls on the same
//!   expression may race on the write lock, but every thread observes the
//!   same dense id, and distinct expressions never collapse to one id;
//! * verdicts are stable: racing computations of the same key are allowed
//!   (the compute runs outside the shard lock), but every caller gets the
//!   same boolean and every query is counted as exactly one hit or miss;
//! * distinct keys never alias across shards.

#![cfg(feature = "loom-tests")]

use asyncmap_bff::Expr;
use asyncmap_core::HazardCache;
use asyncmap_cube::VarId;
use loom::sync::Arc;
use loom::thread;

#[test]
fn concurrent_interning_yields_one_id_per_expression() {
    loom::model(|| {
        let cache = Arc::new(HazardCache::new());
        let exprs = [
            Expr::Var(VarId(0)),
            Expr::Var(VarId(1)).not(),
            Expr::and(vec![Expr::Var(VarId(0)), Expr::Var(VarId(1))]),
        ];
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let exprs = exprs.clone();
                // Each thread interns all three expressions, starting at a
                // different one so first-encounter races happen on every
                // expression in some interleaving.
                thread::spawn(move || [0, 1, 2].map(|k| cache.model_intern(&exprs[(t + k) % 3])))
            })
            .collect();
        let views: Vec<[u32; 3]> = handles
            .into_iter()
            .enumerate()
            .map(|(t, h)| {
                let ids = h.join().expect("intern thread panicked");
                // Undo the per-thread rotation: view[e] = id of exprs[e].
                let mut view = [0u32; 3];
                for (k, &id) in ids.iter().enumerate() {
                    view[(t + k) % 3] = id;
                }
                view
            })
            .collect();
        let reference = [0, 1, 2].map(|e| cache.model_intern(&exprs[e]));
        for view in &views {
            assert_eq!(*view, reference, "threads disagree on interned ids");
        }
        assert_ne!(reference[0], reference[1]);
        assert_ne!(reference[1], reference[2]);
        assert_ne!(reference[0], reference[2]);
    });
}

#[test]
fn racing_verdicts_agree_and_account_every_query() {
    loom::model(|| {
        let cache = Arc::new(HazardCache::new());
        // Two threads race the same key (deterministic compute: the verdict
        // for a fixed key is a pure function in production); a third works a
        // different key that must not alias.
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    if t < 2 {
                        cache.model_verdict(5, &[0, 1, 2], 9, 3, || true)
                    } else {
                        cache.model_verdict(5, &[0, 2, 1], 9, 3, || false)
                    }
                    .expect("packable binding")
                })
            })
            .collect();
        let results: Vec<bool> = handles
            .into_iter()
            .map(|h| h.join().expect("verdict thread panicked"))
            .collect();
        assert!(results[0]);
        assert!(results[1]);
        assert!(!results[2]);
        // Re-queries are pure hits and the cached booleans are stable.
        assert_eq!(
            cache.model_verdict(5, &[0, 1, 2], 9, 3, || false),
            Some(true)
        );
        assert_eq!(
            cache.model_verdict(5, &[0, 2, 1], 9, 3, || true),
            Some(false)
        );
        // Every query was exactly one hit or one miss: 3 racing + 2 re-queries.
        assert_eq!(cache.hits() + cache.misses(), 5);
        // The distinct-key compute always runs; the same-key pair computes
        // at least once and, when the race loses, twice.
        assert!((2..=3).contains(&cache.misses()));
        assert_eq!(cache.hits(), 5 - cache.misses());
    });
}
