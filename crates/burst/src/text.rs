//! A text format for burst-mode specifications, in the spirit of the
//! `.bms` files consumed by the burst-mode synthesis tools the paper's
//! flow builds on.
//!
//! ```text
//! machine figure1
//! inputs a b
//! outputs y
//! states 2
//! # from to  input burst / output burst
//! edge 0 1  a+ b+ / y+
//! edge 1 0  a- b- / y-
//! ```
//!
//! Signal directions (`+`/`-`) are accepted on parse for readability but
//! only the *set of changing signals* is stored; [`BurstSpec::validate`]
//! recomputes actual directions from the entry vectors, and the writer
//! emits them faithfully.

use crate::spec::{BurstEdge, BurstSpec, SpecError, SpecErrorKind, StateId};
use asyncmap_cube::Bits;
use std::fmt::Write as _;

/// Parses the text format described in the module docs and validates the
/// resulting spec ([`BurstSpec::validate`]): a `.bms` file that violates
/// the maximal-set, distinguishability, or entry-vector properties is
/// rejected with a typed [`SpecError`], not silently accepted.
///
/// # Errors
///
/// Returns [`SpecError`] with a line-numbered message on malformed input
/// ([`SpecErrorKind::Syntax`]), or with the violated property's kind when
/// the parsed spec fails validation.
/// # Examples
///
/// ```
/// let spec = asyncmap_burst::parse_bms("
/// machine figure1
/// inputs a b
/// outputs y
/// states 2
/// edge 0 1  a+ b+ / y+
/// edge 1 0  a- b- / y-
/// ")?;
/// assert!(spec.validate().is_ok());
/// # Ok::<(), asyncmap_burst::SpecError>(())
/// ```
pub fn parse_bms(text: &str) -> Result<BurstSpec, SpecError> {
    let mut name: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut num_states: Option<usize> = None;
    let mut initial_inputs: Option<Bits> = None;
    let mut initial_outputs: Option<Bits> = None;
    let mut edges: Vec<BurstEdge> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err =
            |m: String| SpecError::new(SpecErrorKind::Syntax, format!("line {}: {m}", lineno + 1));
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("machine") => {
                name = Some(
                    tokens
                        .next()
                        .ok_or_else(|| err("missing machine name".into()))?
                        .to_owned(),
                );
            }
            Some("inputs") => inputs.extend(tokens.map(str::to_owned)),
            Some("outputs") => outputs.extend(tokens.map(str::to_owned)),
            Some("states") => {
                let n: usize = tokens
                    .next()
                    .ok_or_else(|| err("missing state count".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad state count: {e}")))?;
                num_states = Some(n);
            }
            Some("initial-inputs") => {
                initial_inputs = Some(parse_vector(tokens.next(), inputs.len(), &err)?);
            }
            Some("initial-outputs") => {
                initial_outputs = Some(parse_vector(tokens.next(), outputs.len(), &err)?);
            }
            Some("edge") => {
                let from: usize = tokens
                    .next()
                    .ok_or_else(|| err("missing source state".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad source state: {e}")))?;
                let to: usize = tokens
                    .next()
                    .ok_or_else(|| err("missing target state".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad target state: {e}")))?;
                let rest: Vec<&str> = tokens.collect();
                let mut parts = rest.splitn(2, |t| *t == "/");
                let in_tokens: Vec<&str> = parts.next().unwrap_or_default().to_vec();
                let out_tokens: Vec<&str> = parts.next().unwrap_or_default().to_vec();
                let input_burst = parse_burst(&in_tokens, &inputs, &err)?;
                let output_burst = parse_burst(&out_tokens, &outputs, &err)?;
                edges.push(BurstEdge {
                    from: StateId(from),
                    to: StateId(to),
                    input_burst,
                    output_burst,
                });
            }
            Some(other) => return Err(err(format!("unknown directive {other:?}"))),
            None => unreachable!("empty lines are skipped"),
        }
    }

    let name =
        name.ok_or_else(|| SpecError::new(SpecErrorKind::Syntax, "missing `machine` directive"))?;
    let num_states = num_states
        .ok_or_else(|| SpecError::new(SpecErrorKind::Syntax, "missing `states` directive"))?;
    let spec = BurstSpec {
        name,
        initial_inputs: initial_inputs.unwrap_or_else(|| Bits::new(inputs.len())),
        initial_outputs: initial_outputs.unwrap_or_else(|| Bits::new(outputs.len())),
        input_names: inputs,
        output_names: outputs,
        num_states,
        edges,
    };
    // Loading is not just parsing: the well-formedness properties the
    // paper assumes (maximal set, distinguishability, entry-vector
    // consistency) are enforced here, with the typed kind preserved.
    spec.validate()?;
    Ok(spec)
}

fn parse_vector(
    token: Option<&str>,
    len: usize,
    err: &impl Fn(String) -> SpecError,
) -> Result<Bits, SpecError> {
    let token = token.ok_or_else(|| err("missing bit vector".into()))?;
    if token.len() != len {
        return Err(err(format!(
            "vector {token:?} has {} bits, expected {len}",
            token.len()
        )));
    }
    let mut b = Bits::new(len);
    for (i, ch) in token.chars().enumerate() {
        match ch {
            '0' => {}
            '1' => b.set(i, true),
            other => return Err(err(format!("bad vector bit {other:?}"))),
        }
    }
    Ok(b)
}

fn parse_burst(
    tokens: &[&str],
    names: &[String],
    err: &impl Fn(String) -> SpecError,
) -> Result<Bits, SpecError> {
    let mut burst = Bits::new(names.len());
    for tok in tokens {
        let base = tok.trim_end_matches(['+', '-', '~']);
        if base.is_empty() || base.len() == tok.len() {
            return Err(err(format!("burst token {tok:?} must be <signal>+/-/~")));
        }
        let idx = names
            .iter()
            .position(|n| n == base)
            .ok_or_else(|| err(format!("unknown signal {base:?}")))?;
        if burst.get(idx) {
            return Err(err(format!("signal {base:?} listed twice in a burst")));
        }
        burst.set(idx, true);
    }
    Ok(burst)
}

/// Serializes a spec to the text format, with `+`/`-` directions derived
/// from the entry vectors.
///
/// # Errors
///
/// Returns [`SpecError`] if the spec does not validate (directions would
/// be meaningless).
pub fn to_bms(spec: &BurstSpec) -> Result<String, SpecError> {
    let entry = spec.validate()?;
    let mut out = String::new();
    let _ = writeln!(out, "machine {}", spec.name);
    let _ = writeln!(out, "inputs {}", spec.input_names.join(" "));
    let _ = writeln!(out, "outputs {}", spec.output_names.join(" "));
    let _ = writeln!(out, "states {}", spec.num_states);
    let _ = writeln!(out, "initial-inputs {}", vector(&spec.initial_inputs));
    let _ = writeln!(out, "initial-outputs {}", vector(&spec.initial_outputs));
    for e in &spec.edges {
        let vi = entry.inputs[e.from.0].as_ref().expect("validated");
        let vo = entry.outputs[e.from.0].as_ref().expect("validated");
        let ins = burst_tokens(&e.input_burst, vi, &spec.input_names);
        let outs = burst_tokens(&e.output_burst, vo, &spec.output_names);
        let _ = writeln!(out, "edge {} {}  {} / {}", e.from.0, e.to.0, ins, outs);
    }
    Ok(out)
}

fn vector(b: &Bits) -> String {
    (0..b.len())
        .map(|i| if b.get(i) { '1' } else { '0' })
        .collect()
}

fn burst_tokens(burst: &Bits, entry: &Bits, names: &[String]) -> String {
    let toks: Vec<String> = burst
        .iter_ones()
        .map(|i| {
            // The signal leaves its entry value: entry 0 → rising (+).
            format!("{}{}", names[i], if entry.get(i) { '-' } else { '+' })
        })
        .collect();
    toks.join(" ")
}

/// Renders a spec as a Graphviz `dot` digraph (states as nodes, bursts as
/// edge labels) for visual inspection of machines like Figure 1.
///
/// # Errors
///
/// Returns [`SpecError`] if the spec does not validate.
pub fn to_dot(spec: &BurstSpec) -> Result<String, SpecError> {
    let entry = spec.validate()?;
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", spec.name.replace('-', "_"));
    let _ = writeln!(out, "  rankdir=LR; node [shape=circle];");
    for s in 0..spec.num_states {
        let v = entry.inputs[s].as_ref().expect("validated");
        let _ = writeln!(out, "  s{s} [label=\"s{s}\\n{}\"];", vector(v));
    }
    for e in &spec.edges {
        let vi = entry.inputs[e.from.0].as_ref().expect("validated");
        let vo = entry.outputs[e.from.0].as_ref().expect("validated");
        let ins = burst_tokens(&e.input_burst, vi, &spec.input_names);
        let outs = burst_tokens(&e.output_burst, vo, &spec.output_names);
        let _ = writeln!(
            out,
            "  s{} -> s{} [label=\"{} / {}\"];",
            e.from.0, e.to.0, ins, outs
        );
    }
    let _ = writeln!(out, "}}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure1_example;

    const FIGURE1: &str = "\
machine figure1
inputs a b
outputs y
states 2
# the two bursts of the paper's Figure 1
edge 0 1  a+ b+ / y+
edge 1 0  a- b- / y-
";

    #[test]
    fn parse_figure1() {
        let spec = parse_bms(FIGURE1).unwrap();
        assert_eq!(spec.name, "figure1");
        assert_eq!(spec.num_states, 2);
        assert_eq!(spec.edges.len(), 2);
        spec.validate().unwrap();
        // Same machine as the built-in example.
        let builtin = figure1_example();
        assert_eq!(spec.edges[0].input_burst, builtin.edges[0].input_burst);
    }

    #[test]
    fn roundtrip_through_text() {
        let spec = figure1_example();
        let text = to_bms(&spec).unwrap();
        let back = parse_bms(&text).unwrap();
        assert_eq!(back.num_states, spec.num_states);
        assert_eq!(back.edges.len(), spec.edges.len());
        for (a, b) in back.edges.iter().zip(&spec.edges) {
            assert_eq!(a.input_burst, b.input_burst);
            assert_eq!(a.output_burst, b.output_burst);
        }
    }

    #[test]
    fn writer_emits_directions() {
        let text = to_bms(&figure1_example()).unwrap();
        assert!(text.contains("a+ b+ / y+"));
        assert!(text.contains("a- b- / y-"));
    }

    #[test]
    fn benchmark_specs_roundtrip() {
        for name in ["dme-fast", "chu-ad-opt"] {
            let spec = crate::benchmark_spec(name);
            let text = to_bms(&spec).unwrap();
            let back = parse_bms(&text).unwrap();
            back.validate().unwrap();
            assert_eq!(back.edges.len(), spec.edges.len());
        }
    }

    #[test]
    fn dot_export_has_states_and_edges() {
        let dot = to_dot(&figure1_example()).unwrap();
        assert!(dot.starts_with("digraph figure1 {"));
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("a+ b+ / y+"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn errors_have_line_numbers() {
        let e = parse_bms("machine x\nstates 2\nedge 0 1 zz+ /\n").unwrap_err();
        assert!(e.message.contains("line 3"), "{e}");
        let e2 = parse_bms("inputs a\n").unwrap_err();
        assert!(e2.message.contains("machine"));
        let e3 = parse_bms("machine x\ninputs a\nstates 1\nedge 0 0 a /\n").unwrap_err();
        assert!(e3.message.contains("burst token"), "{e3}");
    }

    #[test]
    fn duplicate_burst_signal_rejected() {
        let e = parse_bms("machine x\ninputs a\noutputs y\nstates 2\nedge 0 1 a+ a- / y+\n")
            .unwrap_err();
        assert!(e.message.contains("twice"));
    }
}
