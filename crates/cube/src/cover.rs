//! Sum-of-products covers and the Boolean operations the hazard algorithms
//! need: tautology checking, semantic containment, complementation, prime
//! generation and irredundancy.
//!
//! A [`Cover`] is a list of [`Cube`]s over a common variable space and
//! denotes their union. Unlike a canonical function representation, the
//! *list structure matters*: a redundant cube changes the hazard behavior of
//! the corresponding two-level AND–OR circuit even though it does not change
//! the function (paper, Figure 3). None of the operations here silently
//! simplify a cover; simplification is always an explicit call.

use crate::{Bits, Cube, ParseSopError, Phase, VarId, VarTable};
use std::cell::RefCell;
use std::fmt;

/// Reusable working storage for the recursive cover kernels (tautology,
/// containment, complement). One instance lives per thread; buffers are
/// checked out for the duration of a recursion level and returned, so the
/// kernels stop allocating a fresh `Vec<Cube>` and literal-count vectors at
/// every level of the Shannon expansion.
#[derive(Default)]
struct Scratch {
    bufs: Vec<Vec<Cube>>,
    pos: Vec<u32>,
    neg: Vec<u32>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Runs `f` with the thread's scratch pool. Falls back to a fresh pool in
/// the (not currently possible) re-entrant case rather than panicking.
fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut s) => f(&mut s),
        Err(_) => f(&mut Scratch::default()),
    })
}

/// Fills `pos`/`neg` with per-variable literal counts over `cubes`.
fn counts_into(cubes: &[Cube], nvars: usize, pos: &mut Vec<u32>, neg: &mut Vec<u32>) {
    pos.clear();
    pos.resize(nvars, 0);
    neg.clear();
    neg.resize(nvars, 0);
    for c in cubes {
        for (v, p) in c.literals() {
            if p.is_pos() {
                pos[v.index()] += 1;
            } else {
                neg[v.index()] += 1;
            }
        }
    }
}

/// The most binate variable: prefer variables appearing in both phases;
/// among those, the one in the most cubes; ties broken toward the lowest
/// index. Falls back to the most frequent variable.
fn most_binate(nvars: usize, pos: &[u32], neg: &[u32]) -> VarId {
    let mut best: Option<(bool, u32, usize)> = None;
    for v in 0..nvars {
        let (p, n) = (pos[v], neg[v]);
        if p + n == 0 {
            continue;
        }
        let key = (p > 0 && n > 0, p + n, usize::MAX - v);
        if best.is_none_or(|b| key > b) {
            best = Some(key);
        }
    }
    let (_, _, inv_v) = best.expect("most_binate on constant cover");
    VarId(usize::MAX - inv_v)
}

/// Cofactors a cube list in place with respect to the literal `(v, phase)`:
/// cubes holding the opposite literal are dropped, the rest lose `v`.
fn cofactor_in_place(cubes: &mut Vec<Cube>, v: VarId, phase: Phase) {
    cubes.retain_mut(|c| match c.literal(v) {
        Some(p) if p != phase => false,
        Some(_) => {
            c.clear_var(v);
            true
        }
        None => true,
    });
}

/// Tautology check over a mutable cube list (consumed as working storage).
/// Same algorithm as the paper-era `Cover::is_tautology` — fast checks, then
/// unate reduction, then Shannon on the most binate variable — but unate
/// reduction and the negative Shannon branch cofactor in place, and the
/// positive branch borrows a pooled buffer.
fn taut_rec(cubes: &mut Vec<Cube>, nvars: usize, s: &mut Scratch) -> bool {
    loop {
        if cubes.iter().any(Cube::is_universe) {
            return true;
        }
        if cubes.is_empty() {
            return false;
        }
        if nvars < 63 {
            let total: u64 = cubes.iter().map(Cube::num_minterms).sum();
            if total < (1u64 << nvars) {
                return false;
            }
        }
        counts_into(cubes, nvars, &mut s.pos, &mut s.neg);
        let mut reduced = false;
        for v in 0..nvars {
            let (p, n) = (s.pos[v], s.neg[v]);
            if p + n == 0 {
                continue;
            }
            if n == 0 {
                cofactor_in_place(cubes, VarId(v), Phase::Neg);
                reduced = true;
                break;
            }
            if p == 0 {
                cofactor_in_place(cubes, VarId(v), Phase::Pos);
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }
        let v = most_binate(nvars, &s.pos, &s.neg);
        let mut pos_buf = s.bufs.pop().unwrap_or_default();
        pos_buf.clear();
        pos_buf.extend(cubes.iter().filter_map(|c| c.cofactor(v, Phase::Pos)));
        let pos_taut = taut_rec(&mut pos_buf, nvars, s);
        s.bufs.push(pos_buf);
        if !pos_taut {
            return false;
        }
        cofactor_in_place(cubes, v, Phase::Neg);
    }
}

/// A sum-of-products cover: an ordered list of cubes over `nvars` variables.
///
/// # Examples
///
/// ```
/// use asyncmap_cube::{Cover, VarTable};
/// let vars = VarTable::from_names(["w", "x", "y", "z"]);
/// let f = Cover::parse("w'xz + w'xy + xyz", &vars)?;
/// assert_eq!(f.len(), 3);
/// assert!(!f.is_tautology());
/// # Ok::<(), asyncmap_cube::ParseSopError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cover {
    nvars: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant 0) over `nvars` variables.
    pub fn zero(nvars: usize) -> Self {
        Cover {
            nvars,
            cubes: Vec::new(),
        }
    }

    /// The single-universe-cube cover (constant 1) over `nvars` variables.
    pub fn one(nvars: usize) -> Self {
        Cover {
            nvars,
            cubes: vec![Cube::universe(nvars)],
        }
    }

    /// Builds a cover from cubes.
    ///
    /// # Panics
    ///
    /// Panics if a cube's space width differs from `nvars`.
    pub fn from_cubes(nvars: usize, cubes: Vec<Cube>) -> Self {
        for c in &cubes {
            assert_eq!(c.nvars(), nvars, "cube width mismatch in Cover::from_cubes");
        }
        Cover { nvars, cubes }
    }

    /// Parses an SOP in letter syntax (`"w'xz + w'xy + xyz"`); `"0"` parses
    /// to the empty cover and `"1"` to the universe.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown variables, malformed literals, or a
    /// contradictory product.
    pub fn parse(text: &str, vars: &VarTable) -> Result<Self, ParseSopError> {
        let cubes = crate::parse::parse_sop_with(text, vars, crate::parse::parse_cube_letters)?;
        Ok(Cover {
            nvars: vars.len(),
            cubes,
        })
    }

    /// Parses an SOP in token syntax (multi-character variable names
    /// separated by whitespace or `*`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cover::parse`].
    pub fn parse_tokens(text: &str, vars: &VarTable) -> Result<Self, ParseSopError> {
        let cubes = crate::parse::parse_sop_with(text, vars, crate::parse::parse_cube_tokens)?;
        Ok(Cover {
            nvars: vars.len(),
            cubes,
        })
    }

    /// Number of variables in the cover's space.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of cubes (product terms).
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// `true` if the cover has no cubes (denotes constant 0).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The cubes of the cover, in order.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Appends a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube's width differs from the cover's.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.nvars(), self.nvars, "cube width mismatch in push");
        self.cubes.push(cube);
    }

    /// Total number of literals over all cubes.
    pub fn num_literals(&self) -> u32 {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// Evaluates the cover at a full assignment.
    pub fn eval(&self, assignment: &Bits) -> bool {
        self.cubes.iter().any(|c| c.eval(assignment))
    }

    /// `true` if some single cube of the cover contains `cube`.
    ///
    /// This is the *structural* containment test used by the static-1
    /// algorithm (`cubeContainedInExpr`): a transition is hazard-free only
    /// when one gate holds the output through it.
    pub fn single_cube_contains(&self, cube: &Cube) -> bool {
        self.cubes.iter().any(|c| c.contains(cube))
    }

    /// Cofactor with respect to a single literal.
    pub fn cofactor(&self, v: VarId, phase: Phase) -> Cover {
        Cover {
            nvars: self.nvars,
            cubes: self
                .cubes
                .iter()
                .filter_map(|c| c.cofactor(v, phase))
                .collect(),
        }
    }

    /// Cofactor with respect to every literal of `cube` (single word-level
    /// pass per cube, see [`Cube::cofactor_cube`]).
    pub fn cofactor_cube(&self, cube: &Cube) -> Cover {
        Cover {
            nvars: self.nvars,
            cubes: self
                .cubes
                .iter()
                .filter_map(|c| c.cofactor_cube(cube))
                .collect(),
        }
    }

    /// Semantic tautology test (`f ≡ 1`) via unate reduction and Shannon
    /// expansion, using per-thread scratch buffers.
    pub fn is_tautology(&self) -> bool {
        if self.cubes.iter().any(Cube::is_universe) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        with_scratch(|s| {
            let mut buf = s.bufs.pop().unwrap_or_default();
            buf.clear();
            buf.extend(self.cubes.iter().cloned());
            let r = taut_rec(&mut buf, self.nvars, s);
            s.bufs.push(buf);
            r
        })
    }

    /// Semantic containment of a cube: `true` iff every minterm of `cube`
    /// is covered (possibly by several cubes jointly). Equivalently, `cube`
    /// is an implicant of the function. Computed as the tautology of the
    /// cube cofactor, without materializing the intermediate cover.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        with_scratch(|s| {
            let mut buf = s.bufs.pop().unwrap_or_default();
            buf.clear();
            buf.extend(self.cubes.iter().filter_map(|c| c.cofactor_cube(cube)));
            let r = taut_rec(&mut buf, self.nvars, s);
            s.bufs.push(buf);
            r
        })
    }

    /// Alias of [`Cover::covers_cube`] with the implicant vocabulary of the
    /// paper.
    pub fn is_implicant(&self, cube: &Cube) -> bool {
        self.covers_cube(cube)
    }

    /// `true` iff `cube` is a *prime* implicant: an implicant no literal of
    /// which can be removed.
    pub fn is_prime(&self, cube: &Cube) -> bool {
        self.covers_cube(cube)
            && cube
                .literals()
                .all(|(v, _)| !self.covers_cube(&cube.without_var(v)))
    }

    /// Expands `cube` to a prime implicant by greedily dropping literals
    /// (lowest variable index first) while it remains an implicant.
    ///
    /// # Panics
    ///
    /// Panics if `cube` is not an implicant of the cover.
    pub fn expand_to_prime(&self, cube: &Cube) -> Cube {
        assert!(
            self.covers_cube(cube),
            "expand_to_prime called on a non-implicant"
        );
        let mut out = cube.clone();
        for i in 0..self.nvars {
            let v = VarId(i);
            if out.literal(v).is_some() {
                let wider = out.without_var(v);
                if self.covers_cube(&wider) {
                    out = wider;
                }
            }
        }
        out
    }

    /// All prime implicants of the function, computed by iterated consensus
    /// (Quine's method) followed by removal of non-maximal cubes.
    ///
    /// The result is a set (sorted, deduplicated). Exponential in the worst
    /// case; intended for library cells and mapper clusters, which are small.
    /// # Examples
    ///
    /// ```
    /// use asyncmap_cube::{Cover, Cube, VarTable};
    /// let vars = VarTable::from_names(["a", "b", "c"]);
    /// let primes = Cover::parse("ab + a'c", &vars)?.all_primes();
    /// assert!(primes.contains(&Cube::parse("bc", &vars)?)); // the consensus
    /// assert_eq!(primes.len(), 3);
    /// # Ok::<(), asyncmap_cube::ParseSopError>(())
    /// ```
    pub fn all_primes(&self) -> Vec<Cube> {
        let mut set: Vec<Cube> = Vec::new();
        for c in &self.cubes {
            insert_maximal(&mut set, c.clone());
        }
        let mut changed = true;
        while changed {
            changed = false;
            let snapshot = set.clone();
            for i in 0..snapshot.len() {
                for j in (i + 1)..snapshot.len() {
                    if let Some(cons) = snapshot[i].adjacency(&snapshot[j]) {
                        if insert_maximal(&mut set, cons) {
                            changed = true;
                        }
                    }
                }
            }
        }
        set.sort();
        set
    }

    /// Removes cubes that are semantically covered by the rest of the cover
    /// (single left-to-right pass). The resulting cover is irredundant and
    /// denotes the same function.
    pub fn irredundant(&self) -> Cover {
        let mut kept: Vec<Cube> = self.cubes.clone();
        let mut i = 0;
        while i < kept.len() {
            let candidate = kept[i].clone();
            let rest = Cover {
                nvars: self.nvars,
                cubes: kept
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, c)| c.clone())
                    .collect(),
            };
            if rest.covers_cube(&candidate) {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        Cover {
            nvars: self.nvars,
            cubes: kept,
        }
    }

    /// Removes exact duplicates and cubes strictly contained in another
    /// single cube (structural cleanup, function unchanged and — unlike
    /// [`Cover::irredundant`] — static-hazard behavior unchanged, because a
    /// single-cube-contained term can never be the sole cover of a
    /// transition).
    pub fn without_contained_cubes(&self) -> Cover {
        let mut kept: Vec<Cube> = Vec::new();
        for c in &self.cubes {
            if kept.iter().any(|k| k.contains(c)) {
                continue;
            }
            kept.retain(|k| !c.contains(k));
            kept.push(c.clone());
        }
        Cover {
            nvars: self.nvars,
            cubes: kept,
        }
    }

    /// The complement of the function, as a new cover (recursive Shannon
    /// expansion with single-cube special case).
    pub fn complement(&self) -> Cover {
        if self.cubes.is_empty() {
            return Cover::one(self.nvars);
        }
        if self.cubes.iter().any(Cube::is_universe) {
            return Cover::zero(self.nvars);
        }
        if self.cubes.len() == 1 {
            // De Morgan on a single product: one cube per complemented literal.
            let cube = &self.cubes[0];
            let cubes = cube
                .literals()
                .map(|(v, p)| Cube::from_literals(self.nvars, [(v, p.flipped())]))
                .collect();
            return Cover {
                nvars: self.nvars,
                cubes,
            };
        }
        let v = with_scratch(|s| {
            counts_into(&self.cubes, self.nvars, &mut s.pos, &mut s.neg);
            most_binate(self.nvars, &s.pos, &s.neg)
        });
        let comp_pos = self.cofactor(v, Phase::Pos).complement();
        let comp_neg = self.cofactor(v, Phase::Neg).complement();
        let mut cubes = Vec::with_capacity(comp_pos.len() + comp_neg.len());
        for c in comp_pos.cubes {
            if let Some(c2) = c.intersect(&Cube::from_literals(self.nvars, [(v, Phase::Pos)])) {
                cubes.push(c2);
            }
        }
        for c in comp_neg.cubes {
            if let Some(c2) = c.intersect(&Cube::from_literals(self.nvars, [(v, Phase::Neg)])) {
                cubes.push(c2);
            }
        }
        Cover {
            nvars: self.nvars,
            cubes,
        }
        .without_contained_cubes()
    }

    /// `true` iff `self` and `other` denote the same function.
    ///
    /// # Panics
    ///
    /// Panics if the covers live in different spaces.
    pub fn equivalent(&self, other: &Cover) -> bool {
        assert_eq!(self.nvars, other.nvars, "cover space mismatch");
        self.cubes.iter().all(|c| other.covers_cube(c))
            && other.cubes.iter().all(|c| self.covers_cube(c))
    }

    /// `true` iff `f ⊆ g` as sets of minterms.
    pub fn implies(&self, other: &Cover) -> bool {
        assert_eq!(self.nvars, other.nvars, "cover space mismatch");
        self.cubes.iter().all(|c| other.covers_cube(c))
    }

    /// Disjunction of two covers (cube lists concatenated; no
    /// simplification).
    pub fn or(&self, other: &Cover) -> Cover {
        assert_eq!(self.nvars, other.nvars, "cover space mismatch");
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        Cover {
            nvars: self.nvars,
            cubes,
        }
    }

    /// Conjunction of two covers (pairwise cube intersections; no
    /// simplification beyond dropping empty products).
    pub fn and(&self, other: &Cover) -> Cover {
        assert_eq!(self.nvars, other.nvars, "cover space mismatch");
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.intersect(b) {
                    cubes.push(c);
                }
            }
        }
        Cover {
            nvars: self.nvars,
            cubes,
        }
    }

    /// The truth table of the function as a bit vector of `2^nvars` entries
    /// (entry `m` is `f` at the assignment whose bit `i` is bit `i` of `m`).
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 24` (the table would be too large).
    pub fn truth_table(&self) -> Bits {
        assert!(
            self.nvars <= 24,
            "truth_table limited to 24 variables, got {}",
            self.nvars
        );
        let size = 1usize << self.nvars;
        let mut out = Bits::new(size);
        let mut assignment = Bits::new(self.nvars);
        for m in 0..size {
            for v in 0..self.nvars {
                assignment.set(v, (m >> v) & 1 == 1);
            }
            if self.eval(&assignment) {
                out.set(m, true);
            }
        }
        out
    }

    /// Number of minterms of the function (semantic, not the sum over
    /// cubes).
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 24`.
    pub fn count_minterms(&self) -> u64 {
        u64::from(self.truth_table().count_ones())
    }

    /// Identifiers of the variables actually used by some cube.
    pub fn support(&self) -> Vec<VarId> {
        let mut used = Bits::new(self.nvars);
        for c in &self.cubes {
            used = used.or(c.used());
        }
        used.iter_ones().map(VarId).collect()
    }

    /// Renders the cover with variable names from `vars`
    /// (`"w'xz + w'xy"`, `"0"` when empty).
    pub fn display<'a>(&'a self, vars: &'a VarTable) -> DisplayCover<'a> {
        DisplayCover { cover: self, vars }
    }
}

fn insert_maximal(set: &mut Vec<Cube>, cube: Cube) -> bool {
    if set.iter().any(|c| c.contains(&cube)) {
        return false;
    }
    set.retain(|c| !cube.contains(c));
    set.push(cube);
    true
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover({} vars, {:?})", self.nvars, self.cubes)
    }
}

/// Helper returned by [`Cover::display`].
#[derive(Debug)]
pub struct DisplayCover<'a> {
    cover: &'a Cover,
    vars: &'a VarTable,
}

impl fmt::Display for DisplayCover<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cover.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cover.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{}", c.display(self.vars))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars4() -> VarTable {
        VarTable::from_names(["w", "x", "y", "z"])
    }

    fn cover(text: &str, vars: &VarTable) -> Cover {
        Cover::parse(text, vars).unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        let vars = vars4();
        let f = cover("w'xz + xyz", &vars);
        assert_eq!(f.display(&vars).to_string(), "w'xz + xyz");
        assert_eq!(Cover::zero(4).display(&vars).to_string(), "0");
    }

    #[test]
    fn tautology_of_var_and_complement() {
        let vars = VarTable::from_names(["a"]);
        assert!(cover("a + a'", &vars).is_tautology());
        assert!(!cover("a", &vars).is_tautology());
        assert!(Cover::one(1).is_tautology());
        assert!(!Cover::zero(1).is_tautology());
    }

    #[test]
    fn tautology_needs_shannon() {
        // ab + a'b + ab' + a'b' is a tautology that requires splitting.
        let vars = VarTable::from_names(["a", "b"]);
        assert!(cover("ab + a'b + ab' + a'b'", &vars).is_tautology());
        assert!(!cover("ab + a'b + ab'", &vars).is_tautology());
    }

    #[test]
    fn covers_cube_joint_coverage() {
        // bc is covered by ab + a'c jointly? abc in ab; a'bc in a'c -> yes.
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("ab + a'c", &vars);
        let bc = Cube::parse("bc", &vars).unwrap();
        assert!(f.covers_cube(&bc));
        assert!(!f.single_cube_contains(&bc));
        let b = Cube::parse("b", &vars).unwrap();
        assert!(!f.covers_cube(&b));
    }

    #[test]
    fn prime_detection_and_expansion() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("ab + a'c + bc", &vars);
        let abc = Cube::parse("abc", &vars).unwrap();
        assert!(!f.is_prime(&abc));
        let prime = f.expand_to_prime(&abc);
        assert!(f.is_prime(&prime));
        assert!(prime.contains(&abc));
        assert!(f.is_prime(&Cube::parse("ab", &vars).unwrap()));
    }

    #[test]
    #[should_panic(expected = "non-implicant")]
    fn expand_non_implicant_panics() {
        let vars = VarTable::from_names(["a", "b"]);
        let f = cover("ab", &vars);
        f.expand_to_prime(&Cube::parse("a'b", &vars).unwrap());
    }

    #[test]
    fn all_primes_of_consensus_example() {
        // f = ab + a'c has primes ab, a'c, bc.
        let vars = VarTable::from_names(["a", "b", "c"]);
        let primes = cover("ab + a'c", &vars).all_primes();
        let want = ["ab", "a'c", "bc"]
            .iter()
            .map(|t| Cube::parse(t, &vars).unwrap())
            .collect::<Vec<_>>();
        assert_eq!(primes.len(), 3);
        for w in &want {
            assert!(primes.contains(w), "missing prime {w:?}");
        }
    }

    #[test]
    fn all_primes_needs_iteration() {
        // f = a'b' + bc' + ac: the consensus chain generates a'c', ab, b'c...
        let vars = VarTable::from_names(["a", "b", "c"]);
        let primes = cover("a'b' + bc' + ac", &vars).all_primes();
        assert_eq!(primes.len(), 6, "cyclic function has 6 primes: {primes:?}");
    }

    #[test]
    fn irredundant_removes_consensus_cube() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("ab + a'c + bc", &vars);
        let g = f.irredundant();
        assert_eq!(g.len(), 2);
        assert!(g.equivalent(&f));
    }

    #[test]
    fn without_contained_cubes_keeps_redundant_consensus() {
        // bc is redundant but not single-cube-contained: must be kept,
        // because dropping it would introduce a static-1 hazard (Fig. 3).
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("ab + a'c + bc + abc", &vars);
        let g = f.without_contained_cubes();
        assert_eq!(g.len(), 3);
        assert!(g.cubes().contains(&Cube::parse("bc", &vars).unwrap()));
    }

    #[test]
    fn complement_is_involutive_and_disjoint() {
        let vars = vars4();
        let f = cover("w'xz + w'xy + xyz", &vars);
        let g = f.complement();
        // f | g must be a tautology, f & g must be empty (cube
        // intersection already rules out zero-minterm products, so the AND
        // must literally hold no cubes).
        assert!(f.or(&g).is_tautology());
        assert!(f.and(&g).is_empty(), "complement overlaps function");
        assert!(g.complement().equivalent(&f));
    }

    #[test]
    fn equivalence_and_implication() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("ab + a'c", &vars);
        let g = cover("ab + a'c + bc", &vars);
        assert!(f.equivalent(&g));
        assert!(f.implies(&g));
        let h = cover("ab", &vars);
        assert!(h.implies(&f));
        assert!(!f.implies(&h));
        assert!(!f.equivalent(&h));
    }

    #[test]
    fn truth_table_and_counts() {
        let vars = VarTable::from_names(["a", "b"]);
        let f = cover("ab + a'b'", &vars); // XNOR
        let tt = f.truth_table();
        assert_eq!(tt.len(), 4);
        assert!(tt.get(0) && tt.get(3));
        assert!(!tt.get(1) && !tt.get(2));
        assert_eq!(f.count_minterms(), 2);
    }

    #[test]
    fn support_reports_used_vars() {
        let vars = vars4();
        let f = cover("w'x + xz", &vars);
        let s = f.support();
        assert_eq!(s, vec![VarId(0), VarId(1), VarId(3)]);
    }

    #[test]
    fn and_or_cofactor() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("ab", &vars);
        let g = cover("bc + a'", &vars);
        let h = f.and(&g);
        assert!(h.equivalent(&cover("abc", &vars)));
        let o = f.or(&g);
        assert_eq!(o.len(), 3);
        let cof = o.cofactor(VarId(0), Phase::Pos);
        assert!(cof.equivalent(&cover("b + bc", &vars)));
    }

    #[test]
    fn complement_of_constants() {
        assert!(Cover::zero(3).complement().is_tautology());
        assert!(Cover::one(3).complement().is_empty());
    }
}
