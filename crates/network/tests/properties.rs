//! Property tests for the network layer: decomposition preserves every
//! output function, partitioning covers every gate exactly once, and cone
//! expressions match the network they abstract.

use asyncmap_cube::{Bits, Cover, Cube, Phase, VarId, VarTable};
use asyncmap_network::{async_tech_decomp, partition, sync_tech_decomp, EquationSet, NodeKind};
use proptest::prelude::*;

const NVARS: usize = 4;

prop_compose! {
    fn arb_cube()(used in 1u8..16, phase in 0u8..16) -> Cube {
        let mut lits = Vec::new();
        for v in 0..NVARS {
            if (used >> v) & 1 == 1 {
                let p = if (phase >> v) & 1 == 1 { Phase::Pos } else { Phase::Neg };
                lits.push((VarId(v), p));
            }
        }
        Cube::from_literals(NVARS, lits)
    }
}

prop_compose! {
    fn arb_equations()(covers in prop::collection::vec(
        prop::collection::vec(arb_cube(), 1..6), 1..3)) -> Option<EquationSet> {
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        let mut eqs = Vec::new();
        for (i, cubes) in covers.into_iter().enumerate() {
            let cover = Cover::from_cubes(NVARS, cubes);
            if cover.is_tautology() {
                return None;
            }
            eqs.push((format!("f{i}"), cover));
        }
        Some(EquationSet::new(vars, eqs))
    }
}

fn assignment(m: usize) -> Bits {
    let mut b = Bits::new(NVARS);
    for v in 0..NVARS {
        b.set(v, (m >> v) & 1 == 1);
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decompositions_preserve_every_output(eqs in arb_equations()) {
        let Some(eqs) = eqs else { return Ok(()) };
        let async_net = async_tech_decomp(&eqs);
        let sync_net = sync_tech_decomp(&eqs);
        for m in 0..(1usize << NVARS) {
            let bits = assignment(m);
            for (name, cover) in &eqs.equations {
                let want = cover.eval(&bits);
                prop_assert_eq!(async_net.eval_output(name, &bits), want);
                prop_assert_eq!(sync_net.eval_output(name, &bits), want);
            }
        }
        // Simplification never grows the network.
        prop_assert!(sync_net.num_gates() <= async_net.num_gates());
    }

    #[test]
    fn partition_covers_every_gate_once(eqs in arb_equations()) {
        let Some(eqs) = eqs else { return Ok(()) };
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        let mut seen: Vec<_> = cones.iter().flat_map(|c| c.gates.clone()).collect();
        seen.sort();
        let dedup_len = {
            let mut s = seen.clone();
            s.dedup();
            s.len()
        };
        prop_assert_eq!(seen.len(), dedup_len, "a gate appears in two cones");
        prop_assert_eq!(seen.len(), net.num_gates());
        // Every output signal roots a cone — except a single-positive-
        // literal equation, whose output is the bare input wire itself.
        for (_, s) in net.outputs() {
            if matches!(net.node(*s), NodeKind::Input) {
                continue;
            }
            prop_assert!(cones.iter().any(|c| c.root == *s));
        }
    }

    #[test]
    fn cone_expressions_match_network(eqs in arb_equations()) {
        let Some(eqs) = eqs else { return Ok(()) };
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        for m in 0..(1usize << NVARS) {
            let bits = assignment(m);
            let values = net.eval(&bits);
            for cone in &cones {
                let (expr, _) = cone.to_expr(&net);
                let mut local = Bits::new(cone.leaves.len());
                for (i, leaf) in cone.leaves.iter().enumerate() {
                    local.set(i, values[leaf.index()]);
                }
                prop_assert_eq!(expr.eval(&local), values[cone.root.index()]);
            }
        }
    }

    #[test]
    fn cone_leaves_are_inputs_or_other_roots(eqs in arb_equations()) {
        let Some(eqs) = eqs else { return Ok(()) };
        let net = async_tech_decomp(&eqs);
        let cones = partition(&net);
        let roots: Vec<_> = cones.iter().map(|c| c.root).collect();
        for cone in &cones {
            for leaf in &cone.leaves {
                let is_input = matches!(net.node(*leaf), NodeKind::Input);
                prop_assert!(is_input || roots.contains(leaf));
            }
        }
    }
}
