//! Property tests for the library layer: the text format round-trips
//! arbitrary libraries, and hazard annotation is deterministic and
//! idempotent.

use asyncmap_library::{Cell, Library};
use proptest::prelude::*;

/// Strategy: a random cell built from a pool of realistic BFF shapes.
fn arb_cell(index: usize) -> impl Strategy<Value = Cell> {
    let shapes = [
        "a'",
        "(a*b)'",
        "(a + b)'",
        "a*b",
        "a + b",
        "(a*b + c)'",
        "((a + b)*c)'",
        "s*a + s'*b",
        "a*b + c*d",
        "(a + b)*(c + d)",
        "a*b' + a'*b",
        "t'*s'*a + t'*s*b + t*s'*c + t*s*d",
    ];
    (0..shapes.len(), 1u32..20, 1u32..10).prop_map(move |(shape, area, delay)| {
        let base = Cell::from_bff(
            &format!("CELL{index}_{shape}"),
            shapes[shape],
            f64::from(delay) / 10.0,
        );
        Cell::new(
            base.name(),
            base.pins().clone(),
            base.bff().clone(),
            f64::from(area),
            f64::from(delay) / 10.0,
        )
    })
}

fn arb_library() -> impl Strategy<Value = Library> {
    prop::collection::vec(any::<u8>(), 1..10).prop_flat_map(|picks| {
        let cells: Vec<_> = picks.iter().enumerate().map(|(i, _)| arb_cell(i)).collect();
        cells.prop_map(|cells| {
            let mut lib = Library::new("RAND");
            for c in cells {
                if lib.cell(c.name()).is_none() {
                    lib.add(c);
                }
            }
            lib
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_format_roundtrips(lib in arb_library()) {
        let text = lib.to_text();
        let back = Library::parse(&text).unwrap();
        prop_assert_eq!(back.len(), lib.len());
        for cell in lib.cells() {
            let loaded = back.cell(cell.name()).expect("cell survives");
            prop_assert_eq!(loaded.num_inputs(), cell.num_inputs());
            prop_assert_eq!(loaded.truth_table(), cell.truth_table());
            prop_assert!((loaded.area() - cell.area()).abs() < 1e-9);
            prop_assert!((loaded.delay() - cell.delay()).abs() < 1e-9);
        }
    }

    #[test]
    fn annotation_is_deterministic_and_stable(lib in arb_library()) {
        let mut a = lib.clone();
        let mut b = lib;
        a.annotate_hazards();
        b.annotate_hazards();
        let names_a: Vec<&str> = a.hazardous_cells().iter().map(|c| c.name()).collect();
        let names_b: Vec<&str> = b.hazardous_cells().iter().map(|c| c.name()).collect();
        prop_assert_eq!(names_a, names_b);
        // Idempotent.
        a.annotate_hazards();
        prop_assert!(a.is_annotated());
    }

    #[test]
    fn mux_shapes_are_the_hazardous_ones(lib in arb_library()) {
        let mut lib = lib;
        lib.annotate_hazards();
        for cell in lib.hazardous_cells() {
            // In the shape pool only the mux forms repeat a literal.
            prop_assert!(
                cell.name().contains("_7") || cell.name().contains("_11"),
                "unexpected hazardous cell {}",
                cell.name()
            );
        }
    }
}
