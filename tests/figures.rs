//! Integration tests reproducing every worked figure of the paper as an
//! executable assertion (the per-experiment index of DESIGN.md).

use asyncmap::hazard::{
    analyze_expr, find_mic_dyn_haz_2level, find_sic_hazards, hazards_subset,
    irredundant_intersections, static_1_analysis, static_1_complete, wave_eval, Hazard,
};
use asyncmap::prelude::*;
use asyncmap_cube::{Bits, VarTable};

fn bits_of(vars: &VarTable, ones: &[&str]) -> Bits {
    let mut b = Bits::new(vars.len());
    for name in ones {
        b.set(vars.lookup(name).unwrap().index(), true);
    }
    b
}

/// Figure 2a: `f = wxy + w'xz` has a single-input-change static 1-hazard
/// between `w'xyz` and `wxyz`, removed by the consensus gate `xyz`.
#[test]
fn figure2a_static1() {
    let vars = VarTable::from_names(["w", "x", "y", "z"]);
    let f = Cover::parse("wxy + w'xz", &vars).unwrap();
    let hz = static_1_analysis(&f);
    assert_eq!(hz.len(), 1);
    let Hazard::Static1 { span } = &hz[0] else {
        panic!()
    };
    assert_eq!(span, &Cube::parse("xyz", &vars).unwrap());
    let fixed = Cover::parse("wxy + w'xz + xyz", &vars).unwrap();
    assert!(static_1_analysis(&fixed).is_empty());
}

/// Figure 2b: `f = w'x' + y'z + w'y + xz` has a multi-input-change static
/// 1-hazard over the transition from `w'x'y'z` to `w'xyz` (the span `w'z`
/// is an uncovered prime).
#[test]
fn figure2b_mic_static1() {
    let vars = VarTable::from_names(["w", "x", "y", "z"]);
    let f = Cover::parse("w'x' + y'z + w'y + xz", &vars).unwrap();
    let spans: Vec<Cube> = static_1_complete(&f)
        .into_iter()
        .map(|h| match h {
            Hazard::Static1 { span } => span,
            _ => unreachable!(),
        })
        .collect();
    let alpha = Cube::parse("w'x'y'z", &vars).unwrap();
    let beta = Cube::parse("w'xyz", &vars).unwrap();
    let trans = alpha.supercube(&beta);
    assert!(
        spans.iter().any(|s| s.contains(&trans)),
        "transition not reported: {spans:?}"
    );
}

/// Figure 2c: the dynamic hazard taxonomy example — a gate can turn on and
/// off before the settling gate turns on.
#[test]
fn figure2c_dynamic() {
    let vars = VarTable::from_names(["w", "x", "y", "z"]);
    let f = Cover::parse("w'xz + w'xy + xyz", &vars).unwrap();
    assert_eq!(find_mic_dyn_haz_2level(&f).len(), 3);
}

/// Figure 3: Boolean matching proposes the two-cube cover for
/// `ab + a'c + bc`; the asynchronous matcher must reject it (it drops the
/// consensus cube and introduces a static 1-hazard).
#[test]
fn figure3_matching_rejection() {
    let mut vars = VarTable::new();
    let original = Expr::parse("a*b + a'*c + b*c", &mut vars).unwrap();
    let candidate = Expr::parse_in("a*b + a'*c", &vars).unwrap();
    assert!(!hazards_subset(&candidate, &original, vars.len()));
    // And the mapped-network hazard the paper shows: b=c=1, a changing.
    let one = bits_of(&vars, &["b", "c"]);
    let both = bits_of(&vars, &["a", "b", "c"]);
    assert!(wave_eval(&candidate, &one, &both).is_static_hazard());
    assert!(!wave_eval(&original, &one, &both).hazard);
}

/// Figure 4: `wx + x'y` (two-cube SOP) has a dynamic hazard for the burst
/// `w↓ x↑` with `y = 1`; the factored structure `(w + x')(x + y)` of the
/// same function does not.
#[test]
fn figure4_structures() {
    let mut vars = VarTable::new();
    let two_level = Expr::parse("w*x + x'*y", &mut vars).unwrap();
    let factored = Expr::parse_in("(w + x')*(x + y)", &vars).unwrap();
    let alpha = bits_of(&vars, &["w", "y"]);
    let beta = bits_of(&vars, &["x", "y"]);
    assert!(wave_eval(&two_level, &alpha, &beta).is_dynamic_hazard());
    assert_eq!(
        wave_eval(&factored, &alpha, &beta),
        asyncmap::hazard::Wave::FALL
    );
    // Functions equal, hazard behaviors incomparable in both directions.
    assert!(!hazards_subset(&two_level, &factored, vars.len()));
    assert!(!hazards_subset(&factored, &two_level, vars.len()));
}

/// Figure 6: static 0-hazards and s.i.c. dynamic hazards from vacuous
/// terms (McCluskey's examples).
#[test]
fn figure6_vacuous_hazards() {
    // 6a-style: (w + x)(x' + z) pulses on a steady-0 output at w=0, z=0.
    let mut vars = VarTable::new();
    let e = Expr::parse("(w + x)*(x' + z)", &mut vars).unwrap();
    let a = find_sic_hazards(&e, vars.len());
    assert_eq!(a.static0.len(), 1);
    // 6b-style: (w + y' + x')(xy + y'z) has a dynamic hazard on y with
    // w=0, x=z=1.
    let mut vars2 = VarTable::new();
    let e2 = Expr::parse("(w + y' + x')*(x*y + y'*z)", &mut vars2).unwrap();
    let a2 = find_sic_hazards(&e2, vars2.len());
    let y = vars2.lookup("y").unwrap();
    assert!(a2
        .dynamic_sic
        .iter()
        .any(|h| matches!(h, Hazard::DynamicSic { var, .. } if *var == y)));
}

/// Figure 9: an m.i.c. dynamic hazard that is fully characterized by a
/// static 1-hazard is not re-reported by `findMicDynHaz2level`.
#[test]
fn figure9_static1_subsumption() {
    let vars = VarTable::from_names(["w", "x", "y", "z"]);
    // wxy + w'xz: the two cubes are disjoint (conflict in w), so the
    // dynamic glitch through the missing consensus xyz is exactly the
    // static-1 hazard's signature.
    let f = Cover::parse("wxy + w'xz", &vars).unwrap();
    assert!(find_mic_dyn_haz_2level(&f).is_empty());
    assert_eq!(static_1_analysis(&f).len(), 1);
}

/// Figure 10 / Example 4.2.4: the worked `findMicDynHaz2level` trace.
#[test]
fn figure10_trace() {
    let vars = VarTable::from_names(["w", "x", "y", "z"]);
    let f = Cover::parse("w'xz + w'xy + xyz", &vars).unwrap();
    assert_eq!(
        irredundant_intersections(&f),
        vec![Cube::parse("w'xyz", &vars).unwrap()]
    );
    let hz = find_mic_dyn_haz_2level(&f);
    assert_eq!(hz.len(), 3, "one α × three β endpoints");
    for h in &hz {
        let Hazard::DynamicMic { zero_end, .. } = h else {
            panic!()
        };
        assert_eq!(zero_end, &Cube::parse("w'x'yz", &vars).unwrap());
    }
}

/// Figure 4 in the mapper: a library whose mux has the 4a structure may
/// only match subnetworks that already carry those hazards.
#[test]
fn figure4_in_the_mapper() {
    let mut vars = VarTable::new();
    let two_level = Expr::parse("w*x + x'*y", &mut vars).unwrap();
    let report = analyze_expr(&two_level, vars.len());
    assert!(!report.is_hazard_free());
    assert_eq!(report.static1.len(), 1);
}
