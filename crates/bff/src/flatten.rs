//! Hazard-preserving flattening of a BFF into two-level sum-of-products
//! form.
//!
//! Unger's Theorem 4.3 (paper §4.1.1) allows transforming a multi-level
//! expression to SOP with the associative, distributive and DeMorgan laws
//! while preserving static hazard behavior. Crucially this means:
//!
//! * **no absorption, no idempotence, no consensus** — redundant products
//!   are kept;
//! * products containing a variable and its complement (*vacuous terms*,
//!   e.g. `x·x'·y`) are reported, not silently dropped: they contribute no
//!   minterms, but they are exactly where static 0-hazards and
//!   single-input-change dynamic hazards come from (paper §4.1.2, §4.2.3).

use crate::Expr;
use asyncmap_cube::{Bits, Cover, Cube, Phase, VarId};

/// One product term of a flattened expression that contains at least one
/// variable in both phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VacuousProduct {
    /// All literals of the product, including the clashing pairs.
    pub literals: Vec<(VarId, Phase)>,
    /// Variables appearing in both phases.
    pub clashing: Vec<VarId>,
}

/// Result of hazard-preserving flattening: the proper (satisfiable) products
/// as a [`Cover`], plus the vacuous products.
#[derive(Debug, Clone)]
pub struct FlatSop {
    /// Products without clashing literals, in distribution order. Redundant
    /// cubes are preserved.
    pub cover: Cover,
    /// Products containing `x·x'` pairs.
    pub vacuous: Vec<VacuousProduct>,
}

#[derive(Debug, Clone)]
struct TriProduct {
    pos: Bits,
    neg: Bits,
}

impl TriProduct {
    fn unit(nvars: usize) -> Self {
        TriProduct {
            pos: Bits::new(nvars),
            neg: Bits::new(nvars),
        }
    }

    fn with_literal(nvars: usize, v: VarId, phase: Phase) -> Self {
        let mut p = Self::unit(nvars);
        match phase {
            Phase::Pos => p.pos.set(v.index(), true),
            Phase::Neg => p.neg.set(v.index(), true),
        }
        p
    }

    fn and(&self, other: &TriProduct) -> TriProduct {
        TriProduct {
            pos: self.pos.or(&other.pos),
            neg: self.neg.or(&other.neg),
        }
    }
}

fn distribute(e: &Expr, nvars: usize) -> Vec<TriProduct> {
    match e {
        Expr::Const(true) => vec![TriProduct::unit(nvars)],
        Expr::Const(false) => Vec::new(),
        Expr::Var(v) => vec![TriProduct::with_literal(nvars, *v, Phase::Pos)],
        Expr::Not(inner) => match &**inner {
            Expr::Var(v) => vec![TriProduct::with_literal(nvars, *v, Phase::Neg)],
            other => unreachable!("flatten input not in NNF: Not({other:?})"),
        },
        Expr::Or(es) => es.iter().flat_map(|t| distribute(t, nvars)).collect(),
        Expr::And(es) => {
            let mut acc = vec![TriProduct::unit(nvars)];
            for t in es {
                let rhs = distribute(t, nvars);
                let mut next = Vec::with_capacity(acc.len() * rhs.len());
                for a in &acc {
                    for b in &rhs {
                        next.push(a.and(b));
                    }
                }
                acc = next;
            }
            acc
        }
    }
}

/// Flattens `expr` into two-level SOP form over a space of `nvars`
/// variables using only hazard-preserving laws (DeMorgan at the leaves via
/// NNF, associativity, distribution). See the module docs for what is and
/// is not preserved.
///
/// # Panics
///
/// Panics if the expression mentions a variable with index `>= nvars`.
/// # Examples
///
/// ```
/// use asyncmap_bff::{flatten, Expr};
/// use asyncmap_cube::VarTable;
///
/// let mut vars = VarTable::new();
/// let e = Expr::parse("(w + y')*(x + y)", &mut vars)?;
/// let flat = flatten(&e, vars.len());
/// assert_eq!(flat.cover.len(), 3);   // wx, wy, y'x
/// assert_eq!(flat.vacuous.len(), 1); // y'y is kept, not dropped
/// # Ok::<(), asyncmap_bff::ParseBffError>(())
/// ```
pub fn flatten(expr: &Expr, nvars: usize) -> FlatSop {
    let nnf = expr.to_nnf().simplify_assoc();
    flatten_nnf(&nnf, nvars)
}

/// A collapse trace for one hazard-preserving flattening: enough evidence
/// for an independent checker ([`asyncmap-audit`]) to replay the
/// transformation without calling it — the source expression, the
/// NNF/associative normal form actually distributed, and the claimed
/// product count (proper cubes plus vacuous products).
///
/// [`asyncmap-audit`]: https://docs.rs/asyncmap-audit
#[derive(Debug, Clone)]
pub struct FlattenTrace {
    /// The expression handed to [`flatten`].
    pub source: Expr,
    /// `source.to_nnf().simplify_assoc()` — DeMorgan pushed to the leaves,
    /// nested same-op nodes regrouped.
    pub nnf: Expr,
    /// Total products produced by distribution: `cover.len() +
    /// vacuous.len()`.
    pub products: usize,
}

/// [`flatten`], additionally returning the [`FlattenTrace`] certificate
/// describing the collapse.
pub fn flatten_traced(expr: &Expr, nvars: usize) -> (FlatSop, FlattenTrace) {
    let nnf = expr.to_nnf().simplify_assoc();
    let flat = flatten_nnf(&nnf, nvars);
    let trace = FlattenTrace {
        source: expr.clone(),
        products: flat.cover.len() + flat.vacuous.len(),
        nnf,
    };
    (flat, trace)
}

fn flatten_nnf(nnf: &Expr, nvars: usize) -> FlatSop {
    let products = distribute(nnf, nvars);
    let mut cover = Cover::zero(nvars);
    let mut vacuous = Vec::new();
    for p in products {
        let clash = p.pos.and(&p.neg);
        if clash.is_zero() {
            let used = p.pos.or(&p.neg);
            cover.push(Cube::from_bits(used, p.pos));
        } else {
            let mut literals = Vec::new();
            for v in p.pos.iter_ones() {
                literals.push((VarId(v), Phase::Pos));
            }
            for v in p.neg.iter_ones() {
                literals.push((VarId(v), Phase::Neg));
            }
            literals.sort_by_key(|&(v, _)| v);
            vacuous.push(VacuousProduct {
                literals,
                clashing: clash.iter_ones().map(VarId).collect(),
            });
        }
    }
    FlatSop { cover, vacuous }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    fn flat(text: &str, vars: &mut VarTable) -> FlatSop {
        let e = Expr::parse(text, vars).unwrap();
        flatten(&e, vars.len().max(8))
    }

    #[test]
    fn two_level_passes_through() {
        let mut vars = VarTable::new();
        let f = flat("a*b + a'*c", &mut vars);
        assert_eq!(f.cover.len(), 2);
        assert!(f.vacuous.is_empty());
    }

    #[test]
    fn factored_form_distributes() {
        let mut vars = VarTable::new();
        // (w + y')(x + y) = wx + wy + y'x + y'y
        let f = flat("(w + y')*(x + y)", &mut vars);
        assert_eq!(f.cover.len(), 3);
        assert_eq!(f.vacuous.len(), 1, "y'y is a vacuous product");
        assert_eq!(f.vacuous[0].clashing.len(), 1);
    }

    #[test]
    fn flatten_preserves_function() {
        let mut vars = VarTable::new();
        let e = Expr::parse("(a + b*(c + d'))' + a*d", &mut vars).unwrap();
        let f = flatten(&e, vars.len());
        for m in 0..(1usize << vars.len()) {
            let mut bits = Bits::new(vars.len());
            for v in 0..vars.len() {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(e.eval(&bits), f.cover.eval(&bits), "mismatch at {m:#b}");
        }
    }

    #[test]
    fn redundant_products_are_kept() {
        let mut vars = VarTable::new();
        // a(b + b) distributes to ab + ab: idempotence must NOT be applied.
        let f = flat("a*(b + b)", &mut vars);
        assert_eq!(f.cover.len(), 2);
        assert_eq!(f.cover.cubes()[0], f.cover.cubes()[1]);
    }

    #[test]
    fn demorgan_through_complement() {
        let mut vars = VarTable::new();
        // (ab)' = a' + b'
        let f = flat("(a*b)'", &mut vars);
        assert_eq!(f.cover.len(), 2);
        assert!(f.vacuous.is_empty());
    }

    #[test]
    fn mccluskey_figure6_circuit_has_vacuous_terms() {
        // Paper Figure 6: f = (w + y')(xy + y'z) has the product y'y z... the
        // distribution yields wxy + wy'z + y'xy + y'y'z; y'xy is vacuous.
        let mut vars = VarTable::new();
        let f = flat("(w + y')*(x*y + y'*z)", &mut vars);
        assert_eq!(f.vacuous.len(), 1);
        let vac = &f.vacuous[0];
        let y = vars.lookup("y").unwrap();
        assert_eq!(vac.clashing, vec![y]);
    }

    #[test]
    fn constants_flatten() {
        let mut vars = VarTable::new();
        let t = flat("1", &mut vars);
        assert_eq!(t.cover.len(), 1);
        assert!(t.cover.cubes()[0].is_universe());
        let z = flat("0", &mut vars);
        assert!(z.cover.is_empty());
    }
}
