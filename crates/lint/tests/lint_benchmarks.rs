//! The lint pass against real mapper output: zero findings on every
//! Table 5 benchmark mapped with hazard filtering on, and guaranteed
//! detection of deliberately corrupted bindings.
//!
//! The corruption tests re-derive their ground truth (is the injected
//! binding actually a violation?) with their own subnetwork walk, so the
//! "lint must flag it" assertion does not depend on any lint-crate
//! internals.

use asyncmap_bff::Expr;
use asyncmap_core::{async_tmap, truth, Instance, MapOptions, MappedDesign};
use asyncmap_cube::{Cover, VarId, VarTable};
use asyncmap_hazard::hazards_subset;
use asyncmap_library::{builtin, Library};
use asyncmap_lint::lint_mapped_design;
use asyncmap_network::{Cone, EquationSet, GateOp, Network, NodeKind, SignalId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// The paper's Table 5 pairings: scsi and abcs map to LSI9K, pe-send-ifc
/// and dme to Actel.
#[allow(clippy::type_complexity)]
const BENCHES: [(&str, fn() -> Library); 4] = [
    ("scsi", builtin::lsi9k),
    ("abcs", builtin::lsi9k),
    ("pe-send-ifc", builtin::actel),
    ("dme", builtin::actel),
];

fn mapped_bench(idx: usize) -> (MappedDesign, Library) {
    let (name, lib_fn) = BENCHES[idx % BENCHES.len()];
    let mut lib = lib_fn();
    lib.annotate_hazards();
    let eqs = asyncmap_burst::benchmark(name);
    let opts = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };
    let design = async_tmap(&eqs, &lib, &opts).expect("benchmark maps");
    (design, lib)
}

/// Test-local ground truth for one binding: the subnetwork expression under
/// `inst` over its reached cut space, built by an independent walk (cut at
/// the cone's leaves and the other instances' outputs).
fn subnet_of(
    net: &Network,
    cone: &Cone,
    instances: &[Instance],
    inst: &Instance,
) -> Option<(Expr, HashMap<SignalId, usize>)> {
    let mut cut: HashSet<SignalId> = cone.leaves.iter().copied().collect();
    cut.extend(
        instances
            .iter()
            .map(|i| i.output)
            .filter(|&o| o != inst.output),
    );
    let mut order: Vec<SignalId> = Vec::new();
    let mut var_of: HashMap<SignalId, usize> = HashMap::new();
    fn go(
        net: &Network,
        s: SignalId,
        root: SignalId,
        cut: &HashSet<SignalId>,
        order: &mut Vec<SignalId>,
        var_of: &mut HashMap<SignalId, usize>,
    ) -> Option<Expr> {
        if s != root && cut.contains(&s) {
            let v = *var_of.entry(s).or_insert_with(|| {
                order.push(s);
                order.len() - 1
            });
            return Some(Expr::Var(VarId(v)));
        }
        match net.node(s) {
            NodeKind::Input => None, // escaped the cone: not a valid walk
            NodeKind::Gate { op, fanin } => {
                let args: Vec<Expr> = fanin
                    .iter()
                    .map(|&f| go(net, f, root, cut, order, var_of))
                    .collect::<Option<_>>()?;
                Some(match op {
                    GateOp::And => Expr::and(args),
                    GateOp::Or => Expr::or(args),
                    GateOp::Inv => args.into_iter().next()?.not(),
                    GateOp::Buf => args.into_iter().next()?,
                })
            }
        }
    }
    let expr = go(net, inst.output, inst.output, &cut, &mut order, &mut var_of)?;
    Some((expr, var_of))
}

fn bind_cell(cell_bff: &Expr, inst: &Instance, var_of: &HashMap<SignalId, usize>) -> Option<Expr> {
    let args: Vec<Expr> = inst
        .inputs
        .iter()
        .map(|s| var_of.get(s).map(|&v| Expr::Var(VarId(v))))
        .collect::<Option<_>>()?;
    fn sub(bff: &Expr, args: &[Expr]) -> Expr {
        match bff {
            Expr::Const(b) => Expr::Const(*b),
            Expr::Var(v) => args[v.index()].clone(),
            Expr::Not(e) => sub(e, args).not(),
            Expr::And(es) => Expr::and(es.iter().map(|e| sub(e, args)).collect()),
            Expr::Or(es) => Expr::or(es.iter().map(|e| sub(e, args)).collect()),
        }
    }
    Some(sub(cell_bff, &args))
}

fn truth_eq(a: &Expr, b: &Expr, n: usize) -> bool {
    if n <= 6 {
        truth::truth6_of(a, n) == truth::truth6_of(b, n)
    } else {
        truth::truth_table_words(a, n) == truth::truth_table_words(b, n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every Table 5 benchmark, mapped with hazard filtering on, lints
    /// clean — the standing gate every future mapper change must keep.
    #[test]
    fn benchmarks_lint_clean(idx in 0usize..4) {
        let (design, lib) = mapped_bench(idx);
        let report = lint_mapped_design(&design, &lib);
        prop_assert!(
            report.is_clean(),
            "{} ({}): {}",
            BENCHES[idx].0,
            lib.name(),
            report.render()
        );
        prop_assert_eq!(report.counters.cones, design.cones.len());
        prop_assert_eq!(report.counters.function_checks, design.num_instances());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Swapping a random binding's cell for a random same-arity cell must
    /// be flagged whenever the replacement is actually wrong — wrong
    /// function, or hazards the covered subnetwork lacks (Theorem 3.2).
    /// Legal replacements (equivalent and hazard-contained) must stay
    /// clean: the lint may not cry wolf either.
    #[test]
    fn corrupted_binding_is_always_detected(idx in 0usize..4, seed in any::<u64>()) {
        let (mut design, lib) = mapped_bench(idx);
        let total: usize = design.num_instances();
        let mut k = (seed as usize) % total;
        let (ci, ii) = 'found: {
            for (ci, cover) in design.covers.iter().enumerate() {
                if k < cover.instances.len() {
                    break 'found (ci, k);
                }
                k -= cover.instances.len();
            }
            unreachable!("index within total instance count");
        };
        let arity = design.covers[ci].instances[ii].inputs.len();
        let same_arity: Vec<usize> = lib
            .cells()
            .iter()
            .enumerate()
            .filter(|(j, c)| {
                c.num_inputs() == arity && *j != design.covers[ci].instances[ii].cell_index
            })
            .map(|(j, _)| j)
            .collect();
        if same_arity.is_empty() {
            return Ok(()); // no same-arity alternative to inject
        }
        let new_cell = same_arity[(seed >> 32) as usize % same_arity.len()];

        // Ground truth before mutating: is the replacement legal?
        let cone = &design.cones[ci];
        let inst = &design.covers[ci].instances[ii];
        let (subnet, var_of) =
            subnet_of(&design.subject, cone, &design.covers[ci].instances, inst)
                .expect("mapper-produced binding walks cleanly");
        let n = var_of.len();
        let bound = bind_cell(lib.cells()[new_cell].bff(), inst, &var_of)
            .expect("same signals still bound");
        let legal = truth_eq(&bound, &subnet, n) && hazards_subset(&bound, &subnet, n);

        design.covers[ci].instances[ii].cell_index = new_cell;
        // Keep the area bookkeeping consistent with the swapped cell so the
        // function/hazard checks — not the area re-add — decide the verdict.
        design.covers[ci].area = design.covers[ci]
            .instances
            .iter()
            .map(|i| lib.cells()[i.cell_index].area())
            .sum();
        let buf_area = lib
            .cells()
            .iter()
            .filter(|c| c.name().starts_with("BUF"))
            .map(|c| c.area())
            .min_by(f64::total_cmp)
            .unwrap_or(0.0);
        design.area = design.covers.iter().map(|c| c.area).sum::<f64>()
            + design.stats.buffers as f64 * buf_area;
        let report = lint_mapped_design(&design, &lib);
        if legal {
            prop_assert!(
                report.is_clean(),
                "legal replacement by {} flagged: {}",
                lib.cells()[new_cell].name(),
                report.render()
            );
        } else {
            prop_assert!(
                !report.is_clean(),
                "violating replacement by {} on {} went undetected",
                lib.cells()[new_cell].name(),
                BENCHES[idx].0
            );
        }
    }
}

/// The canonical Theorem 3.2 corruption: a hazardous mux covering a
/// consensus-protected (hazard-free) cluster of the same function. The
/// function certificate passes — only the hazard re-check can catch it,
/// and it must.
#[test]
fn injected_mux_on_hazard_free_cluster_is_flagged() {
    let mut lib = builtin::cmos3();
    lib.annotate_hazards();
    let vars = VarTable::from_names(["s", "a", "b"]);
    let f = Cover::parse("sa + s'b + ab", &vars).unwrap();
    let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
    let opts = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };
    let mut design = async_tmap(&eqs, &lib, &opts).expect("maps");
    assert!(lint_mapped_design(&design, &lib).is_clean());

    let (mux_index, mux) = lib
        .cells()
        .iter()
        .enumerate()
        .find(|(_, c)| c.name().starts_with("MUX2"))
        .expect("cmos3 has a mux");
    assert!(!mux.compute_hazards().is_hazard_free());

    // Bind the mux's pins to the primary inputs by name (its BFF is
    // s*a + s'*b over its own pin table).
    let net = &design.subject;
    let by_name: HashMap<&str, SignalId> = net.inputs().iter().map(|&s| (net.name(s), s)).collect();
    let pin_signals: Vec<SignalId> = mux.pins().iter().map(|(_, name)| by_name[name]).collect();

    // Replace the output cone's entire cover with the single mux: same
    // function (the consensus cube ab is redundant), strictly more
    // hazards than the protected structure.
    let root_cone = design
        .cones
        .iter()
        .position(|c| net.outputs().iter().any(|(_, s)| *s == c.root))
        .expect("output cone");
    let root = design.cones[root_cone].root;
    let inst_areas: f64 = mux.area();
    design.covers[root_cone].instances = vec![Instance {
        cell_index: mux_index,
        output: root,
        inputs: pin_signals,
    }];
    design.covers[root_cone].area = inst_areas;

    // Keep the total-area invariant intact so the only findings are the
    // hazard ones under test.
    design.area = design.covers.iter().map(|c| c.area).sum::<f64>();

    let report = lint_mapped_design(&design, &lib);
    assert!(!report.is_clean(), "mux injection went undetected");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code.starts_with("theorem32.")),
        "expected a theorem32 finding, got: {}",
        report.render()
    );
}

/// Structural corruptions — the non-hazard half of the checker.
#[test]
fn structural_corruptions_are_flagged() {
    let (design, lib) = mapped_bench(3); // dme on actel, the smallest
    let base = lint_mapped_design(&design, &lib);
    assert!(base.is_clean());

    // Drop an instance: its covered gates become uncovered.
    let (mut d, lib) = mapped_bench(3);
    let ci = d
        .covers
        .iter()
        .position(|c| c.instances.len() > 1)
        .expect("some multi-instance cover");
    let dropped = d.covers[ci].instances.pop().unwrap();
    let report = lint_mapped_design(&d, &lib);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code.starts_with("coverage.")
                || f.code == "structure.undriven"
                || f.code == "structure.cover-area"),
        "dropping instance {:?} went undetected: {}",
        dropped.output,
        report.render()
    );

    // Misreport the area.
    let (mut d, lib) = mapped_bench(3);
    d.area += 42.0;
    let report = lint_mapped_design(&d, &lib);
    assert!(report
        .findings
        .iter()
        .any(|f| f.code == "structure.total-area"));

    // Re-route a pin to a signal outside the covered subnetwork.
    let (mut d, lib) = mapped_bench(3);
    let extra_input = *d.subject.inputs().last().unwrap();
    let ci = d
        .covers
        .iter()
        .position(|c| c.instances.iter().any(|i| !i.inputs.contains(&extra_input)))
        .expect("an instance not using the last input");
    let ii = d.covers[ci]
        .instances
        .iter()
        .position(|i| !i.inputs.contains(&extra_input))
        .unwrap();
    d.covers[ci].instances[ii].inputs[0] = extra_input;
    let report = lint_mapped_design(&d, &lib);
    assert!(
        !report.is_clean(),
        "pin re-route went undetected: {}",
        report.render()
    );
}

/// The mapper binds hazardous cells (muxes) where Theorem 3.2 allows it;
/// the re-verification pass must actually exercise those bindings.
#[test]
fn theorem32_rechecks_run_on_hazardous_bindings() {
    let mut lib = builtin::cmos3();
    lib.annotate_hazards();
    let vars = VarTable::from_names(["s", "a", "b"]);
    // The bare mux function, no consensus protection: the subnetwork has
    // the mux's hazards, so the mapper may (and does, on area) take MUX2.
    let f = Cover::parse("sa + s'b", &vars).unwrap();
    let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
    let opts = MapOptions {
        threads: 1,
        ..MapOptions::default()
    };
    let design = async_tmap(&eqs, &lib, &opts).expect("maps");
    let report = lint_mapped_design(&design, &lib);
    assert!(report.is_clean(), "{}", report.render());
    if design.covers.iter().any(|c| {
        c.instances
            .iter()
            .any(|i| !lib.cells()[i.cell_index].compute_hazards().is_hazard_free())
    }) {
        assert!(report.counters.theorem32_checks > 0);
    }
}

/// A warm cache must reuse every cone that linted perfectly quietly and
/// still produce an identical verdict — the reuse contract behind the
/// incremental (ECO) lint path.
#[test]
fn warm_cache_reuses_quiet_cones_and_keeps_the_verdict() {
    let (design, lib) = mapped_bench(0);
    let mut cache = asyncmap_lint::LintCache::new();
    let cold = asyncmap_lint::lint_mapped_design_cached(&design, &lib, &mut cache);
    assert!(cold.is_clean(), "{}", cold.render());
    let warm = asyncmap_lint::lint_mapped_design_cached(&design, &lib, &mut cache);
    assert!(warm.is_clean(), "{}", warm.render());
    assert_eq!(warm.findings.len(), cold.findings.len());
    // Notes are re-produced, never cached away: a noisy cone reruns.
    assert_eq!(warm.notes.len(), cold.notes.len());
    // The cold pass may already reuse within-run duplicates; the warm pass
    // reuses at least those plus every quiet cone seen in the cold pass.
    assert!(warm.counters.cones_reused > cold.counters.cones_reused);
    if cold.notes.is_empty() {
        assert_eq!(warm.counters.cones_reused, design.cones.len());
    }
    // The cached pass must also agree with the uncached entry point.
    let reference = lint_mapped_design(&design, &lib);
    assert_eq!(reference.findings.len(), warm.findings.len());
    assert_eq!(reference.notes.len(), warm.notes.len());
}

/// Corrupting a cover after the cache was warmed on the clean design must
/// still be flagged: the corrupted cone's key no longer matches any cached
/// clean pair, so its checks rerun in full.
#[test]
fn warm_cache_does_not_mask_a_corrupted_cover() {
    let (mut design, lib) = mapped_bench(0);
    let mut cache = asyncmap_lint::LintCache::new();
    let cold = asyncmap_lint::lint_mapped_design_cached(&design, &lib, &mut cache);
    assert!(cold.is_clean(), "{}", cold.render());
    // Drop a non-root instance from some multi-instance cover: its gates
    // become uncovered, a per-cone coverage violation.
    let ci = design
        .covers
        .iter()
        .position(|c| c.instances.len() >= 2)
        .expect("some cover uses two cells");
    design.covers[ci].instances.remove(0);
    let warm = asyncmap_lint::lint_mapped_design_cached(&design, &lib, &mut cache);
    assert!(
        !warm.is_clean(),
        "corrupted cover escaped the warm-cache lint"
    );
    // Every other cone is still eligible for reuse.
    assert!(warm.counters.cones_reused > 0);
}
