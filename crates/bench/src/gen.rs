//! Seeded deterministic generator of large multi-cone workloads.
//!
//! The four built-in Table 5 benchmarks top out at a few hundred subject
//! gates, which is too small to exercise parallel covering, verdict-cache
//! pressure, or the word-parallel kernels. [`generate`] produces
//! burst-mode-shaped designs — many independent SOP equations over a
//! shared input space, exactly what a burst-mode synthesizer hands the
//! mapper — whose decomposed networks scale to 10⁵–10⁶ base gates.
//!
//! Determinism is a hard requirement: the generator is driven by a single
//! [`StdRng`] stream seeded from [`GenSpec::seed`], so the same spec
//! always yields the same [`EquationSet`] (and therefore the same mapped
//! design fingerprint, regardless of mapper thread count). Benchmarks and
//! CI smoke runs reference designs purely by `(gates, inputs, seed)`.

use asyncmap_cube::{Cover, Cube, Phase, VarId, VarTable};
use asyncmap_network::EquationSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated design. The defaults give cones comparable
/// in shape to the built-in benchmarks (2–5 cubes of 2–4 literals per
/// output) over a 16-input space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenSpec {
    /// Approximate number of base gates after `async_tech_decomp`. The
    /// generator adds whole equations until its gate estimate reaches
    /// this target, so the realized count overshoots by at most one
    /// equation (a few dozen gates).
    pub target_gates: usize,
    /// Number of shared primary inputs (4..=24).
    pub inputs: usize,
    /// RNG seed; every generated artifact is a pure function of the spec.
    pub seed: u64,
}

impl GenSpec {
    /// A spec with the default input count and seed.
    pub fn new(target_gates: usize) -> Self {
        GenSpec {
            target_gates,
            inputs: 16,
            seed: 0xA5_7C,
        }
    }

    /// Canonical benchmark name of this spec, e.g. `gen50000-s42`.
    pub fn name(&self) -> String {
        format!("gen{}-s{}", self.target_gates, self.seed)
    }
}

/// Generates a deterministic multi-cone equation set for `spec`.
///
/// Each equation is a random non-tautological SOP cover; decomposition
/// turns each into its own cone (plus shared input-inverter cones), so a
/// 50 000-gate spec yields on the order of a thousand independent cones —
/// enough work for every mapper thread and enough distinct cone functions
/// to pressure the hazard-verdict cache.
///
/// # Panics
///
/// Panics if `spec.inputs` is outside `4..=24`.
pub fn generate(spec: &GenSpec) -> EquationSet {
    assert!(
        (4..=24).contains(&spec.inputs),
        "generator wants 4..=24 inputs, got {}",
        spec.inputs
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut vars = VarTable::new();
    for i in 0..spec.inputs {
        vars.intern(&format!("i{i}"));
    }
    let mut equations: Vec<(String, Cover)> = Vec::new();
    // Gate estimate mirroring async_tech_decomp: an l-literal cube costs
    // l-1 AND gates, a c-cube cover c-1 OR gates, and each input's first
    // negative literal one shared inverter.
    let mut est_gates = 0usize;
    let mut inverted = vec![false; spec.inputs];
    while est_gates < spec.target_gates {
        let ncubes = 2 + rng.random_range(0..4usize);
        let mut cubes = Vec::with_capacity(ncubes);
        for _ in 0..ncubes {
            let nlits = 2 + rng.random_range(0..3usize).min(spec.inputs - 2);
            let mut literals: Vec<(VarId, Phase)> = Vec::with_capacity(nlits);
            while literals.len() < nlits {
                let v = rng.random_range(0..spec.inputs);
                if literals.iter().any(|(w, _)| w.index() == v) {
                    continue;
                }
                let phase = if rng.random::<bool>() {
                    Phase::Pos
                } else {
                    Phase::Neg
                };
                literals.push((VarId(v), phase));
            }
            cubes.push(Cube::from_literals(spec.inputs, literals));
        }
        let cover = Cover::from_cubes(spec.inputs, cubes);
        if cover.is_tautology() {
            continue;
        }
        for cube in cover.cubes() {
            est_gates += cube.num_literals() as usize - 1;
            for (v, phase) in cube.literals() {
                if !phase.is_pos() && !inverted[v.index()] {
                    inverted[v.index()] = true;
                    est_gates += 1;
                }
            }
        }
        est_gates += cover.len() - 1;
        equations.push((format!("o{}", equations.len()), cover));
    }
    EquationSet::new(vars, equations)
}

/// Serializes an equation set as token SOP text: an `inputs` header line
/// followed by one `name = lit*lit' + ...` line per equation. The format
/// round-trips through [`parse_design`] and is deliberately restricted to
/// constructs [`Cover::parse_tokens`] understood from the first release,
/// so a dump can be replayed against older mapper builds for fair
/// end-to-end comparisons.
pub fn emit_design(eqs: &EquationSet) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("inputs");
    for (_, name) in eqs.inputs.iter() {
        out.push(' ');
        out.push_str(name);
    }
    out.push('\n');
    for (name, cover) in &eqs.equations {
        let _ = writeln!(out, "{name} = {}", cover_tokens(cover, &eqs.inputs));
    }
    out
}

/// Token-SOP text of one cover (`a*b' + c`), shared by the design dump and
/// the edit dump in [`crate::edit`].
pub(crate) fn cover_tokens(cover: &Cover, vars: &VarTable) -> String {
    let mut out = String::new();
    for (ci, cube) in cover.cubes().iter().enumerate() {
        if ci > 0 {
            out.push_str(" + ");
        }
        for (li, (v, phase)) in cube.literals().enumerate() {
            if li > 0 {
                out.push('*');
            }
            out.push_str(vars.name(v));
            if !phase.is_pos() {
                out.push('\'');
            }
        }
    }
    out
}

/// Parses text produced by [`emit_design`] back into an [`EquationSet`].
///
/// # Panics
///
/// Panics on malformed input — the format is an internal interchange
/// format, not a user-facing one.
pub fn parse_design(text: &str) -> EquationSet {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().expect("empty design dump");
    let mut words = header.split_whitespace();
    assert_eq!(
        words.next(),
        Some("inputs"),
        "dump must start with `inputs`"
    );
    let mut vars = VarTable::new();
    for name in words {
        vars.intern(name);
    }
    let equations = lines
        .map(|line| {
            let (name, expr) = line.split_once('=').expect("equation line without `=`");
            let cover = Cover::parse_tokens(expr.trim(), &vars).expect("bad cube tokens");
            (name.trim().to_string(), cover)
        })
        .collect();
    EquationSet::new(vars, equations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_equations() {
        let spec = GenSpec {
            target_gates: 500,
            inputs: 12,
            seed: 99,
        };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.equations.len(), b.equations.len());
        for ((na, ca), (nb, cb)) in a.equations.iter().zip(&b.equations) {
            assert_eq!(na, nb);
            assert!(ca.equivalent(cb));
            assert_eq!(ca.cubes(), cb.cubes());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenSpec {
            target_gates: 300,
            inputs: 12,
            seed: 1,
        });
        let b = generate(&GenSpec {
            target_gates: 300,
            inputs: 12,
            seed: 2,
        });
        let same = a.equations.len() == b.equations.len()
            && a.equations
                .iter()
                .zip(&b.equations)
                .all(|((_, ca), (_, cb))| ca.cubes() == cb.cubes());
        assert!(!same, "independent seeds produced identical designs");
    }

    #[test]
    fn emit_parse_round_trip() {
        let spec = GenSpec {
            target_gates: 400,
            inputs: 10,
            seed: 7,
        };
        let eqs = generate(&spec);
        let back = parse_design(&emit_design(&eqs));
        assert_eq!(eqs.inputs.len(), back.inputs.len());
        assert_eq!(eqs.equations.len(), back.equations.len());
        for ((na, ca), (nb, cb)) in eqs.equations.iter().zip(&back.equations) {
            assert_eq!(na, nb);
            assert_eq!(ca.cubes(), cb.cubes());
        }
    }

    #[test]
    fn gate_target_is_reached() {
        let spec = GenSpec::new(2_000);
        let eqs = generate(&spec);
        let net = asyncmap_network::async_tech_decomp(&eqs);
        // The estimate counts exactly what async_tech_decomp emits, so
        // the realized network can overshoot by at most one equation.
        assert!(net.num_gates() >= spec.target_gates);
        assert!(net.num_gates() < spec.target_gates + 200);
    }
}
