//! Equivalence of the dominance-pruned interned-cut enumerator against the
//! legacy recursive enumerator — per root, after cover selection the chosen
//! instances must be identical — plus round-trip properties of the NPN/P
//! canonical form backing the match memo, and memo-on vs memo-off match
//! agreement through the covering API.

use asyncmap_core::truth;
use asyncmap_core::{cover_cone_with, ClusterLimits, HazardPolicy, Matcher, Objective};
use asyncmap_cube::{Cover, Cube, Phase, VarId, VarTable};
use asyncmap_library::builtin;
use asyncmap_network::{async_tech_decomp, partition, EquationSet};
use proptest::prelude::*;

const NVARS: usize = 4;

prop_compose! {
    fn arb_cube()(used in 1u8..16, phase in 0u8..16) -> Cube {
        let mut lits = Vec::new();
        for v in 0..NVARS {
            if (used >> v) & 1 == 1 {
                let p = if (phase >> v) & 1 == 1 { Phase::Pos } else { Phase::Neg };
                lits.push((VarId(v), p));
            }
        }
        Cube::from_literals(NVARS, lits)
    }
}

prop_compose! {
    fn arb_cover()(cubes in prop::collection::vec(arb_cube(), 1..5)) -> Cover {
        Cover::from_cubes(NVARS, cubes)
    }
}

/// Permutation of `0..n` driven by a proptest byte stream (Fisher–Yates).
fn perm_from_stream(n: usize, stream: &[u8]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = stream[i % stream.len()] as usize % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cut_and_legacy_covers_agree(cover in arb_cover(), delay_objective in any::<bool>()) {
        if cover.is_tautology() {
            return Ok(());
        }
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), cover.clone())]);
        let net = async_tech_decomp(&eqs);
        let objective = if delay_objective { Objective::Delay } else { Objective::Area };
        let new_limits = ClusterLimits::default();
        let legacy_limits = ClusterLimits { legacy_enum: true, ..ClusterLimits::default() };
        // SubsetCheck exercises the hazard filter (which disables pruning);
        // Ignore exercises dominance pruning itself.
        for (mut lib, policy) in [
            (builtin::lsi9k(), HazardPolicy::SubsetCheck),
            (builtin::actel(), HazardPolicy::SubsetCheck),
            (builtin::lsi9k(), HazardPolicy::Ignore),
            (builtin::gdt(), HazardPolicy::Ignore),
        ] {
            lib.annotate_hazards();
            let matcher = Matcher::new(&lib, policy);
            for cone in &partition(&net) {
                let a = cover_cone_with(&net, cone, &matcher, &new_limits, objective);
                let b = cover_cone_with(&net, cone, &matcher, &legacy_limits, objective);
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a.root, b.root);
                        prop_assert_eq!(a.area.to_bits(), b.area.to_bits(), "area in {}", lib.name());
                        prop_assert_eq!(a.instances.len(), b.instances.len());
                        for (x, y) in a.instances.iter().zip(&b.instances) {
                            prop_assert_eq!(x.cell_index, y.cell_index, "cell in {}", lib.name());
                            prop_assert_eq!(x.output, y.output);
                            prop_assert_eq!(&x.inputs, &y.inputs, "pins in {}", lib.name());
                        }
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a.gate, b.gate),
                    (a, b) => prop_assert!(false, "cover outcomes diverge: {:?} vs {:?}", a, b),
                }
            }
        }
    }

    #[test]
    fn memo_does_not_change_covers(cover in arb_cover()) {
        if cover.is_tautology() {
            return Ok(());
        }
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), cover.clone())]);
        let net = async_tech_decomp(&eqs);
        let limits = ClusterLimits::default();
        let mut lib = builtin::actel();
        lib.annotate_hazards();
        let mut memo_on = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        memo_on.set_npn_memo_enabled(true);
        let mut memo_off = Matcher::new(&lib, HazardPolicy::SubsetCheck);
        memo_off.set_npn_memo_enabled(false);
        for cone in &partition(&net) {
            // Cover each cone twice with the memoized matcher so the second
            // pass actually replays memo entries.
            let _ = cover_cone_with(&net, cone, &memo_on, &limits, Objective::Area);
            let a = cover_cone_with(&net, cone, &memo_on, &limits, Objective::Area).ok();
            let b = cover_cone_with(&net, cone, &memo_off, &limits, Objective::Area).ok();
            match (a, b) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.area.to_bits(), b.area.to_bits());
                    prop_assert_eq!(a.instances.len(), b.instances.len());
                    for (x, y) in a.instances.iter().zip(&b.instances) {
                        prop_assert_eq!(x.cell_index, y.cell_index);
                        prop_assert_eq!(&x.inputs, &y.inputs);
                    }
                }
                (None, None) => {}
                _ => prop_assert!(false, "memo changed coverability"),
            }
        }
        prop_assert_eq!(memo_off.npn_hits() + memo_off.npn_misses(), 0);
    }

    #[test]
    fn canon_is_invariant_under_permutation(
        raw in any::<u64>(),
        n in 1usize..7,
        stream in prop::collection::vec(any::<u8>(), 6..7),
    ) {
        let t = raw & truth::full_mask(n);
        let perm = perm_from_stream(n, &stream);
        let permuted = truth::apply_perm6(t, &perm, n);
        prop_assert_eq!(truth::canon6(permuted, n), truth::canon6(t, n));
    }

    #[test]
    fn canon_of_complement_flips_only_phase(raw in any::<u64>(), n in 1usize..7) {
        let mask = truth::full_mask(n);
        let t = raw & mask;
        let c = truth::canon6(t, n);
        let cn = truth::canon6(!t & mask, n);
        prop_assert_eq!(c.canon, cn.canon);
        // Phase flips unless the class is self-complementary, where both
        // sides canonicalize positively.
        if c.phase == cn.phase {
            prop_assert!(!c.phase);
        }
    }

    #[test]
    fn canon_representative_is_a_fixed_point(raw in any::<u64>(), n in 1usize..7) {
        let t = raw & truth::full_mask(n);
        let c = truth::canon6(t, n);
        let again = truth::canon6(c.canon, n);
        prop_assert_eq!(again.canon, c.canon);
        prop_assert!(!again.phase);
    }
}
