//! Independent static verification of mapped designs.
//!
//! The mapper's correctness argument rests on three invariants it is
//! *supposed* to preserve (paper §3): decomposition uses only the
//! associative and DeMorgan laws, partitioning cuts only at multi-fanout
//! points, and every bound cell satisfies
//! `hazards(cell) ⊆ hazards(subnetwork)` (Theorem 3.2). This crate
//! re-derives all three from the finished [`MappedDesign`] alone — it
//! shares no code with the matcher, the covering DP, the cluster
//! enumerators or the hazard-verdict cache, so a bug in any of those
//! fast paths cannot hide from it.
//!
//! [`lint_mapped_design`] runs three check families:
//!
//! * **structure** — the mapped netlist is acyclic and fully driven, every
//!   pin binding is in range and of the right arity, every cone gate is
//!   covered by exactly one instance, cover roots coincide with the
//!   re-derived partition boundary (cuts only at primary outputs and
//!   multi-fanout gates), and reported areas re-add;
//! * **function** — each instance's cell function, instantiated on its pin
//!   bindings, is truth-table equal to the covered subnetwork's function
//!   over the full reached cut space (so a binding that silently ignores
//!   a cut variable the subnetwork depends on is caught);
//! * **Theorem 3.2** — each binding of a hazardous cell is re-verified
//!   through every analysis the hazard crate has (exhaustive transition
//!   sweep, descriptor-guided comparison, static-1 cube adjacency,
//!   brute-force oracle on small supports), plus a whole-cone containment
//!   sweep where the cone is narrow enough.
//!
//! Findings carry a severity, a human-readable gate path and a stable
//! machine-readable code (`family.kind`). Info-level notes (dead
//! instances, analysis-method disagreement) are reported separately and
//! do not make a report unclean.
//!
//! # Examples
//!
//! ```
//! use asyncmap_core::{async_tmap, MapOptions};
//! use asyncmap_cube::{Cover, VarTable};
//! use asyncmap_library::builtin;
//! use asyncmap_lint::lint_mapped_design;
//! use asyncmap_network::EquationSet;
//!
//! let vars = VarTable::from_names(["a", "b", "c"]);
//! let f = Cover::parse("ab + a'c + bc", &vars)?;
//! let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
//! let mut lib = builtin::cmos3();
//! lib.annotate_hazards();
//! let design = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
//! let report = lint_mapped_design(&design, &lib);
//! assert!(report.is_clean());
//! # Ok::<(), asyncmap_cube::ParseSopError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod equiv;
mod structure;
mod theorem32;

use asyncmap_bff::Expr;
use asyncmap_core::{cone_cover_words, ConeCover, Instance, MappedDesign};
use asyncmap_library::Library;
use asyncmap_network::{Cone, GateOp, Network, NodeKind, SignalId};
pub use asyncmap_report::{Finding, Severity};
use asyncmap_report::{Report, Totals};
use std::collections::{HashMap, HashSet};

/// What the lint pass looked at, for report context.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintCounters {
    /// Cones examined.
    pub cones: usize,
    /// Cell instances examined.
    pub instances: usize,
    /// Per-instance function-equivalence certificates checked.
    pub function_checks: usize,
    /// Hazardous-cell bindings re-verified against Theorem 3.2.
    pub theorem32_checks: usize,
    /// Whole-cone containment sweeps performed.
    pub cone_sweeps: usize,
    /// Cones too wide for the whole-cone exhaustive sweep.
    pub cone_sweeps_skipped: usize,
    /// Cones whose per-cone checks were skipped because an identically
    /// shaped cone with an identical local cover already linted clean
    /// (only [`lint_mapped_design_cached`] ever sets this).
    pub cones_reused: usize,
}

impl asyncmap_report::Counters for LintCounters {
    fn summarize(&self, totals: &Totals, out: &mut String) {
        out.push_str(&format!(
            "lint: {} finding(s) ({} error(s)), {} note(s) over {} cone(s), \
             {} instance(s), {} function certificate(s), {} Theorem 3.2 re-check(s)\n",
            totals.findings,
            totals.errors,
            totals.notes,
            self.cones,
            self.instances,
            self.function_checks,
            self.theorem32_checks,
        ));
        if self.cones_reused > 0 {
            out.push_str(&format!(
                "lint: {} cone(s) reused from a prior clean pass\n",
                self.cones_reused
            ));
        }
    }

    fn absorb(&mut self, other: &Self) {
        self.cones += other.cones;
        self.instances += other.instances;
        self.function_checks += other.function_checks;
        self.theorem32_checks += other.theorem32_checks;
        self.cone_sweeps += other.cone_sweeps;
        self.cone_sweeps_skipped += other.cone_sweeps_skipped;
        self.cones_reused += other.cones_reused;
    }
}

/// The result of linting one mapped design: the shared [`Report`] over
/// [`LintCounters`].
pub type LintReport = Report<LintCounters>;

/// One instance together with the slice of the subject network it covers:
/// the cut signals its subnetwork reaches (in first-visit order, defining
/// the local variable space) and the gates strictly inside the cut.
/// Built once by the structure pass and shared with the function and
/// Theorem 3.2 passes.
pub(crate) struct InstanceView<'a> {
    pub cone_idx: usize,
    pub inst: &'a Instance,
    /// Reached cut signals in first-visit order; local variable `i` of the
    /// subnetwork expression is `cut_signals[i]`.
    pub cut_signals: Vec<SignalId>,
    /// Cone gates this instance covers (including its own output).
    pub covered_gates: Vec<SignalId>,
    /// `false` when the walk found a structural violation; deeper checks
    /// skip the instance.
    pub structurally_sound: bool,
}

pub(crate) fn path_of(net: &Network, cone: &Cone, inst: Option<&Instance>) -> String {
    match inst {
        Some(i) => format!(
            "cone {} / instance {}",
            net.name(cone.root),
            net.name(i.output)
        ),
        None => format!("cone {}", net.name(cone.root)),
    }
}

/// Walks the subnetwork under `inst`, cutting at `cut_set` (the cone's
/// leaves plus the other instances' outputs). Reports escape violations
/// into `report` and marks the view unsound on any.
fn view_instance<'a>(
    net: &Network,
    cone: &Cone,
    cone_idx: usize,
    inst: &'a Instance,
    cut_set: &HashSet<SignalId>,
    cone_gates: &HashSet<SignalId>,
    report: &mut LintReport,
) -> InstanceView<'a> {
    let mut view = InstanceView {
        cone_idx,
        inst,
        cut_signals: Vec::new(),
        covered_gates: Vec::new(),
        structurally_sound: true,
    };
    let mut seen_cut: HashSet<SignalId> = HashSet::new();
    let mut seen_gate: HashSet<SignalId> = HashSet::new();
    let mut stack = vec![(inst.output, true)];
    while let Some((s, is_root)) = stack.pop() {
        if !is_root && cut_set.contains(&s) {
            if seen_cut.insert(s) {
                view.cut_signals.push(s);
            }
            continue;
        }
        if !cone_gates.contains(&s) {
            report.push(
                Severity::Error,
                "coverage.escapes-cone",
                path_of(net, cone, Some(inst)),
                format!(
                    "subnetwork reaches signal {} which is neither a cut signal nor a gate of this cone",
                    net.name(s)
                ),
            );
            view.structurally_sound = false;
            continue;
        }
        if !seen_gate.insert(s) {
            continue;
        }
        view.covered_gates.push(s);
        if let NodeKind::Gate { fanin, .. } = net.node(s) {
            for &f in fanin {
                stack.push((f, false));
            }
        }
    }
    view
}

/// Builds the views of every instance of `cover`. The cut set for each
/// instance is the cone's leaf set plus every *other* instance's output.
pub(crate) fn view_cover<'a>(
    net: &Network,
    cone: &Cone,
    cone_idx: usize,
    cover: &'a ConeCover,
    report: &mut LintReport,
) -> Vec<InstanceView<'a>> {
    let cone_gates: HashSet<SignalId> = cone.gates.iter().copied().collect();
    let outputs: HashSet<SignalId> = cover.instances.iter().map(|i| i.output).collect();
    let leaves: HashSet<SignalId> = cone.leaves.iter().copied().collect();
    cover
        .instances
        .iter()
        .map(|inst| {
            let mut cut_set: HashSet<SignalId> = leaves.clone();
            cut_set.extend(outputs.iter().copied().filter(|&o| o != inst.output));
            view_instance(net, cone, cone_idx, inst, &cut_set, &cone_gates, report)
        })
        .collect()
}

/// Builds the subnetwork expression rooted at `root` over the local
/// variable space `var_of` (signal → variable index), cutting wherever
/// `var_of` has an entry. Every reachable non-cut signal must be a gate.
pub(crate) fn subnetwork_expr(
    net: &Network,
    root: SignalId,
    var_of: &HashMap<SignalId, usize>,
) -> Expr {
    fn go(net: &Network, s: SignalId, root: SignalId, var_of: &HashMap<SignalId, usize>) -> Expr {
        if s != root {
            if let Some(&v) = var_of.get(&s) {
                return Expr::Var(asyncmap_cube::VarId(v));
            }
        }
        match net.node(s) {
            NodeKind::Input => unreachable!("input signal must be a cut signal"),
            NodeKind::Gate { op, fanin } => {
                let args: Vec<Expr> = fanin.iter().map(|&f| go(net, f, root, var_of)).collect();
                match op {
                    GateOp::And => Expr::and(args),
                    GateOp::Or => Expr::or(args),
                    GateOp::Inv => args.into_iter().next().expect("inverter fanin").not(),
                    GateOp::Buf => args.into_iter().next().expect("buffer fanin"),
                }
            }
        }
    }
    go(net, root, root, var_of)
}

/// Substitutes `args[i]` for variable `i` of `bff` — the lint crate's own
/// copy of positive-phase pin substitution, deliberately independent of
/// the matcher's.
pub(crate) fn substitute(bff: &Expr, args: &[Expr]) -> Expr {
    match bff {
        Expr::Const(b) => Expr::Const(*b),
        Expr::Var(v) => args[v.index()].clone(),
        Expr::Not(e) => substitute(e, args).not(),
        Expr::And(es) => Expr::and(es.iter().map(|e| substitute(e, args)).collect()),
        Expr::Or(es) => Expr::or(es.iter().map(|e| substitute(e, args)).collect()),
    }
}

/// Composes the mapped cone's structure from its instances' cell BFFs,
/// over the cone's local leaf variables (`cone.leaves[i]` = variable `i`).
/// Returns `None` when some needed signal is neither a leaf nor an
/// instance output (reported elsewhere as a structure finding).
pub(crate) fn composed_cover_expr(
    cone: &Cone,
    cover: &ConeCover,
    library: &Library,
) -> Option<Expr> {
    let leaf_var: HashMap<SignalId, usize> = cone
        .leaves
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();
    let by_output: HashMap<SignalId, &Instance> =
        cover.instances.iter().map(|i| (i.output, i)).collect();
    fn go(
        s: SignalId,
        leaf_var: &HashMap<SignalId, usize>,
        by_output: &HashMap<SignalId, &Instance>,
        library: &Library,
    ) -> Option<Expr> {
        if let Some(&v) = leaf_var.get(&s) {
            return Some(Expr::Var(asyncmap_cube::VarId(v)));
        }
        let inst = by_output.get(&s)?;
        let cell = library.cells().get(inst.cell_index)?;
        let args: Vec<Expr> = inst
            .inputs
            .iter()
            .map(|&i| go(i, leaf_var, by_output, library))
            .collect::<Option<_>>()?;
        Some(substitute(cell.bff(), &args))
    }
    go(cover.root, &leaf_var, &by_output, library)
}

/// Truth-table equality of two expressions over an `n`-variable space,
/// via the packed kernels (single `u64` when `n ≤ 6`, word-blocked
/// otherwise).
pub(crate) fn truth_equal(a: &Expr, b: &Expr, n: usize) -> bool {
    use asyncmap_core::truth;
    if n <= 6 {
        truth::truth6_of(a, n) == truth::truth6_of(b, n)
    } else {
        truth::truth_table_words(a, n) == truth::truth_table_words(b, n)
    }
}

/// Reuse cache for [`lint_mapped_design_cached`].
///
/// Every per-cone check family is a pure function of the cone's *local*
/// shape (its gate operator tree over positional leaves), the cover's
/// instances rewritten into that local space, and the library. The cache
/// therefore remembers, per library, the set of (shape, local cover) pairs
/// that produced **zero findings and zero notes**; a later cone with an
/// identical pair is skipped and counted in
/// [`LintCounters::cones_reused`]. Cones that produced any diagnostic are
/// never cached, so re-linting an unclean design re-reports every finding.
///
/// Whole-design checks (acyclicity, drivenness, area re-addition, the
/// partition boundary) never consult the cache — they run in full on every
/// pass, so reuse adds no trust assumptions beyond "equal local shape,
/// equal local cover, equal library".
///
/// The cache also memoizes the per-cell hazardousness recomputation,
/// which is library-wide and design-independent. Pointing one cache at a
/// differently named library clears it.
#[derive(Debug, Default)]
pub struct LintCache {
    /// Library the cached verdicts were computed against.
    library: Option<String>,
    /// Encoded (shape, local cover) pairs that linted clean.
    clean: HashSet<Vec<u32>>,
    /// Memoized per-cell hazardousness for `library`.
    cell_hazardous: Option<Vec<bool>>,
}

impl LintCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct clean (shape, local cover) pairs remembered.
    pub fn entries(&self) -> usize {
        self.clean.len()
    }

    fn bind_library(&mut self, library: &Library) {
        if self.library.as_deref() != Some(library.name()) {
            self.library = Some(library.name().to_owned());
            self.clean.clear();
            self.cell_hazardous = None;
        }
    }
}

/// Runs every check family over `design` and returns the combined report.
///
/// Read-only: the design and library are not modified. The pass assumes
/// nothing about how the design was produced — a hand-constructed or
/// deliberately corrupted [`MappedDesign`] is diagnosed the same way a
/// mapper-produced one is.
pub fn lint_mapped_design(design: &MappedDesign, library: &Library) -> LintReport {
    lint_inner(design, library, None)
}

/// [`lint_mapped_design`] with reuse: per-cone checks are skipped for
/// cones whose (shape, local cover) pair already linted clean under
/// `cache` (see [`LintCache`] for the reuse argument) — whether in a
/// previous pass or earlier in the same pass (duplicated logic is common
/// in generated designs). Intended for incremental (ECO) flows, where
/// successive designs share almost every cone. The verdict and the
/// diagnostics are identical to [`lint_mapped_design`]'s; only the work
/// counters differ, with the skipped cones in
/// [`LintCounters::cones_reused`].
pub fn lint_mapped_design_cached(
    design: &MappedDesign,
    library: &Library,
    cache: &mut LintCache,
) -> LintReport {
    cache.bind_library(library);
    lint_inner(design, library, Some(cache))
}

fn lint_inner(
    design: &MappedDesign,
    library: &Library,
    cache: Option<&mut LintCache>,
) -> LintReport {
    let mut report = LintReport::default();
    report.counters.cones = design.cones.len();
    report.counters.instances = design.num_instances();

    structure::check_global(design, library, &mut report);

    // Hazardousness of each library cell, recomputed here (not read from
    // the annotation the matcher used) so a stale annotation cannot mask
    // a hazardous cell. Library-wide and design-independent, so the cache
    // (when present) memoizes it across passes.
    let memo = cache.as_ref().and_then(|c| c.cell_hazardous.clone());
    let cell_hazardous: Vec<bool> = memo.unwrap_or_else(|| {
        library
            .cells()
            .iter()
            .map(|c| !c.compute_hazards().is_hazard_free())
            .collect()
    });
    let mut cache = cache;
    if let Some(c) = cache.as_deref_mut() {
        c.cell_hazardous = Some(cell_hazardous.clone());
    }

    // Per-cone walks: build the instance views once, then feed them to the
    // coverage, function and Theorem 3.2 checks.
    for (idx, (cone, cover)) in design.cones.iter().zip(&design.covers).enumerate() {
        let key = cache
            .as_ref()
            .map(|_| cone_cover_words(&design.subject, cone, cover));
        if let (Some(c), Some(Some(key))) = (cache.as_deref_mut(), key.as_ref()) {
            if c.clean.contains(key) {
                report.counters.cones_reused += 1;
                continue;
            }
        }
        let (findings_before, notes_before) = (report.findings.len(), report.notes.len());
        if !structure::check_instances_wellformed(design, library, cone, cover, &mut report) {
            // Out-of-range cell or signal indices: the walks below would
            // index out of bounds, so stop at the structural findings.
            continue;
        }
        let views = view_cover(&design.subject, cone, idx, cover, &mut report);
        structure::check_coverage(design, cone, cover, &views, &mut report);
        equiv::check_cover(design, library, cone, &views, &mut report);
        theorem32::check_cover(
            design,
            library,
            cone,
            cover,
            &views,
            &cell_hazardous,
            &mut report,
        );
        // Cache only perfectly quiet cones: a cone that produced even an
        // info note must re-produce it on every pass, so a warm cache
        // yields the same report a cold one would.
        if report.findings.len() == findings_before && report.notes.len() == notes_before {
            if let (Some(c), Some(Some(key))) = (cache.as_deref_mut(), key) {
                c.clean.insert(key);
            }
        }
    }
    report
}
