//! Shared finding/severity/report machinery for the verification passes.
//!
//! The lint pass (`asyncmap-lint`), the translation-validation audit
//! (`asyncmap-audit`) and the fundamental-mode analyzer (`asyncmap-fma`)
//! all emit the same kind of diagnostic: a severity, a stable
//! machine-readable `family.kind` code, a human-readable path and a
//! message, split into *findings* (errors and warnings that make a report
//! unclean) and *notes* (info-level observations that never do). This
//! crate holds the one copy of that machinery; each pass only supplies
//! its own counters type through the [`Counters`] trait.
//!
//! Rendering is deterministic: findings and notes are ordered by
//! `(code, path, message)` before printing, so two runs that discover
//! the same diagnostics in different orders (e.g. under different thread
//! counts) render byte-identical reports.
//!
//! # Examples
//!
//! ```
//! use asyncmap_report::{Counters, Report, Severity, Totals};
//!
//! #[derive(Debug, Default, Clone, Copy)]
//! struct Demo {
//!     widgets: usize,
//! }
//! impl Counters for Demo {
//!     fn summarize(&self, totals: &Totals, out: &mut String) {
//!         out.push_str(&format!(
//!             "demo: {} finding(s) over {} widget(s)\n",
//!             totals.findings, self.widgets
//!         ));
//!     }
//!     fn absorb(&mut self, other: &Self) {
//!         self.widgets += other.widgets;
//!     }
//! }
//!
//! let mut report: Report<Demo> = Report::default();
//! report.counters.widgets = 3;
//! report.push(Severity::Error, "demo.broken", "w1".into(), "snapped".into());
//! assert!(!report.is_clean());
//! assert_eq!(report.num_errors(), 1);
//! assert!(report.render().contains("demo.broken"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Observation that does not make the subject incorrect (a dead
    /// instance, an analysis-method disagreement worth investigating, a
    /// check that could only run its partial method).
    Info,
    /// Could not be proven correct (e.g. a conservative hazard verdict on
    /// a support too wide for the exact sweep).
    Warning,
    /// A verified violation of a checked invariant.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// How serious the finding is.
    pub severity: Severity,
    /// Stable machine-readable code, `family.kind`
    /// (e.g. `theorem32.containment-violation`, `decomp.not-equivalent`).
    pub code: &'static str,
    /// Human-readable location: cone root, equation, step index or spec
    /// state, as applicable.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.path, self.message
        )
    }
}

/// Totals of a finished report, handed to [`Counters::summarize`] so the
/// summary line can restate them without recounting.
#[derive(Debug, Clone, Copy)]
pub struct Totals {
    /// Error- and warning-level findings.
    pub findings: usize,
    /// Error-level findings only.
    pub errors: usize,
    /// Info-level notes.
    pub notes: usize,
}

/// Per-pass work counters carried by a [`Report`].
///
/// Each verification crate implements this for its own counters struct;
/// the shared report machinery stays agnostic of what was counted.
pub trait Counters: Default {
    /// Appends the pass-specific summary line(s) to `out` (each line
    /// newline-terminated).
    fn summarize(&self, totals: &Totals, out: &mut String);

    /// Field-wise accumulation, backing [`Report::merge`].
    fn absorb(&mut self, other: &Self);
}

/// The result of one verification pass, generic over its counters.
#[derive(Debug, Default)]
pub struct Report<C> {
    /// Error- and warning-level findings. Empty on a clean subject.
    pub findings: Vec<Finding>,
    /// Info-level notes; never affect [`Report::is_clean`].
    pub notes: Vec<Finding>,
    /// What was examined.
    pub counters: C,
}

impl<C> Report<C> {
    /// `true` iff there are no error- or warning-level findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of error-level findings.
    pub fn num_errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Records a diagnostic, routing [`Severity::Info`] to the notes and
    /// everything else to the findings.
    pub fn push(&mut self, severity: Severity, code: &'static str, path: String, message: String) {
        let finding = Finding {
            severity,
            code,
            path,
            message,
        };
        if severity == Severity::Info {
            self.notes.push(finding);
        } else {
            self.findings.push(finding);
        }
    }
}

/// Stable render order: code, then path (which names the cone, equation
/// or state), then message. Severity is deliberately not part of the key
/// — a finding's code already pins its severity in practice, and keeping
/// the key textual makes the order obvious from the rendered lines.
fn render_order(a: &&Finding, b: &&Finding) -> std::cmp::Ordering {
    (a.code, &a.path, &a.message).cmp(&(b.code, &b.path, &b.message))
}

impl<C: Counters> Report<C> {
    /// Merges `other` into `self` (findings, notes and counters).
    pub fn merge(&mut self, other: Self) {
        self.findings.extend(other.findings);
        self.notes.extend(other.notes);
        self.counters.absorb(&other.counters);
    }

    /// Renders the report as human-readable text: findings first, then
    /// notes, then the pass's summary line(s). Findings and notes are
    /// each ordered by `(code, path, message)` regardless of discovery
    /// order, so renders are stable across thread counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for group in [&self.findings, &self.notes] {
            let mut ordered: Vec<&Finding> = group.iter().collect();
            ordered.sort_by(render_order);
            for f in ordered {
                out.push_str(&f.to_string());
                out.push('\n');
            }
        }
        let totals = Totals {
            findings: self.findings.len(),
            errors: self.num_errors(),
            notes: self.notes.len(),
        };
        self.counters.summarize(&totals, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default, Clone, Copy)]
    struct TestCounters {
        items: usize,
    }

    impl Counters for TestCounters {
        fn summarize(&self, totals: &Totals, out: &mut String) {
            out.push_str(&format!(
                "test: {} finding(s) ({} error(s)), {} note(s), {} item(s)\n",
                totals.findings, totals.errors, totals.notes, self.items
            ));
        }
        fn absorb(&mut self, other: &Self) {
            self.items += other.items;
        }
    }

    #[test]
    fn push_routes_by_severity() {
        let mut r: Report<TestCounters> = Report::default();
        r.push(Severity::Info, "a.note", "p".into(), "m".into());
        assert!(r.is_clean());
        r.push(Severity::Warning, "a.warn", "p".into(), "m".into());
        r.push(Severity::Error, "a.err", "p".into(), "m".into());
        assert!(!r.is_clean());
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.notes.len(), 1);
        assert_eq!(r.num_errors(), 1);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        // Push in two different orders; renders must be identical.
        let mut a: Report<TestCounters> = Report::default();
        let mut b: Report<TestCounters> = Report::default();
        let entries = [
            ("z.last", "cone f", "worse"),
            ("a.first", "cone g", "bad"),
            ("a.first", "cone f", "bad"),
        ];
        for &(code, path, msg) in &entries {
            a.push(Severity::Error, code, path.into(), msg.into());
        }
        for &(code, path, msg) in entries.iter().rev() {
            b.push(Severity::Error, code, path.into(), msg.into());
        }
        assert_eq!(a.render(), b.render());
        let render = a.render();
        let first = render.find("a.first] cone f").expect("present");
        let second = render.find("a.first] cone g").expect("present");
        let third = render.find("z.last").expect("present");
        assert!(first < second && second < third);
    }

    #[test]
    fn merge_accumulates() {
        let mut a: Report<TestCounters> = Report::default();
        a.counters.items = 2;
        a.push(Severity::Error, "a.err", "p".into(), "m".into());
        let mut b: Report<TestCounters> = Report::default();
        b.counters.items = 3;
        b.push(Severity::Info, "b.note", "q".into(), "n".into());
        a.merge(b);
        assert_eq!(a.counters.items, 5);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.notes.len(), 1);
    }
}
