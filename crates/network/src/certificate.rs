//! Translation-validation certificates for the hazard-preserving front
//! end (decomposition and partitioning).
//!
//! The paper's soundness argument rests on every pre-mapping step using
//! only hazard-preserving laws: decomposition restricted to associativity
//! and DeMorgan (Unger), partitioning cut only at multi-fanout points
//! (§3.1.2). The traced entry points
//! ([`crate::async_tech_decomp_traced`], [`crate::partition_traced`],
//! [`crate::decompose_expr_demorgan`]) emit one structured certificate per
//! rewrite step / cut point; the independent checker in `asyncmap-audit`
//! replays them *without calling the transformation code*, re-proving rule
//! applicability, functional equivalence and hazard-set monotonicity.
//!
//! The types live here — next to the producers — because the checker
//! crate depends on this one; nothing in this crate depends on the
//! checker, preserving the independence that makes the audit meaningful.

use crate::SignalId;
use asyncmap_bff::Expr;

/// The hazard-preserving rewrite rule a [`RewriteStep`] claims to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RewriteRule {
    /// Associative regrouping: an n-ary AND/OR is rebuilt as a binary
    /// tree of the same operator over the *same operand sequence* (no
    /// commutation — operand order is part of the obligation).
    AssocRegroup,
    /// One DeMorgan push: `(x₁ · … · xₖ)' → x₁' + … + xₖ'` (or the dual),
    /// or the involution `(e')' → e` that the push produces en route.
    DeMorganPush,
    /// Realization of a negative literal as an inverter gate on a primary
    /// input (input fanout does not alter hazard behavior).
    InputInverter,
}

impl RewriteRule {
    /// Short lowercase name used in audit findings.
    pub fn name(self) -> &'static str {
        match self {
            RewriteRule::AssocRegroup => "assoc-regroup",
            RewriteRule::DeMorganPush => "demorgan-push",
            RewriteRule::InputInverter => "input-inverter",
        }
    }
}

/// One certified rewrite step of a decomposition: the rule applied, the
/// sub-expression before and after, and the network node (the affected
/// node path) whose logic the step produced.
///
/// Expressions are over the primary-input variable space of the equation
/// set (`VarId` *i* ↔ input *i*).
#[derive(Debug, Clone)]
pub struct RewriteStep {
    /// Rule the step claims to instantiate.
    pub rule: RewriteRule,
    /// Output equation this step belongs to.
    pub equation: String,
    /// Root signal of the gate tree this step produced.
    pub node: SignalId,
    /// Sub-expression before the rewrite.
    pub before: Expr,
    /// Sub-expression after the rewrite.
    pub after: Expr,
}

/// End-to-end certificate for one decomposed output equation: the claimed
/// source function and the expression the emitted gate tree realizes.
#[derive(Debug, Clone)]
pub struct EquationCert {
    /// Output name.
    pub name: String,
    /// Root signal marked as this output.
    pub root: SignalId,
    /// The source the decomposition started from (for SOP decomposition,
    /// the two-level `Expr::from_cover` form of the equation, which has
    /// exactly the cover's hazard behavior).
    pub source: Expr,
    /// The expression the emitted gate tree claims to realize, with
    /// negative literals as `Not(Var)` leaves.
    pub result: Expr,
}

/// The full certificate trail of one decomposition run.
#[derive(Debug, Clone)]
pub struct DecompTrace {
    /// Number of primary-input variables the expressions range over.
    pub nvars: usize,
    /// Every rewrite step, in emission order.
    pub steps: Vec<RewriteStep>,
    /// One end-to-end certificate per output equation.
    pub equations: Vec<EquationCert>,
}

/// Fanout evidence for one partition cut point: why cutting here is legal
/// (paper §3.1.2 — a cut is licensed only at a primary output or at a
/// signal consumed by at least two gate inputs).
#[derive(Debug, Clone)]
pub struct CutCertificate {
    /// The signal the partition cut at (a cone root).
    pub signal: SignalId,
    /// Claimed fanout: the number of gate fanin references to `signal`.
    pub fanout: usize,
    /// The consuming gates, in topological order, with multiplicity (a
    /// gate reading the signal twice appears twice).
    pub consumers: Vec<SignalId>,
    /// Primary-output names driven by `signal` (may be empty when the cut
    /// is licensed by fanout alone).
    pub outputs: Vec<String>,
}

/// The certificate trail of one partitioning run: one [`CutCertificate`]
/// per cone root, in root order.
#[derive(Debug, Clone)]
pub struct PartitionTrace {
    /// The cut points, in the same order as the returned cones.
    pub cuts: Vec<CutCertificate>,
}
