//! The shipped `libraries/*.lib` text files stay in sync with the built-in
//! libraries and reproduce Table 1 when loaded from disk.

use asyncmap::prelude::*;

fn load(name: &str) -> Library {
    let text = std::fs::read_to_string(format!("libraries/{name}.lib")).unwrap_or_else(|e| {
        panic!("missing libraries/{name}.lib ({e}); run `cargo run --example export_libraries`")
    });
    Library::parse(&text).expect("shipped library must parse")
}

#[test]
fn shipped_files_match_builtins() {
    for builtin in asyncmap::library::builtin::all_libraries() {
        let from_disk = load(&builtin.name().to_lowercase());
        assert_eq!(from_disk.name(), builtin.name());
        assert_eq!(from_disk.len(), builtin.len());
        for cell in builtin.cells() {
            let loaded = from_disk
                .cell(cell.name())
                .unwrap_or_else(|| panic!("{}: cell {} missing", builtin.name(), cell.name()));
            assert_eq!(loaded.num_inputs(), cell.num_inputs());
            assert_eq!(loaded.truth_table(), cell.truth_table());
            assert!((loaded.area() - cell.area()).abs() < 1e-9);
        }
    }
}

#[test]
fn shipped_files_reproduce_table1() {
    let expect = [("lsi9k", 12usize), ("cmos3", 1), ("gdt", 0), ("actel", 24)];
    for (name, hazardous) in expect {
        let mut lib = load(name);
        lib.annotate_hazards();
        assert_eq!(lib.hazardous_cells().len(), hazardous, "{name}");
    }
}
