//! Audit findings and reports, in the style of `asyncmap-lint`'s
//! `LintReport` (machine-readable `family.kind` codes, severity levels,
//! info notes that never make a report unclean).

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Observation that does not invalidate a certificate (e.g. a hazard
    /// re-check that could only run its partial method).
    Info,
    /// Could not be proven correct (a certificate whose obligation could
    /// not be fully discharged).
    Warning,
    /// A certificate that fails its obligation: the claimed transformation
    /// step is not the one the evidence supports.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One audit diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// How serious the finding is.
    pub severity: Severity,
    /// Stable machine-readable code, `family.kind`
    /// (e.g. `decomp.not-equivalent`, `spec.maximal-set`).
    pub code: &'static str,
    /// Human-readable location: equation, step index, cut signal or spec
    /// state, as applicable.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.path, self.message
        )
    }
}

/// What the audit examined, for report context.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuditCounters {
    /// Decomposition rewrite steps replayed.
    pub rewrite_steps: usize,
    /// End-to-end equation certificates replayed.
    pub equations: usize,
    /// Partition cut certificates replayed.
    pub cut_points: usize,
    /// Cones re-walked against the partition trace.
    pub cones: usize,
    /// Flatten collapse traces replayed.
    pub flatten_traces: usize,
    /// Cones whose flatten replay was skipped (product count over the
    /// replay cap).
    pub flatten_skipped: usize,
    /// Hazard-monotonicity re-checks run through the full
    /// `reverify_containment` / exhaustive-sweep ladder.
    pub hazard_rechecks: usize,
    /// Hazard re-checks on supports too wide for the exact sweep, where
    /// only the flatten-equality / static-1 necessary condition ran.
    pub hazard_partial: usize,
    /// Functional-equivalence proofs discharged with packed truth tables.
    pub truth_proofs: usize,
    /// Functional-equivalence proofs discharged with the BDD fallback.
    pub bdd_proofs: usize,
    /// Burst-mode spec states checked.
    pub spec_states: usize,
    /// Burst-mode spec edges checked.
    pub spec_edges: usize,
    /// Rewrite steps whose equivalence/monotonicity obligations were
    /// discharged by an identical prior clean replay (cached audit only;
    /// counted inside [`AuditCounters::rewrite_steps`]).
    pub reused_steps: usize,
    /// Equation certificates likewise discharged by reuse (counted inside
    /// [`AuditCounters::equations`]).
    pub reused_equations: usize,
    /// Flatten collapses likewise discharged by reuse (counted inside
    /// [`AuditCounters::flatten_traces`]).
    pub reused_flattens: usize,
}

/// The result of one audit run.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Error- and warning-level findings. Empty when every certificate
    /// checks out.
    pub findings: Vec<Finding>,
    /// Info-level notes; never affect [`AuditReport::is_clean`].
    pub notes: Vec<Finding>,
    /// What was examined.
    pub counters: AuditCounters,
}

impl AuditReport {
    /// `true` iff there are no error- or warning-level findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of error-level findings.
    pub fn num_errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Total certificates replayed (rewrite steps, equation certificates,
    /// cut points and flatten traces).
    pub fn num_certificates(&self) -> usize {
        self.counters.rewrite_steps
            + self.counters.equations
            + self.counters.cut_points
            + self.counters.flatten_traces
    }

    pub(crate) fn push(
        &mut self,
        severity: Severity,
        code: &'static str,
        path: String,
        message: String,
    ) {
        let finding = Finding {
            severity,
            code,
            path,
            message,
        };
        if severity == Severity::Info {
            self.notes.push(finding);
        } else {
            self.findings.push(finding);
        }
    }

    /// Merges `other` into `self` (findings, notes and counters).
    pub fn merge(&mut self, other: AuditReport) {
        self.findings.extend(other.findings);
        self.notes.extend(other.notes);
        let c = &mut self.counters;
        let o = other.counters;
        c.rewrite_steps += o.rewrite_steps;
        c.equations += o.equations;
        c.cut_points += o.cut_points;
        c.cones += o.cones;
        c.flatten_traces += o.flatten_traces;
        c.flatten_skipped += o.flatten_skipped;
        c.hazard_rechecks += o.hazard_rechecks;
        c.hazard_partial += o.hazard_partial;
        c.truth_proofs += o.truth_proofs;
        c.bdd_proofs += o.bdd_proofs;
        c.spec_states += o.spec_states;
        c.spec_edges += o.spec_edges;
        c.reused_steps += o.reused_steps;
        c.reused_equations += o.reused_equations;
        c.reused_flattens += o.reused_flattens;
    }

    /// Renders the report as human-readable text, findings first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in self.findings.iter().chain(&self.notes) {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        let c = &self.counters;
        out.push_str(&format!(
            "audit: {} finding(s) ({} error(s)), {} note(s) over {} rewrite step(s), \
             {} equation(s), {} cut point(s), {} flatten trace(s); \
             {} hazard re-check(s) ({} partial), {} truth / {} BDD equivalence proof(s)\n",
            self.findings.len(),
            self.num_errors(),
            self.notes.len(),
            c.rewrite_steps,
            c.equations,
            c.cut_points,
            c.flatten_traces,
            c.hazard_rechecks,
            c.hazard_partial,
            c.truth_proofs,
            c.bdd_proofs,
        ));
        let reused = c.reused_steps + c.reused_equations + c.reused_flattens;
        if reused > 0 {
            out.push_str(&format!(
                "audit: {} step(s), {} equation(s), {} flatten(s) reused from a prior clean replay\n",
                c.reused_steps, c.reused_equations, c.reused_flattens,
            ));
        }
        out
    }
}
