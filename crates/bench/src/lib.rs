//! Shared helpers for the table-regeneration binaries and criterion
//! benches. Each `table<N>` binary regenerates the corresponding table of
//! the paper's evaluation section; `ablation` exercises the design choices
//! called out in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asyncmap_library::{builtin, Library};
use std::time::{Duration, Instant};

/// The four evaluation libraries in the paper's order, unannotated.
pub fn libraries() -> Vec<Library> {
    builtin::all_libraries()
}

/// Median wall-clock time of `runs` executions of `f`.
pub fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(runs > 0);
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Formats a duration with adaptive units (e.g. `"431.07µs"`, `"1.24s"`).
pub fn secs(d: Duration) -> String {
    format!("{d:.2?}")
}

/// Prints a table header followed by a rule line.
pub fn header(title: &str, columns: &str) {
    println!("\n=== {title} ===");
    println!("{columns}");
    println!("{}", "-".repeat(columns.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libraries_are_the_table1_four() {
        let names: Vec<String> = libraries().iter().map(|l| l.name().to_owned()).collect();
        assert_eq!(names, ["LSI9K", "CMOS3", "GDT", "Actel"]);
    }

    #[test]
    fn time_median_is_monotone_in_work() {
        let fast = time_median(3, || 1 + 1);
        let slow = time_median(3, || (0..100_000).sum::<u64>());
        assert!(slow >= fast);
    }
}
