//! Hazard don't-care mapping — the paper's §6 future-work idea, realized:
//! in generalized fundamental mode the environment only ever applies the
//! *specified* input bursts, so hazards on unspecified transitions are
//! don't-cares. Exploiting them lets the mapper keep cheaper covers that
//! the blanket `hazards(cell) ⊆ hazards(subnetwork)` rule would reject.
//!
//! Strategy: cover each cone with the unconstrained (synchronous) matcher,
//! then *certify the cone against the transitions of interest only* —
//! projected through the subject network onto the cone's leaves. A cone
//! that fails certification is re-covered with the full asynchronous
//! hazard filter, which is always safe (Theorem 3.2).
//!
//! Soundness of the projection: cones are certified in topological order,
//! so during a specified burst every cone leaf either is a primary input
//! (changes per the burst) or the root of an already-certified cone
//! (changes monotonically, no extra transitions) — exactly the independent
//! single-transition-per-wire model under which the waveform oracle is
//! exact.

use crate::cover::{cover_cone, ConeCover, CoverError};
use crate::design::{assemble, mapped_cone_expr, MapStats, MappedDesign};
use crate::matcher::{HazardPolicy, Matcher};
use crate::tmap::MapOptions;
use asyncmap_cube::Bits;
use asyncmap_hazard::wave_eval;
use asyncmap_library::Library;
use asyncmap_network::{async_tech_decomp, partition, Cone, EquationSet, Network};

/// A transition of interest: a specified burst from one total state to
/// another, over the equation set's primary-input space.
pub type Transition = (Bits, Bits);

/// Maps `eqs` exploiting hazard don't-cares: only the given specified
/// transitions must remain hazard-free.
///
/// # Errors
///
/// Returns [`CoverError`] if some gate admits no match.
///
/// # Panics
///
/// Panics if `library` is not hazard-annotated or a transition's width
/// differs from the input count.
pub fn hdc_tmap(
    eqs: &EquationSet,
    library: &Library,
    options: &MapOptions,
    transitions: &[Transition],
) -> Result<MappedDesign, CoverError> {
    for (from, to) in transitions {
        assert_eq!(from.len(), eqs.inputs.len(), "transition width mismatch");
        assert_eq!(to.len(), eqs.inputs.len(), "transition width mismatch");
    }
    let subject = async_tech_decomp(eqs);
    let cones = partition(&subject);
    let relaxed = Matcher::new(library, HazardPolicy::Ignore);
    let strict = Matcher::new(library, HazardPolicy::SubsetCheck);
    let mut covers: Vec<ConeCover> = Vec::with_capacity(cones.len());
    let mut stats = MapStats::default();
    for cone in &cones {
        let candidate = cover_cone(&subject, cone, &relaxed, &options.limits)?;
        if cone_certified(&subject, cone, &candidate, library, transitions) {
            covers.push(candidate);
        } else {
            stats.hazard_rejects += 1; // cones that needed the strict path
            covers.push(cover_cone(&subject, cone, &strict, &options.limits)?);
        }
    }
    stats.hazard_checks = strict.hazard_checks() + cones.len() * transitions.len();
    Ok(assemble(
        library,
        subject,
        cones,
        covers,
        stats,
        options.add_buffers,
    ))
}

/// Certifies one cone cover against the projected transitions of interest:
/// wherever the original cone structure is clean, the mapped one must be.
pub fn cone_certified(
    net: &Network,
    cone: &Cone,
    cover: &ConeCover,
    library: &Library,
    transitions: &[Transition],
) -> bool {
    let (orig, _) = cone.to_expr(net);
    let mapped = mapped_cone_expr(net, cone, cover, library);
    for (from, to) in transitions {
        let values_from = net.eval(from);
        let values_to = net.eval(to);
        let mut leaf_from = Bits::new(cone.leaves.len());
        let mut leaf_to = Bits::new(cone.leaves.len());
        for (i, leaf) in cone.leaves.iter().enumerate() {
            leaf_from.set(i, values_from[leaf.index()]);
            leaf_to.set(i, values_to[leaf.index()]);
        }
        if leaf_from == leaf_to {
            continue; // the burst does not reach this cone
        }
        let w_orig = wave_eval(&orig, &leaf_from, &leaf_to);
        let w_mapped = wave_eval(&mapped, &leaf_from, &leaf_to);
        if w_mapped.hazard && !w_orig.hazard {
            return false;
        }
    }
    true
}

impl MappedDesign {
    /// Verifies the design against the transitions of interest: on every
    /// specified burst, each cone glitches no more than the original
    /// subject structure did.
    pub fn verify_hazards_on(&self, library: &Library, transitions: &[Transition]) -> bool {
        self.cones
            .iter()
            .zip(&self.covers)
            .all(|(cone, cover)| cone_certified(&self.subject, cone, cover, library, transitions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{async_tmap, tmap};
    use asyncmap_cube::{Cover, VarTable};
    use asyncmap_library::builtin;

    fn figure3_eqs() -> EquationSet {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        EquationSet::new(vars, vec![("f".to_owned(), f)])
    }

    fn bits(m: usize) -> Bits {
        let mut b = Bits::new(3);
        for v in 0..3 {
            b.set(v, (m >> v) & 1 == 1);
        }
        b
    }

    #[test]
    fn no_transitions_means_sync_freedom() {
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let eqs = figure3_eqs();
        let hdc = hdc_tmap(&eqs, &lib, &MapOptions::default(), &[]).unwrap();
        let sync = tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        // With nothing to protect, hdc may be as cheap as sync covering of
        // the (larger) async-decomposed subject.
        assert!(hdc.area <= sync.area + 16.0);
        assert!(hdc.verify_function(&lib));
    }

    #[test]
    fn protected_transition_forces_safety() {
        let mut lib = builtin::cmos3();
        lib.annotate_hazards();
        let eqs = figure3_eqs();
        // Protect exactly the Figure-3 transition: b=c=1, a changing.
        let toi = vec![(bits(0b110), bits(0b111))];
        let hdc = hdc_tmap(&eqs, &lib, &MapOptions::default(), &toi).unwrap();
        assert!(hdc.verify_function(&lib));
        assert!(hdc.verify_hazards_on(&lib, &toi));
    }

    #[test]
    fn hdc_never_exceeds_full_async_area() {
        let mut lib = builtin::lsi9k();
        lib.annotate_hazards();
        let eqs = asyncmap_burst::benchmark("dme-fast");
        let n = eqs.inputs.len();
        // Protect a couple of arbitrary single-input bursts.
        let mk = |m: usize| {
            let mut b = Bits::new(n);
            for v in 0..n {
                b.set(v, (m >> v) & 1 == 1);
            }
            b
        };
        let toi = vec![(mk(0), mk(1)), (mk(0b10), mk(0b11))];
        let asy = async_tmap(&eqs, &lib, &MapOptions::default()).unwrap();
        let hdc = hdc_tmap(&eqs, &lib, &MapOptions::default(), &toi).unwrap();
        assert!(hdc.area <= asy.area + 1e-9);
        assert!(hdc.verify_function(&lib));
        assert!(hdc.verify_hazards_on(&lib, &toi));
    }
}
