//! Whole-network interference analysis against a burst-mode spec:
//! cross-cone waveform propagation, interior-point race sweeps, feedback
//! pairing and essential-hazard candidates.
//!
//! The spec is expanded ([`asyncmap_burst::expand`]) into one specified
//! function per output and per next-state bit, each carrying the list of
//! transitions it must implement hazard-free over the combined
//! input + state-bit space. For every *distinct* transition
//! `(start, end)` the analyzer:
//!
//! 1. **propagates 8-valued waveform classes** through the whole mapped
//!    netlist, instance by instance in topological order — each cell's
//!    pins take the waves of their driving signals, so an upstream cone's
//!    glitch-capable output flows into every downstream cone instead of
//!    being assumed monotone. A hazard-flagged wave at a specified output
//!    is `boundary.burst-glitch`; settled endpoints that contradict the
//!    required transition kind are `boundary.burst-mismatch`.
//! 2. **sweeps the interior of the burst** with the word-parallel
//!    evaluator: under fundamental mode the output must hold its entry
//!    value at every proper sub-burst point (outputs switch only at burst
//!    completion, and state bursts must not be visible at all). A
//!    premature change during an input burst is
//!    `race.premature-transition`; during a one-hot state burst it is
//!    `race.state-burst`.
//!
//! Independently, consecutive spec edges that re-toggle the same input
//! are reported as `race.essential-candidate` (Info): that topology is
//! exactly Unger's essential hazard, where the second change of a signal
//! races the state feedback it triggered.

use crate::kernel::{eval_design_packed, wave_of_expr};
use crate::FmaReport;
use asyncmap_burst::{BurstSpec, FlowTable, TransKind};
use asyncmap_core::MappedDesign;
use asyncmap_cube::Bits;
use asyncmap_hazard::Wave;
use asyncmap_library::Library;
use asyncmap_network::SignalId;
use asyncmap_report::Severity;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Interior sweeps are exhaustive up to this many changing variables;
/// beyond it only single-variable sub-bursts are probed (and the
/// truncation is counted, never silent).
const SWEEP_VAR_LIMIT: usize = 8;

/// Everything the spec phases feed back into the caller's counters.
#[derive(Default)]
pub(crate) struct SpecOutcome {
    pub transitions: usize,
    pub race_points: usize,
    pub race_capped: usize,
    pub feedback_pairs: usize,
    pub essential_candidates: usize,
}

pub(crate) fn check_spec(
    design: &MappedDesign,
    library: &Library,
    spec: &BurstSpec,
    flow: &FlowTable,
    threads: usize,
    report: &mut FmaReport,
) -> SpecOutcome {
    let mut out = SpecOutcome::default();
    let net = &design.subject;

    // The design must present exactly the flow table's interface: the
    // combined variables as primary inputs, in order, and one output per
    // specified function. Anything else means the spec does not describe
    // this design, and transition analysis would dereference garbage.
    let input_names: Vec<&str> = net.inputs().iter().map(|&s| net.name(s)).collect();
    if input_names.len() != flow.var_names.len()
        || input_names
            .iter()
            .zip(&flow.var_names)
            .any(|(a, b)| *a != b.as_str())
    {
        report.push(
            Severity::Error,
            "spec.input-mismatch",
            spec.name.clone(),
            format!(
                "design inputs [{}] do not match the spec's combined variables [{}]",
                input_names.join(", "),
                flow.var_names.join(", ")
            ),
        );
        return out;
    }
    let output_pos: HashMap<&str, usize> = net
        .outputs()
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.as_str(), i))
        .collect();
    let mut func_output: Vec<Option<usize>> = Vec::with_capacity(flow.functions.len());
    for f in &flow.functions {
        let pos = output_pos.get(f.name.as_str()).copied();
        if pos.is_none() {
            report.push(
                Severity::Error,
                "spec.output-missing",
                f.name.clone(),
                "specified function has no matching primary output in the design".to_owned(),
            );
        }
        func_output.push(pos);
    }

    out.feedback_pairs = check_feedback(design, spec, report);
    out.essential_candidates = essential_candidates(spec, report);

    // Distinct (start, end) pairs; each carries every (function,
    // transition) that specifies it, so one waveform walk and one packed
    // sweep serve all functions of an edge phase.
    type PairUsers = Vec<(usize, usize)>;
    let mut pair_index: HashMap<(Vec<u64>, Vec<u64>), usize> = HashMap::new();
    let mut pairs: Vec<(Bits, Bits, PairUsers)> = Vec::new();
    for (fi, f) in flow.functions.iter().enumerate() {
        if func_output[fi].is_none() {
            continue;
        }
        for (ti, t) in f.transitions.iter().enumerate() {
            out.transitions += 1;
            let key = (t.start.words().to_vec(), t.end.words().to_vec());
            let slot = *pair_index.entry(key).or_insert_with(|| {
                pairs.push((t.start.clone(), t.end.clone(), Vec::new()));
                pairs.len() - 1
            });
            pairs[slot].2.push((fi, ti));
        }
    }

    // Per-pair analysis on the atomic-counter distribution; merged in
    // pair order for a deterministic report.
    let next = AtomicUsize::new(0);
    let mut results: Vec<(usize, PairOutcome)> = std::thread::scope(|scope| {
        let pairs = &pairs;
        let func_output = &func_output;
        let handles: Vec<_> = (0..threads.min(pairs.len()).max(1))
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((start, end, users)) = pairs.get(i) else {
                            break;
                        };
                        local.push((
                            i,
                            check_pair(design, library, flow, start, end, users, func_output),
                        ));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("transition worker panicked"))
            .collect()
    });
    results.sort_by_key(|&(i, _)| i);
    for (_, pair) in results {
        out.race_points += pair.race_points;
        out.race_capped += pair.capped as usize;
        for (sev, code, path, msg) in pair.findings {
            report.push(sev, code, path, msg);
        }
    }
    out
}

#[derive(Default)]
struct PairOutcome {
    findings: Vec<(Severity, &'static str, String, String)>,
    race_points: usize,
    capped: bool,
}

/// Analyzes one distinct `(start, end)` transition pair for every
/// function that specifies it.
fn check_pair(
    design: &MappedDesign,
    library: &Library,
    flow: &FlowTable,
    start: &Bits,
    end: &Bits,
    users: &[(usize, usize)],
    func_output: &[Option<usize>],
) -> PairOutcome {
    let mut out = PairOutcome::default();
    let net = &design.subject;
    let waves = wave_walk(design, library, start, end);
    let changing: Vec<usize> = start.xor(end).iter_ones().collect();
    let state_burst = changing.iter().any(|&v| v >= flow.num_inputs);
    let burst = render_burst(flow, start, end, &changing);

    // Interior points: every proper non-empty sub-burst. Above the sweep
    // limit, probe single-variable sub-bursts only and say so.
    let mut points: Vec<Bits> = Vec::new();
    if changing.len() <= SWEEP_VAR_LIMIT {
        for mask in 1..(1u32 << changing.len()).saturating_sub(1) {
            let mut p = start.clone();
            for (bit, &var) in changing.iter().enumerate() {
                if mask >> bit & 1 == 1 {
                    p.set(var, end.get(var));
                }
            }
            points.push(p);
        }
    } else {
        out.capped = true;
        for &var in &changing {
            let mut p = start.clone();
            p.set(var, end.get(var));
            points.push(p);
        }
    }
    let rows = if points.is_empty() {
        Vec::new()
    } else {
        eval_design_packed(design, library, &points)
    };

    for &(fi, ti) in users {
        let f = &flow.functions[fi];
        let t = &f.transitions[ti];
        let o = func_output[fi].expect("checked by caller");
        let (_, sig) = &net.outputs()[o];
        let w = waves.get(sig).copied().unwrap_or(Wave::C0);
        let (want_start, want_end) = match t.kind {
            TransKind::Static1 => (true, true),
            TransKind::Static0 => (false, false),
            TransKind::Rise => (false, true),
            TransKind::Fall => (true, false),
        };
        if (w.start, w.end) != (want_start, want_end) {
            out.findings.push((
                Severity::Error,
                "boundary.burst-mismatch",
                f.name.clone(),
                format!(
                    "specified {:?} transition over {burst} but the network settles \
                     {}\u{2192}{} — the mapped logic does not implement this burst",
                    t.kind,
                    u8::from(w.start),
                    u8::from(w.end),
                ),
            ));
            continue;
        }
        if w.hazard {
            out.findings.push((
                Severity::Error,
                "boundary.burst-glitch",
                f.name.clone(),
                format!(
                    "specified {:?} transition over {burst} can glitch: a cone's input \
                     burst is not covered by verified-monotonic upstream transitions \
                     (8-valued waveform propagation)",
                    t.kind
                ),
            ));
            continue;
        }
        // Fundamental mode: hold the entry value at every interior point.
        for (j, p) in points.iter().enumerate() {
            out.race_points += 1;
            let got = rows[o][j / 64] >> (j % 64) & 1 == 1;
            if got != want_start {
                let (code, what) = if state_burst {
                    (
                        "race.state-burst",
                        "one-hot state burst must be invisible at the outputs",
                    )
                } else {
                    (
                        "race.premature-transition",
                        "outputs may switch only at burst completion",
                    )
                };
                out.findings.push((
                    Severity::Error,
                    code,
                    f.name.clone(),
                    format!(
                        "holds {} at entry of {burst} but reads {} at interior point \
                         {} — {what}",
                        u8::from(want_start),
                        u8::from(got),
                        render_point(p),
                    ),
                ));
                break;
            }
        }
    }
    out
}

/// Propagates waveform classes for the transition `start → end` through
/// every cell instance in topological order.
fn wave_walk(
    design: &MappedDesign,
    library: &Library,
    start: &Bits,
    end: &Bits,
) -> HashMap<SignalId, Wave> {
    let net = &design.subject;
    let mut waves: HashMap<SignalId, Wave> = HashMap::new();
    for (i, &s) in net.inputs().iter().enumerate() {
        waves.insert(
            s,
            match (start.get(i), end.get(i)) {
                (false, false) => Wave::C0,
                (true, true) => Wave::C1,
                (false, true) => Wave::RISE,
                (true, false) => Wave::FALL,
            },
        );
    }
    let mut order: Vec<usize> = (0..design.covers.len()).collect();
    order.sort_by_key(|&i| design.covers[i].root);
    let mut pins: Vec<Wave> = Vec::new();
    for c in order {
        for inst in &design.covers[c].instances {
            let cell = &library.cells()[inst.cell_index];
            pins.clear();
            pins.extend(inst.inputs.iter().map(|s| waves[s]));
            waves.insert(inst.output, wave_of_expr(cell.bff(), &pins));
        }
    }
    waves
}

/// Pairs every `st{k}` input with its `y{k}` excitation output; orphans
/// on either side are `feedback.unpaired` warnings.
fn check_feedback(design: &MappedDesign, spec: &BurstSpec, report: &mut FmaReport) -> usize {
    let net = &design.subject;
    let inputs: Vec<&str> = net.inputs().iter().map(|&s| net.name(s)).collect();
    let outputs: Vec<&str> = net.outputs().iter().map(|(n, _)| n.as_str()).collect();
    let mut pairs = 0;
    for k in 0..spec.num_states {
        let st = format!("st{k}");
        let y = format!("y{k}");
        match (
            inputs.iter().any(|n| **n == st),
            outputs.iter().any(|n| **n == y),
        ) {
            (true, true) => pairs += 1,
            (true, false) => report.push(
                Severity::Warning,
                "feedback.unpaired",
                st.clone(),
                format!("state variable input {st} has no excitation output {y}"),
            ),
            (false, true) => report.push(
                Severity::Warning,
                "feedback.unpaired",
                y.clone(),
                format!("excitation output {y} has no state variable input {st}"),
            ),
            (false, false) => report.push(
                Severity::Warning,
                "feedback.unpaired",
                st.clone(),
                format!("state {k} of the spec appears in the design as neither {st} nor {y}"),
            ),
        }
    }
    pairs
}

/// Flags consecutive spec edges that re-toggle an input: the classic
/// essential-hazard topology, where the input's second change must not
/// outrun the state feedback triggered by its first.
fn essential_candidates(spec: &BurstSpec, report: &mut FmaReport) -> usize {
    let mut count = 0;
    for e1 in &spec.edges {
        for e2 in &spec.edges {
            if e1.to != e2.from {
                continue;
            }
            let shared = e1.input_burst.and(&e2.input_burst);
            if shared.is_zero() {
                continue;
            }
            count += 1;
            let names: Vec<&str> = shared
                .iter_ones()
                .map(|i| spec.input_names[i].as_str())
                .collect();
            report.push(
                Severity::Info,
                "race.essential-candidate",
                format!("s{}\u{2192}s{}\u{2192}s{}", e1.from.0, e1.to.0, e2.to.0),
                format!(
                    "input(s) {} toggle in consecutive bursts; under fundamental mode \
                     the second change must wait for the state feedback (essential \
                     hazard — bound the feedback delay or add a delay pad)",
                    names.join(", ")
                ),
            );
        }
    }
    count
}

fn render_burst(flow: &FlowTable, start: &Bits, end: &Bits, changing: &[usize]) -> String {
    let moves: Vec<String> = changing
        .iter()
        .map(|&v| {
            format!(
                "{}{}",
                flow.var_names[v],
                if end.get(v) { "+" } else { "-" }
            )
        })
        .collect();
    format!("{{{}}} from {}", moves.join(", "), render_point(start))
}

fn render_point(p: &Bits) -> String {
    let mut s = String::with_capacity(p.len());
    for i in 0..p.len() {
        s.push(if p.get(i) { '1' } else { '0' });
    }
    s
}
