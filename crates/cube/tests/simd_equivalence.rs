//! SIMD-vs-scalar equivalence properties for every lane-widened kernel.
//!
//! The `*_words` entry points dispatch to the 4-lane [`U64x4`] bodies on
//! the default build and to the `*_words_scalar` twins under
//! `--features scalar-kernels`; either way the scalar twin is the
//! specification. These properties pin the two implementations together
//! over arbitrary word blocks — including lengths that are not lane
//! multiples, where the tail handling lives.

use asyncmap_cube::simd::{self, U64x4};
use proptest::prelude::*;

/// Word blocks up to 3× the lane width so every tail length (0..LANES)
/// and at least one full chunk boundary get exercised.
fn words() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..13)
}

/// A cube-like (used, phase) word pair: `phase ⊆ used` as the cube
/// representation guarantees.
fn cube_words() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    prop::collection::vec((any::<u64>(), any::<u64>()), 0..13).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(u, p)| (u, p & u))
            .collect::<Vec<_>>()
            .into_iter()
            .unzip()
    })
}

proptest! {
    #[test]
    fn contains_words_matches_scalar((mut u1, mut p1) in cube_words(), (mut u2, mut p2) in cube_words()) {
        let n = u1.len().min(u2.len());
        for v in [&mut u1, &mut p1, &mut u2, &mut p2] {
            v.truncate(n);
        }
        prop_assert_eq!(
            simd::contains_words(&u1, &p1, &u2, &p2),
            simd::contains_words_scalar(&u1, &p1, &u2, &p2)
        );
    }

    #[test]
    fn contains_words_matches_scalar_same_block((u, p) in cube_words()) {
        // A cube always contains itself; both paths must agree on the
        // degenerate exact-equality case too.
        prop_assert_eq!(
            simd::contains_words(&u, &p, &u, &p),
            simd::contains_words_scalar(&u, &p, &u, &p)
        );
    }

    #[test]
    fn distance_words_matches_scalar((mut u1, mut p1) in cube_words(), (mut u2, mut p2) in cube_words()) {
        let n = u1.len().min(u2.len());
        for v in [&mut u1, &mut p1, &mut u2, &mut p2] {
            v.truncate(n);
        }
        prop_assert_eq!(
            simd::distance_words(&u1, &p1, &u2, &p2),
            simd::distance_words_scalar(&u1, &p1, &u2, &p2)
        );
    }

    #[test]
    fn conflicts_any_words_matches_scalar((mut u1, mut p1) in cube_words(), (mut u2, mut p2) in cube_words()) {
        let n = u1.len().min(u2.len());
        for v in [&mut u1, &mut p1, &mut u2, &mut p2] {
            v.truncate(n);
        }
        prop_assert_eq!(
            simd::conflicts_any_words(&u1, &p1, &u2, &p2),
            simd::conflicts_any_words_scalar(&u1, &p1, &u2, &p2)
        );
    }

    #[test]
    fn eval_words_matches_scalar((mut u, mut p) in cube_words(), mut a in words()) {
        let n = u.len().min(a.len());
        for v in [&mut u, &mut p, &mut a] {
            v.truncate(n);
        }
        prop_assert_eq!(
            simd::eval_words(&u, &p, &a),
            simd::eval_words_scalar(&u, &p, &a)
        );
    }

    #[test]
    fn subset_words_matches_scalar(mut a in words(), mut b in words()) {
        let n = a.len().min(b.len());
        a.truncate(n);
        b.truncate(n);
        prop_assert_eq!(
            simd::subset_words(&a, &b),
            simd::subset_words_scalar(&a, &b)
        );
    }

    #[test]
    fn subset_words_accepts_actual_subsets(a in words(), mut b in words()) {
        b.truncate(a.len());
        b.resize(a.len(), 0);
        let masked: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
        prop_assert!(simd::subset_words(&masked, &b));
        prop_assert!(simd::subset_words_scalar(&masked, &b));
    }

    #[test]
    fn disjoint_words_matches_scalar(mut a in words(), mut b in words()) {
        let n = a.len().min(b.len());
        a.truncate(n);
        b.truncate(n);
        prop_assert_eq!(
            simd::disjoint_words(&a, &b),
            simd::disjoint_words_scalar(&a, &b)
        );
    }

    #[test]
    fn count_ones_per_lane_matches_scalar(av in prop::collection::vec(any::<u64>(), 4..5)) {
        let a: [u64; 4] = av.try_into().unwrap();
        let v = U64x4(a);
        let lanes = v.count_ones_per_lane();
        for i in 0..4 {
            prop_assert_eq!(lanes[i], a[i].count_ones());
        }
        prop_assert_eq!(v.count_ones(), a.iter().map(|w| w.count_ones()).sum::<u32>());
    }

    #[test]
    fn lane_ops_match_scalar(av in prop::collection::vec(any::<u64>(), 4..5), bv in prop::collection::vec(any::<u64>(), 4..5)) {
        let a: [u64; 4] = av.try_into().unwrap();
        let b: [u64; 4] = bv.try_into().unwrap();
        let (va, vb) = (U64x4(a), U64x4(b));
        prop_assert_eq!((va & vb).to_array(), std::array::from_fn::<u64, 4, _>(|i| a[i] & b[i]));
        prop_assert_eq!((va | vb).to_array(), std::array::from_fn::<u64, 4, _>(|i| a[i] | b[i]));
        prop_assert_eq!((va ^ vb).to_array(), std::array::from_fn::<u64, 4, _>(|i| a[i] ^ b[i]));
        prop_assert_eq!((!va).to_array(), a.map(|w| !w));
        prop_assert_eq!(va.and_not(vb).to_array(), std::array::from_fn::<u64, 4, _>(|i| a[i] & !b[i]));
        prop_assert_eq!(va.reduce_or(), a.iter().fold(0, |x, &w| x | w));
        prop_assert_eq!(va.reduce_and(), a.iter().fold(!0, |x, &w| x & w));
        prop_assert_eq!(va.is_zero(), a.iter().all(|&w| w == 0));
    }

    #[test]
    fn lane_shifts_match_scalar(av in prop::collection::vec(any::<u64>(), 4..5), k in 0u32..64) {
        let a: [u64; 4] = av.try_into().unwrap();
        let v = U64x4(a);
        prop_assert_eq!((v << k).to_array(), a.map(|w| w << k));
        prop_assert_eq!((v >> k).to_array(), a.map(|w| w >> k));
    }
}
