//! The genlib tokenizer and statement parser.

use crate::{
    GenlibCell, GenlibError, GenlibErrorKind, GenlibLibrary, GenlibPin, PinPhase, SkipReason,
    SkippedCell,
};
use asyncmap_bff::Expr;
use asyncmap_cube::VarTable;

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
struct Token {
    text: String,
    line: usize,
}

/// Punctuation the tokenizer splits on. `*` doubles as the `PIN` wildcard
/// and the AND operator; `'` is the postfix complement.
const PUNCT: &[char] = &[';', '=', '(', ')', '+', '|', '*', '&', '!', '\''];

fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let content = raw.split('#').next().unwrap_or("");
        let mut word = String::new();
        for ch in content.chars() {
            if PUNCT.contains(&ch) || ch.is_whitespace() {
                if !word.is_empty() {
                    out.push(Token {
                        text: std::mem::take(&mut word),
                        line,
                    });
                }
                if !ch.is_whitespace() {
                    out.push(Token {
                        text: ch.to_string(),
                        line,
                    });
                }
            } else {
                word.push(ch);
            }
        }
        if !word.is_empty() {
            out.push(Token { text: word, line });
        }
    }
    out
}

fn is_keyword(tok: &str) -> bool {
    matches!(
        tok,
        "GATE" | "PIN" | "LATCH" | "SEQ" | "CONTROL" | "CONSTRAINT"
    )
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn err(&self, line: usize, kind: GenlibErrorKind, message: String) -> GenlibError {
        GenlibError {
            line,
            kind,
            message,
        }
    }

    /// Takes a non-keyword field token, or reports the statement as
    /// truncated (a keyword or end of file arrived first).
    fn field(&mut self, stmt_line: usize, what: &str) -> Result<Token, GenlibError> {
        match self.peek() {
            Some(t) if !is_keyword(&t.text) => Ok(self.next().expect("peeked")),
            _ => Err(self.err(
                stmt_line,
                GenlibErrorKind::Truncated,
                format!("statement ends before its {what} field"),
            )),
        }
    }

    fn number(&mut self, stmt_line: usize, what: &str) -> Result<f64, GenlibError> {
        let tok = self.field(stmt_line, what)?;
        let v: f64 = tok.text.parse().map_err(|_| {
            self.err(
                tok.line,
                GenlibErrorKind::BadNumber,
                format!("bad {what} {:?}", tok.text),
            )
        })?;
        if !v.is_finite() {
            return Err(self.err(
                tok.line,
                GenlibErrorKind::BadNumber,
                format!("non-finite {what} {:?}", tok.text),
            ));
        }
        Ok(v)
    }
}

/// Parses genlib text into a [`GenlibLibrary`] named `name`.
///
/// Combinational `GATE`s are converted; `LATCH` statements and
/// constant-function gates are recorded in [`GenlibLibrary::skipped`].
///
/// # Errors
///
/// Returns a typed [`GenlibError`] (with a 1-based line number) on any
/// malformed statement; never panics.
pub fn parse_genlib(text: &str, name: &str) -> Result<GenlibLibrary, GenlibError> {
    let mut p = Parser {
        tokens: tokenize(text),
        pos: 0,
    };
    let mut lib = GenlibLibrary {
        name: name.to_owned(),
        cells: Vec::new(),
        skipped: Vec::new(),
    };
    // Whether PIN statements currently attach to the last GATE (false
    // after LATCH: its pins are skipped along with it).
    let mut pins_attach = false;
    while let Some(tok) = p.next() {
        match tok.text.as_str() {
            "GATE" => match parse_gate(&mut p, tok.line)? {
                ParsedGate::Cell(cell) => {
                    if lib.cell(&cell.name).is_some() {
                        return Err(p.err(
                            tok.line,
                            GenlibErrorKind::DuplicateGate,
                            format!("gate {:?} already defined", cell.name),
                        ));
                    }
                    lib.cells.push(cell);
                    pins_attach = true;
                }
                ParsedGate::Constant(skipped) => {
                    lib.skipped.push(skipped);
                    pins_attach = false;
                }
            },
            "LATCH" => {
                let gate_line = tok.line;
                let name_tok = p.field(gate_line, "name")?;
                // Consume the rest of the statement (area + assignment)
                // without interpreting it.
                skip_until_semicolon(&mut p, gate_line)?;
                lib.skipped.push(SkippedCell {
                    name: name_tok.text,
                    line: gate_line,
                    reason: SkipReason::Latch,
                });
                pins_attach = false;
            }
            "PIN" => {
                let stmt_line = tok.line;
                let (pin_name, attrs) = parse_pin(&mut p, stmt_line)?;
                if !pins_attach {
                    if lib.cells.is_empty() && lib.skipped.is_empty() {
                        return Err(p.err(
                            stmt_line,
                            GenlibErrorKind::PinBeforeGate,
                            "PIN statement before any GATE".into(),
                        ));
                    }
                    continue; // pins of a skipped latch/constant gate
                }
                let cell = lib.cells.last_mut().expect("pins_attach implies a cell");
                if pin_name == "*" {
                    for a in &mut cell.pin_attrs {
                        *a = attrs.clone();
                    }
                } else {
                    match cell.pins.lookup(&pin_name) {
                        Some(v) => cell.pin_attrs[v.index()] = attrs,
                        None => {
                            return Err(p.err(
                                stmt_line,
                                GenlibErrorKind::UndeclaredPin,
                                format!(
                                    "gate {:?} has no pin {:?} in its expression",
                                    cell.name, pin_name
                                ),
                            ))
                        }
                    }
                }
            }
            // SEQ/CONTROL/CONSTRAINT trail LATCH statements; skip their
            // fields.
            "SEQ" | "CONTROL" | "CONSTRAINT" => {
                while p.peek().is_some_and(|t| !is_keyword(&t.text)) {
                    p.next();
                }
            }
            other => {
                return Err(p.err(
                    tok.line,
                    GenlibErrorKind::UnknownStatement,
                    format!("expected GATE, PIN or LATCH, found {other:?}"),
                ));
            }
        }
    }
    if lib.cells.is_empty() {
        return Err(GenlibError {
            line: 0,
            kind: GenlibErrorKind::EmptyLibrary,
            message: "file declares no combinational gate".into(),
        });
    }
    Ok(lib)
}

/// Consumes tokens up to and including the next `;`.
fn skip_until_semicolon(p: &mut Parser, stmt_line: usize) -> Result<(), GenlibError> {
    loop {
        match p.next() {
            Some(t) if t.text == ";" => return Ok(()),
            Some(_) => {}
            None => {
                return Err(p.err(
                    stmt_line,
                    GenlibErrorKind::MissingSemicolon,
                    "statement not terminated by `;`".into(),
                ))
            }
        }
    }
}

/// What a `GATE` statement turned out to be.
enum ParsedGate {
    /// A convertible combinational cell.
    Cell(GenlibCell),
    /// A constant-function gate the mapper cannot use.
    Constant(SkippedCell),
}

/// Parses one `GATE` statement after its keyword.
fn parse_gate(p: &mut Parser, gate_line: usize) -> Result<ParsedGate, GenlibError> {
    let name_tok = p.field(gate_line, "name")?;
    let area = p.number(gate_line, "area")?;
    let out_tok = p.field(gate_line, "output")?;
    // Expect `=` next.
    match p.peek() {
        Some(t) if t.text == "=" => {
            p.next();
        }
        _ => {
            return Err(p.err(
                p.line().max(gate_line),
                GenlibErrorKind::MissingAssign,
                format!("gate {:?}: expected `=` after output name", name_tok.text),
            ))
        }
    }
    // Expression tokens up to `;`.
    let mut expr_tokens: Vec<Token> = Vec::new();
    loop {
        match p.next() {
            Some(t) if t.text == ";" => break,
            Some(t) => {
                if is_keyword(&t.text) {
                    return Err(p.err(
                        t.line,
                        GenlibErrorKind::MissingSemicolon,
                        format!("gate {:?}: expression not terminated by `;`", name_tok.text),
                    ));
                }
                expr_tokens.push(t);
            }
            None => {
                return Err(p.err(
                    gate_line,
                    GenlibErrorKind::MissingSemicolon,
                    format!("gate {:?}: expression not terminated by `;`", name_tok.text),
                ))
            }
        }
    }
    if expr_tokens.is_empty() {
        return Err(p.err(
            gate_line,
            GenlibErrorKind::BadExpression,
            format!("gate {:?}: empty expression", name_tok.text),
        ));
    }
    let sop = expr_tokens
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    let mut pins = VarTable::new();
    let expr = parse_expr_tokens(&expr_tokens, &mut pins).map_err(|msg| {
        p.err(
            gate_line,
            GenlibErrorKind::BadExpression,
            format!("gate {:?}: {msg}", name_tok.text),
        )
    })?;
    if pins.is_empty() || expr.support().is_empty() {
        // CONST0/CONST1 cells and vacuous expressions both land here.
        return Ok(ParsedGate::Constant(SkippedCell {
            name: name_tok.text,
            line: gate_line,
            reason: SkipReason::Constant,
        }));
    }
    let npins = pins.len();
    Ok(ParsedGate::Cell(GenlibCell {
        name: name_tok.text,
        area,
        output: out_tok.text,
        sop,
        pins,
        expr,
        pin_attrs: vec![GenlibPin::default(); npins],
        line: gate_line,
    }))
}

/// Re-parses a declared genlib SOP expression (the text stored in
/// [`GenlibCell::sop`]) over a fresh or shared pin table. The preflight
/// analyzer uses this to re-derive a cell's declared function and
/// cross-check it against the converted cell's structure.
///
/// # Errors
///
/// Returns a description of the syntax problem.
pub fn parse_sop(text: &str, pins: &mut VarTable) -> Result<Expr, String> {
    let tokens = tokenize(text);
    if tokens.is_empty() {
        return Err("empty expression".into());
    }
    parse_expr_tokens(&tokens, pins)
}

/// Parses one `PIN` statement after its keyword.
fn parse_pin(p: &mut Parser, stmt_line: usize) -> Result<(String, GenlibPin), GenlibError> {
    // The wildcard `*` tokenizes as punctuation; accept it as the name.
    let name_tok = match p.peek() {
        Some(t) if t.text == "*" => p.next().expect("peeked"),
        _ => p.field(stmt_line, "pin name")?,
    };
    let phase_tok = p.field(stmt_line, "phase")?;
    let phase = match phase_tok.text.to_ascii_uppercase().as_str() {
        "INV" => PinPhase::Inv,
        "NONINV" => PinPhase::NonInv,
        "UNKNOWN" => PinPhase::Unknown,
        other => {
            return Err(p.err(
                phase_tok.line,
                GenlibErrorKind::BadPhase,
                format!("bad pin phase {other:?} (want INV, NONINV or UNKNOWN)"),
            ))
        }
    };
    Ok((
        name_tok.text,
        GenlibPin {
            phase,
            input_load: p.number(stmt_line, "input load")?,
            max_load: p.number(stmt_line, "max load")?,
            rise_block: p.number(stmt_line, "rise block delay")?,
            rise_fanout: p.number(stmt_line, "rise fanout delay")?,
            fall_block: p.number(stmt_line, "fall block delay")?,
            fall_fanout: p.number(stmt_line, "fall fanout delay")?,
        },
    ))
}

/// Recursive-descent parser over the expression token texts.
///
/// Grammar (`+`/`|` = OR, `*`/`&`/juxtaposition = AND, `!` prefix and `'`
/// postfix = NOT):
///
/// ```text
/// or     := and ( (+||) and )*
/// and    := factor ( [*&]? factor )*
/// factor := ( "!" factor | "(" or ")" | ident ) "'"*
/// ```
fn parse_expr_tokens(tokens: &[Token], pins: &mut VarTable) -> Result<Expr, String> {
    let texts: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
    let mut pos = 0usize;
    let expr = parse_or(&texts, &mut pos, pins)?;
    if pos != texts.len() {
        return Err(format!(
            "trailing tokens after expression: {:?}",
            &texts[pos..]
        ));
    }
    Ok(expr)
}

fn starts_factor(tok: &str) -> bool {
    tok == "!" || tok == "(" || !PUNCT.iter().any(|&c| tok == c.to_string())
}

fn parse_or(t: &[&str], pos: &mut usize, pins: &mut VarTable) -> Result<Expr, String> {
    let mut terms = vec![parse_and(t, pos, pins)?];
    while matches!(t.get(*pos), Some(&"+") | Some(&"|")) {
        *pos += 1;
        terms.push(parse_and(t, pos, pins)?);
    }
    Ok(Expr::or(terms))
}

fn parse_and(t: &[&str], pos: &mut usize, pins: &mut VarTable) -> Result<Expr, String> {
    let mut factors = vec![parse_factor(t, pos, pins)?];
    loop {
        match t.get(*pos) {
            Some(&"*") | Some(&"&") => {
                *pos += 1;
                factors.push(parse_factor(t, pos, pins)?);
            }
            Some(&tok) if starts_factor(tok) => {
                factors.push(parse_factor(t, pos, pins)?);
            }
            _ => break,
        }
    }
    Ok(Expr::and(factors))
}

fn parse_factor(t: &[&str], pos: &mut usize, pins: &mut VarTable) -> Result<Expr, String> {
    let mut expr = match t.get(*pos) {
        Some(&"!") => {
            *pos += 1;
            let inner = parse_factor(t, pos, pins)?;
            inner.not()
        }
        Some(&"(") => {
            *pos += 1;
            let inner = parse_or(t, pos, pins)?;
            match t.get(*pos) {
                Some(&")") => {
                    *pos += 1;
                    inner
                }
                _ => return Err("unbalanced parenthesis".into()),
            }
        }
        Some(&"CONST0") => {
            *pos += 1;
            Expr::Const(false)
        }
        Some(&"CONST1") => {
            *pos += 1;
            Expr::Const(true)
        }
        Some(&tok) if starts_factor(tok) => {
            *pos += 1;
            Expr::Var(pins.intern(tok))
        }
        Some(&tok) => return Err(format!("unexpected token {tok:?}")),
        None => return Err("expression ends unexpectedly".into()),
    };
    while t.get(*pos) == Some(&"'") {
        *pos += 1;
        expr = expr.not();
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
# MCNC-style fragment
GATE INV    1 O=!a;        PIN a INV 1 999 0.9 0.2 0.9 0.2
GATE NAND2  2 O=!(a*b);    PIN * INV 1 999 1.0 0.2 1.0 0.2
GATE AND2   3 O=a*b;       PIN * NONINV 1 999 1.4 0.2 1.3 0.2
GATE AOI21  3 O=!(a b + c);
PIN a INV 1 999 1.2 0.2 1.2 0.2
PIN b INV 1 999 1.2 0.2 1.2 0.2
PIN c INV 1 999 1.0 0.2 1.0 0.2
GATE ZERO   0 O=CONST0;
LATCH DFF   6 Q=D;         PIN D NONINV 1 999 1.0 0.1 1.0 0.1
";

    #[test]
    fn parses_the_sample() {
        let lib = parse_genlib(SAMPLE, "frag").unwrap();
        assert_eq!(lib.name, "frag");
        assert_eq!(lib.cells.len(), 4);
        let aoi = lib.cell("AOI21").unwrap();
        assert_eq!(aoi.pins.len(), 3);
        assert_eq!(aoi.pin_attrs[2].rise_block, 1.0);
        assert_eq!(aoi.output, "O");
        // Implicit AND between `a` and `b` parsed.
        assert_eq!(aoi.expr.num_literals(), 3);
        // Skipped: the latch. (Constant gates are dropped silently by the
        // statement parser; see `constant_gate_is_not_converted`.)
        assert!(lib.skipped.iter().any(|s| s.name == "DFF"));
        assert!(lib.cell("ZERO").is_none());
        assert!(lib.cell("DFF").is_none());
    }

    #[test]
    fn wildcard_pin_applies_to_all() {
        let lib = parse_genlib(SAMPLE, "frag").unwrap();
        let nand = lib.cell("NAND2").unwrap();
        assert_eq!(nand.pin_attrs.len(), 2);
        for a in &nand.pin_attrs {
            assert_eq!(a.phase, PinPhase::Inv);
            assert_eq!(a.rise_block, 1.0);
        }
        assert_eq!(nand.block_delay(), 1.0);
    }

    #[test]
    fn to_library_round_trip() {
        let lib = parse_genlib(SAMPLE, "frag").unwrap().to_library();
        assert_eq!(lib.len(), 4);
        assert_eq!(lib.cell("AND2").unwrap().area(), 3.0);
        let inv = lib.cell("INV").unwrap();
        assert_eq!(inv.num_inputs(), 1);
        // Truth table of !a: true at a=0.
        let tt = inv.truth_table();
        assert!(tt.get(0) && !tt.get(1));
    }

    #[test]
    fn postfix_and_prefix_not_agree() {
        let a = parse_genlib("GATE X 1 O=a';", "t").unwrap();
        let b = parse_genlib("GATE X 1 O=!a;", "t").unwrap();
        let ta = a.to_library().cell("X").unwrap().truth_table();
        let tb = b.to_library().cell("X").unwrap().truth_table();
        assert_eq!(ta.words(), tb.words());
    }

    #[test]
    fn or_bar_and_ampersand_accepted() {
        let lib = parse_genlib("GATE X 1 O=a&b | c*d;", "t").unwrap();
        assert_eq!(lib.cell("X").unwrap().pins.len(), 4);
    }

    #[test]
    fn truncated_gate_is_typed() {
        let err = parse_genlib("GATE INV 1", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::Truncated);
        assert_eq!(err.line, 1);
        let err = parse_genlib("GATE INV 1 O=!a", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::MissingSemicolon);
        let err = parse_genlib("GATE INV", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::Truncated);
        let err = parse_genlib("GATE", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::Truncated);
    }

    #[test]
    fn truncated_pin_is_typed() {
        let err =
            parse_genlib("GATE INV 1 O=!a;\nPIN a INV 1 999\nGATE B 1 O=a;", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::Truncated);
        assert_eq!(err.line, 2);
    }

    #[test]
    fn bad_fields_are_typed() {
        let err = parse_genlib("GATE INV x O=!a;", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::BadNumber);
        let err = parse_genlib("GATE INV 1 O=!a;\nPIN a SIDEWAYS 1 999 1 0 1 0", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::BadPhase);
        let err = parse_genlib("GATE INV 1 O !a;", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::MissingAssign);
        let err = parse_genlib("GATE X 1 O=a*(b+;", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::BadExpression);
        let err = parse_genlib("WIRE X 1 O=a;", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::UnknownStatement);
        let err = parse_genlib("PIN a INV 1 999 1 0 1 0", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::PinBeforeGate);
        let err = parse_genlib("GATE A 1 O=a;\nGATE A 1 O=!a;", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::DuplicateGate);
        let err = parse_genlib("GATE A 1 O=a;\nPIN b INV 1 999 1 0 1 0", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::UndeclaredPin);
        let err = parse_genlib("# nothing here\n", "t").unwrap_err();
        assert_eq!(err.kind, GenlibErrorKind::EmptyLibrary);
    }

    #[test]
    fn constant_gate_is_not_converted() {
        let lib = parse_genlib("GATE ONE 1 O=CONST1;\nGATE BUF 2 O=a;", "t").unwrap();
        assert_eq!(lib.cells.len(), 1);
        assert!(lib.cell("ONE").is_none());
        assert_eq!(lib.to_library().len(), 1);
    }

    #[test]
    fn declared_sop_reparses_to_the_same_function() {
        let lib = parse_genlib(SAMPLE, "frag").unwrap();
        for cell in &lib.cells {
            let mut pins = VarTable::new();
            let expr = parse_sop(&cell.sop, &mut pins).unwrap();
            assert_eq!(expr, cell.expr, "cell {}", cell.name);
        }
    }
}
