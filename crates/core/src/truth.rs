//! Word-parallel truth-table kernels.
//!
//! A truth table over `n ≤ 6` variables fits in one `u64`: bit `m` is the
//! function value at the assignment whose variable `v` takes bit `v` of
//! `m`. Under that packing, variable `v` itself *is* the constant mask
//! [`MASKS`]`[v]`, so one walk of the expression with `&`/`|`/`!` on `u64`s
//! evaluates all `2^n` assignments at once — the §4.1.1 bit-vector trick
//! applied to the matcher instead of the cube algebra.
//!
//! Above 6 variables the table is evaluated in 64-assignment blocks: the
//! low 6 variables keep their masks, the high variables are constant
//! (all-ones or all-zeros) within a block.

use asyncmap_bff::Expr;
use asyncmap_cube::Bits;
#[cfg(not(feature = "scalar-kernels"))]
use asyncmap_cube::U64x4;

/// `MASKS[v]` packs the value of variable `v` across the 64 assignments of
/// a block: bit `m` is set iff bit `v` of `m` is set.
pub const MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Mask selecting the `2^n` valid table bits of a packed `u64` (`n ≤ 6`).
#[inline]
pub fn full_mask(n: usize) -> u64 {
    debug_assert!(n <= 6);
    if n == 6 {
        !0
    } else {
        (1u64 << (1usize << n)) - 1
    }
}

/// Evaluates `expr` with each variable bound to a 64-assignment word.
fn eval_word(expr: &Expr, vars: &[u64]) -> u64 {
    match expr {
        Expr::Const(b) => {
            if *b {
                !0
            } else {
                0
            }
        }
        Expr::Var(v) => vars[v.index()],
        Expr::Not(e) => !eval_word(e, vars),
        Expr::And(es) => es.iter().fold(!0u64, |acc, e| acc & eval_word(e, vars)),
        Expr::Or(es) => es.iter().fold(0u64, |acc, e| acc | eval_word(e, vars)),
    }
}

/// Packed truth table of `expr` over `n ≤ 6` local variables.
pub fn truth6_of(expr: &Expr, n: usize) -> u64 {
    debug_assert!(n <= 6);
    eval_word(expr, &MASKS[..n.max(1)]) & full_mask(n)
}

/// Truth table of `expr` over `n` local variables, evaluated in
/// 64-assignment blocks (one expression walk per block instead of per
/// assignment).
///
/// # Panics
///
/// Panics if `n > 24` (the table would be too large).
pub fn truth_table_words(expr: &Expr, n: usize) -> Bits {
    assert!(n <= 24, "truth table limited to 24 variables, got {n}");
    if n <= 6 {
        let word = truth6_of(expr, n);
        return Bits::from_words_fn(1usize << n, |_| word);
    }
    let mut vars = [0u64; 24];
    vars[..6].copy_from_slice(&MASKS);
    Bits::from_words_fn(1usize << n, |block| {
        for (v, word) in vars.iter_mut().enumerate().take(n).skip(6) {
            *word = if (block >> (v - 6)) & 1 == 1 { !0 } else { 0 };
        }
        eval_word(expr, &vars[..n])
    })
}

/// `true` iff the packed function (over `n ≤ 6` vars) depends on `v`: the
/// two cofactors differ somewhere.
#[inline]
pub fn depends6(truth: u64, n: usize, v: usize) -> bool {
    ((truth >> (1usize << v)) ^ truth) & !MASKS[v] & full_mask(n) != 0
}

/// Projects a packed table onto a support subset (the function must not
/// depend on dropped variables).
pub fn project6(truth: u64, support: &[usize]) -> u64 {
    let k = support.len();
    let mut out = 0u64;
    for m in 0..(1usize << k) {
        let mut full = 0usize;
        for (i, &v) in support.iter().enumerate() {
            full |= ((m >> i) & 1) << v;
        }
        out |= ((truth >> full) & 1) << m;
    }
    out
}

/// Signature of input `v` of a packed table: onset count with `v = 1`
/// packed with the count with `v = 0` (permutation-invariant; identical to
/// the generic `input_signature`).
#[inline]
pub fn input_signature6(truth: u64, n: usize, v: usize) -> u32 {
    let onset = truth & full_mask(n);
    let with = (onset & MASKS[v]).count_ones();
    let without = (onset & !MASKS[v]).count_ones();
    (with << 16) | without
}

/// Reindexes a packed table under an input permutation: variable `i` of
/// the input function becomes variable `perm[i]` of the result, i.e.
/// `result(x_{perm(0)}, …, x_{perm(n-1)}) = truth(x_0, …, x_{n-1})`.
///
/// The permutation is decomposed into at most `n-1` variable
/// transpositions, each applied to the whole table at once as a
/// delta swap (§4.1.1's word-parallel trick applied to table
/// reindexing) — O(n) word ops instead of a bit-gather per set minterm.
/// Building with the `scalar-kernels` feature selects the minterm-loop
/// reference [`apply_perm6_generic`] instead; both are bit-identical.
pub fn apply_perm6(truth: u64, perm: &[usize], n: usize) -> u64 {
    #[cfg(feature = "scalar-kernels")]
    {
        apply_perm6_generic(truth, perm, n)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        debug_assert!(n <= 6 && perm.len() >= n);
        let mut t = truth & full_mask(n);
        let mut occupant = [0usize, 1, 2, 3, 4, 5]; // position -> variable
        let mut pos_of = [0usize, 1, 2, 3, 4, 5]; // variable -> position
        for v in 0..n {
            let target = perm[v];
            let cur = pos_of[v];
            if cur == target {
                continue;
            }
            let other = occupant[target];
            let (a, b) = if cur < target {
                (cur, target)
            } else {
                (target, cur)
            };
            t = swap_vars6(t, a, b);
            occupant[cur] = other;
            pos_of[other] = cur;
            occupant[target] = v;
            pos_of[v] = target;
        }
        t
    }
}

/// Minterm-loop reference for [`apply_perm6`]: a bit gather per set
/// minterm. Kept as the scalar fallback and the equivalence-test oracle.
#[doc(hidden)]
pub fn apply_perm6_generic(truth: u64, perm: &[usize], n: usize) -> u64 {
    debug_assert!(n <= 6 && perm.len() >= n);
    let mut out = 0u64;
    let mut rest = truth & full_mask(n);
    while rest != 0 {
        let m = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        let mut m2 = 0usize;
        for (i, &p) in perm[..n].iter().enumerate() {
            m2 |= ((m >> i) & 1) << p;
        }
        out |= 1u64 << m2;
    }
    out
}

/// Exchanges the roles of variables `a < b < 6` across a packed table:
/// entries at minterms with `x_a = 1, x_b = 0` swap with their partners
/// at `x_a = 0, x_b = 1`, all 64 at once via a delta swap.
#[cfg(not(feature = "scalar-kernels"))]
#[inline]
fn swap_vars6(t: u64, a: usize, b: usize) -> u64 {
    debug_assert!(a < b && b < 6);
    let shift = (1u32 << b) - (1u32 << a);
    let mask = MASKS[a] & !MASKS[b];
    let x = ((t >> shift) ^ t) & mask;
    t ^ x ^ (x << shift)
}

/// [`apply_perm6`] for wide (7–8 variable) tables stored as the cut
/// enumerator's 4-word blocks: low-variable transpositions run as 4-lane
/// [`U64x4`] delta swaps in lockstep over all blocks, a low↔high
/// transposition is a masked cross-word exchange, and a high↔high
/// transposition swaps whole blocks. Only the first `2^(n-6)` words are
/// meaningful; the rest must be zero and stay zero.
///
/// Under `scalar-kernels` this is the minterm-loop reference
/// [`apply_perm_wide_generic`].
pub fn apply_perm_wide(words: [u64; 4], perm: &[usize], n: usize) -> [u64; 4] {
    #[cfg(feature = "scalar-kernels")]
    {
        apply_perm_wide_generic(words, perm, n)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        debug_assert!((7..=8).contains(&n) && perm.len() >= n);
        let mut t = words;
        let mut occupant = [0usize, 1, 2, 3, 4, 5, 6, 7];
        let mut pos_of = [0usize, 1, 2, 3, 4, 5, 6, 7];
        for v in 0..n {
            let target = perm[v];
            let cur = pos_of[v];
            if cur == target {
                continue;
            }
            let other = occupant[target];
            let (a, b) = if cur < target {
                (cur, target)
            } else {
                (target, cur)
            };
            t = swap_vars_wide(t, a, b, n);
            occupant[cur] = other;
            pos_of[other] = cur;
            occupant[target] = v;
            pos_of[v] = target;
        }
        t
    }
}

/// Minterm-loop reference for [`apply_perm_wide`].
#[doc(hidden)]
pub fn apply_perm_wide_generic(words: [u64; 4], perm: &[usize], n: usize) -> [u64; 4] {
    debug_assert!((7..=8).contains(&n) && perm.len() >= n);
    let mut out = [0u64; 4];
    for m in 0..(1usize << n) {
        if (words[m >> 6] >> (m & 63)) & 1 == 0 {
            continue;
        }
        let mut m2 = 0usize;
        for (i, &p) in perm[..n].iter().enumerate() {
            m2 |= ((m >> i) & 1) << p;
        }
        out[m2 >> 6] |= 1u64 << (m2 & 63);
    }
    out
}

/// Variable transposition `a < b` on a wide 4-word table.
#[cfg(not(feature = "scalar-kernels"))]
#[inline]
fn swap_vars_wide(t: [u64; 4], a: usize, b: usize, n: usize) -> [u64; 4] {
    debug_assert!(a < b && b < n && (7..=8).contains(&n));
    if b < 6 {
        // Both variables live inside every 64-minterm block: one 4-lane
        // delta swap handles all blocks in lockstep (unused blocks are
        // zero and map to zero).
        let shift = (1u32 << b) - (1u32 << a);
        let mask = U64x4::splat(MASKS[a] & !MASKS[b]);
        let v = U64x4(t);
        let x = ((v >> shift) ^ v) & mask;
        (v ^ x ^ (x << shift)).to_array()
    } else if a < 6 {
        // Low/high exchange: within each block pair differing at block
        // bit b-6, entries with x_a = 1 of the low block swap with
        // entries with x_a = 0 of the high block.
        let j = b - 6;
        let shift = 1u32 << a;
        let mask = MASKS[a];
        let mut out = t;
        let blocks = 1usize << (n - 6);
        let mut lo_block = 0usize;
        while lo_block < blocks {
            if (lo_block >> j) & 1 == 0 {
                let hi_block = lo_block | (1 << j);
                let (lo, hi) = (t[lo_block], t[hi_block]);
                out[lo_block] = (lo & !mask) | ((hi << shift) & mask);
                out[hi_block] = (hi & mask) | ((lo >> shift) & !mask);
            }
            lo_block += 1;
        }
        out
    } else {
        // Both high (only possible at n = 8): swapping block bits 0 and 1
        // exchanges blocks 01 and 10.
        [t[0], t[2], t[1], t[3]]
    }
}

/// The canonical representative of a packed table's P-class (input
/// permutation) extended with output phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Canon6 {
    /// Class representative: the numerically smallest table reachable by
    /// permuting inputs of the function or of its complement.
    pub canon: u64,
    /// `true` when the representative was reached from the complement.
    pub phase: bool,
}

/// Canonicalizes a packed table under input permutation and output phase:
/// two functions get equal [`Canon6`] values iff one is an input
/// permutation of the other (same `phase`) or of its complement (opposite
/// `phase`). A library cell therefore matches a cluster function iff their
/// positive-phase canonical forms coincide.
///
/// The minimization only ranges over permutations that sort the per-input
/// [`input_signature6`] values ascending — signatures are
/// permutation-invariant, so the restricted minimum is still a class
/// invariant, and every permutation relating two class members maps
/// equal-signature inputs to each other, so it also distinguishes classes.
/// The worst case (all six signatures equal) evaluates 720 permutations.
pub fn canon6(truth: u64, n: usize) -> Canon6 {
    debug_assert!(n <= 6);
    let mask = full_mask(n);
    let t = truth & mask;
    let pos = perm_min6(t, n);
    let neg = perm_min6(!t & mask, n);
    if pos <= neg {
        Canon6 {
            canon: pos,
            phase: false,
        }
    } else {
        Canon6 {
            canon: neg,
            phase: true,
        }
    }
}

/// Minimum of `apply_perm6(t, π, n)` over all signature-sorting
/// permutations π (see [`canon6`]).
fn perm_min6(t: u64, n: usize) -> u64 {
    if n <= 1 {
        return t;
    }
    let mut sigs = [0u32; 6];
    for (v, s) in sigs.iter_mut().enumerate().take(n) {
        *s = input_signature6(t, n, v);
    }
    // vars sorted by signature gives the target signature per position.
    let mut vars = [0usize, 1, 2, 3, 4, 5];
    vars[..n].sort_by_key(|&v| sigs[v]);
    let mut perm = [0usize; 6]; // old var -> new position
    let mut used = [false; 6];
    let mut best = u64::MAX;
    // Backtracking over positions: position j may take any unused variable
    // whose signature equals the j-th smallest.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        t: u64,
        n: usize,
        j: usize,
        sigs: &[u32; 6],
        vars: &[usize; 6],
        perm: &mut [usize; 6],
        used: &mut [bool; 6],
        best: &mut u64,
    ) {
        if j == n {
            let cand = apply_perm6(t, perm, n);
            if cand < *best {
                *best = cand;
            }
            return;
        }
        let want = sigs[vars[j]];
        for &v in &vars[..n] {
            if used[v] || sigs[v] != want {
                continue;
            }
            used[v] = true;
            perm[v] = j;
            rec(t, n, j + 1, sigs, vars, perm, used, best);
            used[v] = false;
        }
    }
    rec(t, n, 0, &sigs, &vars, &mut perm, &mut used, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    #[test]
    fn masks_encode_variable_values() {
        for (v, mask) in MASKS.iter().enumerate() {
            for m in 0..64u64 {
                assert_eq!((mask >> m) & 1, (m >> v) & 1, "var {v} minterm {m}");
            }
        }
    }

    #[test]
    fn truth6_matches_scalar_eval() {
        let mut vars = VarTable::new();
        let e = Expr::parse("(a + b') * (c + a') + b * c'", &mut vars).unwrap();
        let n = 3;
        let packed = truth6_of(&e, n);
        let mut assignment = Bits::new(n);
        for m in 0..(1usize << n) {
            for v in 0..n {
                assignment.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!((packed >> m) & 1 == 1, e.eval(&assignment), "minterm {m}");
        }
    }

    #[test]
    fn blocked_table_matches_scalar_eval() {
        let mut vars = VarTable::new();
        let e = Expr::parse("(a*b + c'*d) * (e + f') + g*h'", &mut vars).unwrap();
        let n = 8;
        let table = truth_table_words(&e, n);
        let mut assignment = Bits::new(n);
        for m in 0..(1usize << n) {
            for v in 0..n {
                assignment.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(table.get(m), e.eval(&assignment), "minterm {m}");
        }
    }

    #[test]
    fn apply_perm_reindexes_variables() {
        // t = x0 & !x1 over 3 vars; swap vars 0 and 2.
        let t = MASKS[0] & !MASKS[1] & full_mask(3);
        let swapped = apply_perm6(t, &[2, 1, 0], 3);
        assert_eq!(swapped, MASKS[2] & !MASKS[1] & full_mask(3));
        // Identity permutation is a no-op.
        assert_eq!(apply_perm6(t, &[0, 1, 2], 3), t);
    }

    #[test]
    fn delta_swap_perm_matches_generic() {
        // SplitMix64 tables × all 2-cycles and a few full permutations,
        // at every width.
        let mut s = 0x5EED_u64;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for n in 1..=6usize {
            for _ in 0..50 {
                let t = next() & full_mask(n);
                let mut perm: Vec<usize> = (0..n).collect();
                // Fisher-Yates driven by the same stream.
                for i in (1..n).rev() {
                    perm.swap(i, (next() % (i as u64 + 1)) as usize);
                }
                assert_eq!(
                    apply_perm6(t, &perm, n),
                    apply_perm6_generic(t, &perm, n),
                    "n={n} perm={perm:?} t={t:#x}"
                );
            }
        }
        for n in 7..=8usize {
            for _ in 0..50 {
                let mut words = [0u64; 4];
                for w in words.iter_mut().take(1 << (n - 6)) {
                    *w = next();
                }
                let mut perm: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    perm.swap(i, (next() % (i as u64 + 1)) as usize);
                }
                assert_eq!(
                    apply_perm_wide(words, &perm, n),
                    apply_perm_wide_generic(words, &perm, n),
                    "n={n} perm={perm:?}"
                );
            }
        }
    }

    #[test]
    fn canon_is_a_class_invariant() {
        // All permutations of a 3-var function land on one canonical form.
        let t = (MASKS[0] & MASKS[1]) | !MASKS[2];
        let t = t & full_mask(3);
        let base = canon6(t, 3);
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            assert_eq!(canon6(apply_perm6(t, &p, 3), 3), base, "perm {p:?}");
        }
        // The complement shares the representative with flipped phase.
        let comp = canon6(!t & full_mask(3), 3);
        assert_eq!(comp.canon, base.canon);
        assert_ne!(comp.phase, base.phase);
    }

    #[test]
    fn canon_distinguishes_inequivalent_functions() {
        // AND2 and OR2 are not permutations of each other (nor of each
        // other's complements): 2-var AND has onset 1, OR has onset 3,
        // and their complements have onsets 3 and 1 — but AND's canon
        // (onset {11}) differs from NOR's canon (onset {00}).
        let and2 = 0b1000u64;
        let or2 = 0b1110u64;
        assert_ne!(canon6(and2, 2), canon6(or2, 2));
    }

    #[test]
    fn canon_of_canon_is_fixed() {
        for t in [0u64, 0x8, 0x6, 0x96, 0x1e, 0xfe, 0x80] {
            let c = canon6(t, 3);
            let again = canon6(c.canon, 3);
            assert_eq!(again.canon, c.canon);
            assert!(!again.phase, "representative is positive-phase");
        }
    }

    #[test]
    fn depends_and_projection() {
        use asyncmap_cube::VarId;
        // XNOR of variables 0 and 2 — ignores variable 1.
        let v = |i| Expr::Var(VarId(i));
        let e = Expr::Or(vec![
            Expr::And(vec![v(0), v(2)]),
            Expr::And(vec![Expr::Not(Box::new(v(0))), Expr::Not(Box::new(v(2)))]),
        ]);
        let t = truth6_of(&e, 3);
        assert!(depends6(t, 3, 0));
        assert!(!depends6(t, 3, 1));
        assert!(depends6(t, 3, 2));
        let proj = project6(t, &[0, 2]);
        // XNOR over 2 vars: minterms 00 and 11.
        assert_eq!(proj, 0b1001);
    }
}
