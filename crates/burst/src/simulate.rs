//! Fundamental-mode simulation of a synthesized (or mapped) controller
//! against its burst-mode specification: the closed-loop architecture of
//! the paper's Figure 1, with the combinational block provided as a
//! callback so both the golden equations and a technology-mapped netlist
//! can be exercised.
//!
//! The simulator drives every specified edge, applying the input burst
//! one signal at a time in several different orders (burst-mode allows any
//! order), letting the feedback loop settle after each step, and checking:
//!
//! * mid-burst, the state and outputs hold their entry values (outputs
//!   commit only on burst completion);
//! * after the burst, the machine settles in the target state with the
//!   target outputs within a bounded number of feedback iterations.

use crate::spec::{BurstSpec, SpecError};
use asyncmap_cube::Bits;

/// The combinational block under test: given `(inputs ++ state bits)`
/// returns `(outputs, next-state bits)`.
pub trait CombinationalBlock {
    /// Evaluates the block at a total state.
    fn eval(&self, total: &Bits) -> (Bits, Bits);
}

impl<F> CombinationalBlock for F
where
    F: Fn(&Bits) -> (Bits, Bits),
{
    fn eval(&self, total: &Bits) -> (Bits, Bits) {
        self(total)
    }
}

/// A violation found during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationError {
    /// Human-readable description of the failing step.
    pub message: String,
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fundamental-mode simulation failed: {}", self.message)
    }
}

impl std::error::Error for SimulationError {}

/// Maximum feedback-settling iterations per input step.
const SETTLE_LIMIT: usize = 8;

/// Simulates every edge of `spec` on `block` (a one-hot-encoded
/// combinational implementation), trying `orders` different permutations
/// of each input burst.
///
/// # Errors
///
/// Returns [`SimulationError`] on the first mismatch against the
/// specification, or [`SpecError`] (wrapped) if the spec itself is
/// invalid.
pub fn simulate_machine(
    spec: &BurstSpec,
    block: &impl CombinationalBlock,
    orders: usize,
) -> Result<(), SimulationError> {
    let entry = spec
        .validate()
        .map_err(|e: SpecError| SimulationError { message: e.message })?;
    let ni = spec.num_inputs();
    let ns = spec.num_states;
    let one_hot = |s: usize| {
        let mut b = Bits::new(ns);
        b.set(s, true);
        b
    };
    let total = |v: &Bits, code: &Bits| {
        let mut t = Bits::new(ni + ns);
        for i in 0..ni {
            t.set(i, v.get(i));
        }
        for s in 0..ns {
            t.set(ni + s, code.get(s));
        }
        t
    };

    for (edge_index, e) in spec.edges.iter().enumerate() {
        let v_entry = entry.inputs[e.from.0].as_ref().expect("validated").clone();
        let o_entry = entry.outputs[e.from.0].as_ref().expect("validated").clone();
        let o_exit = o_entry.xor(&e.output_burst);
        let changing: Vec<usize> = e.input_burst.iter_ones().collect();
        for order in burst_orders(&changing, orders) {
            let mut v = v_entry.clone();
            let mut code = one_hot(e.from.0);
            // Sanity: stable at entry.
            settle(block, &total(&v, &code), &mut code, ni, ns).map_err(|m| SimulationError {
                message: format!("edge {edge_index}: entry not stable: {m}"),
            })?;
            for (step, &i) in order.iter().enumerate() {
                v.flip(i);
                let complete = step + 1 == order.len();
                let t = total(&v, &code);
                let (outs, _) = block.eval(&t);
                settle(block, &total(&v, &code), &mut code, ni, ns).map_err(|m| {
                    SimulationError {
                        message: format!("edge {edge_index}, step {step}: {m}"),
                    }
                })?;
                let expect_outs = if complete { &o_exit } else { &o_entry };
                let expect_state = if complete { e.to.0 } else { e.from.0 };
                if &outs != expect_outs {
                    return Err(SimulationError {
                        message: format!(
                            "edge {edge_index}, step {step}: outputs {outs:?}, expected {expect_outs:?}"
                        ),
                    });
                }
                if code != one_hot(expect_state) {
                    return Err(SimulationError {
                        message: format!(
                            "edge {edge_index}, step {step}: state {code:?}, expected state {expect_state}"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Iterates the feedback loop until the state code is a fixpoint.
fn settle(
    block: &impl CombinationalBlock,
    start_total: &Bits,
    code: &mut Bits,
    ni: usize,
    ns: usize,
) -> Result<(), String> {
    let mut total = start_total.clone();
    for _ in 0..SETTLE_LIMIT {
        let (_, next) = block.eval(&total);
        if next == *code {
            return Ok(());
        }
        *code = next.clone();
        for s in 0..ns {
            total.set(ni + s, next.get(s));
        }
    }
    Err(format!(
        "feedback did not settle within {SETTLE_LIMIT} steps"
    ))
}

/// Deterministic selection of change orders: identity, reverse, and
/// rotations.
fn burst_orders(changing: &[usize], orders: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let n = changing.len();
    for k in 0..orders.max(1) {
        let mut o: Vec<usize> = changing.to_vec();
        if k % 2 == 1 {
            o.reverse();
        }
        o.rotate_left((k / 2) % n.max(1));
        if !out.contains(&o) {
            out.push(o);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::expand;
    use crate::minimize::hazard_free_cover;
    use crate::spec::figure1_example;
    use asyncmap_cube::Cover;

    /// Golden block: evaluate the synthesized covers directly.
    struct GoldenBlock {
        outputs: Vec<Cover>,
        state_bits: Vec<Cover>,
    }

    impl CombinationalBlock for GoldenBlock {
        fn eval(&self, total: &Bits) -> (Bits, Bits) {
            let mut outs = Bits::new(self.outputs.len());
            for (i, c) in self.outputs.iter().enumerate() {
                outs.set(i, c.eval(total));
            }
            let mut code = Bits::new(self.state_bits.len());
            for (i, c) in self.state_bits.iter().enumerate() {
                code.set(i, c.eval(total));
            }
            (outs, code)
        }
    }

    fn golden(spec: &BurstSpec) -> GoldenBlock {
        let flow = expand(spec).unwrap();
        let no = spec.num_outputs();
        let covers: Vec<Cover> = flow
            .functions
            .iter()
            .map(|f| hazard_free_cover(f).unwrap())
            .collect();
        GoldenBlock {
            outputs: covers[..no].to_vec(),
            state_bits: covers[no..].to_vec(),
        }
    }

    #[test]
    fn figure1_machine_runs_its_bursts() {
        let spec = figure1_example();
        let block = golden(&spec);
        simulate_machine(&spec, &block, 4).unwrap();
    }

    #[test]
    fn benchmark_machines_run_their_bursts() {
        for name in ["vanbek-opt", "dme-fast", "chu-ad-opt", "dme"] {
            let spec = crate::benchmark_spec(name);
            let block = golden(&spec);
            simulate_machine(&spec, &block, 4).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn broken_block_is_caught() {
        let spec = figure1_example();
        // A block that never raises y.
        let block = |total: &Bits| {
            let golden = golden(&figure1_example());
            let (mut outs, code) = golden.eval(total);
            outs.set(0, false);
            (outs, code)
        };
        let err = simulate_machine(&spec, &block, 1).unwrap_err();
        assert!(err.message.contains("outputs"));
    }
}
