//! Multi-input-change dynamic logic hazard analysis of two-level covers
//! (paper §4.2.1, procedure `findMicDynHaz2level`).
//!
//! Theorem 4.1: a two-level SOP implementation of `f` has a dynamic logic
//! hazard for the transition `α → β` (`f(α)=0`, `f(β)=1`) iff
//!
//! 1. the transition space `T[α, β]` is function-hazard-free, and
//! 2. some cube of the cover intersects `T[α, β]` but does not contain `β`.
//!
//! Instead of scanning all transition spaces, the procedure starts from
//! each *irredundant cube intersection*, walks to the adjacent subcubes by
//! complementing one care variable at a time, sorts them by function value,
//! and emits the minimal function-hazard-free transition spaces spanned by
//! each 0-side / 1-side pair. Dynamic hazards that are consequences of a
//! static 1-hazard are intentionally not re-reported (Example 4.2.3): they
//! are already fully characterized by the static-1 analysis.

use crate::function::disjoint;
use crate::Hazard;
use asyncmap_cube::{Bits, Cover, Cube};

/// The paper's `findMicDynHaz2level`: all m.i.c. dynamic logic hazards of a
/// two-level cover that are not the result of a static 1-hazard.
///
/// Each returned [`Hazard::DynamicMic`] describes the minimal
/// function-hazard-free transition space `T[zero_end, one_end]` built from
/// one irredundant cube intersection.
/// # Examples
///
/// ```
/// use asyncmap_cube::{Cover, VarTable};
/// use asyncmap_hazard::find_mic_dyn_haz_2level;
///
/// // Figure 10 / Example 4.2.4: one intersection, three hazards.
/// let vars = VarTable::from_names(["w", "x", "y", "z"]);
/// let f = Cover::parse("w'xz + w'xy + xyz", &vars)?;
/// assert_eq!(find_mic_dyn_haz_2level(&f).len(), 3);
/// # Ok::<(), asyncmap_cube::ParseSopError>(())
/// ```
pub fn find_mic_dyn_haz_2level(f: &Cover) -> Vec<Hazard> {
    let mut hazards: Vec<Hazard> = Vec::new();
    let complement = f.complement();
    for c in irredundant_intersections(f) {
        let mut alpha_c: Vec<Cube> = Vec::new();
        let mut beta_c: Vec<Cube> = Vec::new();
        for (v, _) in c.literals() {
            let d = c.with_var_flipped(v);
            if disjoint(f, &d) {
                push_unique(&mut alpha_c, d);
            } else if f.covers_cube(&d) {
                push_unique(&mut beta_c, d);
            } else {
                // Mixed-value neighbor (possible when the intersection is
                // not a minterm): descend into its constant-valued parts so
                // that endpoints stay function-pure.
                for g in complement.cubes() {
                    if let Some(e) = g.intersect(&d) {
                        push_unique(&mut alpha_c, e);
                    }
                }
                for cf in f.cubes() {
                    if let Some(e) = cf.intersect(&d) {
                        push_unique(&mut beta_c, e);
                    }
                }
            }
        }
        for i in &alpha_c {
            for j in &beta_c {
                // The witness cube c must be able to pulse during the
                // transition: it has to meet the transition space without
                // holding the settling endpoint (Theorem 4.1, condition 2).
                let space = i.supercube(j);
                if c.intersect(&space).is_none() || c.contains(j) {
                    continue;
                }
                let h = Hazard::DynamicMic {
                    space,
                    zero_end: i.clone(),
                    one_end: j.clone(),
                };
                if !hazards.contains(&h) {
                    hazards.push(h);
                }
            }
        }
    }
    hazards
}

fn push_unique(list: &mut Vec<Cube>, cube: Cube) {
    if !list.contains(&cube) {
        list.push(cube);
    }
}

/// The deduplicated pairwise cube intersections of a cover: nonempty
/// intersections of two cubes at distinct positions.
///
/// Containment pairs are *included*: a cube contained in another can still
/// glitch visibly during a dynamic transition, because its container is
/// itself switching (e.g. in `b + ab`, the gate `ab` pulses on the burst
/// `a↓ b↑` before `b` turns on). Intersections whose neighborhood contains
/// no 0-valued subcube produce no descriptors and are filtered naturally.
pub fn irredundant_intersections(f: &Cover) -> Vec<Cube> {
    let cubes = f.cubes();
    let mut out: Vec<Cube> = Vec::new();
    for i in 0..cubes.len() {
        for j in (i + 1)..cubes.len() {
            if let Some(c) = cubes[i].intersect(&cubes[j]) {
                if !c.is_universe() && !out.contains(&c) {
                    out.push(c);
                }
            }
        }
    }
    out
}

/// Theorem 4.1, condition 2, as a per-transition predicate: `true` iff some
/// cube of `f` intersects `space` without containing the settling 1-valued
/// endpoint `one_end` — i.e. the two-level implementation has a dynamic
/// hazard on every function-hazard-free transition from/to `one_end`
/// across `space`.
pub fn mic_dynamic_hazard_on(f: &Cover, space: &Cube, one_end: &Bits) -> bool {
    let end = Cube::minterm(one_end);
    f.cubes()
        .iter()
        .any(|c| c.intersect(space).is_some() && !c.contains(&end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::VarTable;

    fn cover(text: &str, vars: &VarTable) -> Cover {
        Cover::parse(text, vars).unwrap()
    }

    fn cube(text: &str, vars: &VarTable) -> Cube {
        Cube::parse(text, vars).unwrap()
    }

    #[test]
    fn figure10_worked_example() {
        // Paper Example 4.2.4 / Figure 10: f = w'xz + w'xy + xyz.
        // Only irredundant intersection: w'xyz. Adjacent subcubes:
        // α = {w'x'yz}, β = {w'xy'z, wxyz, w'xyz'}.
        let vars = VarTable::from_names(["w", "x", "y", "z"]);
        let f = cover("w'xz + w'xy + xyz", &vars);
        let inter = irredundant_intersections(&f);
        assert_eq!(inter, vec![cube("w'xyz", &vars)]);
        let hz = find_mic_dyn_haz_2level(&f);
        assert_eq!(hz.len(), 3);
        let zero = cube("w'x'yz", &vars);
        for h in &hz {
            let Hazard::DynamicMic {
                space,
                zero_end,
                one_end,
            } = h
            else {
                panic!("wrong kind")
            };
            assert_eq!(zero_end, &zero);
            assert_eq!(space, &zero.supercube(one_end));
        }
        let one_ends: Vec<&Cube> = hz
            .iter()
            .map(|h| match h {
                Hazard::DynamicMic { one_end, .. } => one_end,
                _ => unreachable!(),
            })
            .collect();
        for want in ["w'xy'z", "wxyz", "w'xyz'"] {
            assert!(one_ends.contains(&&cube(want, &vars)), "missing {want}");
        }
    }

    #[test]
    fn figure8_condition2_transition() {
        // Paper Example 4.2.2: f = w'xz + w'xy + xyz, transition
        // T[α, γ] with α = w'x'y'z and γ = w'xyz'. Cubes w'xz and xyz
        // intersect T without containing γ → dynamic hazard.
        let vars = VarTable::from_names(["w", "x", "y", "z"]);
        let f = cover("w'xz + w'xy + xyz", &vars);
        let alpha = cube("w'x'y'z", &vars);
        let gamma = cube("w'xyz'", &vars);
        let space = alpha.supercube(&gamma);
        let mut gamma_bits = asyncmap_cube::Bits::new(4);
        gamma_bits.set(1, true); // x
        gamma_bits.set(2, true); // y
        assert!(mic_dynamic_hazard_on(&f, &space, &gamma_bits));
    }

    #[test]
    fn figure8_hazard_free_transition() {
        // T[β, δ] in the same figure has no dynamic hazard: the settle
        // point δ = w'xyz lies in all three cubes, so whichever gate turns
        // on first holds the output high while the rest settle.
        let vars = VarTable::from_names(["w", "x", "y", "z"]);
        let f = cover("w'xz + w'xy + xyz", &vars);
        let beta = cube("w'x'y'z'", &vars);
        let delta = cube("w'xyz", &vars);
        let space = beta.supercube(&delta);
        let mut delta_bits = asyncmap_cube::Bits::new(4);
        delta_bits.set(1, true); // x
        delta_bits.set(2, true); // y
        delta_bits.set(3, true); // z
        assert!(!mic_dynamic_hazard_on(&f, &space, &delta_bits));
    }

    #[test]
    fn single_cube_has_no_mic_dynamic_hazard() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("abc", &vars);
        assert!(find_mic_dyn_haz_2level(&f).is_empty());
        assert!(irredundant_intersections(&f).is_empty());
    }

    #[test]
    fn disjoint_cubes_have_no_intersections() {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("ab + a'c", &vars);
        assert!(irredundant_intersections(&f).is_empty());
        assert!(find_mic_dyn_haz_2level(&f).is_empty());
    }

    #[test]
    fn contained_cube_pulse_is_detected() {
        // b + ab: the gate ab pulses on the burst a↓ b↑ (from ab' to a'b)
        // before the b gate turns on — a real dynamic hazard even though
        // ab is a redundant, contained cube.
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = cover("b + ab", &vars);
        let inter = irredundant_intersections(&f);
        assert_eq!(inter, vec![cube("ab", &vars)]);
        let hz = find_mic_dyn_haz_2level(&f);
        assert!(
            hz.iter().any(|h| {
                let Hazard::DynamicMic {
                    zero_end, one_end, ..
                } = h
                else {
                    return false;
                };
                *zero_end == cube("ab'", &vars) && *one_end == cube("a'b", &vars)
            }),
            "{hz:?}"
        );
    }

    #[test]
    fn figure4a_mux_dynamic_hazard() {
        // Figure 4a: wy + xy' glitches for the {w,x} burst with y changing?
        // The classic mux hazard: cubes wy and xy' intersect at wxy·y'? No —
        // they conflict in y. The mux hazard wy + xy' is the static-1 case
        // on wx. The dynamic-m.i.c. example needs intersecting cubes:
        // f = wy + wx (intersecting at wxy).
        let vars = VarTable::from_names(["w", "x", "y"]);
        let f = cover("wy + wx", &vars);
        let hz = find_mic_dyn_haz_2level(&f);
        // Intersection wxy; neighbor w'xy is off f? w'xy: wy no, wx no → α.
        // Neighbors wx'y (wy ⊇? w=1,y=1 yes → β), wxy' (wx → β).
        assert_eq!(hz.len(), 2);
    }

    #[test]
    fn published_procedure_gap() {
        // A documented incompleteness of the published procedure, found by
        // the brute-force Theorem-4.1 oracle during this reproduction: in
        // f = b + a' + a'bc (function a' + b), every distance-1 neighbor of
        // the intersection cube a'bc has function value 1, so the procedure
        // emits no descriptor — yet the burst a↓ b↑ c↓ from ab'c to a'bc'
        // really can pulse the redundant gate a'bc (the off-set ab' is at
        // distance 2 from the intersection). The exhaustive waveform
        // comparison used by the matcher is immune to this gap.
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        let f = cover("b + a' + a'bc", &vars);
        assert!(find_mic_dyn_haz_2level(&f).is_empty());
        let brute = crate::oracle::brute_mic_dynamic_transitions(&f);
        // α = ab'c (a=1, c=1 → index 0b0101), β = a'bc' (b=1 → 0b0010).
        assert!(brute.contains(&(0b0101, 0b0010)));
    }

    #[test]
    fn mixed_neighbors_are_descended() {
        // Construct f where a neighbor subcube of the intersection takes
        // both values: intersection with a free variable.
        let vars = VarTable::from_names(["a", "b", "c", "d"]);
        // ab ∩ bc = abc (d free). Neighbor a'bc: f = ab + bc + ad?
        // a'bc ⊆ bc → β. Use f = ab + bc + a'b'd:
        // neighbor ab'c: ab no, bc no, a'b'd no (a=1) → α (disjoint) ok...
        // neighbor abc' : ab ⊇ → β. neighbor a'bc: bc ⊇ → β.
        let f = cover("ab + bc + a'b'd", &vars);
        let hz = find_mic_dyn_haz_2level(&f);
        // All descriptors must have function-value-pure endpoints.
        for h in &hz {
            let Hazard::DynamicMic {
                zero_end, one_end, ..
            } = h
            else {
                panic!()
            };
            assert!(disjoint(&f, zero_end));
            assert!(f.covers_cube(one_end));
        }
    }
}
