//! Library hazard audit: annotate each built-in technology library and
//! report its hazardous elements — the analysis behind the paper's
//! Table 1. Pass a path to audit a library in the text format instead.
//!
//! Run with `cargo run --example library_audit [-- path/to/library.txt]`.

use asyncmap::prelude::*;
use std::time::Instant;

fn audit(mut lib: Library) {
    let t = Instant::now();
    lib.annotate_hazards();
    let elapsed = t.elapsed();
    let hazardous = lib.hazardous_cells();
    println!(
        "{:8} {:3} elements, {:2} hazardous ({:.0}%), annotated in {:.2?}",
        lib.name(),
        lib.len(),
        hazardous.len(),
        100.0 * hazardous.len() as f64 / lib.len() as f64,
        elapsed
    );
    for cell in hazardous {
        let report = cell.hazards().expect("annotated");
        println!("    {:10} {}", cell.name(), report.summary());
        for h in report.iter().take(2) {
            println!("        e.g. {}", h.display(cell.pins()));
        }
    }
}

fn main() {
    if let Some(path) = std::env::args().nth(1) {
        let text = std::fs::read_to_string(&path).expect("readable library file");
        let lib = Library::parse(&text).expect("valid library text");
        audit(lib);
        return;
    }
    for lib in asyncmap::library::builtin::all_libraries() {
        audit(lib);
    }
}
