//! Multi-level logic networks for the hazard-aware technology mapper:
//! primitive-gate DAGs, technology decomposition and cone partitioning
//! (paper §3.1).
//!
//! The mapping front end has three stages:
//!
//! 1. [`EquationSet`] — the technology-independent design, as named SOP
//!    equations over shared primary inputs (what a burst-mode synthesizer
//!    emits);
//! 2. decomposition into two-input base gates — [`async_tech_decomp`]
//!    (associative + DeMorgan laws only, hazard-preserving) or
//!    [`sync_tech_decomp`] (with MIS-style simplification, the baseline
//!    that can introduce static 1-hazards, Figure 3);
//! 3. [`partition`] into single-output [`Cone`]s cut at multi-fanout
//!    points; each cone is matched and covered independently.
//!
//! # Examples
//!
//! ```
//! use asyncmap_cube::{Cover, VarTable};
//! use asyncmap_network::{async_tech_decomp, partition, EquationSet};
//!
//! let vars = VarTable::from_names(["a", "b", "c"]);
//! let f = Cover::parse("ab + a'c + bc", &vars)?;
//! let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
//! let net = async_tech_decomp(&eqs);
//! let cones = partition(&net);
//! assert_eq!(cones.len(), 1);
//! # Ok::<(), asyncmap_cube::ParseSopError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certificate;
mod decomp;
mod eco;
#[allow(clippy::module_inception)]
mod network;
mod partition;

pub use certificate::{
    CutCertificate, DecompTrace, EquationCert, PartitionTrace, RewriteRule, RewriteStep,
};
pub use decomp::{
    async_tech_decomp, async_tech_decomp_traced, decompose_expr, decompose_expr_demorgan,
    sync_tech_decomp, EquationSet,
};
pub use eco::{
    build_partition_dag, cone_shape_key, cone_shape_key_with, propagate_dirty, ConeLocalMap,
    ConeShapeKey, PartitionDag, ShapeKeyScratch,
};
pub use network::{Fanin, GateOp, Network, NodeKind, SignalId};
pub use partition::{is_partition_boundary, partition, partition_roots, partition_traced, Cone};
