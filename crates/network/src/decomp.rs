//! Technology decomposition (paper §3.1.1): transforming logic equations
//! into a network of two-input, one-output base gates.
//!
//! [`async_tech_decomp`] uses only the associative law and DeMorgan's law,
//! which Unger proved hazard-preserving — the `async_tech_decomp` procedure
//! the paper requires for asynchronous designs. [`sync_tech_decomp`] models
//! the synchronous flow, which additionally *simplifies* each equation
//! (removing redundant cubes); that is exactly the step that can introduce
//! static 1-hazards (Figure 3) and is kept as the baseline for comparison.

use crate::certificate::{DecompTrace, EquationCert, RewriteRule, RewriteStep};
use crate::{GateOp, Network, SignalId};
use asyncmap_bff::Expr;
use asyncmap_cube::{Cover, Phase, VarTable};
use std::collections::HashMap;

/// A technology-independent design: named output equations (two-level SOP
/// covers) over a shared primary-input space. This is the shape a
/// burst-mode synthesizer hands to the technology mapper.
#[derive(Debug, Clone)]
pub struct EquationSet {
    /// Names of the primary inputs; cover variable `i` is input `i`.
    pub inputs: VarTable,
    /// `(output name, SOP)` pairs.
    pub equations: Vec<(String, Cover)>,
}

impl EquationSet {
    /// Builds an equation set, checking widths.
    ///
    /// # Panics
    ///
    /// Panics if an equation's variable space differs from the input table
    /// or an equation denotes a constant function (no storage-free
    /// controller output is constant).
    pub fn new(inputs: VarTable, equations: Vec<(String, Cover)>) -> Self {
        for (name, cover) in &equations {
            assert_eq!(
                cover.nvars(),
                inputs.len(),
                "equation {name:?} has wrong variable count"
            );
            assert!(
                !cover.is_empty() && !cover.is_tautology(),
                "equation {name:?} is constant"
            );
        }
        EquationSet { inputs, equations }
    }

    /// Total number of cubes over all equations.
    pub fn num_cubes(&self) -> usize {
        self.equations.iter().map(|(_, c)| c.len()).sum()
    }

    /// Total number of literals over all equations.
    pub fn num_literals(&self) -> u32 {
        self.equations.iter().map(|(_, c)| c.num_literals()).sum()
    }
}

/// Decomposes the equations into two-input AND/OR gates and inverters using
/// only hazard-preserving laws (associativity, DeMorgan). Redundant cubes
/// are kept; nothing is shared except per-input inverters (input fanout
/// does not alter hazard behavior).
/// # Examples
///
/// ```
/// use asyncmap_cube::{Cover, VarTable};
/// use asyncmap_network::{async_tech_decomp, sync_tech_decomp, EquationSet};
///
/// let vars = VarTable::from_names(["a", "b", "c"]);
/// let f = Cover::parse("ab + a'c + bc", &vars)?;
/// let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
/// // The hazard-preserving decomposition keeps the redundant cube bc...
/// let hazard_safe = async_tech_decomp(&eqs);
/// // ...which MIS-style simplification would delete (Figure 3).
/// let baseline = sync_tech_decomp(&eqs);
/// assert!(hazard_safe.num_gates() > baseline.num_gates());
/// # Ok::<(), asyncmap_cube::ParseSopError>(())
/// ```
pub fn async_tech_decomp(eqs: &EquationSet) -> Network {
    decompose(eqs, false, None)
}

/// [`async_tech_decomp`], additionally emitting the translation-validation
/// certificate trail: one [`RewriteStep`] per associative regrouping and
/// per input inverter, plus one end-to-end [`EquationCert`] per output.
/// The produced network is bit-identical to the untraced entry point.
pub fn async_tech_decomp_traced(eqs: &EquationSet) -> (Network, DecompTrace) {
    let mut trace = DecompTrace {
        nvars: eqs.inputs.len(),
        steps: Vec::new(),
        equations: Vec::new(),
    };
    let net = decompose(eqs, false, Some(&mut trace));
    (net, trace)
}

/// The synchronous decomposition baseline: equations are first made
/// irredundant (as MIS-style simplification would), *then* decomposed. May
/// introduce static 1-hazards relative to the source equations.
pub fn sync_tech_decomp(eqs: &EquationSet) -> Network {
    decompose(eqs, true, None)
}

fn decompose(eqs: &EquationSet, simplify: bool, mut trace: Option<&mut DecompTrace>) -> Network {
    let mut net = Network::new();
    let input_ids: Vec<SignalId> = eqs
        .inputs
        .iter()
        .map(|(_, name)| net.add_input(name))
        .collect();
    let mut inverters: HashMap<SignalId, SignalId> = HashMap::new();
    for (name, cover) in &eqs.equations {
        let cover = if simplify {
            cover.irredundant()
        } else {
            cover.clone()
        };
        let mut cube_signals = Vec::with_capacity(cover.len());
        let mut cube_exprs: Vec<Expr> = Vec::new();
        for cube in cover.cubes() {
            let mut literal_signals = Vec::new();
            let mut literal_exprs: Vec<Expr> = Vec::new();
            for (v, phase) in cube.literals() {
                let sig = input_ids[v.index()];
                let sig = match phase {
                    Phase::Pos => sig,
                    Phase::Neg => match inverters.get(&sig) {
                        Some(&inv) => inv,
                        None => {
                            let inv = net.add_gate(GateOp::Inv, [sig]);
                            inverters.insert(sig, inv);
                            if let Some(t) = trace.as_deref_mut() {
                                let lit = Expr::literal(v, Phase::Neg);
                                t.steps.push(RewriteStep {
                                    rule: RewriteRule::InputInverter,
                                    equation: name.clone(),
                                    node: inv,
                                    before: lit.clone(),
                                    after: lit,
                                });
                            }
                            inv
                        }
                    },
                };
                literal_signals.push(sig);
                if trace.is_some() {
                    literal_exprs.push(Expr::literal(v, phase));
                }
            }
            let arity = literal_signals.len();
            let and_root = balanced_tree(&mut net, GateOp::And, literal_signals);
            if let Some(t) = trace.as_deref_mut() {
                let tree = balanced_tree_expr(literal_exprs.clone(), GateOp::And);
                if arity >= 2 {
                    t.steps.push(RewriteStep {
                        rule: RewriteRule::AssocRegroup,
                        equation: name.clone(),
                        node: and_root,
                        before: Expr::And(literal_exprs),
                        after: tree.clone(),
                    });
                }
                cube_exprs.push(tree);
            }
            cube_signals.push(and_root);
        }
        let n_cubes = cube_signals.len();
        let root = balanced_tree(&mut net, GateOp::Or, cube_signals);
        if let Some(t) = trace.as_deref_mut() {
            let tree = balanced_tree_expr(cube_exprs.clone(), GateOp::Or);
            if n_cubes >= 2 {
                t.steps.push(RewriteStep {
                    rule: RewriteRule::AssocRegroup,
                    equation: name.clone(),
                    node: root,
                    before: Expr::Or(cube_exprs),
                    after: tree.clone(),
                });
            }
            t.equations.push(EquationCert {
                name: name.clone(),
                root,
                source: Expr::from_cover(&cover),
                result: tree,
            });
        }
        net.mark_output(name, root);
    }
    net
}

/// Decomposes a single factored-form expression (over the primary inputs of
/// `net`-to-be) into base gates, following the expression tree exactly.
/// Returns the network and the root signal.
pub fn decompose_expr(inputs: &VarTable, expr: &Expr, output: &str) -> Network {
    let mut net = Network::new();
    let input_ids: Vec<SignalId> = inputs.iter().map(|(_, name)| net.add_input(name)).collect();
    let root = emit_expr(&mut net, &input_ids, expr);
    net.mark_output(output, root);
    net
}

fn emit_expr(net: &mut Network, inputs: &[SignalId], expr: &Expr) -> SignalId {
    match expr {
        Expr::Const(_) => panic!("cannot decompose a constant expression"),
        Expr::Var(v) => inputs[v.index()],
        Expr::Not(e) => {
            let inner = emit_expr(net, inputs, e);
            net.add_gate(GateOp::Inv, [inner])
        }
        Expr::And(es) => {
            let signals: Vec<SignalId> = es.iter().map(|e| emit_expr(net, inputs, e)).collect();
            balanced_tree(net, GateOp::And, signals)
        }
        Expr::Or(es) => {
            let signals: Vec<SignalId> = es.iter().map(|e| emit_expr(net, inputs, e)).collect();
            balanced_tree(net, GateOp::Or, signals)
        }
    }
}

/// Decomposes a single factored-form expression into base gates with
/// inverters only on primary inputs: every complement over a compound
/// subexpression is pushed to the leaves with DeMorgan's law (and double
/// negation elimination), and every n-ary operator is regrouped into a
/// balanced binary tree. Both laws are hazard-preserving (Unger), and each
/// application is recorded as a certificate step — this is the entry point
/// that exercises [`RewriteRule::DeMorganPush`].
///
/// Returns the network plus the certificate trail. Inverters are shared
/// per input, as in [`async_tech_decomp`].
///
/// # Panics
///
/// Panics if the expression is (or simplifies to) a constant.
pub fn decompose_expr_demorgan(
    inputs: &VarTable,
    expr: &Expr,
    output: &str,
) -> (Network, DecompTrace) {
    let mut net = Network::new();
    let input_ids: Vec<SignalId> = inputs.iter().map(|(_, name)| net.add_input(name)).collect();
    let mut trace = DecompTrace {
        nvars: inputs.len(),
        steps: Vec::new(),
        equations: Vec::new(),
    };
    let mut inverters: HashMap<SignalId, SignalId> = HashMap::new();
    let (root, result) = emit_demorgan(
        &mut net,
        &input_ids,
        &mut inverters,
        &mut trace,
        output,
        expr,
        false,
    );
    trace.equations.push(EquationCert {
        name: output.to_owned(),
        root,
        source: expr.clone(),
        result: result.clone(),
    });
    net.mark_output(output, root);
    (net, trace)
}

/// Emits `expr` (complemented iff `negate`) as gates, pushing complements
/// to the leaves. Returns the root signal and the expression the emitted
/// tree realizes (`Not` only over `Var` leaves).
fn emit_demorgan(
    net: &mut Network,
    inputs: &[SignalId],
    inverters: &mut HashMap<SignalId, SignalId>,
    trace: &mut DecompTrace,
    equation: &str,
    expr: &Expr,
    negate: bool,
) -> (SignalId, Expr) {
    match expr {
        Expr::Const(_) => panic!("cannot decompose a constant expression"),
        Expr::Var(v) => {
            let sig = inputs[v.index()];
            if !negate {
                return (sig, Expr::Var(*v));
            }
            let lit = Expr::literal(*v, Phase::Neg);
            let inv = match inverters.get(&sig) {
                Some(&g) => g,
                None => {
                    let g = net.add_gate(GateOp::Inv, [sig]);
                    inverters.insert(sig, g);
                    trace.steps.push(RewriteStep {
                        rule: RewriteRule::InputInverter,
                        equation: equation.to_owned(),
                        node: g,
                        before: lit.clone(),
                        after: lit.clone(),
                    });
                    g
                }
            };
            (inv, lit)
        }
        Expr::Not(inner) => {
            let (sig, realized) =
                emit_demorgan(net, inputs, inverters, trace, equation, inner, !negate);
            if negate {
                // (e')' = e: double negation elimination, the involution
                // half of the DeMorgan push.
                trace.steps.push(RewriteStep {
                    rule: RewriteRule::DeMorganPush,
                    equation: equation.to_owned(),
                    node: sig,
                    before: Expr::Not(Box::new(Expr::Not(inner.clone()))),
                    after: (**inner).clone(),
                });
            }
            (sig, realized)
        }
        Expr::And(es) | Expr::Or(es) => {
            let is_and = matches!(expr, Expr::And(_));
            if negate {
                // One DeMorgan push over this node: (x₁·…·xₖ)' → x₁'+…+xₖ'
                // (or the dual). Certified *before* recursing, so the step's
                // `after` is the one-level rewrite, not the fully pushed form.
                let pushed: Vec<Expr> = es.iter().map(|e| e.clone().not()).collect();
                let after = if is_and {
                    Expr::or(pushed)
                } else {
                    Expr::and(pushed)
                };
                let (sig, realized) =
                    emit_demorgan(net, inputs, inverters, trace, equation, &after, false);
                trace.steps.push(RewriteStep {
                    rule: RewriteRule::DeMorganPush,
                    equation: equation.to_owned(),
                    node: sig,
                    before: Expr::Not(Box::new(expr.clone())),
                    after,
                });
                return (sig, realized);
            }
            let mut signals = Vec::with_capacity(es.len());
            let mut realized = Vec::with_capacity(es.len());
            for e in es {
                let (s, r) = emit_demorgan(net, inputs, inverters, trace, equation, e, false);
                signals.push(s);
                realized.push(r);
            }
            let op = if is_and { GateOp::And } else { GateOp::Or };
            let arity = signals.len();
            let root = balanced_tree(net, op, signals);
            let tree = balanced_tree_expr(realized.clone(), op);
            if arity >= 2 {
                trace.steps.push(RewriteStep {
                    rule: RewriteRule::AssocRegroup,
                    equation: equation.to_owned(),
                    node: root,
                    before: if is_and {
                        Expr::And(realized)
                    } else {
                        Expr::Or(realized)
                    },
                    after: tree.clone(),
                });
            }
            (root, tree)
        }
    }
}

/// Combines `signals` with a balanced tree of 2-input `op` gates (the
/// associative law, applied repeatedly).
///
/// # Panics
///
/// Panics if `signals` is empty.
fn balanced_tree(net: &mut Network, op: GateOp, mut signals: Vec<SignalId>) -> SignalId {
    assert!(!signals.is_empty(), "balanced_tree of zero signals");
    while signals.len() > 1 {
        let mut next = Vec::with_capacity(signals.len().div_ceil(2));
        let mut iter = signals.chunks(2);
        for pair in &mut iter {
            match pair {
                [a, b] => next.push(net.add_gate(op, [*a, *b])),
                [a] => next.push(*a),
                _ => unreachable!(),
            }
        }
        signals = next;
    }
    signals[0]
}

/// The expression-level mirror of [`balanced_tree`]: combines `exprs` with
/// the same pairing order, so the returned expression is exactly what the
/// emitted gate tree realizes. `op` must be [`GateOp::And`] or
/// [`GateOp::Or`].
fn balanced_tree_expr(mut exprs: Vec<Expr>, op: GateOp) -> Expr {
    assert!(!exprs.is_empty(), "balanced_tree_expr of zero expressions");
    let pair = |a: Expr, b: Expr| match op {
        GateOp::And => Expr::And(vec![a, b]),
        GateOp::Or => Expr::Or(vec![a, b]),
        _ => unreachable!("balanced trees are built from AND/OR only"),
    };
    while exprs.len() > 1 {
        let mut next = Vec::with_capacity(exprs.len().div_ceil(2));
        let mut iter = exprs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(pair(a, b)),
                None => next.push(a),
            }
        }
        exprs = next;
    }
    exprs.pop().expect("len checked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use asyncmap_cube::Bits;

    fn figure3_eqs() -> EquationSet {
        let vars = VarTable::from_names(["a", "b", "c"]);
        let f = Cover::parse("ab + a'c + bc", &vars).unwrap();
        EquationSet::new(vars, vec![("f".to_owned(), f)])
    }

    #[test]
    fn async_decomp_preserves_function_and_cubes() {
        let eqs = figure3_eqs();
        let net = async_tech_decomp(&eqs);
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(net.eval_output("f", &bits), eqs.equations[0].1.eval(&bits));
        }
        // 3 cubes → 3 AND roots (ab, a'c, bc each 1 AND) + 2 OR + 1 INV.
        assert_eq!(net.num_gates(), 3 + 2 + 1);
    }

    #[test]
    fn sync_decomp_drops_redundant_cube() {
        let eqs = figure3_eqs();
        let async_net = async_tech_decomp(&eqs);
        let sync_net = sync_tech_decomp(&eqs);
        // bc is redundant: the sync decomposition loses one AND and one OR.
        assert!(sync_net.num_gates() < async_net.num_gates());
        // Function unchanged.
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(
                sync_net.eval_output("f", &bits),
                async_net.eval_output("f", &bits)
            );
        }
    }

    #[test]
    fn inverters_are_shared() {
        let vars = VarTable::from_names(["a", "b"]);
        let f = Cover::parse("a'b + a'b'", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f)]);
        let net = async_tech_decomp(&eqs);
        // One INV for a, one for b, 2 ANDs, 1 OR.
        assert_eq!(net.num_gates(), 2 + 2 + 1);
    }

    #[test]
    fn decompose_expr_follows_structure() {
        let inputs = VarTable::from_names(["w", "x", "y"]);
        let mut scratch = inputs.clone();
        let e = Expr::parse("(w + x')*(x + y)", &mut scratch).unwrap();
        let net = decompose_expr(&inputs, &e, "f");
        // Gates: INV(x), OR(w,x'), OR(x,y), AND → 4.
        assert_eq!(net.num_gates(), 4);
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(net.eval_output("f", &bits), e.eval(&bits));
        }
    }

    #[test]
    fn multi_output_networks() {
        let vars = VarTable::from_names(["a", "b"]);
        let f = Cover::parse("ab", &vars).unwrap();
        let g = Cover::parse("a + b", &vars).unwrap();
        let eqs = EquationSet::new(vars, vec![("f".to_owned(), f), ("g".to_owned(), g)]);
        let net = async_tech_decomp(&eqs);
        assert_eq!(net.outputs().len(), 2);
        let mut bits = Bits::new(2);
        bits.set(0, true);
        assert!(!net.eval_output("f", &bits));
        assert!(net.eval_output("g", &bits));
    }

    #[test]
    fn traced_decomp_matches_untraced_and_certifies_every_step() {
        let eqs = figure3_eqs();
        let untraced = async_tech_decomp(&eqs);
        let (net, trace) = async_tech_decomp_traced(&eqs);
        assert_eq!(net.num_gates(), untraced.num_gates());
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(
                net.eval_output("f", &bits),
                untraced.eval_output("f", &bits)
            );
        }
        // ab + a'c + bc: three 2-literal cubes (3 AND regroups), one OR
        // regroup over 3 cubes, one input inverter for a.
        let regroups = trace
            .steps
            .iter()
            .filter(|s| s.rule == RewriteRule::AssocRegroup)
            .count();
        let inverters = trace
            .steps
            .iter()
            .filter(|s| s.rule == RewriteRule::InputInverter)
            .count();
        assert_eq!(regroups, 4);
        assert_eq!(inverters, 1);
        assert_eq!(trace.equations.len(), 1);
        // The end-to-end certificate's result expression is what the
        // network computes.
        let cert = &trace.equations[0];
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(cert.result.eval(&bits), net.eval_output("f", &bits));
            assert_eq!(cert.source.eval(&bits), cert.result.eval(&bits));
        }
    }

    #[test]
    fn demorgan_decomposition_pushes_inverters_to_leaves() {
        let inputs = VarTable::from_names(["w", "x", "y"]);
        let mut scratch = inputs.clone();
        let e = Expr::parse("(w*x + y)'", &mut scratch).unwrap();
        let (net, trace) = decompose_expr_demorgan(&inputs, &e, "f");
        // Inverters only directly on primary inputs.
        for s in net.signals() {
            if let crate::NodeKind::Gate {
                op: GateOp::Inv,
                fanin,
            } = net.node(s)
            {
                assert!(
                    matches!(net.node(fanin[0]), crate::NodeKind::Input),
                    "inverter over a compound survived the DeMorgan push"
                );
            }
        }
        assert!(trace
            .steps
            .iter()
            .any(|s| s.rule == RewriteRule::DeMorganPush));
        for m in 0..8usize {
            let mut bits = Bits::new(3);
            for v in 0..3 {
                bits.set(v, (m >> v) & 1 == 1);
            }
            assert_eq!(net.eval_output("f", &bits), e.eval(&bits));
        }
    }

    #[test]
    #[should_panic(expected = "is constant")]
    fn constant_equation_rejected() {
        let vars = VarTable::from_names(["a"]);
        let f = Cover::parse("a + a'", &vars).unwrap();
        EquationSet::new(vars, vec![("f".to_owned(), f)]);
    }
}
